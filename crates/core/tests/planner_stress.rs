//! Stress tests for the shared rule planner/executor: compare every
//! plan-driven match enumeration against a brute-force evaluator that
//! tries all valuations over the active domain. Any divergence is a
//! planner bug.

use std::ops::ControlFlow;
use unchained_common::{Instance, Interner, Tuple, Value};
use unchained_core::exec::{for_each_match, IndexCache, Sources};
use unchained_core::planner::plan_rule;
use unchained_core::subst::active_domain;
use unchained_parser::{parse_program, Literal, Rule, Term};

/// Brute force: enumerate all valuations of the rule's body variables
/// over `adom` and keep those satisfying every literal.
fn brute_force(rule: &Rule, instance: &Instance, adom: &[Value]) -> Vec<Vec<Value>> {
    let vars = rule.body_vars();
    let mut out = Vec::new();
    let mut env: Vec<Option<Value>> = vec![None; rule.var_count()];
    fn term_val(t: &Term, env: &[Option<Value>]) -> Value {
        match t {
            Term::Const(v) => *v,
            Term::Var(v) => env[v.index()].unwrap(),
        }
    }
    fn rec(
        vars: &[unchained_parser::Var],
        at: usize,
        rule: &Rule,
        instance: &Instance,
        adom: &[Value],
        env: &mut Vec<Option<Value>>,
        out: &mut Vec<Vec<Value>>,
    ) {
        if at == vars.len() {
            let ok = rule.body.iter().all(|lit| match lit {
                Literal::Pos(a) => {
                    let t: Tuple = a.args.iter().map(|x| term_val(x, env)).collect();
                    instance.relation(a.pred).is_some_and(|r| r.contains(&t))
                }
                Literal::Neg(a) => {
                    let t: Tuple = a.args.iter().map(|x| term_val(x, env)).collect();
                    !instance.relation(a.pred).is_some_and(|r| r.contains(&t))
                }
                Literal::Eq(l, r) => term_val(l, env) == term_val(r, env),
                Literal::Neq(l, r) => term_val(l, env) != term_val(r, env),
                Literal::Choice(..) => unreachable!(),
            });
            if ok {
                out.push(vars.iter().map(|v| env[v.index()].unwrap()).collect());
            }
            return;
        }
        for &value in adom {
            env[vars[at].index()] = Some(value);
            rec(vars, at + 1, rule, instance, adom, env, out);
        }
        env[vars[at].index()] = None;
    }
    rec(&vars, 0, rule, instance, adom, &mut env, &mut out);
    out.sort();
    out.dedup();
    out
}

fn planner_matches(rule: &Rule, instance: &Instance, adom: &[Value]) -> Vec<Vec<Value>> {
    let vars = rule.body_vars();
    let plan = plan_rule(rule);
    let mut cache = IndexCache::new();
    let mut out = Vec::new();
    let _ = for_each_match(
        &plan,
        Sources::simple(instance),
        adom,
        &mut cache,
        &mut |env| {
            out.push(
                vars.iter()
                    .map(|v| env[v.index()].unwrap())
                    .collect::<Vec<_>>(),
            );
            ControlFlow::Continue(())
        },
    );
    out.sort();
    out.dedup();
    out
}

#[test]
fn planner_agrees_with_brute_force_on_tricky_bodies() {
    let sources = [
        // Domain variables under negation only.
        "H(x,y) :- !A(x,y).",
        // Negative literal sandwiched between scans.
        "H(x,y) :- A(x,z), !B(z), A(y,w).",
        // Repeated variables inside and across atoms.
        "H(x) :- A(x,x), B(x), A(x,y), !B(y).",
        // Constants in scans and checks.
        "H(x) :- A(1,x), !A(x,2), x != 1.",
        // Equality chains binding late.
        "H(x,y) :- B(z), x = z, y = x, !A(x,y).",
        // Pure domain enumeration with comparisons.
        "H(x,y) :- x != y, !A(x,y), !A(y,x).",
        // A fully bound point-lookup scan.
        "H(x) :- B(x), A(x,x).",
        // Zero-ary mixed with binary.
        "H(x) :- flag, B(x), !other.",
    ];
    let mut interner = Interner::new();
    let a = interner.intern("A");
    let b = interner.intern("B");
    let flag = interner.intern("flag");
    // A small but irregular instance.
    let mut instance = Instance::new();
    for (p, q) in [(1i64, 2), (2, 2), (2, 3), (3, 1)] {
        instance.insert_fact(a, Tuple::from([Value::Int(p), Value::Int(q)]));
    }
    for v in [1i64, 3] {
        instance.insert_fact(b, Tuple::from([Value::Int(v)]));
    }
    instance.insert_fact(flag, Tuple::from([]));

    for src in sources {
        let program = parse_program(src, &mut interner).unwrap();
        let rule = &program.rules[0];
        let adom = active_domain(&program, &instance);
        let expected = brute_force(rule, &instance, &adom);
        let got = planner_matches(rule, &instance, &adom);
        assert_eq!(
            got, expected,
            "planner diverges from brute force on:\n{src}"
        );
    }
}

#[test]
fn planner_agrees_on_randomized_bodies() {
    // Pseudo-random rules over a fixed vocabulary, compared exhaustively.
    let mut interner = Interner::new();
    let a = interner.intern("A");
    let b = interner.intern("B");
    let mut instance = Instance::new();
    for (p, q) in [(0i64, 1), (1, 1), (1, 2), (2, 0)] {
        instance.insert_fact(a, Tuple::from([Value::Int(p), Value::Int(q)]));
    }
    for v in [0i64, 2] {
        instance.insert_fact(b, Tuple::from([Value::Int(v)]));
    }
    let vars = ["x", "y", "z"];
    let preds = ["A", "B"];
    let mut seed = 0xD1CEu64;
    let mut next = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (seed >> 33) as usize
    };
    for trial in 0..60 {
        let n_lits = 1 + next() % 3;
        let mut body = Vec::new();
        for _ in 0..n_lits {
            let pred = preds[next() % 2];
            let arity = if pred == "A" { 2 } else { 1 };
            let args: Vec<&str> = (0..arity).map(|_| vars[next() % 3]).collect();
            let neg = next() % 3 == 0;
            body.push(format!(
                "{}{}({})",
                if neg { "!" } else { "" },
                pred,
                args.join(",")
            ));
        }
        if next() % 2 == 0 {
            body.push(format!("{} != {}", vars[next() % 3], vars[next() % 3]));
        }
        // Head binds nothing new: use a 0-ary head so any body is
        // range-restricted.
        let src = format!("H :- {}.", body.join(", "));
        let program = parse_program(&src, &mut interner).unwrap();
        let rule = &program.rules[0];
        let adom = active_domain(&program, &instance);
        let expected = brute_force(rule, &instance, &adom);
        let got = planner_matches(rule, &instance, &adom);
        assert_eq!(got, expected, "trial {trial} diverges on:\n{src}");
    }
    let _ = (a, b);
}

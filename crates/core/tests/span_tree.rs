//! Span-tree invariants for the hierarchical tracer: deterministic
//! work-gauge projections are byte-identical across thread counts,
//! children's gauges account exactly for their parents', and the
//! Chrome-trace-event export validates against its own schema checker.

use unchained_common::{
    gauge_tree, sum_gauge, to_chrome_json, validate_chrome_trace, Instance, Interner, Span,
    SpanKind, Telemetry, Tracer, Tuple, Value,
};
use unchained_core::{seminaive, stratified, wellfounded, EvalOptions};
use unchained_parser::parse_program;

const TC: &str = "T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).";

fn chain(interner: &mut Interner, n: i64) -> Instance {
    let g = interner.intern("G");
    let mut input = Instance::new();
    for k in 0..n {
        input.insert_fact(g, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
    }
    input
}

/// Runs semi-naive TC over a seeded chain and returns the finished
/// span forest plus the interner that names it.
fn traced_tc(n: i64, threads: usize) -> (Vec<Span>, Interner) {
    let mut interner = Interner::new();
    let program = parse_program(TC, &mut interner).unwrap();
    let input = chain(&mut interner, n);
    let tracer = Tracer::enabled();
    let tel = Telemetry::off().with_tracer(tracer.clone());
    let options = EvalOptions::default()
        .with_telemetry(tel)
        .with_threads(threads);
    seminaive::minimum_model(&program, &input, options).unwrap();
    (tracer.finish(), interner)
}

fn walk<'s>(roots: &'s [Span], out: &mut Vec<&'s Span>) {
    for span in roots {
        out.push(span);
        walk(&span.children, out);
    }
}

#[test]
fn gauge_tree_is_byte_identical_across_thread_counts() {
    let (seq, interner_seq) = traced_tc(24, 1);
    let (par, interner_par) = traced_tc(24, 4);
    let seq_tree = gauge_tree(&seq, &interner_seq);
    let par_tree = gauge_tree(&par, &interner_par);
    assert!(!seq_tree.is_empty());
    assert_eq!(
        seq_tree, par_tree,
        "deterministic projection must not depend on the schedule"
    );
    // The projection carries the work gauges…
    assert!(seq_tree.contains("facts_added"), "{seq_tree}");
    assert!(seq_tree.contains("fired"), "{seq_tree}");
    // …including the deterministic planner-effect gauges…
    assert!(seq_tree.contains("plan_joins_pruned"), "{seq_tree}");
    assert!(seq_tree.contains("subplans_shared"), "{seq_tree}");
    // …but no schedule-dependent worker lanes or join-counter leaves
    // (probe counts depend on the per-worker index chunking).
    assert!(!seq_tree.contains("worker"), "{seq_tree}");
    assert!(!seq_tree.contains("probes"), "{seq_tree}");
}

#[test]
fn children_gauges_account_for_their_parents() {
    let (roots, _) = traced_tc(16, 1);
    assert_eq!(roots.len(), 1, "one eval root");
    let eval = &roots[0];
    assert_eq!(eval.kind, SpanKind::Eval);

    let mut all = Vec::new();
    walk(&roots, &mut all);
    // Every round's `rules_fired` equals the sum of its rule children's
    // `fired` gauges.
    let mut rounds = 0;
    for round in all.iter().filter(|s| s.kind == SpanKind::Round) {
        rounds += 1;
        let fired: u64 = round
            .children
            .iter()
            .filter(|c| c.kind == SpanKind::Rule)
            .map(|c| c.gauge("fired").unwrap_or(0))
            .sum();
        assert_eq!(round.gauge("rules_fired"), Some(fired), "{}", round.name);
    }
    assert!(rounds >= 2);
    // The same identity holds forest-wide through `sum_gauge`.
    assert_eq!(
        sum_gauge(&roots, SpanKind::Round, "rules_fired"),
        sum_gauge(&roots, SpanKind::Rule, "fired"),
    );
    // The stratum span's round count matches the tree shape, and the
    // total facts added over rounds bounds the final instance size.
    let stratum = eval
        .children
        .iter()
        .find(|s| s.kind == SpanKind::Stratum)
        .expect("eval wraps a stratum");
    assert_eq!(stratum.gauge("rounds"), Some(rounds));
    let added = sum_gauge(&roots, SpanKind::Round, "facts_added");
    assert!(eval.gauge("final_facts").unwrap() >= added);
    // Wall-clock nesting: timed children start within their parent
    // (gauge-only leaves like the join summary carry no timing).
    for parent in &all {
        for child in parent.children.iter().filter(|c| c.start_nanos > 0) {
            assert!(child.start_nanos >= parent.start_nanos);
        }
    }
}

#[test]
fn parallel_run_has_one_worker_lane_per_thread() {
    let (roots, _) = traced_tc(32, 4);
    let mut all = Vec::new();
    walk(&roots, &mut all);
    let lanes: std::collections::BTreeSet<usize> = all
        .iter()
        .filter(|s| s.kind == SpanKind::Worker)
        .map(|s| s.lane.expect("worker spans carry a lane"))
        .collect();
    assert_eq!(
        lanes.into_iter().collect::<Vec<_>>(),
        vec![0, 1, 2, 3],
        "one timeline lane per worker at threads=4"
    );
    // The sequential run has none.
    let (roots, _) = traced_tc(32, 1);
    let mut all = Vec::new();
    walk(&roots, &mut all);
    assert!(all.iter().all(|s| s.kind != SpanKind::Worker));
}

#[test]
fn chrome_export_validates_for_every_engine_shape() {
    // Semi-naive (parallel): eval → stratum → round → rule/worker/join.
    let (roots, interner) = traced_tc(24, 4);
    let json = to_chrome_json(&roots, &interner);
    let summary = validate_chrome_trace(
        &json,
        &["eval", "stratum", "round", "rule", "worker", "join"],
    )
    .unwrap();
    assert!(summary.contains("events"), "{summary}");

    // Stratified negation: one stratum span per stratum.
    let mut interner = Interner::new();
    let program = parse_program(
        "T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y). V(x) :- G(x,y). V(y) :- G(x,y). \
         CT(x,y) :- V(x), V(y), !T(x,y).",
        &mut interner,
    )
    .unwrap();
    let input = chain(&mut interner, 6);
    let tracer = Tracer::enabled();
    let tel = Telemetry::off().with_tracer(tracer.clone());
    stratified::eval(&program, &input, EvalOptions::default().with_telemetry(tel)).unwrap();
    let roots = tracer.finish();
    let strata = roots[0]
        .children
        .iter()
        .filter(|s| s.kind == SpanKind::Stratum)
        .count();
    assert!(strata >= 2, "negation splits the program into strata");
    validate_chrome_trace(
        &to_chrome_json(&roots, &interner),
        &["eval", "stratum", "round", "rule"],
    )
    .unwrap();

    // Well-founded: alternating-fixpoint phases.
    let mut interner = Interner::new();
    let program = parse_program("win(x) :- moves(x,y), !win(y).", &mut interner).unwrap();
    let moves = interner.intern("moves");
    let mut input = Instance::new();
    for (a, b) in [(1, 2), (2, 1), (2, 3)] {
        input.insert_fact(moves, Tuple::from([Value::Int(a), Value::Int(b)]));
    }
    let tracer = Tracer::enabled();
    let tel = Telemetry::off().with_tracer(tracer.clone());
    wellfounded::eval(&program, &input, EvalOptions::default().with_telemetry(tel)).unwrap();
    let roots = tracer.finish();
    validate_chrome_trace(&to_chrome_json(&roots, &interner), &["eval", "phase"]).unwrap();

    // A kind the forest lacks is an error, as is junk input.
    assert!(validate_chrome_trace(&to_chrome_json(&roots, &interner), &["worker"]).is_err());
    assert!(validate_chrome_trace("[1,2,3]", &[]).is_err());
}

//! Integration tests for the telemetry subsystem: stage-by-stage
//! traces of the engines on the paper's worked fixpoint examples.
//!
//! The stage counts asserted here are the machine-checked form of the
//! paper's hand-worked iterations: transitive closure of an n-chain
//! saturates in n stages with strictly shrinking deltas, and the
//! Section 4.2 flip-flop program cycles with period 2.

use unchained_common::{Instance, Interner, SpaceReport, Telemetry, Tuple, Value};
use unchained_core::{naive, noninflationary, seminaive, wellfounded, EvalError, EvalOptions};
use unchained_parser::parse_program;

const TC: &str = "T(x,y) :- G(x,y).\nT(x,y) :- G(x,z), T(z,y).";

/// A directed chain 1 → 2 → … → n over predicate `G`.
fn chain(interner: &mut Interner, n: i64) -> Instance {
    let g = interner.intern("G");
    let mut db = Instance::new();
    for k in 1..n {
        db.insert_fact(g, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
    }
    db
}

/// A directed cycle 1 → 2 → … → n → 1 over predicate `G`.
fn cycle(interner: &mut Interner, n: i64) -> Instance {
    let g = interner.intern("G");
    let mut db = Instance::new();
    for k in 1..=n {
        let next = if k == n { 1 } else { k + 1 };
        db.insert_fact(g, Tuple::from([Value::Int(k), Value::Int(next)]));
    }
    db
}

#[test]
fn seminaive_chain_trace_has_shrinking_deltas() {
    let mut i = Interner::new();
    let program = parse_program(TC, &mut i).unwrap();
    let n = 6i64;
    let input = chain(&mut i, n);
    let tel = Telemetry::enabled();
    let run = seminaive::minimum_model(
        &program,
        &input,
        EvalOptions::default().with_telemetry(tel.clone()),
    )
    .unwrap();
    let trace = tel.snapshot().expect("trace");
    assert_eq!(trace.engine, "seminaive");
    // Stage k derives the paths of length k+1; the last stage is the
    // empty one that detects the fixpoint. Chain of n nodes: deltas
    // n-1, n-2, …, 1, 0 over n stages.
    assert_eq!(trace.stages.len(), n as usize);
    let t = i.get("T").unwrap();
    for (idx, stage) in trace.stages.iter().enumerate() {
        let expected = n as usize - 1 - idx;
        assert_eq!(stage.stage, idx + 1);
        assert_eq!(stage.facts_added, expected, "stage {}", idx + 1);
        if expected > 0 {
            assert_eq!(stage.delta, vec![(t, expected)], "stage {}", idx + 1);
        } else {
            assert!(stage.delta.is_empty());
        }
        assert_eq!(stage.facts_removed, 0);
    }
    // T holds all n(n-1)/2 ordered pairs; G's n-1 facts were input.
    let pairs = (n * (n - 1) / 2) as usize;
    assert_eq!(trace.total_facts_added(), pairs);
    assert_eq!(trace.final_facts, run.instance.fact_count());
    assert_eq!(trace.final_facts, pairs + (n as usize - 1));
    assert_eq!(trace.peak_facts, trace.final_facts);
    assert!(trace.joins.probes > 0, "semi-naive TC must probe indexes");
}

#[test]
fn seminaive_cycle_trace_adds_n_facts_per_stage() {
    let mut i = Interner::new();
    let program = parse_program(TC, &mut i).unwrap();
    let n = 5i64;
    let input = cycle(&mut i, n);
    let tel = Telemetry::enabled();
    seminaive::minimum_model(
        &program,
        &input,
        EvalOptions::default().with_telemetry(tel.clone()),
    )
    .unwrap();
    let trace = tel.snapshot().expect("trace");
    // On an n-cycle every stage (but the last two) derives exactly the
    // n paths one hop longer, until all n² pairs exist.
    assert_eq!(trace.total_facts_added(), (n * n) as usize);
    for stage in &trace.stages[..trace.stages.len() - 2] {
        assert_eq!(stage.facts_added, n as usize, "stage {}", stage.stage);
    }
    assert_eq!(trace.stages.last().unwrap().facts_added, 0);
}

#[test]
fn naive_and_seminaive_traces_agree_on_totals() {
    let mut i = Interner::new();
    let program = parse_program(TC, &mut i).unwrap();
    let input = chain(&mut i, 7);
    let ntel = Telemetry::enabled();
    let nrun = naive::minimum_model(
        &program,
        &input,
        EvalOptions::default().with_telemetry(ntel.clone()),
    )
    .unwrap();
    let stel = Telemetry::enabled();
    let srun = seminaive::minimum_model(
        &program,
        &input,
        EvalOptions::default().with_telemetry(stel.clone()),
    )
    .unwrap();
    let ntrace = ntel.snapshot().unwrap();
    let strace = stel.snapshot().unwrap();
    assert_eq!(ntrace.engine, "naive");
    assert_eq!(strace.engine, "seminaive");
    // Same minimum model, hence the same totals…
    assert_eq!(nrun.instance, srun.instance);
    assert_eq!(ntrace.total_facts_added(), strace.total_facts_added());
    assert_eq!(ntrace.final_facts, strace.final_facts);
    assert_eq!(ntrace.stages.len(), strace.stages.len());
    // …but naive refires every rule body from scratch each stage, so
    // the trace exposes the redundant work Section 4.1 warns about.
    assert!(
        ntrace.rules_fired > strace.rules_fired,
        "naive fired {} vs semi-naive {}",
        ntrace.rules_fired,
        strace.rules_fired
    );
}

#[test]
fn flip_flop_divergence_is_visible_in_trace() {
    let mut i = Interner::new();
    // The Section 4.2 flip-flop program: T alternates {⟨0⟩} / {⟨1⟩}.
    let program = parse_program(
        "T(0) :- T(1).\n!T(1) :- T(1).\nT(1) :- T(0).\n!T(0) :- T(0).",
        &mut i,
    )
    .unwrap();
    let t = i.get("T").unwrap();
    let mut input = Instance::new();
    input.insert_fact(t, Tuple::from([Value::Int(0)]));
    let tel = Telemetry::enabled();
    let err = noninflationary::eval(
        &program,
        &input,
        noninflationary::ConflictPolicy::PreferPositive,
        EvalOptions::default().with_telemetry(tel.clone()),
    )
    .unwrap_err();
    assert_eq!(
        err,
        EvalError::Diverged {
            stage: 2,
            period: 2
        }
    );
    // The engine finishes the trace before reporting divergence, so
    // the period-2 cycle is machine-checkable from the snapshot.
    let trace = tel.snapshot().expect("trace survives divergence");
    assert_eq!(trace.engine, "noninflationary");
    let d = trace.divergence.expect("divergence snapshot");
    assert_eq!(d.diverged_stage, Some(2));
    assert_eq!(d.period, Some(2));
    assert!(d.states_seen >= 2);
    // Each stage both adds and retracts one T fact.
    assert!(trace.stages.iter().any(|s| s.facts_removed > 0));
}

/// The `peak_facts` fix: the gauge is a true high-water mark over *live*
/// facts, sampled while both the old state and its successor are in
/// memory — not a max over stage-end counts. On a shrinking
/// noninflationary program the mid-stage peak strictly exceeds every
/// stage-end count, which the old boundary-only sampling missed.
#[test]
fn peak_facts_sees_the_mid_stage_high_water_mark() {
    let mut i = Interner::new();
    // Removes both 2-cycles in one parallel firing: 5 G facts drop to 1.
    let program = parse_program("!G(x,y) :- G(x,y), G(y,x).", &mut i).unwrap();
    let g = i.get("G").unwrap();
    let mut input = Instance::new();
    for (a, b) in [(1, 2), (2, 1), (2, 3), (3, 2), (4, 5)] {
        input.insert_fact(g, Tuple::from([Value::Int(a), Value::Int(b)]));
    }
    let tel = Telemetry::enabled();
    let run = noninflationary::eval(
        &program,
        &input,
        noninflationary::ConflictPolicy::PreferPositive,
        EvalOptions::default().with_telemetry(tel.clone()),
    )
    .unwrap();
    assert_eq!(run.instance.fact_count(), 1);
    let trace = tel.snapshot().unwrap();
    // Stage 1 materializes next = {(4,5)} while the 5-fact input is
    // still live: peak = 5 + 1 = 6, above every stage-end count.
    let max_stage_end = trace
        .stages
        .iter()
        .map(|s| s.bytes) // stage-end bytes track stage-end facts
        .max()
        .unwrap_or(0);
    assert_eq!(trace.peak_facts, 6);
    assert!(
        trace.peak_facts > trace.final_facts,
        "peak {} vs final {}",
        trace.peak_facts,
        trace.final_facts
    );
    assert!(
        trace.bytes_peak > max_stage_end,
        "bytes peak {} vs max stage-end {max_stage_end}",
        trace.bytes_peak
    );
    assert!(trace.bytes_final > 0);
    assert!(trace.bytes_peak > trace.bytes_final);
}

/// Space gauges are logical (counts × fixed widths), so they are
/// byte-identical however many worker threads derived the facts.
#[test]
fn space_accounting_is_identical_at_threads_1_and_4() {
    let mut i = Interner::new();
    let program = parse_program(TC, &mut i).unwrap();
    let input = {
        // Seeded pseudo-random graph (same generator as the seminaive
        // unit tests): two out-edges per node.
        let g = i.get("G").unwrap();
        let n = 17i64;
        let mut inst = Instance::new();
        for k in 0..n {
            inst.insert_fact(g, Tuple::from([Value::Int(k), Value::Int((k * 7 + 3) % n)]));
            inst.insert_fact(g, Tuple::from([Value::Int(k), Value::Int((k * 5 + 1) % n)]));
        }
        inst
    };
    let run_with = |threads: usize| {
        let tel = Telemetry::enabled();
        let run = seminaive::minimum_model(
            &program,
            &input,
            EvalOptions::default()
                .with_telemetry(tel.clone())
                .with_threads(threads),
        )
        .unwrap();
        (run, tel.snapshot().unwrap())
    };
    let (run1, trace1) = run_with(1);
    let (run4, trace4) = run_with(4);
    assert_eq!(trace1.bytes_peak, trace4.bytes_peak);
    assert_eq!(trace1.bytes_final, trace4.bytes_final);
    assert_eq!(
        trace1.stages.iter().map(|s| s.bytes).collect::<Vec<_>>(),
        trace4.stages.iter().map(|s| s.bytes).collect::<Vec<_>>()
    );
    // The full rendered report (the `--memstats` tree) is byte-identical.
    let report1 = SpaceReport::for_instance(&run1.instance, &i);
    let report4 = SpaceReport::for_instance(&run4.instance, &i);
    report1.check_additive().unwrap();
    assert_eq!(report1.render(), report4.render());
    assert!(report1.relation_bytes() > 0);
}

/// Morsel-parallel execution must be invisible in the trace: every
/// deterministic stage field is byte-identical at threads 1 and 7.
///
/// Seven is deliberate — an odd worker count over morsels whose sizes
/// don't divide evenly, the shape that caught the PR 5 chunking bug
/// (the last short morsel was attributed to the wrong stage). Only the
/// wall clocks and the per-worker join counters (each worker keeps its
/// own index cache) may differ between runs.
#[test]
fn eval_trace_stages_are_identical_at_threads_1_and_7() {
    let mut i = Interner::new();
    let program = parse_program(TC, &mut i).unwrap();
    let g = i.get("G").unwrap();
    // Seeded pseudo-random multigraph with an odd edge count so no
    // morsel boundary lands evenly under 7 workers.
    let n = 23i64;
    let mut input = Instance::new();
    for k in 0..n {
        input.insert_fact(g, Tuple::from([Value::Int(k), Value::Int((k * 7 + 3) % n)]));
        input.insert_fact(g, Tuple::from([Value::Int(k), Value::Int((k * 5 + 1) % n)]));
        if k % 3 == 0 {
            input.insert_fact(
                g,
                Tuple::from([Value::Int(k), Value::Int((k * 11 + 4) % n)]),
            );
        }
    }
    let run_with = |threads: usize| {
        let tel = Telemetry::enabled();
        let run = seminaive::minimum_model(
            &program,
            &input,
            EvalOptions::default()
                .with_telemetry(tel.clone())
                .with_threads(threads),
        )
        .unwrap();
        (run, tel.snapshot().unwrap())
    };
    let (run1, trace1) = run_with(1);
    let (run7, trace7) = run_with(7);
    assert_eq!(run1.instance, run7.instance, "derived facts must agree");
    assert_eq!(run1.stages, run7.stages);
    assert_eq!(trace1.engine, trace7.engine);
    assert_eq!(trace1.stages.len(), trace7.stages.len());
    // The deterministic projection of every stage record: everything
    // except wall clocks and worker-local join-cache counters.
    for (s1, s7) in trace1.stages.iter().zip(&trace7.stages) {
        assert_eq!(s1.stage, s7.stage);
        assert_eq!(s1.facts_added, s7.facts_added, "stage {}", s1.stage);
        assert_eq!(s1.facts_removed, s7.facts_removed, "stage {}", s1.stage);
        assert_eq!(s1.rules_fired, s7.rules_fired, "stage {}", s1.stage);
        assert_eq!(s1.delta, s7.delta, "stage {}", s1.stage);
        assert_eq!(s1.bytes, s7.bytes, "stage {}", s1.stage);
    }
    // Run-level gauges, same projection.
    assert_eq!(trace1.peak_facts, trace7.peak_facts);
    assert_eq!(trace1.final_facts, trace7.final_facts);
    assert_eq!(trace1.bytes_peak, trace7.bytes_peak);
    assert_eq!(trace1.bytes_final, trace7.bytes_final);
    assert_eq!(trace1.rules_fired, trace7.rules_fired);
    assert_eq!(trace1.plan_joins_pruned, trace7.plan_joins_pruned);
    assert_eq!(trace1.subplans_shared, trace7.subplans_shared);
}

/// Same determinism check on a stratified program with negation.
#[test]
fn space_accounting_is_thread_invariant_under_negation() {
    let mut i = Interner::new();
    let program = parse_program(
        "T(x,y) :- G(x,y).\n\
         T(x,y) :- G(x,z), T(z,y).\n\
         unreach(x,y) :- node(x), node(y), !T(x,y).",
        &mut i,
    )
    .unwrap();
    let g = i.get("G").unwrap();
    let node = i.get("node").unwrap();
    let n = 9i64;
    let mut input = Instance::new();
    for k in 0..n {
        input.insert_fact(node, Tuple::from([Value::Int(k)]));
        input.insert_fact(g, Tuple::from([Value::Int(k), Value::Int((k * 3 + 2) % n)]));
    }
    let run_with = |threads: usize| {
        let tel = Telemetry::enabled();
        let run = unchained_core::stratified::eval(
            &program,
            &input,
            EvalOptions::default()
                .with_telemetry(tel.clone())
                .with_threads(threads),
        )
        .unwrap();
        (run, tel.snapshot().unwrap())
    };
    let (run1, trace1) = run_with(1);
    let (run4, trace4) = run_with(4);
    assert_eq!(trace1.bytes_final, trace4.bytes_final);
    assert_eq!(trace1.bytes_peak, trace4.bytes_peak);
    let report1 = SpaceReport::for_instance(&run1.instance, &i);
    let report4 = SpaceReport::for_instance(&run4.instance, &i);
    assert_eq!(report1.render(), report4.render());
}

#[test]
fn wellfounded_trace_reports_engine_and_work() {
    let mut i = Interner::new();
    let program = parse_program("win(x) :- moves(x,y), !win(y).", &mut i).unwrap();
    let moves = i.get("moves").unwrap();
    let mut input = Instance::new();
    for (a, b) in [(1, 2), (2, 1), (2, 3)] {
        input.insert_fact(moves, Tuple::from([Value::Int(a), Value::Int(b)]));
    }
    let tel = Telemetry::enabled();
    wellfounded::eval(
        &program,
        &input,
        EvalOptions::default().with_telemetry(tel.clone()),
    )
    .unwrap();
    let trace = tel.snapshot().unwrap();
    assert_eq!(trace.engine, "wellfounded");
    assert!(trace.stages.len() >= 2, "alternating fixpoint takes rounds");
}

#[test]
fn disabled_telemetry_yields_no_snapshot() {
    let mut i = Interner::new();
    let program = parse_program(TC, &mut i).unwrap();
    let input = chain(&mut i, 4);
    let tel = Telemetry::off();
    seminaive::minimum_model(
        &program,
        &input,
        EvalOptions::default().with_telemetry(tel.clone()),
    )
    .unwrap();
    assert!(tel.snapshot().is_none());
    assert!(!tel.is_enabled());
}

/// A deliberately tiny JSON-lines structure check (no JSON crate in the
/// sanctioned dependency set): every line must be a flat-ish object
/// with balanced braces/brackets and correctly quoted strings.
fn assert_json_object_line(line: &str) {
    assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    let mut depth = 0i32;
    let mut in_string = false;
    let mut escaped = false;
    for c in line.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                assert!(depth >= 0, "unbalanced in {line}");
            }
            _ => {}
        }
    }
    assert_eq!(depth, 0, "unbalanced in {line}");
    assert!(!in_string, "unterminated string in {line}");
}

#[test]
fn trace_json_lines_are_well_formed() {
    let mut i = Interner::new();
    let program = parse_program(TC, &mut i).unwrap();
    let input = chain(&mut i, 5);
    let tel = Telemetry::enabled();
    seminaive::minimum_model(
        &program,
        &input,
        EvalOptions::default().with_telemetry(tel.clone()),
    )
    .unwrap();
    let mut trace = tel.snapshot().unwrap();
    trace.interner_symbols = i.len();
    trace
        .notes
        .push("quote \" backslash \\ newline \n done".to_string());
    let json = trace.to_json_lines(&i);
    let lines: Vec<&str> = json.lines().collect();
    // One run line plus one line per stage.
    assert_eq!(lines.len(), 1 + trace.stages.len());
    for line in &lines {
        assert_json_object_line(line);
    }
    assert!(lines[0].contains("\"type\":\"run\""));
    assert!(lines[0].contains("\"engine\":\"seminaive\""));
    assert!(lines[0].contains("\\\"")); // the quote in the note survived escaping
    for (idx, line) in lines[1..].iter().enumerate() {
        assert!(line.contains("\"type\":\"stage\""), "{line}");
        assert!(line.contains(&format!("\"stage\":{}", idx + 1)), "{line}");
    }
    // Per-predicate deltas are keyed by interned name.
    assert!(lines[1].contains("\"T\":4"), "{}", lines[1]);
}

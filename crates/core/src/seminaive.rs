//! Semi-naive bottom-up evaluation.
//!
//! The classical optimization of naive fixpoint evaluation: a fact can
//! only be *newly* derived in round `k+1` if its derivation uses at least
//! one fact first derived in round `k`. Each rule with a recursive
//! positive body literal is therefore evaluated in *variants*, one per
//! recursive literal, where that literal scans the per-round delta and
//! the others scan the full relations.
//!
//! The module exposes the shared [`seminaive_fixpoint`] used by the
//! positive-Datalog engine here and by the stratified engine
//! ([`crate::stratified`]), whose per-stratum fixpoints are exactly the
//! same computation with negation frozen against completed strata.

use crate::error::EvalError;
use crate::exec::{for_each_head, IndexCache, Sources};
use crate::ir::Plan;
use crate::options::{EvalOptions, FixpointRun};
use crate::parallel::{run_round, PlanTask};
use crate::planner::{Catalog, Planner};
use crate::require_language;
use crate::subst::active_domain;
use unchained_common::{
    DeltaHandle, FxHashSet, HeapSize, Instance, JoinCounters, Span, SpanKind, StageRecord, Symbol,
    Tracer,
};
use unchained_parser::{check_range_restricted, HeadLiteral, Language, Program, Rule};

/// Per-rule attribution collected during one round: match count plus
/// wall-clock placement of the rule's evaluation.
#[derive(Clone, Copy, Default)]
struct RuleStat {
    fired: u64,
    start_nanos: u64,
    dur_nanos: u64,
}

/// Attaches one round's attribution leaves to the currently open round
/// span: per-rule spans (deterministic `fired` gauges), per-worker lane
/// spans (parallel rounds), and a join-counter summary.
fn emit_round_leaves(
    tracer: &Tracer,
    head_preds: &[Symbol],
    rule_stats: &[RuleStat],
    worker_lanes: &mut Vec<(u64, u64)>,
    joins: &JoinCounters,
) {
    for (ri, rs) in rule_stats.iter().enumerate() {
        let mut span = Span::leaf(SpanKind::Rule, format!("rule {ri}"));
        span.pred = Some(head_preds[ri]);
        span.start_nanos = rs.start_nanos;
        span.dur_nanos = rs.dur_nanos;
        span.gauges.push(("fired", rs.fired));
        tracer.leaf(span);
    }
    for (w, (start, dur)) in worker_lanes.drain(..).enumerate() {
        let mut span = Span::leaf(SpanKind::Worker, format!("worker {w}"));
        span.lane = Some(w);
        span.start_nanos = start;
        span.dur_nanos = dur;
        tracer.leaf(span);
    }
    let mut join = Span::leaf(SpanKind::Join, "joins");
    join.gauges = vec![
        ("probes", joins.probes),
        ("probe_tuples", joins.probe_tuples),
        ("index_builds", joins.index_builds),
        ("index_hits", joins.index_hits),
        ("index_appends", joins.index_appends),
        ("index_rebuilds", joins.index_rebuilds),
    ];
    tracer.leaf(join);
}

/// Runs the rules of one (sub)program to fixpoint with semi-naive
/// deltas, mutating `instance` in place. Negative literals are checked
/// against the full current instance, so the caller must guarantee they
/// are *frozen* (never derivable by `rules`) — true for pure Datalog
/// (no negation) and for stratified evaluation (negation only on
/// completed strata).
///
/// Returns the number of rounds executed (≥ 1).
pub(crate) fn seminaive_fixpoint(
    rules: &[&Rule],
    instance: &mut Instance,
    adom: &[unchained_common::Value],
    recursive: &FxHashSet<Symbol>,
    cache: &mut IndexCache,
    options: &EvalOptions,
) -> Result<usize, EvalError> {
    struct RulePlans<'r> {
        rule: &'r Rule,
        full: Plan,
        deltas: Vec<Plan>,
    }
    // Plan against a cardinality snapshot of the instance as it stands
    // on entry (for stratified evaluation: with all lower strata
    // already computed). Recursive predicates are inflated so their
    // initially-small relations are not mistaken for cheap scans.
    let mut planner = Planner::new(Catalog::from_instance(instance), options.plan_mode);
    planner.inflate(recursive.iter().copied());
    let compiled: Vec<RulePlans> = rules
        .iter()
        .map(|rule| {
            let full = planner.plan_rule(rule);
            let deltas = planner.seminaive_variants(rule, &|p| recursive.contains(&p));
            RulePlans { rule, full, deltas }
        })
        .collect();
    let plan_stats = planner.stats();

    let head_atom = |rule: &Rule| match &rule.head[0] {
        HeadLiteral::Pos(a) => a.clone(),
        _ => unreachable!("semi-naive engines require positive single heads"),
    };

    // Stage indexes continue from whatever the trace already holds, so
    // stratified evaluation appends one contiguous stage sequence.
    let tel = &options.telemetry;
    let base = tel.with(|t| t.stages.len()).unwrap_or(0);
    let tracer = tel.tracer().clone();
    let traced = tracer.is_enabled();
    let head_preds: Vec<Symbol> = compiled.iter().map(|rp| head_atom(rp.rule).pred).collect();
    // Planner-effect gauges are deterministic (plans never depend on
    // the schedule), so they are safe in the thread-invariant lane.
    // Accumulated across strata when called repeatedly.
    tel.with(|t| {
        t.plan_joins_pruned += plan_stats.joins_pruned;
        t.subplans_shared += plan_stats.subplans_shared;
    });
    tracer.gauge("plan_joins_pruned", plan_stats.joins_pruned);
    tracer.gauge("subplans_shared", plan_stats.subplans_shared);

    // Parallel executor state. Each worker owns a private cache that
    // lives across rounds (so full indexes absorb committed segments
    // just like the sequential cache); morsels are pulled from a shared
    // queue, see `crate::parallel`. The shared `cache` stays the single
    // source of truth for counters: after every parallel round its
    // counters are rewritten as entry snapshot + the sum over worker
    // caches, which keeps the per-stage `since` diffs below exact.
    let threads = options.threads.get();
    tel.with(|t| t.threads = threads);
    let mut worker_caches: Vec<IndexCache> = if threads > 1 {
        (0..threads).map(|_| IndexCache::new()).collect()
    } else {
        Vec::new()
    };
    let entry_counters = cache.counters;
    let roll_up = |cache: &mut IndexCache, worker_caches: &[IndexCache]| {
        let mut total = entry_counters;
        for wc in worker_caches {
            total.absorb(&wc.counters);
        }
        cache.counters = total;
    };

    // Freeze the input facts into stable segments: every later round then
    // adds exactly one segment per touched relation, so delta marks stay
    // exact and full indexes absorb each round as a single segment append.
    instance.commit_all();

    // Round 1: full evaluation of every rule into a pending buffer —
    // driver-row morsels pulled by workers when parallel.
    let mut stage_sw = tel.stopwatch();
    let mut joins_before = cache.counters;
    let mut round_guard = tracer.span(SpanKind::Round, format!("round {}", base + 1));
    let mut rule_stats: Vec<RuleStat> = vec![RuleStat::default(); compiled.len()];
    let mut worker_lanes: Vec<(u64, u64)> = Vec::new();
    let mut fired: u64 = 0;
    let mut pending;
    if threads > 1 {
        let tasks: Vec<PlanTask> = compiled
            .iter()
            .enumerate()
            .map(|(i, rp)| PlanTask {
                rule: i,
                head: head_atom(rp.rule),
                plan: &rp.full,
            })
            .collect();
        let round_base = tracer.now_nanos();
        let (p, stats) = run_round(
            &tasks,
            instance,
            None,
            adom,
            &mut worker_caches,
            options.morsel_size,
            compiled.len(),
            traced,
        );
        pending = p;
        fired = stats.fired_total;
        if traced {
            for (ri, f) in stats.fired_per_rule.iter().enumerate() {
                rule_stats[ri] = RuleStat {
                    fired: *f,
                    start_nanos: round_base,
                    dur_nanos: 0,
                };
            }
            worker_lanes = stats
                .workers
                .iter()
                .map(|(s, d)| (round_base + s, *d))
                .collect();
        }
        roll_up(cache, &worker_caches);
        // Parallel rounds sample the high-water mark on the merged
        // pending buffer, which is what the sequential per-rule samples
        // below converge to — so both paths report identical peaks.
        if tel.is_enabled() {
            tel.sample_peak(
                instance.fact_count() + pending.fact_count(),
                instance.heap_bytes() + pending.heap_bytes(),
            );
        }
    } else {
        pending = Instance::new();
        for (ri, rp) in compiled.iter().enumerate() {
            let head = head_atom(rp.rule);
            let rule_start = tracer.now_nanos();
            let rule_fired = for_each_head(
                &rp.full,
                &head.args,
                Sources::simple(instance),
                adom,
                cache,
                &mut |tuple| {
                    if !instance.contains_fact(head.pred, &tuple) {
                        pending.insert_fact(head.pred, tuple);
                    }
                },
            );
            fired += rule_fired;
            // Live facts right now = instance + the pending buffer: the
            // true high-water mark, sampled after every rule application
            // rather than only at round boundaries.
            if tel.is_enabled() {
                tel.sample_peak(
                    instance.fact_count() + pending.fact_count(),
                    instance.heap_bytes() + pending.heap_bytes(),
                );
            }
            if traced {
                rule_stats[ri] = RuleStat {
                    fired: rule_fired,
                    start_nanos: rule_start,
                    dur_nanos: tracer.now_nanos().saturating_sub(rule_start),
                };
            }
        }
    }
    // Delta-variant tasks are the same every round; build them once.
    let delta_tasks: Vec<PlanTask> = if threads > 1 {
        compiled
            .iter()
            .enumerate()
            .flat_map(|(i, rp)| {
                rp.deltas.iter().map(move |plan| PlanTask {
                    rule: i,
                    head: head_atom(rp.rule),
                    plan,
                })
            })
            .collect()
    } else {
        Vec::new()
    };
    let mut rounds = 1;
    loop {
        // Capture generation marks, then merge: afterwards,
        // `iter_since(mark)` enumerates exactly this round's delta.
        let mark = DeltaHandle::capture(instance);
        let absorb_start = tracer.now_nanos();
        let mut changed = false;
        for (pred, rel) in pending.iter() {
            for t in rel.iter() {
                changed |= instance.insert_fact(pred, t.clone());
            }
        }
        tel.with(|t| {
            t.stages.push(StageRecord {
                stage: base + rounds,
                wall_nanos: stage_sw.nanos(),
                facts_added: pending.fact_count(),
                facts_removed: 0,
                rules_fired: fired,
                delta: pending
                    .iter()
                    .map(|(pred, rel)| (pred, rel.len()))
                    .collect(),
                bytes: instance.heap_bytes() as u64,
                joins: cache.counters.since(&joins_before),
            });
            t.peak_facts = t.peak_facts.max(instance.fact_count());
            t.bytes_peak = t.bytes_peak.max(instance.heap_bytes() as u64);
        });
        if traced {
            // Deterministic round gauges first (thread-invariant), then
            // the attribution leaves, then close the round span. Logical
            // bytes are counts x fixed widths, so the lane is identical
            // at any thread count.
            tracer.gauge("facts_added", pending.fact_count() as u64);
            tracer.gauge("rules_fired", fired);
            tracer.gauge("bytes", instance.heap_bytes() as u64);
            let mut absorb = Span::leaf(SpanKind::Absorb, "merge");
            absorb.start_nanos = absorb_start;
            absorb.dur_nanos = tracer.now_nanos().saturating_sub(absorb_start);
            absorb.gauges.push(("facts", pending.fact_count() as u64));
            tracer.leaf(absorb);
            emit_round_leaves(
                &tracer,
                &head_preds,
                &rule_stats,
                &mut worker_lanes,
                &cache.counters.since(&joins_before),
            );
        }
        drop(round_guard);
        if !changed {
            if threads > 1 {
                tel.with(|t| {
                    let per_worker: Vec<String> = worker_caches
                        .iter()
                        .map(|wc| wc.counters.probes.to_string())
                        .collect();
                    t.notes.push(format!(
                        "parallel: {threads} workers, probes per worker: [{}]",
                        per_worker.join(", ")
                    ));
                });
            }
            return Ok(rounds);
        }
        if options.max_facts.is_some_and(|m| instance.fact_count() > m) {
            return Err(EvalError::FactLimitExceeded(instance.fact_count()));
        }
        rounds += 1;
        if options.max_stages.is_some_and(|m| rounds > m) {
            return Err(EvalError::StageLimitExceeded(rounds - 1));
        }
        // Promote the merged round to frozen segments and evaluate the
        // delta variants against the marks captured before the merge.
        instance.commit_all();
        stage_sw = tel.stopwatch();
        joins_before = cache.counters;
        round_guard = tracer.span(SpanKind::Round, format!("round {}", base + rounds));
        if traced {
            rule_stats = vec![RuleStat::default(); compiled.len()];
        }
        fired = 0;
        if threads > 1 {
            for wc in &mut worker_caches {
                wc.begin_delta_round();
            }
            let round_base = tracer.now_nanos();
            let (p, stats) = run_round(
                &delta_tasks,
                instance,
                Some(&mark),
                adom,
                &mut worker_caches,
                options.morsel_size,
                compiled.len(),
                traced,
            );
            pending = p;
            fired = stats.fired_total;
            if traced {
                for (ri, f) in stats.fired_per_rule.iter().enumerate() {
                    rule_stats[ri] = RuleStat {
                        fired: *f,
                        start_nanos: round_base,
                        dur_nanos: 0,
                    };
                }
                worker_lanes = stats
                    .workers
                    .iter()
                    .map(|(s, d)| (round_base + s, *d))
                    .collect();
            }
            roll_up(cache, &worker_caches);
            if tel.is_enabled() {
                tel.sample_peak(
                    instance.fact_count() + pending.fact_count(),
                    instance.heap_bytes() + pending.heap_bytes(),
                );
            }
            continue;
        }
        cache.begin_delta_round();
        let mut next_pending = Instance::new();
        for (ri, rp) in compiled.iter().enumerate() {
            let head = head_atom(rp.rule);
            let rule_start = tracer.now_nanos();
            let mut rule_fired: u64 = 0;
            for plan in &rp.deltas {
                rule_fired += for_each_head(
                    plan,
                    &head.args,
                    Sources {
                        full: instance,
                        delta: Some(&mark),
                        neg: None,
                        delta_from: None,
                    },
                    adom,
                    cache,
                    &mut |tuple| {
                        if !instance.contains_fact(head.pred, &tuple)
                            && !next_pending.contains_fact(head.pred, &tuple)
                        {
                            next_pending.insert_fact(head.pred, tuple);
                        }
                    },
                );
            }
            fired += rule_fired;
            if tel.is_enabled() {
                tel.sample_peak(
                    instance.fact_count() + next_pending.fact_count(),
                    instance.heap_bytes() + next_pending.heap_bytes(),
                );
            }
            if traced {
                rule_stats[ri] = RuleStat {
                    fired: rule_fired,
                    start_nanos: rule_start,
                    dur_nanos: tracer.now_nanos().saturating_sub(rule_start),
                };
            }
        }
        pending = next_pending;
    }
}

/// Computes the minimum model of a positive Datalog program on `input`
/// using semi-naive evaluation. Semantically identical to
/// [`crate::naive::minimum_model`].
///
/// # Errors
/// Rejects programs outside pure Datalog and non-range-restricted rules.
pub fn minimum_model(
    program: &Program,
    input: &Instance,
    options: EvalOptions,
) -> Result<FixpointRun, EvalError> {
    require_language(program, Language::Datalog)?;
    check_range_restricted(program, false)?;

    let adom = active_domain(program, input);
    let mut instance = input.clone();
    let schema = program.schema()?;
    for pred in program.idb() {
        instance.ensure(pred, schema.arity(pred).expect("idb has arity"));
    }
    let recursive: FxHashSet<Symbol> = program.idb().into_iter().collect();
    let rules: Vec<&Rule> = program.rules.iter().collect();
    let mut cache = IndexCache::new();
    options.telemetry.begin("seminaive");
    let run_sw = options.telemetry.stopwatch();
    let tracer = options.telemetry.tracer().clone();
    let eval_guard = tracer.span(SpanKind::Eval, "seminaive");
    let stratum_guard = tracer.span(SpanKind::Stratum, "stratum 0");
    let stages = seminaive_fixpoint(
        &rules,
        &mut instance,
        &adom,
        &recursive,
        &mut cache,
        &options,
    )?;
    tracer.gauge("rounds", stages as u64);
    tracer.gauge("rules", rules.len() as u64);
    drop(stratum_guard);
    tracer.gauge("final_facts", instance.fact_count() as u64);
    drop(eval_guard);
    let (segments, recent) = instance.storage_stats();
    options.telemetry.note(format!(
        "storage: {segments} segments, {recent} uncommitted"
    ));
    options.telemetry.note(format!(
        "index cache: {} indexes, {}",
        cache.entry_count(),
        unchained_common::fmt_bytes(cache.heap_bytes() as u64)
    ));
    options
        .telemetry
        .with(|t| t.bytes_final = instance.heap_bytes() as u64);
    options.telemetry.finish(&run_sw, instance.fact_count());
    Ok(FixpointRun { instance, stages })
}

/// Convenience: evaluate a Datalog program and return just the relation
/// for `answer_pred` (empty if it was never derived).
pub fn eval_to_relation(
    program: &Program,
    input: &Instance,
    answer_pred: Symbol,
) -> Result<unchained_common::Relation, EvalError> {
    let run = minimum_model(program, input, EvalOptions::default())?;
    let arity = program.schema()?.arity(answer_pred).unwrap_or(0);
    Ok(run
        .instance
        .relation(answer_pred)
        .cloned()
        .unwrap_or_else(|| unchained_common::Relation::new(arity)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use unchained_common::{Interner, Tuple, Value};
    use unchained_parser::parse_program;

    fn tc_program(interner: &mut Interner) -> Program {
        parse_program(
            "T(x,y) :- G(x,y).\n\
             T(x,y) :- G(x,z), T(z,y).",
            interner,
        )
        .unwrap()
    }

    fn random_ish_graph(interner: &mut Interner, n: i64) -> Instance {
        // Deterministic pseudo-random graph: edge (i, (i*7+3) mod n) and
        // (i, (i*5+1) mod n).
        let g = interner.intern("G");
        let mut inst = Instance::new();
        for i in 0..n {
            inst.insert_fact(g, Tuple::from([Value::Int(i), Value::Int((i * 7 + 3) % n)]));
            inst.insert_fact(g, Tuple::from([Value::Int(i), Value::Int((i * 5 + 1) % n)]));
        }
        inst
    }

    #[test]
    fn agrees_with_naive_on_lines_and_cycles() {
        let mut i = Interner::new();
        let p = tc_program(&mut i);
        let g = i.get("G").unwrap();
        for n in [2i64, 3, 5, 8] {
            // line
            let mut line = Instance::new();
            for k in 0..n - 1 {
                line.insert_fact(g, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
            }
            let a = naive::minimum_model(&p, &line, EvalOptions::default()).unwrap();
            let b = minimum_model(&p, &line, EvalOptions::default()).unwrap();
            assert!(a.instance.same_facts(&b.instance), "line n={n}");
            // cycle
            let mut cyc = Instance::new();
            for k in 0..n {
                cyc.insert_fact(g, Tuple::from([Value::Int(k), Value::Int((k + 1) % n)]));
            }
            let a = naive::minimum_model(&p, &cyc, EvalOptions::default()).unwrap();
            let b = minimum_model(&p, &cyc, EvalOptions::default()).unwrap();
            assert!(a.instance.same_facts(&b.instance), "cycle n={n}");
        }
    }

    #[test]
    fn agrees_with_naive_on_denser_graph() {
        let mut i = Interner::new();
        let p = tc_program(&mut i);
        let input = random_ish_graph(&mut i, 13);
        let a = naive::minimum_model(&p, &input, EvalOptions::default()).unwrap();
        let b = minimum_model(&p, &input, EvalOptions::default()).unwrap();
        assert!(a.instance.same_facts(&b.instance));
    }

    #[test]
    fn nonrecursive_rules_fire_once() {
        let mut i = Interner::new();
        let p = parse_program("A(x) :- B(x). C(x) :- A(x).", &mut i).unwrap();
        let b = i.get("B").unwrap();
        let mut input = Instance::new();
        input.insert_fact(b, Tuple::from([Value::Int(1)]));
        let run = minimum_model(&p, &input, EvalOptions::default()).unwrap();
        let c = i.get("C").unwrap();
        assert!(run.instance.contains_fact(c, &Tuple::from([Value::Int(1)])));
    }

    #[test]
    fn right_linear_and_left_linear_tc_agree() {
        let mut i = Interner::new();
        let left = tc_program(&mut i);
        let right = parse_program(
            "T(x,y) :- G(x,y).\n\
             T(x,y) :- T(x,z), G(z,y).",
            &mut i,
        )
        .unwrap();
        let input = random_ish_graph(&mut i, 11);
        let a = minimum_model(&left, &input, EvalOptions::default()).unwrap();
        let b = minimum_model(&right, &input, EvalOptions::default()).unwrap();
        let t = i.get("T").unwrap();
        assert!(a
            .instance
            .relation(t)
            .unwrap()
            .same_tuples(b.instance.relation(t).unwrap()));
    }

    #[test]
    fn nonlinear_tc_agrees() {
        let mut i = Interner::new();
        let lin = tc_program(&mut i);
        let nonlin = parse_program(
            "T(x,y) :- G(x,y).\n\
             T(x,y) :- T(x,z), T(z,y).",
            &mut i,
        )
        .unwrap();
        let input = random_ish_graph(&mut i, 9);
        let a = minimum_model(&lin, &input, EvalOptions::default()).unwrap();
        let b = minimum_model(&nonlin, &input, EvalOptions::default()).unwrap();
        let t = i.get("T").unwrap();
        assert!(a
            .instance
            .relation(t)
            .unwrap()
            .same_tuples(b.instance.relation(t).unwrap()));
        // The nonlinear version doubles path lengths per round, so it
        // should take fewer rounds.
        assert!(b.stages <= a.stages);
    }

    #[test]
    fn same_generation_program() {
        // A classic non-TC recursion: same-generation.
        let mut i = Interner::new();
        let p = parse_program(
            "SG(x,x) :- Person(x).\n\
             SG(x,y) :- Par(x,xp), SG(xp,yp), Par(y,yp).",
            &mut i,
        )
        .unwrap();
        let person = i.get("Person").unwrap();
        let par = i.get("Par").unwrap();
        let mut input = Instance::new();
        // A small binary tree: 1 root; 2,3 children; 4,5,6,7 grandchildren.
        for k in 1..=7i64 {
            input.insert_fact(person, Tuple::from([Value::Int(k)]));
        }
        for (c, par_) in [(2, 1), (3, 1), (4, 2), (5, 2), (6, 3), (7, 3)] {
            input.insert_fact(par, Tuple::from([Value::Int(c), Value::Int(par_)]));
        }
        let run = minimum_model(&p, &input, EvalOptions::default()).unwrap();
        let sg = i.get("SG").unwrap();
        let rel = run.instance.relation(sg).unwrap();
        // 2 and 3 are same generation; 4..7 pairwise same generation.
        assert!(rel.contains(&Tuple::from([Value::Int(2), Value::Int(3)])));
        assert!(rel.contains(&Tuple::from([Value::Int(4), Value::Int(7)])));
        assert!(!rel.contains(&Tuple::from([Value::Int(2), Value::Int(4)])));
        // 7 reflexive + {2,3}² off-diag 2 + {4..7}² off-diag 12 = 21.
        assert_eq!(rel.len(), 21);
    }

    #[test]
    fn eval_to_relation_missing_answer_is_empty() {
        let mut i = Interner::new();
        let p = tc_program(&mut i);
        let t = i.get("T").unwrap();
        let rel = eval_to_relation(&p, &Instance::new(), t).unwrap();
        assert!(rel.is_empty());
        assert_eq!(rel.arity(), 2);
    }
}

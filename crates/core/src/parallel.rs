//! Parallel round execution for the semi-naive hot path.
//!
//! One fixpoint round — "fire these plans against this frozen instance
//! and collect the derived tuples" — is embarrassingly parallel once the
//! storage is `Sync`: the instance is only read, and each derived tuple
//! goes to a private per-worker buffer. Workers are `std::thread::scope`
//! threads (no runtime, no channels, zero dependencies), one per
//! requested thread, each owning a long-lived [`IndexCache`] shard so
//! full-relation indexes absorb committed segments incrementally across
//! rounds exactly as in the sequential path.
//!
//! Work is split two ways, both deterministic:
//!
//! * **Round 1 (full evaluation)** stripes whole rules across workers
//!   (`rule index mod workers`) — each plan runs exactly once, somewhere.
//! * **Delta rounds** run *every* delta-variant plan on *every* worker,
//!   but worker `w`'s cache builds its delta indexes over only chunk `w`
//!   of each delta enumeration ([`IndexCache::with_delta_part`]). A
//!   delta-variant match consumes exactly one delta tuple, and the
//!   chunks partition the delta exactly, so the workers' match sets
//!   partition the sequential round's match set exactly.
//!
//! Per-worker buffers are merged in worker order (stable), and the merged
//! buffer is a set, so the resulting round delta — and therefore every
//! subsequent round, the final instance, and its display — is
//! byte-identical to the sequential evaluation for any thread count.

use crate::exec::{for_each_head, IndexCache, Sources};
use crate::ir::Plan;
use std::time::Instant;
use unchained_common::{DeltaHandle, Instance, Value};
use unchained_parser::Atom;

/// One unit of round work: a compiled plan and the head it derives into.
pub(crate) struct PlanTask<'p> {
    /// Index of the source rule (several delta-variant tasks can share
    /// one rule); attributes fired counts to rule spans.
    pub rule: usize,
    /// Head atom instantiated on each match.
    pub head: Atom,
    /// The compiled body (full plan in round 1, a delta variant after).
    pub plan: &'p Plan,
}

/// Per-round attribution data returned by [`run_round`] alongside the
/// merged pending instance.
pub(crate) struct RoundStats {
    /// Total rule-body matches fired across all tasks and workers.
    pub fired_total: u64,
    /// Matches fired per source rule (summed over that rule's tasks and
    /// all workers). Deterministic for every worker count: round-1
    /// striping runs each task exactly once, and the chunked delta
    /// indexes partition each delta enumeration exactly.
    pub fired_per_rule: Vec<u64>,
    /// Per-worker `(start_offset_nanos, dur_nanos)` relative to round
    /// entry — the worker-lane timeline. Empty when `timed` was false.
    pub workers: Vec<(u64, u64)>,
}

/// Runs one round's `tasks` across `worker_caches.len()` scoped threads
/// and merges the per-worker derived-tuple buffers in worker order.
/// `stripe_tasks` selects round-1 mode (each task runs on exactly one
/// worker); otherwise every worker runs every task and the workers'
/// chunked delta indexes partition the matches. `rules` bounds the rule
/// indexes in `tasks`; `timed` additionally records per-worker wall
/// offsets (for worker-lane spans). Returns the merged pending instance
/// (deduplicated against `instance` by the workers) and the round's
/// attribution stats.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_round(
    tasks: &[PlanTask<'_>],
    instance: &Instance,
    delta: Option<&DeltaHandle>,
    adom: &[Value],
    worker_caches: &mut [IndexCache],
    stripe_tasks: bool,
    rules: usize,
    timed: bool,
) -> (Instance, RoundStats) {
    let workers = worker_caches.len();
    let round_start = Instant::now();
    type WorkerResult = (Instance, Vec<u64>, (u64, u64));
    let results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = worker_caches
            .iter_mut()
            .enumerate()
            .map(|(w, cache)| {
                scope.spawn(move || {
                    let started = if timed {
                        u64::try_from(round_start.elapsed().as_nanos()).unwrap_or(u64::MAX)
                    } else {
                        0
                    };
                    let mut fired_per_rule = vec![0u64; rules];
                    let mut pending = Instance::new();
                    for (i, task) in tasks.iter().enumerate() {
                        if stripe_tasks && i % workers != w {
                            continue;
                        }
                        let fired = for_each_head(
                            task.plan,
                            &task.head.args,
                            Sources {
                                full: instance,
                                delta,
                                neg: None,
                                delta_from: None,
                            },
                            adom,
                            cache,
                            &mut |tuple| {
                                if !instance.contains_fact(task.head.pred, &tuple)
                                    && !pending.contains_fact(task.head.pred, &tuple)
                                {
                                    pending.insert_fact(task.head.pred, tuple);
                                }
                            },
                        );
                        fired_per_rule[task.rule] += fired;
                    }
                    let timing = if timed {
                        let ended =
                            u64::try_from(round_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        (started, ended.saturating_sub(started))
                    } else {
                        (0, 0)
                    };
                    (pending, fired_per_rule, timing)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel round worker panicked"))
            .collect()
    });

    let mut stats = RoundStats {
        fired_total: 0,
        fired_per_rule: vec![0u64; rules],
        workers: Vec::new(),
    };
    let mut merged = Instance::new();
    // Reuse the first worker's buffer as the merge target: with one
    // worker this is exactly the sequential pending set, and with more
    // the remaining (typically small) buffers fold into it in order.
    for (w, (pending, fired_per_rule, timing)) in results.into_iter().enumerate() {
        for (rule, f) in fired_per_rule.into_iter().enumerate() {
            stats.fired_per_rule[rule] += f;
            stats.fired_total += f;
        }
        if timed {
            stats.workers.push(timing);
        }
        if w == 0 {
            merged = pending;
        } else {
            for (pred, rel) in pending.iter() {
                for t in rel.iter() {
                    merged.insert_fact(pred, t.clone());
                }
            }
        }
    }
    (merged, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{plan_rule, Catalog, PlanMode, Planner};
    use crate::subst::active_domain;
    use unchained_common::{FxHashSet, Interner, Symbol, Tuple};
    use unchained_parser::{parse_program, HeadLiteral};

    fn tc_setup(n: i64) -> (Interner, unchained_parser::Program, Instance) {
        let mut i = Interner::new();
        let p = parse_program("T(x,y) :- G(x,y).\nT(x,y) :- G(x,z), T(z,y).", &mut i).unwrap();
        let g = i.get("G").unwrap();
        let mut inst = Instance::new();
        for k in 0..n {
            inst.insert_fact(g, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
        }
        inst.commit_all();
        (i, p, inst)
    }

    fn head(rule: &unchained_parser::Rule) -> Atom {
        match &rule.head[0] {
            HeadLiteral::Pos(a) => a.clone(),
            _ => unreachable!(),
        }
    }

    /// Round-1 striping: every rule fires exactly once across workers,
    /// and the merged buffer equals a single-worker run.
    #[test]
    fn striped_full_round_matches_single_worker() {
        let (_, p, inst) = tc_setup(6);
        let adom = active_domain(&p, &inst);
        let plans: Vec<Plan> = p.rules.iter().map(plan_rule).collect();
        let tasks: Vec<PlanTask> = p
            .rules
            .iter()
            .zip(&plans)
            .enumerate()
            .map(|(i, (r, plan))| PlanTask {
                rule: i,
                head: head(r),
                plan,
            })
            .collect();
        let rules = p.rules.len();
        let mut one = vec![IndexCache::new()];
        let (seq, seq_stats) = run_round(&tasks, &inst, None, &adom, &mut one, true, rules, false);
        let mut four: Vec<IndexCache> = (0..4).map(|_| IndexCache::new()).collect();
        let (par, par_stats) = run_round(&tasks, &inst, None, &adom, &mut four, true, rules, true);
        assert!(seq.same_facts(&par));
        assert_eq!(seq_stats.fired_total, par_stats.fired_total);
        // Per-rule attribution is worker-count invariant; worker
        // timings appear only on the timed run.
        assert_eq!(seq_stats.fired_per_rule, par_stats.fired_per_rule);
        assert!(seq_stats.workers.is_empty());
        assert_eq!(par_stats.workers.len(), 4);
    }

    /// Delta mode: chunked per-worker delta indexes partition the round's
    /// matches, so the merged result and fired count equal sequential.
    #[test]
    fn chunked_delta_round_matches_single_worker() {
        let (mut i, p, mut inst) = tc_setup(8);
        let t = i.intern("T");
        let recursive: FxHashSet<Symbol> = [t].into_iter().collect();
        // Seed T with round 1's output and capture the delta mark by hand.
        let mark = DeltaHandle::capture(&inst);
        let g = i.get("G").unwrap();
        let edges: Vec<Tuple> = inst.relation(g).unwrap().iter().cloned().collect();
        for e in edges {
            inst.insert_fact(t, e);
        }
        inst.commit_all();
        let mut planner = Planner::new(Catalog::empty(), PlanMode::Cost);
        let plans: Vec<Vec<Plan>> = p
            .rules
            .iter()
            .map(|r| planner.seminaive_variants(r, &|s| recursive.contains(&s)))
            .collect();
        let tasks: Vec<PlanTask> = p
            .rules
            .iter()
            .zip(&plans)
            .enumerate()
            .flat_map(|(i, (r, variants))| {
                variants.iter().map(move |plan| PlanTask {
                    rule: i,
                    head: head(r),
                    plan,
                })
            })
            .collect();
        assert!(!tasks.is_empty());
        let rules = p.rules.len();
        let mut one = vec![IndexCache::new()];
        let (seq, seq_stats) = run_round(
            &tasks,
            &inst,
            Some(&mark),
            &adom_of(&inst),
            &mut one,
            false,
            rules,
            false,
        );
        for workers in [2usize, 3, 4] {
            let mut caches: Vec<IndexCache> = (0..workers)
                .map(|w| IndexCache::with_delta_part(w, workers))
                .collect();
            let (par, par_stats) = run_round(
                &tasks,
                &inst,
                Some(&mark),
                &adom_of(&inst),
                &mut caches,
                false,
                rules,
                false,
            );
            assert!(seq.same_facts(&par), "workers={workers}");
            assert_eq!(
                seq_stats.fired_total, par_stats.fired_total,
                "workers={workers}"
            );
            assert_eq!(
                seq_stats.fired_per_rule, par_stats.fired_per_rule,
                "workers={workers}"
            );
        }
    }

    fn adom_of(inst: &Instance) -> Vec<Value> {
        inst.adom_sorted()
    }
}

//! Morsel-driven parallel round execution for the semi-naive hot path.
//!
//! One fixpoint round — "fire these plans against this frozen instance
//! and collect the derived tuples" — is embarrassingly parallel once the
//! storage is `Sync`: the instance is only read, and each derived tuple
//! goes to a private per-worker buffer. Workers are `std::thread::scope`
//! threads (no runtime, no channels, zero dependencies), one per
//! requested thread, each owning a long-lived [`IndexCache`] so
//! full-relation indexes absorb committed segments incrementally across
//! rounds exactly as in the sequential path.
//!
//! Work is split into **morsels**: fixed-size contiguous row ranges of
//! each plan's driver scan (its first step — the stored enumeration of a
//! full scan, or the exact delta enumeration of a semi-naive delta
//! variant). The morsel list is built deterministically, task-major,
//! before any worker starts; workers then *pull* morsels from a shared
//! atomic cursor until the queue is drained, so a worker stuck on a
//! skewed morsel no longer idles the rest of the round (the failure mode
//! of static striping). Plans whose first step is not a scan get a
//! single whole-plan morsel.
//!
//! Determinism does not depend on the schedule: the morsel *partition*
//! is fixed up front, every match of a plan consumes exactly one driver
//! row, and the morsels partition each driver enumeration exactly — so
//! the union of per-morsel match sets and the per-rule fired sums equal
//! the sequential round's, no matter which worker ran which morsel.
//! Per-worker buffers are merged in worker order into a set, so the
//! resulting round delta — and therefore every subsequent round, the
//! final instance, and its display — is byte-identical to the
//! sequential evaluation for any thread count and any morsel size.

use crate::exec::{driver_len, for_each_head_morsel, IndexCache, Morsel, Sources};
use crate::ir::Plan;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use unchained_common::{DeltaHandle, Instance, Value};
use unchained_parser::Atom;

/// One unit of round work: a compiled plan and the head it derives into.
pub(crate) struct PlanTask<'p> {
    /// Index of the source rule (several delta-variant tasks can share
    /// one rule); attributes fired counts to rule spans.
    pub rule: usize,
    /// Head atom instantiated on each match.
    pub head: Atom,
    /// The compiled body (full plan in round 1, a delta variant after).
    pub plan: &'p Plan,
}

/// Per-round attribution data returned by [`run_round`] alongside the
/// merged pending instance.
pub(crate) struct RoundStats {
    /// Total rule-body matches fired across all tasks and workers.
    pub fired_total: u64,
    /// Matches fired per source rule (summed over that rule's tasks and
    /// all workers). Deterministic for every worker count and schedule:
    /// the morsel partition of each driver enumeration is fixed before
    /// the workers start, and fired counts sum over the partition.
    pub fired_per_rule: Vec<u64>,
    /// Per-worker `(start_offset_nanos, dur_nanos)` relative to round
    /// entry — the worker-lane timeline. One entry per worker (also for
    /// workers that pulled no morsels). Empty when `timed` was false.
    pub workers: Vec<(u64, u64)>,
}

/// The deterministic work list for one round: each entry names a task
/// and a morsel of its driver scan.
fn build_morsels(
    tasks: &[PlanTask<'_>],
    sources: Sources<'_>,
    morsel_size: usize,
) -> Vec<(usize, Morsel)> {
    let step = morsel_size.max(1);
    let mut morsels = Vec::new();
    for (t, task) in tasks.iter().enumerate() {
        match driver_len(task.plan, sources) {
            // No driver scan to partition: one whole-plan morsel.
            None => morsels.push((t, Morsel::Whole)),
            // Empty driver: the plan cannot match, skip it entirely.
            Some(0) => {}
            Some(n) => {
                let mut lo = 0;
                while lo < n {
                    let hi = (lo + step).min(n);
                    morsels.push((t, Morsel::Rows { lo, hi }));
                    lo = hi;
                }
            }
        }
    }
    morsels
}

/// Runs one round's `tasks` across `worker_caches.len()` scoped threads
/// and merges the per-worker derived-tuple buffers in worker order.
/// The round's work is cut into driver-row morsels of at most
/// `morsel_size` rows (see the module docs) which workers pull from a
/// shared queue. `rules` bounds the rule indexes in `tasks`; `timed`
/// additionally records per-worker wall offsets (for worker-lane
/// spans). Returns the merged pending instance (deduplicated against
/// `instance` by the workers) and the round's attribution stats.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_round(
    tasks: &[PlanTask<'_>],
    instance: &Instance,
    delta: Option<&DeltaHandle>,
    adom: &[Value],
    worker_caches: &mut [IndexCache],
    morsel_size: usize,
    rules: usize,
    timed: bool,
) -> (Instance, RoundStats) {
    let round_start = Instant::now();
    let sources = Sources {
        full: instance,
        delta,
        neg: None,
        delta_from: None,
    };
    let morsels = build_morsels(tasks, sources, morsel_size);
    let cursor = AtomicUsize::new(0);
    type WorkerResult = (Instance, Vec<u64>, (u64, u64));
    let results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = worker_caches
            .iter_mut()
            .map(|cache| {
                let cursor = &cursor;
                let morsels = &morsels;
                scope.spawn(move || {
                    let started = if timed {
                        u64::try_from(round_start.elapsed().as_nanos()).unwrap_or(u64::MAX)
                    } else {
                        0
                    };
                    let mut fired_per_rule = vec![0u64; rules];
                    let mut pending = Instance::new();
                    loop {
                        let m = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&(t, morsel)) = morsels.get(m) else {
                            break;
                        };
                        let task = &tasks[t];
                        let fired = for_each_head_morsel(
                            task.plan,
                            &task.head.args,
                            sources,
                            adom,
                            cache,
                            morsel,
                            &mut |tuple| {
                                if !instance.contains_fact(task.head.pred, &tuple)
                                    && !pending.contains_fact(task.head.pred, &tuple)
                                {
                                    pending.insert_fact(task.head.pred, tuple);
                                }
                            },
                        );
                        fired_per_rule[task.rule] += fired;
                    }
                    let timing = if timed {
                        let ended =
                            u64::try_from(round_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        (started, ended.saturating_sub(started))
                    } else {
                        (0, 0)
                    };
                    (pending, fired_per_rule, timing)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel round worker panicked"))
            .collect()
    });

    let mut stats = RoundStats {
        fired_total: 0,
        fired_per_rule: vec![0u64; rules],
        workers: Vec::new(),
    };
    let mut merged = Instance::new();
    // Reuse the first worker's buffer as the merge target: with one
    // worker this is exactly the sequential pending set, and with more
    // the remaining (typically small) buffers fold into it in order.
    for (w, (pending, fired_per_rule, timing)) in results.into_iter().enumerate() {
        for (rule, f) in fired_per_rule.into_iter().enumerate() {
            stats.fired_per_rule[rule] += f;
            stats.fired_total += f;
        }
        if timed {
            stats.workers.push(timing);
        }
        if w == 0 {
            merged = pending;
        } else {
            for (pred, rel) in pending.iter() {
                for t in rel.iter() {
                    merged.insert_fact(pred, t.clone());
                }
            }
        }
    }
    (merged, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{plan_rule, Catalog, PlanMode, Planner};
    use crate::subst::active_domain;
    use unchained_common::{FxHashSet, Interner, Symbol, Tuple};
    use unchained_parser::{parse_program, HeadLiteral};

    fn tc_setup(n: i64) -> (Interner, unchained_parser::Program, Instance) {
        let mut i = Interner::new();
        let p = parse_program("T(x,y) :- G(x,y).\nT(x,y) :- G(x,z), T(z,y).", &mut i).unwrap();
        let g = i.get("G").unwrap();
        let mut inst = Instance::new();
        for k in 0..n {
            inst.insert_fact(g, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
        }
        inst.commit_all();
        (i, p, inst)
    }

    fn head(rule: &unchained_parser::Rule) -> Atom {
        match &rule.head[0] {
            HeadLiteral::Pos(a) => a.clone(),
            _ => unreachable!(),
        }
    }

    fn full_tasks<'p>(p: &unchained_parser::Program, plans: &'p [Plan]) -> Vec<PlanTask<'p>> {
        p.rules
            .iter()
            .zip(plans)
            .enumerate()
            .map(|(i, (r, plan))| PlanTask {
                rule: i,
                head: head(r),
                plan,
            })
            .collect()
    }

    /// Full round 1: the merged buffer and attribution equal a
    /// single-worker run, across worker counts and morsel sizes —
    /// including morsel size 1 (one row per morsel) and more workers
    /// than morsels.
    #[test]
    fn morsel_full_round_matches_single_worker() {
        let (_, p, inst) = tc_setup(6);
        let adom = active_domain(&p, &inst);
        let plans: Vec<Plan> = p.rules.iter().map(plan_rule).collect();
        let tasks = full_tasks(&p, &plans);
        let rules = p.rules.len();
        let mut one = vec![IndexCache::new()];
        let (seq, seq_stats) = run_round(&tasks, &inst, None, &adom, &mut one, 1024, rules, false);
        for (workers, morsel_size) in [(4, 1024), (4, 1), (3, 2), (16, 4)] {
            let mut caches: Vec<IndexCache> = (0..workers).map(|_| IndexCache::new()).collect();
            let (par, par_stats) = run_round(
                &tasks,
                &inst,
                None,
                &adom,
                &mut caches,
                morsel_size,
                rules,
                true,
            );
            assert!(seq.same_facts(&par), "workers={workers} size={morsel_size}");
            assert_eq!(seq_stats.fired_total, par_stats.fired_total);
            // Per-rule attribution is schedule-invariant; worker
            // timings appear only on the timed run, one per worker
            // even when a worker pulled no morsels.
            assert_eq!(seq_stats.fired_per_rule, par_stats.fired_per_rule);
            assert_eq!(par_stats.workers.len(), workers);
        }
        assert!(seq_stats.workers.is_empty());
    }

    /// Delta mode: the morsels partition each delta enumeration exactly,
    /// so the merged result and fired counts equal sequential.
    #[test]
    fn morsel_delta_round_matches_single_worker() {
        let (mut i, p, mut inst) = tc_setup(8);
        let t = i.intern("T");
        let recursive: FxHashSet<Symbol> = [t].into_iter().collect();
        // Seed T with round 1's output and capture the delta mark by hand.
        let mark = DeltaHandle::capture(&inst);
        let g = i.get("G").unwrap();
        let edges: Vec<Tuple> = inst.relation(g).unwrap().iter().cloned().collect();
        for e in edges {
            inst.insert_fact(t, e);
        }
        inst.commit_all();
        let mut planner = Planner::new(Catalog::empty(), PlanMode::Cost);
        let plans: Vec<Vec<Plan>> = p
            .rules
            .iter()
            .map(|r| planner.seminaive_variants(r, &|s| recursive.contains(&s)))
            .collect();
        let tasks: Vec<PlanTask> = p
            .rules
            .iter()
            .zip(&plans)
            .enumerate()
            .flat_map(|(i, (r, variants))| {
                variants.iter().map(move |plan| PlanTask {
                    rule: i,
                    head: head(r),
                    plan,
                })
            })
            .collect();
        assert!(!tasks.is_empty());
        let rules = p.rules.len();
        let mut one = vec![IndexCache::new()];
        let (seq, seq_stats) = run_round(
            &tasks,
            &inst,
            Some(&mark),
            &adom_of(&inst),
            &mut one,
            1024,
            rules,
            false,
        );
        for (workers, morsel_size) in [(2, 3), (3, 1), (4, 2), (4, 1024)] {
            let mut caches: Vec<IndexCache> = (0..workers).map(|_| IndexCache::new()).collect();
            let (par, par_stats) = run_round(
                &tasks,
                &inst,
                Some(&mark),
                &adom_of(&inst),
                &mut caches,
                morsel_size,
                rules,
                false,
            );
            assert!(seq.same_facts(&par), "workers={workers} size={morsel_size}");
            assert_eq!(
                seq_stats.fired_total, par_stats.fired_total,
                "workers={workers} size={morsel_size}"
            );
            assert_eq!(
                seq_stats.fired_per_rule, par_stats.fired_per_rule,
                "workers={workers} size={morsel_size}"
            );
        }
    }

    /// Rounds with no work at all — no tasks, or only empty drivers —
    /// produce an empty merged buffer and zeroed attribution, and every
    /// worker still reports a timing lane.
    #[test]
    fn empty_rounds_drain_cleanly() {
        let (_, p, inst) = tc_setup(0); // G exists in the program, no facts
        let adom = active_domain(&p, &inst);
        let plans: Vec<Plan> = p.rules.iter().map(plan_rule).collect();
        let tasks = full_tasks(&p, &plans);
        let rules = p.rules.len();
        let mut caches: Vec<IndexCache> = (0..4).map(|_| IndexCache::new()).collect();
        let (merged, stats) = run_round(&tasks, &inst, None, &adom, &mut caches, 8, rules, true);
        assert_eq!(merged.fact_count(), 0);
        assert_eq!(stats.fired_total, 0);
        assert_eq!(stats.workers.len(), 4);

        // Entirely taskless round.
        let (merged, stats) = run_round(&[], &inst, None, &adom, &mut caches, 8, 0, true);
        assert_eq!(merged.fact_count(), 0);
        assert_eq!(stats.fired_total, 0);
        assert_eq!(stats.workers.len(), 4);
    }

    /// The morsel list is deterministic and covers each driver exactly.
    #[test]
    fn morsel_list_partitions_drivers_exactly() {
        let (_, p, inst) = tc_setup(7); // G has 7 rows; T absent (empty driver)
        let plans: Vec<Plan> = p.rules.iter().map(plan_rule).collect();
        let tasks = full_tasks(&p, &plans);
        let sources = Sources {
            full: &inst,
            delta: None,
            neg: None,
            delta_from: None,
        };
        let morsels = build_morsels(&tasks, sources, 3);
        // Each task's driver is G (7 rows) or T (absent): the G-driven
        // task splits 7 rows into ceil(7/3) = 3 ranges; absent drivers
        // contribute nothing.
        for (t, _) in &morsels {
            let mut covered = Vec::new();
            for (t2, m) in &morsels {
                if t2 == t {
                    match m {
                        Morsel::Rows { lo, hi } => covered.push((*lo, *hi)),
                        Morsel::Whole => unreachable!("scan-led plans get row morsels"),
                    }
                }
            }
            let n = driver_len(tasks[*t].plan, sources).unwrap();
            let mut expect = 0;
            for (lo, hi) in covered {
                assert_eq!(lo, expect, "gap in morsel coverage");
                assert!(hi > lo && hi - lo <= 3);
                expect = hi;
            }
            assert_eq!(expect, n, "driver not fully covered");
        }
        // Morsel size is clamped to at least one row.
        assert_eq!(
            build_morsels(&tasks, sources, 0).len(),
            build_morsels(&tasks, sources, 1).len()
        );
    }

    fn adom_of(inst: &Instance) -> Vec<Value> {
        inst.adom_sorted()
    }
}

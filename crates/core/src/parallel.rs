//! Parallel round execution for the semi-naive hot path.
//!
//! One fixpoint round — "fire these plans against this frozen instance
//! and collect the derived tuples" — is embarrassingly parallel once the
//! storage is `Sync`: the instance is only read, and each derived tuple
//! goes to a private per-worker buffer. Workers are `std::thread::scope`
//! threads (no runtime, no channels, zero dependencies), one per
//! requested thread, each owning a long-lived [`IndexCache`] shard so
//! full-relation indexes absorb committed segments incrementally across
//! rounds exactly as in the sequential path.
//!
//! Work is split two ways, both deterministic:
//!
//! * **Round 1 (full evaluation)** stripes whole rules across workers
//!   (`rule index mod workers`) — each plan runs exactly once, somewhere.
//! * **Delta rounds** run *every* delta-variant plan on *every* worker,
//!   but worker `w`'s cache builds its delta indexes over only chunk `w`
//!   of each delta enumeration ([`IndexCache::with_delta_part`]). A
//!   delta-variant match consumes exactly one delta tuple, and the
//!   chunks partition the delta exactly, so the workers' match sets
//!   partition the sequential round's match set exactly.
//!
//! Per-worker buffers are merged in worker order (stable), and the merged
//! buffer is a set, so the resulting round delta — and therefore every
//! subsequent round, the final instance, and its display — is
//! byte-identical to the sequential evaluation for any thread count.

use crate::eval::{for_each_match, instantiate, IndexCache, Plan, Sources};
use std::ops::ControlFlow;
use unchained_common::{DeltaHandle, Instance, Value};
use unchained_parser::Atom;

/// One unit of round work: a compiled plan and the head it derives into.
pub(crate) struct PlanTask<'p> {
    /// Head atom instantiated on each match.
    pub head: Atom,
    /// The compiled body (full plan in round 1, a delta variant after).
    pub plan: &'p Plan,
}

/// Runs one round's `tasks` across `worker_caches.len()` scoped threads
/// and merges the per-worker derived-tuple buffers in worker order.
/// `stripe_tasks` selects round-1 mode (each task runs on exactly one
/// worker); otherwise every worker runs every task and the workers'
/// chunked delta indexes partition the matches. Returns the merged
/// pending instance (deduplicated against `instance` by the workers) and
/// the total number of rule-body matches fired.
pub(crate) fn run_round(
    tasks: &[PlanTask<'_>],
    instance: &Instance,
    delta: Option<&DeltaHandle>,
    adom: &[Value],
    worker_caches: &mut [IndexCache],
    stripe_tasks: bool,
) -> (Instance, u64) {
    let workers = worker_caches.len();
    let results: Vec<(Instance, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = worker_caches
            .iter_mut()
            .enumerate()
            .map(|(w, cache)| {
                scope.spawn(move || {
                    let mut fired: u64 = 0;
                    let mut pending = Instance::new();
                    for (i, task) in tasks.iter().enumerate() {
                        if stripe_tasks && i % workers != w {
                            continue;
                        }
                        let _ = for_each_match(
                            task.plan,
                            Sources {
                                full: instance,
                                delta,
                                neg: None,
                            },
                            adom,
                            cache,
                            &mut |env| {
                                fired += 1;
                                let tuple = instantiate(&task.head.args, env);
                                if !instance.contains_fact(task.head.pred, &tuple)
                                    && !pending.contains_fact(task.head.pred, &tuple)
                                {
                                    pending.insert_fact(task.head.pred, tuple);
                                }
                                ControlFlow::Continue(())
                            },
                        );
                    }
                    (pending, fired)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel round worker panicked"))
            .collect()
    });

    let mut fired: u64 = 0;
    let mut merged_iter = results.into_iter();
    // Reuse the first worker's buffer as the merge target: with one
    // worker this is exactly the sequential pending set, and with more
    // the remaining (typically small) buffers fold into it in order.
    let (mut merged, f) = merged_iter.next().unwrap_or_default();
    fired += f;
    for (pending, f) in merged_iter {
        fired += f;
        for (pred, rel) in pending.iter() {
            for t in rel.iter() {
                merged.insert_fact(pred, t.clone());
            }
        }
    }
    (merged, fired)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{active_domain, plan_rule, seminaive_variants};
    use unchained_common::{FxHashSet, Interner, Symbol, Tuple};
    use unchained_parser::{parse_program, HeadLiteral};

    fn tc_setup(n: i64) -> (Interner, unchained_parser::Program, Instance) {
        let mut i = Interner::new();
        let p = parse_program("T(x,y) :- G(x,y).\nT(x,y) :- G(x,z), T(z,y).", &mut i).unwrap();
        let g = i.get("G").unwrap();
        let mut inst = Instance::new();
        for k in 0..n {
            inst.insert_fact(g, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
        }
        inst.commit_all();
        (i, p, inst)
    }

    fn head(rule: &unchained_parser::Rule) -> Atom {
        match &rule.head[0] {
            HeadLiteral::Pos(a) => a.clone(),
            _ => unreachable!(),
        }
    }

    /// Round-1 striping: every rule fires exactly once across workers,
    /// and the merged buffer equals a single-worker run.
    #[test]
    fn striped_full_round_matches_single_worker() {
        let (_, p, inst) = tc_setup(6);
        let adom = active_domain(&p, &inst);
        let plans: Vec<Plan> = p.rules.iter().map(plan_rule).collect();
        let tasks: Vec<PlanTask> = p
            .rules
            .iter()
            .zip(&plans)
            .map(|(r, plan)| PlanTask {
                head: head(r),
                plan,
            })
            .collect();
        let mut one = vec![IndexCache::new()];
        let (seq, seq_fired) = run_round(&tasks, &inst, None, &adom, &mut one, true);
        let mut four: Vec<IndexCache> = (0..4).map(|_| IndexCache::new()).collect();
        let (par, par_fired) = run_round(&tasks, &inst, None, &adom, &mut four, true);
        assert!(seq.same_facts(&par));
        assert_eq!(seq_fired, par_fired);
    }

    /// Delta mode: chunked per-worker delta indexes partition the round's
    /// matches, so the merged result and fired count equal sequential.
    #[test]
    fn chunked_delta_round_matches_single_worker() {
        let (mut i, p, mut inst) = tc_setup(8);
        let t = i.intern("T");
        let recursive: FxHashSet<Symbol> = [t].into_iter().collect();
        // Seed T with round 1's output and capture the delta mark by hand.
        let mark = DeltaHandle::capture(&inst);
        let g = i.get("G").unwrap();
        let edges: Vec<Tuple> = inst.relation(g).unwrap().iter().cloned().collect();
        for e in edges {
            inst.insert_fact(t, e);
        }
        inst.commit_all();
        let plans: Vec<Vec<Plan>> = p
            .rules
            .iter()
            .map(|r| seminaive_variants(&plan_rule(r), &|s| recursive.contains(&s)))
            .collect();
        let tasks: Vec<PlanTask> = p
            .rules
            .iter()
            .zip(&plans)
            .flat_map(|(r, variants)| {
                variants.iter().map(move |plan| PlanTask {
                    head: head(r),
                    plan,
                })
            })
            .collect();
        assert!(!tasks.is_empty());
        let mut one = vec![IndexCache::new()];
        let (seq, seq_fired) =
            run_round(&tasks, &inst, Some(&mark), &adom_of(&inst), &mut one, false);
        for workers in [2usize, 3, 4] {
            let mut caches: Vec<IndexCache> = (0..workers)
                .map(|w| IndexCache::with_delta_part(w, workers))
                .collect();
            let (par, par_fired) = run_round(
                &tasks,
                &inst,
                Some(&mark),
                &adom_of(&inst),
                &mut caches,
                false,
            );
            assert!(seq.same_facts(&par), "workers={workers}");
            assert_eq!(seq_fired, par_fired, "workers={workers}");
        }
    }

    fn adom_of(inst: &Instance) -> Vec<Value> {
        inst.adom_sorted()
    }
}

//! Datalog¬¬ — noninflationary semantics with retraction (Section 4.2).
//!
//! Negative head literals delete facts, and input relations may appear
//! in heads, so programs can express updates. The immediate consequence
//! operator fires all rules in parallel; positive head instantiations
//! are inserted and negative ones deleted, with a **conflict policy**
//! deciding what happens when `A` and `¬A` are inferred in the same
//! firing. The paper's default gives priority to insertion and notes
//! three alternatives, all yielding equivalent languages; we implement
//! all four.
//!
//! Termination is *not* guaranteed: the flip-flop program of Section 4.2
//! oscillates forever. The engine detects such divergence by
//! remembering visited states (exactly, or by fingerprint).
//!
//! By the results of \[6\], Datalog¬¬ expresses exactly the **while
//! queries** (Theorem 4.5 relates it to inflationary Datalog¬ via
//! `ptime` vs `pspace`).

use crate::error::EvalError;
use crate::exec::{for_each_match, IndexCache, Sources};
use crate::ir::Plan;
use crate::options::{DivergenceDetection, EvalOptions, FixpointRun};
use crate::planner::plan_rule;
use crate::require_language;
use crate::subst::{active_domain, instantiate};
use std::collections::hash_map::Entry;
use std::ops::ControlFlow;
use unchained_common::{
    DivergenceSnapshot, FxHashMap, FxHashSet, HeapSize, Instance, SpanKind, StageRecord, Symbol,
    Tuple,
};
use unchained_parser::{check_range_restricted, HeadLiteral, Language, Program};

/// Remembered states for divergence detection.
#[derive(Default)]
struct Detector {
    seen_exact: FxHashMap<u64, Vec<(Instance, usize)>>,
    seen_fp: FxHashMap<u64, usize>,
}

impl Detector {
    /// Records `inst` as visited at `stage`; returns the stage of a
    /// previous visit if this state was seen before.
    fn record(
        &mut self,
        inst: &Instance,
        stage: usize,
        mode: DivergenceDetection,
    ) -> Option<usize> {
        let fp = inst.fingerprint();
        match mode {
            DivergenceDetection::Off => None,
            DivergenceDetection::Fingerprint => match self.seen_fp.entry(fp) {
                Entry::Occupied(prev) => Some(*prev.get()),
                Entry::Vacant(slot) => {
                    slot.insert(stage);
                    None
                }
            },
            DivergenceDetection::Exact => {
                let bucket = self.seen_exact.entry(fp).or_default();
                if let Some((_, prev)) = bucket.iter().find(|(i, _)| i.same_facts(inst)) {
                    Some(*prev)
                } else {
                    bucket.push((inst.clone(), stage));
                    None
                }
            }
        }
    }

    /// Distinct states currently remembered.
    fn states_seen(&self, mode: DivergenceDetection) -> usize {
        match mode {
            DivergenceDetection::Off => 0,
            DivergenceDetection::Fingerprint => self.seen_fp.len(),
            DivergenceDetection::Exact => self.seen_exact.values().map(Vec::len).sum(),
        }
    }
}

/// Per-predicate symmetric difference `next ∖ prev` / `prev ∖ next`,
/// for stage records. Only called when telemetry is enabled.
fn diff_instances(prev: &Instance, next: &Instance) -> (usize, usize, Vec<(Symbol, usize)>) {
    let mut added = 0;
    let mut removed = 0;
    let mut delta = Vec::new();
    for (pred, rel) in next.iter() {
        let before = prev.relation(pred);
        let new_here = rel
            .iter()
            .filter(|t| !before.is_some_and(|b| b.contains(t)))
            .count();
        if new_here > 0 {
            delta.push((pred, new_here));
            added += new_here;
        }
    }
    for (pred, rel) in prev.iter() {
        let after = next.relation(pred);
        removed += rel
            .iter()
            .filter(|t| !after.is_some_and(|a| a.contains(t)))
            .count();
    }
    (added, removed, delta)
}

/// What to do when `A` and `¬A` are inferred in the same firing
/// (Section 4.2 discusses all four; the languages are equivalent under
/// any of the first three).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ConflictPolicy {
    /// Keep `A`: insertion wins (the paper's chosen semantics).
    #[default]
    PreferPositive,
    /// Remove `A`: deletion wins.
    PreferNegative,
    /// No-op: `A`'s membership is left as it was in the previous state.
    NoOp,
    /// Treat the conflict as a contradiction making the result undefined
    /// (option (iii) in the paper): evaluation fails.
    Undefined,
}

/// Evaluates a Datalog¬¬ program to its (non-guaranteed) fixpoint.
///
/// # Errors
/// * [`EvalError::Diverged`] if the state sequence enters a cycle (the
///   computation would never terminate);
/// * [`EvalError::Contradiction`] under [`ConflictPolicy::Undefined`]
///   when `A` and `¬A` are inferred simultaneously;
/// * the usual language / range-restriction / budget errors.
pub fn eval(
    program: &Program,
    input: &Instance,
    policy: ConflictPolicy,
    options: EvalOptions,
) -> Result<FixpointRun, EvalError> {
    require_language(program, Language::DatalogNegNeg)?;
    check_range_restricted(program, false)?;

    let adom = active_domain(program, input);
    let plans: Vec<Plan> = program.rules.iter().map(plan_rule).collect();
    let mut cache = IndexCache::new();
    let mut instance = input.clone();
    let schema = program.schema()?;
    for pred in program.idb() {
        instance.ensure(pred, schema.arity(pred).expect("idb has arity"));
    }

    // Divergence detection state.
    let mut detector = Detector::default();
    detector.record(&instance, 0, options.divergence);

    let tel = options.telemetry.clone();
    tel.begin("noninflationary");
    let run_sw = tel.stopwatch();
    let tracer = tel.tracer().clone();
    let eval_guard = tracer.span(SpanKind::Eval, "noninflationary");
    let detector_name = match options.divergence {
        DivergenceDetection::Exact => "exact",
        DivergenceDetection::Fingerprint => "fingerprint",
        DivergenceDetection::Off => "off",
    };

    let mut stages = 0;
    loop {
        stages += 1;
        if options.max_stages.is_some_and(|m| stages > m) {
            return Err(EvalError::StageLimitExceeded(stages - 1));
        }
        let round_guard = tracer.span(SpanKind::Round, format!("round {stages}"));
        let stage_sw = tel.stopwatch();
        let joins_before = cache.counters;
        let mut fired: u64 = 0;
        // One parallel firing: collect asserted and retracted facts.
        let mut inserted: FxHashSet<(Symbol, Tuple)> = FxHashSet::default();
        let mut deleted: FxHashSet<(Symbol, Tuple)> = FxHashSet::default();
        for (rule, plan) in program.rules.iter().zip(&plans) {
            let (head_pred, head_args, negative) = match &rule.head[0] {
                HeadLiteral::Pos(a) => (a.pred, &a.args, false),
                HeadLiteral::Neg(a) => (a.pred, &a.args, true),
                HeadLiteral::Bottom => unreachable!("⊥ is nondeterministic-only"),
            };
            let _ = for_each_match(
                plan,
                Sources::simple(&instance),
                &adom,
                &mut cache,
                &mut |env| {
                    fired += 1;
                    let tuple = instantiate(head_args, env);
                    if negative {
                        deleted.insert((head_pred, tuple));
                    } else {
                        inserted.insert((head_pred, tuple));
                    }
                    ControlFlow::Continue(())
                },
            );
        }

        // Resolve conflicts per the policy and apply.
        let mut next = instance.clone();
        match policy {
            ConflictPolicy::PreferPositive => {
                for (pred, tuple) in &deleted {
                    if !inserted.contains(&(*pred, tuple.clone())) {
                        if let Some(rel) = next.relation_mut(*pred) {
                            rel.remove(tuple);
                        }
                    }
                }
                for (pred, tuple) in inserted {
                    next.insert_fact(pred, tuple);
                }
            }
            ConflictPolicy::PreferNegative => {
                for (pred, tuple) in inserted {
                    if !deleted.contains(&(pred, tuple.clone())) {
                        next.insert_fact(pred, tuple);
                    }
                }
                for (pred, tuple) in &deleted {
                    if let Some(rel) = next.relation_mut(*pred) {
                        rel.remove(tuple);
                    }
                }
            }
            ConflictPolicy::NoOp => {
                for (pred, tuple) in &inserted {
                    if !deleted.contains(&(*pred, tuple.clone())) {
                        next.insert_fact(*pred, tuple.clone());
                    }
                }
                for (pred, tuple) in &deleted {
                    if !inserted.contains(&(*pred, tuple.clone())) {
                        if let Some(rel) = next.relation_mut(*pred) {
                            rel.remove(tuple);
                        }
                    }
                }
            }
            ConflictPolicy::Undefined => {
                if let Some((_, _)) = inserted.iter().find(|f| deleted.contains(*f)) {
                    return Err(EvalError::Contradiction { stage: stages });
                }
                for (pred, tuple) in inserted {
                    next.insert_fact(pred, tuple);
                }
                for (pred, tuple) in &deleted {
                    if let Some(rel) = next.relation_mut(*pred) {
                        rel.remove(tuple);
                    }
                }
            }
        }

        // Mid-stage, the previous state and its successor are both live
        // (the firing reads `instance` while `next` materializes). That
        // is the true high-water mark — on a shrinking program it
        // strictly exceeds every stage-end count.
        if tel.is_enabled() {
            tel.sample_peak(
                instance.fact_count() + next.fact_count(),
                instance.heap_bytes() + next.heap_bytes(),
            );
        }
        if tracer.is_enabled() {
            let (added, removed, _) = diff_instances(&instance, &next);
            tracer.gauge("facts_added", added as u64);
            tracer.gauge("facts_removed", removed as u64);
            tracer.gauge("rules_fired", fired);
            tracer.gauge("bytes", next.heap_bytes() as u64);
        }
        drop(round_guard);
        tel.with(|t| {
            let (added, removed, delta) = diff_instances(&instance, &next);
            t.stages.push(StageRecord {
                stage: stages,
                wall_nanos: stage_sw.nanos(),
                facts_added: added,
                facts_removed: removed,
                rules_fired: fired,
                delta,
                bytes: next.heap_bytes() as u64,
                joins: cache.counters.since(&joins_before),
            });
            t.peak_facts = t.peak_facts.max(next.fact_count());
        });

        if next.same_facts(&instance) {
            tracer.gauge("rounds", stages as u64);
            tracer.gauge("final_facts", instance.fact_count() as u64);
            drop(eval_guard);
            tel.with(|t| {
                t.divergence = Some(DivergenceSnapshot {
                    detector: detector_name.to_string(),
                    states_seen: detector.states_seen(options.divergence),
                    diverged_stage: None,
                    period: None,
                });
                t.bytes_final = instance.heap_bytes() as u64;
            });
            tel.finish(&run_sw, instance.fact_count());
            return Ok(FixpointRun { instance, stages });
        }
        if let Some(first) = detector.record(&next, stages, options.divergence) {
            let period = stages - first;
            tel.with(|t| {
                t.divergence = Some(DivergenceSnapshot {
                    detector: detector_name.to_string(),
                    states_seen: detector.states_seen(options.divergence),
                    diverged_stage: Some(stages),
                    period: Some(period),
                });
                t.notes
                    .push(format!("diverged at stage {stages} with period {period}"));
                t.bytes_final = next.heap_bytes() as u64;
            });
            tel.finish(&run_sw, next.fact_count());
            return Err(EvalError::Diverged {
                stage: stages,
                period,
            });
        }
        if options.max_facts.is_some_and(|m| next.fact_count() > m) {
            return Err(EvalError::FactLimitExceeded(next.fact_count()));
        }
        instance = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unchained_common::{Interner, Value};
    use unchained_parser::parse_program;

    /// The paper's Section 4.2 flip-flop program never terminates on
    /// input `T(0)`.
    #[test]
    fn flip_flop_diverges() {
        let mut i = Interner::new();
        let program = parse_program(
            "T(0) :- T(1).\n\
             !T(1) :- T(1).\n\
             T(1) :- T(0).\n\
             !T(0) :- T(0).",
            &mut i,
        )
        .unwrap();
        let t = i.get("T").unwrap();
        let mut input = Instance::new();
        input.insert_fact(t, Tuple::from([Value::Int(0)]));
        let err = eval(
            &program,
            &input,
            ConflictPolicy::PreferPositive,
            EvalOptions::default(),
        )
        .unwrap_err();
        // T flip-flops between {⟨0⟩} and {⟨1⟩}: period 2.
        assert_eq!(
            err,
            EvalError::Diverged {
                stage: 2,
                period: 2
            }
        );
    }

    #[test]
    fn flip_flop_diverges_under_fingerprint_detection() {
        let mut i = Interner::new();
        let program = parse_program(
            "T(0) :- T(1). !T(1) :- T(1). T(1) :- T(0). !T(0) :- T(0).",
            &mut i,
        )
        .unwrap();
        let t = i.get("T").unwrap();
        let mut input = Instance::new();
        input.insert_fact(t, Tuple::from([Value::Int(0)]));
        let opts = EvalOptions::default().with_divergence(DivergenceDetection::Fingerprint);
        assert!(matches!(
            eval(&program, &input, ConflictPolicy::PreferPositive, opts),
            Err(EvalError::Diverged { .. })
        ));
        // With detection off, the stage limit kicks in.
        let opts = EvalOptions::default()
            .with_divergence(DivergenceDetection::Off)
            .with_max_stages(50);
        assert!(matches!(
            eval(&program, &input, ConflictPolicy::PreferPositive, opts),
            Err(EvalError::StageLimitExceeded(50))
        ));
    }

    /// The deterministic 2-cycle removal program from Section 5.1 (with
    /// deterministic semantics it removes *all* 2-cycles).
    #[test]
    fn remove_all_two_cycles() {
        let mut i = Interner::new();
        let program = parse_program("!G(x,y) :- G(x,y), G(y,x).", &mut i).unwrap();
        let g = i.get("G").unwrap();
        let mut input = Instance::new();
        let v = Value::Int;
        for (a, b) in [(1, 2), (2, 1), (2, 3), (3, 2), (4, 5)] {
            input.insert_fact(g, Tuple::from([v(a), v(b)]));
        }
        let run = eval(
            &program,
            &input,
            ConflictPolicy::PreferPositive,
            EvalOptions::default(),
        )
        .unwrap();
        let rel = run.instance.relation(g).unwrap();
        // Both 2-cycles removed entirely; (4,5) survives. Note the
        // self-inverse pairs are deleted in one parallel firing.
        assert_eq!(rel.len(), 1);
        assert!(rel.contains(&Tuple::from([v(4), v(5)])));
    }

    #[test]
    fn conflict_policies_differ_on_simultaneous_inference() {
        // A is present; one rule retracts it, another re-asserts it.
        let mut i = Interner::new();
        let program = parse_program("!A(x) :- A(x). A(x) :- A(x).", &mut i).unwrap();
        let a = i.get("A").unwrap();
        let mut input = Instance::new();
        input.insert_fact(a, Tuple::from([Value::Int(1)]));

        // PreferPositive: A survives; immediate fixpoint.
        let run = eval(
            &program,
            &input,
            ConflictPolicy::PreferPositive,
            EvalOptions::default(),
        )
        .unwrap();
        assert!(run.instance.contains_fact(a, &Tuple::from([Value::Int(1)])));

        // PreferNegative: A removed, then stays away.
        let run = eval(
            &program,
            &input,
            ConflictPolicy::PreferNegative,
            EvalOptions::default(),
        )
        .unwrap();
        assert!(!run.instance.contains_fact(a, &Tuple::from([Value::Int(1)])));

        // NoOp: A's membership is as in the old state: stays.
        let run = eval(
            &program,
            &input,
            ConflictPolicy::NoOp,
            EvalOptions::default(),
        )
        .unwrap();
        assert!(run.instance.contains_fact(a, &Tuple::from([Value::Int(1)])));

        // Undefined: contradiction.
        assert!(matches!(
            eval(
                &program,
                &input,
                ConflictPolicy::Undefined,
                EvalOptions::default()
            ),
            Err(EvalError::Contradiction { stage: 1 })
        ));
    }

    #[test]
    fn update_semantics_inserts_into_edb() {
        // Symmetric closure computed *into the input relation*.
        let mut i = Interner::new();
        let program = parse_program("G(y,x) :- G(x,y).", &mut i).unwrap();
        let g = i.get("G").unwrap();
        let mut input = Instance::new();
        input.insert_fact(g, Tuple::from([Value::Int(1), Value::Int(2)]));
        let run = eval(
            &program,
            &input,
            ConflictPolicy::PreferPositive,
            EvalOptions::default(),
        )
        .unwrap();
        assert_eq!(run.instance.relation(g).unwrap().len(), 2);
    }

    #[test]
    fn subsumes_inflationary_datalog_neg() {
        // A Datalog¬ program runs identically under Datalog¬¬ semantics.
        let mut i = Interner::new();
        let program = parse_program("T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).", &mut i).unwrap();
        let g = i.get("G").unwrap();
        let mut input = Instance::new();
        for k in 0..4i64 {
            input.insert_fact(g, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
        }
        let a = eval(
            &program,
            &input,
            ConflictPolicy::PreferPositive,
            EvalOptions::default(),
        )
        .unwrap();
        let b = crate::inflationary::eval(&program, &input, EvalOptions::default()).unwrap();
        assert!(a.instance.same_facts(&b.instance));
    }

    #[test]
    fn deletion_based_composition() {
        // The paper's Section 5.2 example computing P − π_A(Q) with
        // deletions, run deterministically:
        //   answer(x) :- P(x).
        //   !answer(x) :- Q(x,y).
        let mut i = Interner::new();
        let program = parse_program("answer(x) :- P(x). !answer(x) :- Q(x,y).", &mut i).unwrap();
        let p = i.get("P").unwrap();
        let q = i.get("Q").unwrap();
        let answer = i.get("answer").unwrap();
        let mut input = Instance::new();
        let v = Value::Int;
        for k in [1, 2, 3] {
            input.insert_fact(p, Tuple::from([v(k)]));
        }
        input.insert_fact(q, Tuple::from([v(2), v(9)]));
        let run = eval(
            &program,
            &input,
            ConflictPolicy::PreferNegative,
            EvalOptions::default(),
        )
        .unwrap();
        let rel = run.instance.relation(answer).unwrap();
        // P − π_A(Q) = {1, 3}.
        assert_eq!(rel.len(), 2);
        assert!(rel.contains(&Tuple::from([v(1)])));
        assert!(rel.contains(&Tuple::from([v(3)])));
    }

    #[test]
    fn rejects_multi_head() {
        let mut i = Interner::new();
        let program = parse_program("A(x), B(x) :- C(x).", &mut i).unwrap();
        assert!(matches!(
            eval(
                &program,
                &Instance::new(),
                ConflictPolicy::PreferPositive,
                EvalOptions::default()
            ),
            Err(EvalError::WrongLanguage { .. })
        ));
    }
}

//! Magic-sets rewriting for positive Datalog.
//!
//! Section 3.1 of the paper notes that "most of the optimization
//! techniques in deductive databases have been developed around
//! Datalog"; magic sets (Bancilhon–Maier–Sagiv–Ullman / Beeri–
//! Ramakrishnan) is the canonical one. Given a query pattern with some
//! arguments bound to constants, the rewrite specializes the program so
//! that bottom-up evaluation only derives facts *relevant* to the
//! query, simulating top-down goal direction.
//!
//! This implementation uses the standard left-to-right sideways
//! information passing strategy (SIP):
//!
//! * predicates are **adorned** with `b`/`f` patterns describing which
//!   argument positions are bound;
//! * for each adorned idb predicate `P^a`, a **magic predicate**
//!   `magic__P__a` collects the bound-argument tuples for which `P^a`
//!   is actually demanded;
//! * each rule `P(ū) ← B₁, …, Bₙ` becomes
//!   `P^a(ū) ← magic__P__a(ū|bound), B₁', …, Bₙ'` with idb body atoms
//!   adorned, plus one magic rule per idb body atom passing its bound
//!   arguments sideways.
//!
//! The rewritten program is again pure Datalog and is evaluated with
//! the ordinary semi-naive engine. The `magic_tc` benchmark measures
//! the speedup on single-source reachability.

use crate::error::EvalError;
use crate::options::EvalOptions;
use crate::require_language;
use crate::seminaive;
use std::collections::{BTreeSet, VecDeque};
use unchained_common::{Instance, Interner, Relation, Span, SpanKind, Symbol, Tuple, Value};
use unchained_parser::{
    check_range_restricted, Atom, HeadLiteral, Language, Literal, Program, Rule, Term,
};

/// A query pattern: a predicate with each argument either bound to a
/// constant or free.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryPattern {
    /// The queried (idb) predicate.
    pub pred: Symbol,
    /// One entry per argument position: `Some(c)` = bound to `c`,
    /// `None` = free.
    pub bindings: Vec<Option<Value>>,
}

impl QueryPattern {
    /// Builds a pattern.
    pub fn new(pred: Symbol, bindings: Vec<Option<Value>>) -> Self {
        QueryPattern { pred, bindings }
    }

    fn adornment(&self) -> Adornment {
        self.bindings.iter().map(Option::is_some).collect()
    }
}

/// `true` = bound position.
type Adornment = Vec<bool>;

fn adornment_string(a: &Adornment) -> String {
    a.iter().map(|&b| if b { 'b' } else { 'f' }).collect()
}

/// The result of the rewrite.
#[derive(Clone, Debug)]
pub struct MagicProgram {
    /// The rewritten (pure Datalog) program.
    pub program: Program,
    /// The adorned answer predicate (e.g. `T__bf`).
    pub answer_pred: Symbol,
    /// The magic seed fact(s) for the query constants.
    pub seeds: Instance,
}

/// Rewrite errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MagicError {
    /// Magic sets here apply to pure Datalog only.
    NotPureDatalog,
    /// The queried predicate is not an idb predicate of the program.
    NotAnIdbPredicate(Symbol),
    /// The pattern's arity does not match the predicate's.
    ArityMismatch {
        /// Expected (program) arity.
        expected: usize,
        /// Pattern arity.
        found: usize,
    },
}

impl std::fmt::Display for MagicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MagicError::NotPureDatalog => {
                write!(f, "magic-sets rewriting requires pure (positive) Datalog")
            }
            MagicError::NotAnIdbPredicate(s) => {
                write!(f, "{s:?} is not an idb predicate of the program")
            }
            MagicError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "query pattern arity {found} does not match predicate arity {expected}"
                )
            }
        }
    }
}

impl std::error::Error for MagicError {}

fn adorned_name(interner: &mut Interner, base: &str, a: &Adornment) -> Symbol {
    interner.intern(&format!("{base}__{}", adornment_string(a)))
}

fn magic_name(interner: &mut Interner, base: &str, a: &Adornment) -> Symbol {
    interner.intern(&format!("magic__{base}__{}", adornment_string(a)))
}

/// Performs the magic-sets rewrite of `program` for `query`.
///
/// ```
/// use unchained_common::{Instance, Interner, Tuple, Value};
/// use unchained_core::magic::{answer, QueryPattern};
/// use unchained_core::EvalOptions;
/// use unchained_parser::parse_program;
///
/// let mut interner = Interner::new();
/// let program = parse_program(
///     "T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).",
///     &mut interner,
/// ).unwrap();
/// let g = interner.get("G").unwrap();
/// let t = interner.get("T").unwrap();
/// let mut input = Instance::new();
/// input.insert_fact(g, Tuple::from([Value::Int(1), Value::Int(2)]));
/// input.insert_fact(g, Tuple::from([Value::Int(2), Value::Int(3)]));
/// input.insert_fact(g, Tuple::from([Value::Int(7), Value::Int(8)])); // irrelevant
///
/// let query = QueryPattern::new(t, vec![Some(Value::Int(1)), None]);
/// let reachable = answer(&program, &query, &input, &mut interner, EvalOptions::default())
///     .unwrap();
/// assert_eq!(reachable.len(), 2); // 1 → 2, 1 → 3; chain 7→8 untouched
/// ```
pub fn magic_rewrite(
    program: &Program,
    query: &QueryPattern,
    interner: &mut Interner,
) -> Result<MagicProgram, MagicError> {
    if unchained_parser::classify(program) != Language::Datalog {
        return Err(MagicError::NotPureDatalog);
    }
    let idb: BTreeSet<Symbol> = program.idb().into_iter().collect();
    if !idb.contains(&query.pred) {
        return Err(MagicError::NotAnIdbPredicate(query.pred));
    }
    let schema = program.schema().map_err(|_| MagicError::NotPureDatalog)?;
    let expected = schema.arity(query.pred).unwrap_or(0);
    if expected != query.bindings.len() {
        return Err(MagicError::ArityMismatch {
            expected,
            found: query.bindings.len(),
        });
    }

    let mut rewritten = Program::new();
    let mut done: BTreeSet<(Symbol, Adornment)> = BTreeSet::new();
    let mut queue: VecDeque<(Symbol, Adornment)> = VecDeque::new();
    let start = (query.pred, query.adornment());
    queue.push_back(start.clone());
    done.insert(start);

    while let Some((pred, adornment)) = queue.pop_front() {
        let base = interner.name(pred).to_string();
        let adorned_head = adorned_name(interner, &base, &adornment);
        let magic_head = magic_name(interner, &base, &adornment);
        for rule in &program.rules {
            let HeadLiteral::Pos(head) = &rule.head[0] else {
                unreachable!("pure Datalog heads are positive")
            };
            if head.pred != pred {
                continue;
            }
            // Bound variables start with the head's bound positions.
            let mut bound: BTreeSet<unchained_parser::Var> = BTreeSet::new();
            let mut magic_args: Vec<Term> = Vec::new();
            for (pos, term) in head.args.iter().enumerate() {
                if adornment[pos] {
                    magic_args.push(*term);
                    if let Term::Var(v) = term {
                        bound.insert(*v);
                    }
                }
            }
            let magic_atom = Atom::new(magic_head, magic_args);

            // Walk the body left-to-right, building the rewritten body
            // and emitting magic rules for idb atoms.
            let mut new_body: Vec<Literal> = vec![Literal::Pos(magic_atom.clone())];
            for lit in &rule.body {
                let Literal::Pos(atom) = lit else {
                    unreachable!("pure Datalog bodies are positive atoms")
                };
                if idb.contains(&atom.pred) {
                    // Adornment of this occurrence.
                    let sub_adornment: Adornment = atom
                        .args
                        .iter()
                        .map(|t| match t {
                            Term::Const(_) => true,
                            Term::Var(v) => bound.contains(v),
                        })
                        .collect();
                    let sub_base = interner.name(atom.pred).to_string();
                    let sub_adorned = adorned_name(interner, &sub_base, &sub_adornment);
                    let sub_magic = magic_name(interner, &sub_base, &sub_adornment);
                    // Magic rule: demand the bound part of this atom
                    // given the demand for the head and everything
                    // established so far.
                    let demanded: Vec<Term> = atom
                        .args
                        .iter()
                        .zip(&sub_adornment)
                        .filter(|(_, &b)| b)
                        .map(|(t, _)| *t)
                        .collect();
                    rewritten.rules.push(Rule {
                        head: vec![HeadLiteral::Pos(Atom::new(sub_magic, demanded))],
                        body: new_body.clone(),
                        forall: vec![],
                        var_names: rule.var_names.clone(),
                    });
                    // The rewritten rule reads the adorned version.
                    new_body.push(Literal::Pos(Atom::new(sub_adorned, atom.args.clone())));
                    let key = (atom.pred, sub_adornment);
                    if done.insert(key.clone()) {
                        queue.push_back(key);
                    }
                } else {
                    new_body.push(lit.clone());
                }
                for v in atom.vars() {
                    bound.insert(v);
                }
            }
            rewritten.rules.push(Rule {
                head: vec![HeadLiteral::Pos(Atom::new(adorned_head, head.args.clone()))],
                body: new_body,
                forall: vec![],
                var_names: rule.var_names.clone(),
            });
        }
    }

    // Seed: the query's own magic fact.
    let mut seeds = Instance::new();
    let base = interner.name(query.pred).to_string();
    let q_adornment = query.adornment();
    let magic_query = magic_name(interner, &base, &q_adornment);
    let seed: Tuple = query.bindings.iter().flatten().copied().collect();
    seeds.insert_fact(magic_query, seed);
    let answer_pred = adorned_name(interner, &base, &q_adornment);
    Ok(MagicProgram {
        program: rewritten,
        answer_pred,
        seeds,
    })
}

/// Rewrites, evaluates (semi-naive), and returns the query answer: the
/// tuples of the queried predicate matching the pattern's constants.
pub fn answer(
    program: &Program,
    query: &QueryPattern,
    input: &Instance,
    interner: &mut Interner,
    options: EvalOptions,
) -> Result<Relation, EvalError> {
    require_language(program, Language::Datalog)?;
    check_range_restricted(program, false)?;
    let tel = options.telemetry.clone();
    let tracer = tel.tracer().clone();
    let eval_guard = tracer.span(SpanKind::Eval, "magic");
    let rewrite_start = tracer.now_nanos();
    let magic = magic_rewrite(program, query, interner).map_err(|e| {
        // Surface rewrite problems as analysis errors.
        EvalError::Analysis(unchained_parser::AnalysisError::UnrestrictedHeadVar {
            rule: usize::MAX,
            var: e.to_string(),
        })
    })?;
    if tracer.is_enabled() {
        let mut rewrite = Span::leaf(SpanKind::Phase, "rewrite");
        rewrite.start_nanos = rewrite_start;
        rewrite.dur_nanos = tracer.now_nanos().saturating_sub(rewrite_start);
        rewrite
            .gauges
            .push(("rules", magic.program.rules.len() as u64));
        rewrite
            .gauges
            .push(("seeds", magic.seeds.fact_count() as u64));
        tracer.leaf(rewrite);
    }
    let mut seeded = input.clone();
    for (pred, rel) in magic.seeds.iter() {
        seeded.ensure(pred, rel.arity()).union_with(rel);
    }
    let run = seminaive::minimum_model(&magic.program, &seeded, options)?;
    tracer.gauge("final_facts", run.instance.fact_count() as u64);
    drop(eval_guard);
    // The inner semi-naive run wrote the stage records; relabel the
    // trace and note what the rewrite did to the program.
    tel.rename("magic");
    tel.note(format!(
        "rewrite: {} rules from {}, {} magic seed fact(s)",
        magic.program.rules.len(),
        program.rules.len(),
        magic.seeds.fact_count()
    ));
    let arity = query.bindings.len();
    let mut out = Relation::new(arity);
    if let Some(rel) = run.instance.relation(magic.answer_pred) {
        for t in rel.iter() {
            let matches = query
                .bindings
                .iter()
                .zip(t.values())
                .all(|(b, v)| b.is_none_or(|c| c == *v));
            if matches {
                out.insert(t.clone());
            }
        }
    }
    Ok(out)
}

/// Statistics comparing magic evaluation to full evaluation (used by
/// tests and the ablation bench to verify the rewrite actually prunes).
#[derive(Clone, Copy, Debug)]
pub struct MagicStats {
    /// Facts derived by full evaluation.
    pub full_facts: usize,
    /// Facts derived by magic evaluation (including magic facts).
    pub magic_facts: usize,
}

/// Runs both full and magic evaluation, checks they agree on the query
/// answer, and reports derived-fact counts.
pub fn compare_with_full(
    program: &Program,
    query: &QueryPattern,
    input: &Instance,
    interner: &mut Interner,
) -> Result<(Relation, MagicStats), EvalError> {
    let full = seminaive::minimum_model(program, input, EvalOptions::default())?;
    let full_answer = {
        let mut out = Relation::new(query.bindings.len());
        if let Some(rel) = full.instance.relation(query.pred) {
            for t in rel.iter() {
                let matches = query
                    .bindings
                    .iter()
                    .zip(t.values())
                    .all(|(b, v)| b.is_none_or(|c| c == *v));
                if matches {
                    out.insert(t.clone());
                }
            }
        }
        out
    };
    let magic = magic_rewrite(program, query, interner).expect("rewrite");
    let mut seeded = input.clone();
    for (pred, rel) in magic.seeds.iter() {
        seeded.ensure(pred, rel.arity()).union_with(rel);
    }
    let magic_run = seminaive::minimum_model(&magic.program, &seeded, EvalOptions::default())?;
    let magic_answer = answer(program, query, input, interner, EvalOptions::default())?;
    assert!(
        magic_answer.same_tuples(&full_answer),
        "magic answer must equal full answer"
    );
    Ok((
        full_answer,
        MagicStats {
            full_facts: full.instance.fact_count() - input.fact_count(),
            magic_facts: magic_run.instance.fact_count() - seeded.fact_count(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use unchained_harness_free::*;

    /// Minimal local generators (this crate cannot depend on the
    /// harness crate, which depends on it).
    mod unchained_harness_free {
        use unchained_common::{Instance, Interner, Tuple, Value};

        pub fn line(interner: &mut Interner, n: i64) -> Instance {
            let g = interner.intern("G");
            let mut inst = Instance::new();
            inst.ensure(g, 2);
            for k in 0..n - 1 {
                inst.insert_fact(g, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
            }
            inst
        }

        pub fn forked(interner: &mut Interner) -> Instance {
            // Two disjoint components: 0→1→2 and 10→11→12.
            let g = interner.intern("G");
            let mut inst = Instance::new();
            inst.ensure(g, 2);
            for (a, b) in [(0, 1), (1, 2), (10, 11), (11, 12)] {
                inst.insert_fact(g, Tuple::from([Value::Int(a), Value::Int(b)]));
            }
            inst
        }
    }
    use unchained_common::{Interner, Tuple, Value};
    use unchained_parser::parse_program;

    const TC: &str = "T(x,y) :- G(x,y).\nT(x,y) :- G(x,z), T(z,y).";

    #[test]
    fn bound_source_matches_full_evaluation() {
        let mut i = Interner::new();
        let program = parse_program(TC, &mut i).unwrap();
        let t = i.get("T").unwrap();
        let input = forked(&mut i);
        let query = QueryPattern::new(t, vec![Some(Value::Int(0)), None]);
        let (answer, stats) = compare_with_full(&program, &query, &input, &mut i).unwrap();
        // Reachable from 0: {1, 2}.
        assert_eq!(answer.len(), 2);
        assert!(answer.contains(&Tuple::from([Value::Int(0), Value::Int(2)])));
        // Magic evaluation must not touch the other component.
        assert!(
            stats.magic_facts < stats.full_facts,
            "magic {} < full {}",
            stats.magic_facts,
            stats.full_facts
        );
    }

    #[test]
    fn free_pattern_degenerates_to_full() {
        let mut i = Interner::new();
        let program = parse_program(TC, &mut i).unwrap();
        let t = i.get("T").unwrap();
        let input = line(&mut i, 5);
        let query = QueryPattern::new(t, vec![None, None]);
        let (answer, _) = compare_with_full(&program, &query, &input, &mut i).unwrap();
        assert_eq!(answer.len(), 10);
    }

    #[test]
    fn bound_both_positions() {
        let mut i = Interner::new();
        let program = parse_program(TC, &mut i).unwrap();
        let t = i.get("T").unwrap();
        let input = line(&mut i, 6);
        let query = QueryPattern::new(t, vec![Some(Value::Int(1)), Some(Value::Int(4))]);
        let (answer, _) = compare_with_full(&program, &query, &input, &mut i).unwrap();
        assert_eq!(answer.len(), 1);
        let query = QueryPattern::new(t, vec![Some(Value::Int(4)), Some(Value::Int(1))]);
        let (answer, _) = compare_with_full(&program, &query, &input, &mut i).unwrap();
        assert!(answer.is_empty());
    }

    #[test]
    fn right_linear_rule_and_bound_second_arg() {
        let mut i = Interner::new();
        let program =
            parse_program("T(x,y) :- G(x,y).\nT(x,y) :- T(x,z), G(z,y).", &mut i).unwrap();
        let t = i.get("T").unwrap();
        let input = forked(&mut i);
        let query = QueryPattern::new(t, vec![None, Some(Value::Int(12))]);
        let (answer, _) = compare_with_full(&program, &query, &input, &mut i).unwrap();
        // Ancestors of 12: {10, 11}.
        assert_eq!(answer.len(), 2);
    }

    #[test]
    fn same_generation_with_bound_first() {
        let mut i = Interner::new();
        let program = parse_program(
            "SG(x,x) :- Person(x).\n\
             SG(x,y) :- Par(x,xp), SG(xp,yp), Par(y,yp).",
            &mut i,
        )
        .unwrap();
        let person = i.get("Person").unwrap();
        let par = i.get("Par").unwrap();
        let sg = i.get("SG").unwrap();
        let mut input = Instance::new();
        for k in 1..=7i64 {
            input.insert_fact(person, Tuple::from([Value::Int(k)]));
        }
        for (c, p) in [(2, 1), (3, 1), (4, 2), (5, 2), (6, 3), (7, 3)] {
            input.insert_fact(par, Tuple::from([Value::Int(c), Value::Int(p)]));
        }
        let query = QueryPattern::new(sg, vec![Some(Value::Int(4)), None]);
        let (answer, _) = compare_with_full(&program, &query, &input, &mut i).unwrap();
        // Same generation as 4: {4, 5, 6, 7}.
        assert_eq!(answer.len(), 4);
    }

    #[test]
    fn rewrite_structure() {
        let mut i = Interner::new();
        let program = parse_program(TC, &mut i).unwrap();
        let t = i.get("T").unwrap();
        let query = QueryPattern::new(t, vec![Some(Value::Int(0)), None]);
        let magic = magic_rewrite(&program, &query, &mut i).unwrap();
        // 2 original rules → 2 rewritten + 1 magic rule (for the
        // recursive T atom).
        assert_eq!(magic.program.rules.len(), 3);
        assert_eq!(magic.seeds.fact_count(), 1);
        assert_eq!(i.name(magic.answer_pred), "T__bf");
        // The rewritten program is itself valid pure Datalog.
        assert_eq!(
            unchained_parser::classify(&magic.program),
            Language::Datalog
        );
    }

    #[test]
    fn errors() {
        let mut i = Interner::new();
        let program = parse_program(TC, &mut i).unwrap();
        let g = i.get("G").unwrap();
        let t = i.get("T").unwrap();
        assert_eq!(
            magic_rewrite(&program, &QueryPattern::new(g, vec![None, None]), &mut i).unwrap_err(),
            MagicError::NotAnIdbPredicate(g)
        );
        assert_eq!(
            magic_rewrite(&program, &QueryPattern::new(t, vec![None]), &mut i).unwrap_err(),
            MagicError::ArityMismatch {
                expected: 2,
                found: 1
            }
        );
        let neg = parse_program("A(x) :- B(x), !C(x).", &mut i).unwrap();
        let a = i.get("A").unwrap();
        assert_eq!(
            magic_rewrite(&neg, &QueryPattern::new(a, vec![None]), &mut i).unwrap_err(),
            MagicError::NotPureDatalog
        );
    }
}

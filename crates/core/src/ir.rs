//! The shared relational-algebra IR every engine's rule bodies compile
//! to.
//!
//! A rule body lowers (see [`crate::planner`]) into two coupled forms:
//!
//! * an **IR chain** of algebra nodes ([`Node`]) — scan / join /
//!   antijoin / select / bind / domain / project / distinct — held in a
//!   hash-consing [`PlanArena`] so that structurally identical subplans
//!   across the rules of a program intern to the same [`NodeId`]. The
//!   chain names values by **plan slots** (`s0, s1, …`) assigned in
//!   first-bind order, which makes the representation canonical: two
//!   rules whose body prefixes are alphabetic variants of each other
//!   share their prefix nodes. The chain is what `unchained plan`
//!   renders and what the plan-shape tests count;
//! * a flat **step list** ([`Step`]) in the owning rule's variable
//!   space, interpreted by the executor ([`crate::exec`]). Both forms
//!   are derived from the same planning decisions, so the rendered plan
//!   is exactly what runs.
//!
//! Delta-scan variants for semi-naive evaluation are ordinary chains
//! whose recursive scan reads [`ScanSource::Delta`].

use unchained_common::{FxHashMap, Interner, Symbol, Value};
use unchained_parser::{Term, Var};

/// Where a scan reads from: the full relation or the per-round delta
/// slice (semi-naive evaluation).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ScanSource {
    /// The full current relation.
    Full,
    /// The tuples added since the caller's
    /// [`DeltaHandle`](unchained_common::DeltaHandle) mark.
    Delta,
}

/// A plan-space term: a slot bound earlier in the chain, or a constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PTerm {
    /// A plan slot (first-bind order along the chain).
    Slot(u32),
    /// A constant from the rule text.
    Const(Value),
}

/// What a join does with one column of the scanned relation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ColOp {
    /// The column's value is known before the probe; it is part of the
    /// index key (sideways information passing: bound values are pushed
    /// *into* the scan instead of filtered after it).
    Key(PTerm),
    /// The column binds a fresh slot.
    Load(u32),
    /// The column must equal an earlier column of the *same* atom (a
    /// repeated variable first bound at that column's `Load`).
    Check(u32),
}

/// Reference to an interned node in a [`PlanArena`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NodeId(u32);

impl NodeId {
    /// Index into the arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One relational-algebra operator. Plans are chains: every node has at
/// most one input, and the deepest node is [`Node::Unit`] (the nullary
/// relation containing the empty valuation — an empty body matches
/// once).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Node {
    /// The unit relation: one empty valuation.
    Unit,
    /// Index-nested-loop join of the input with `pred`: probe on the
    /// `Key` columns, bind `Load` columns, test `Check` columns. A join
    /// whose input is [`Node::Unit`] is a plain scan.
    Join {
        /// Upstream chain.
        input: NodeId,
        /// The relation scanned.
        pred: Symbol,
        /// Full or delta relation.
        source: ScanSource,
        /// Per-column operation, in column order.
        cols: Box<[ColOp]>,
    },
    /// Keep valuations for which `pred(args)` is **absent**.
    Antijoin {
        /// Upstream chain.
        input: NodeId,
        /// The negated relation.
        pred: Symbol,
        /// Fully bound argument terms.
        args: Box<[PTerm]>,
    },
    /// Keep valuations for which `(left = right) == equal`.
    Select {
        /// Upstream chain.
        input: NodeId,
        /// Left term.
        left: PTerm,
        /// Right term.
        right: PTerm,
        /// Equality (`true`) or inequality (`false`).
        equal: bool,
    },
    /// Bind a fresh slot to the value of `term`.
    Bind {
        /// Upstream chain.
        input: NodeId,
        /// The slot bound.
        slot: u32,
        /// Its defining term.
        term: PTerm,
    },
    /// Bind a fresh slot to each value of the active domain in turn.
    Domain {
        /// Upstream chain.
        input: NodeId,
        /// The slot enumerated.
        slot: u32,
    },
    /// Emit the head tuple `pred(args)` for every input valuation.
    Project {
        /// Upstream chain.
        input: NodeId,
        /// The head relation.
        pred: Symbol,
        /// Head argument terms (all resolvable from the chain).
        args: Box<[PTerm]>,
    },
    /// Set semantics: duplicate output tuples collapse (fixpoint engines
    /// realize this at the instance merge).
    Distinct {
        /// Upstream chain.
        input: NodeId,
    },
}

impl Node {
    /// The node's input, if any (`Unit` has none).
    pub fn input(&self) -> Option<NodeId> {
        match self {
            Node::Unit => None,
            Node::Join { input, .. }
            | Node::Antijoin { input, .. }
            | Node::Select { input, .. }
            | Node::Bind { input, .. }
            | Node::Domain { input, .. }
            | Node::Project { input, .. }
            | Node::Distinct { input } => Some(*input),
        }
    }
}

/// A hash-consing arena of plan nodes. Interning the same node twice
/// returns the same [`NodeId`]; the planner uses the hit count as its
/// `subplans_shared` gauge.
#[derive(Default)]
pub struct PlanArena {
    nodes: Vec<Node>,
    dedup: FxHashMap<Node, NodeId>,
}

impl PlanArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `node`, returning its id and whether it was already
    /// present (a shared subplan).
    pub fn intern(&mut self, node: Node) -> (NodeId, bool) {
        if let Some(&id) = self.dedup.get(&node) {
            return (id, true);
        }
        let id = NodeId(u32::try_from(self.nodes.len()).expect("plan arena overflow"));
        self.nodes.push(node.clone());
        self.dedup.insert(node, id);
        (id, false)
    }

    /// The node behind an id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Total distinct nodes interned (shared nodes count once).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Length of the chain from `root` down to (and excluding)
    /// [`Node::Unit`].
    pub fn chain_len(&self, root: NodeId) -> usize {
        let mut n = 0;
        let mut at = root;
        while let Some(input) = self.node(at).input() {
            n += 1;
            at = input;
        }
        n
    }

    /// Renders the chain under `root` as indented text, root first.
    pub fn render(&self, root: NodeId, interner: &Interner) -> String {
        let mut chain = Vec::new();
        let mut at = Some(root);
        while let Some(id) = at {
            let node = self.node(id);
            if matches!(node, Node::Unit) {
                break;
            }
            chain.push(node);
            at = node.input();
        }
        let mut out = String::new();
        for (depth, node) in chain.iter().enumerate() {
            for _ in 0..depth {
                out.push_str(". ");
            }
            out.push_str(&render_node(node, self, interner));
            out.push('\n');
        }
        if chain.is_empty() {
            out.push_str("unit\n");
        }
        out
    }
}

fn render_pterm(t: &PTerm, interner: &Interner) -> String {
    match t {
        PTerm::Slot(s) => format!("s{s}"),
        PTerm::Const(v) => format!("{}", v.display(interner)),
    }
}

fn render_node(node: &Node, arena: &PlanArena, interner: &Interner) -> String {
    match node {
        Node::Unit => "unit".into(),
        Node::Join {
            input,
            pred,
            source,
            cols,
        } => {
            let verb = if matches!(arena.node(*input), Node::Unit) {
                "scan"
            } else {
                "join"
            };
            let cols: Vec<String> = cols
                .iter()
                .map(|c| match c {
                    ColOp::Key(t) => format!("={}", render_pterm(t, interner)),
                    ColOp::Load(s) => format!("s{s}"),
                    ColOp::Check(s) => format!("?s{s}"),
                })
                .collect();
            let delta = if *source == ScanSource::Delta {
                " Δ"
            } else {
                ""
            };
            format!(
                "{verb} {}({}){delta}",
                interner.name(*pred),
                cols.join(", ")
            )
        }
        Node::Antijoin { pred, args, .. } => {
            let args: Vec<String> = args.iter().map(|t| render_pterm(t, interner)).collect();
            format!("antijoin !{}({})", interner.name(*pred), args.join(", "))
        }
        Node::Select {
            left, right, equal, ..
        } => format!(
            "select {} {} {}",
            render_pterm(left, interner),
            if *equal { "=" } else { "!=" },
            render_pterm(right, interner)
        ),
        Node::Bind { slot, term, .. } => {
            format!("bind s{slot} := {}", render_pterm(term, interner))
        }
        Node::Domain { slot, .. } => format!("domain s{slot}"),
        Node::Project { pred, args, .. } => {
            let args: Vec<String> = args.iter().map(|t| render_pterm(t, interner)).collect();
            format!("project {}({})", interner.name(*pred), args.join(", "))
        }
        Node::Distinct { .. } => "distinct".into(),
    }
}

/// One step of a compiled rule body, in the owning rule's variable
/// space. This is the executable mirror of the IR chain: the planner
/// derives both from the same decisions.
#[derive(Clone, Debug)]
pub enum Step {
    /// Probe `pred` (via an index on `key` positions) and bind the
    /// remaining positions.
    Scan {
        /// The relation scanned.
        pred: Symbol,
        /// The atom's argument terms.
        args: Vec<Term>,
        /// Positions whose value is known before the scan (constants and
        /// already-bound variables). The index is built on these.
        key: Vec<usize>,
        /// Full or delta relation.
        source: ScanSource,
    },
    /// Bind `var` to the value of `term` (which the plan guarantees is
    /// evaluable here).
    BindEq {
        /// The variable being bound.
        var: Var,
        /// Its defining term.
        term: Term,
    },
    /// Enumerate `var` over the active domain.
    Domain {
        /// The variable enumerated.
        var: Var,
    },
    /// Check that `pred(args)` is absent.
    CheckNeg {
        /// The negated relation.
        pred: Symbol,
        /// Argument terms (all bound here).
        args: Vec<Term>,
    },
    /// Check `(left = right) == equal`.
    CheckCmp {
        /// Left term.
        left: Term,
        /// Right term.
        right: Term,
        /// Equality (`true`) or inequality (`false`).
        equal: bool,
    },
}

/// A compiled rule body: the executable steps plus the IR chain they
/// were derived from.
#[derive(Clone, Debug)]
pub struct Plan {
    /// Ordered steps.
    pub steps: Vec<Step>,
    /// Number of variables in the owning rule (environment size).
    pub var_count: usize,
    /// IR chain for the body alone (deepest: `Unit`).
    pub body_root: NodeId,
    /// Full IR chain: `Distinct(Project(body))` when the owning rule has
    /// a single positive head whose variables the body binds, else the
    /// body chain.
    pub root: NodeId,
}

impl Plan {
    /// Nodes in this plan's full chain (shared or not).
    pub fn node_count(&self, arena: &PlanArena) -> usize {
        arena.chain_len(self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_shares_structurally_equal_nodes() {
        let mut arena = PlanArena::new();
        let (unit, hit) = arena.intern(Node::Unit);
        assert!(!hit);
        let (unit2, hit) = arena.intern(Node::Unit);
        assert!(hit);
        assert_eq!(unit, unit2);
        let mut interner = Interner::new();
        let g = interner.intern("G");
        let join = |arena: &mut PlanArena| {
            arena.intern(Node::Join {
                input: unit,
                pred: g,
                source: ScanSource::Full,
                cols: vec![ColOp::Load(0), ColOp::Load(1)].into_boxed_slice(),
            })
        };
        let (a, hit_a) = join(&mut arena);
        let (b, hit_b) = join(&mut arena);
        assert!(!hit_a && hit_b);
        assert_eq!(a, b);
        assert_eq!(arena.node_count(), 2);
    }

    #[test]
    fn chain_len_counts_to_unit() {
        let mut arena = PlanArena::new();
        let (unit, _) = arena.intern(Node::Unit);
        let mut interner = Interner::new();
        let g = interner.intern("G");
        let (scan, _) = arena.intern(Node::Join {
            input: unit,
            pred: g,
            source: ScanSource::Full,
            cols: vec![ColOp::Load(0)].into_boxed_slice(),
        });
        let (dist, _) = arena.intern(Node::Distinct { input: scan });
        assert_eq!(arena.chain_len(unit), 0);
        assert_eq!(arena.chain_len(scan), 1);
        assert_eq!(arena.chain_len(dist), 2);
    }

    #[test]
    fn render_shows_scan_join_and_delta() {
        let mut arena = PlanArena::new();
        let mut interner = Interner::new();
        let g = interner.intern("G");
        let t = interner.intern("T");
        let (unit, _) = arena.intern(Node::Unit);
        let (scan, _) = arena.intern(Node::Join {
            input: unit,
            pred: g,
            source: ScanSource::Full,
            cols: vec![ColOp::Load(0), ColOp::Load(1)].into_boxed_slice(),
        });
        let (join, _) = arena.intern(Node::Join {
            input: scan,
            pred: t,
            source: ScanSource::Delta,
            cols: vec![ColOp::Key(PTerm::Slot(1)), ColOp::Load(2)].into_boxed_slice(),
        });
        let (proj, _) = arena.intern(Node::Project {
            input: join,
            pred: t,
            args: vec![PTerm::Slot(0), PTerm::Slot(2)].into_boxed_slice(),
        });
        let (root, _) = arena.intern(Node::Distinct { input: proj });
        let text = arena.render(root, &interner);
        assert!(text.starts_with("distinct\n"), "{text}");
        assert!(text.contains("project T(s0, s2)"), "{text}");
        assert!(text.contains("join T(=s1, s2) Δ"), "{text}");
        assert!(text.contains("scan G(s0, s1)"), "{text}");
    }
}

//! Stable model semantics for Datalog¬ (Section 3.3's historical
//! context: stable models \[65\] and their relationship to the
//! well-founded semantics).
//!
//! A 2-valued instance `M` (extending the input) is a **stable model**
//! of `P` iff the least fixpoint of the Gelfond–Lifschitz reduct
//! `P/M` — the positive program obtained by deleting rules with a
//! negative literal contradicted by `M` and dropping the remaining
//! negative literals — equals `M` exactly.
//!
//! Connection to the well-founded semantics (the "3-stable model" of
//! the paper's Section 3.3): every stable model `M` satisfies
//! `WF.true ⊆ M ⊆ WF.possible`, which this module exploits: candidate
//! models are enumerated as `WF.true ∪ S` for subsets `S` of the
//! *unknown* facts, so the search is `2^u` for `u` unknown facts rather
//! than exponential in the full fact universe. Programs with no
//! unknowns (e.g. all stratified programs) have exactly one candidate —
//! and exactly one stable model, coinciding with the stratified /
//! well-founded answer.
//!
//! The win-move program of Example 3.2 on the paper's instance `K` is
//! the classic witness that a Datalog¬ program may have **no** stable
//! model at all (the drawn 3-cycle `a → b → c → a` forces
//! `win(a) = ¬win(b) = win(c) = ¬win(a)`), while the well-founded
//! semantics still answers — with unknowns.

use crate::error::EvalError;
use crate::exec::IndexCache;
use crate::options::EvalOptions;
use crate::require_language;
use crate::subst::active_domain;
use crate::wellfounded;
use unchained_common::{Instance, Span, SpanKind, Telemetry, Tuple};
use unchained_parser::{check_range_restricted, Language, Program};

/// Budget for stable-model enumeration.
#[derive(Clone, Debug)]
pub struct StableOptions {
    /// Underlying fixpoint budgets.
    pub eval: EvalOptions,
    /// Maximum number of unknown facts to enumerate over (the search is
    /// `2^u`); exceeding it fails with
    /// [`EvalError::StageLimitExceeded`]-style budget error.
    pub max_unknowns: usize,
}

impl Default for StableOptions {
    fn default() -> Self {
        StableOptions {
            eval: EvalOptions::default(),
            max_unknowns: 20,
        }
    }
}

/// Error: too many unknown facts for exhaustive stable-model search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TooManyUnknowns {
    /// Number of unknown facts in the well-founded model.
    pub unknowns: usize,
    /// The configured bound.
    pub bound: usize,
}

impl std::fmt::Display for TooManyUnknowns {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} unknown facts exceed the stable-model search bound of {}",
            self.unknowns, self.bound
        )
    }
}

impl std::error::Error for TooManyUnknowns {}

/// Errors from stable-model enumeration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StableError {
    /// Underlying evaluation error.
    Eval(EvalError),
    /// The 2^u search bound was exceeded.
    TooManyUnknowns(TooManyUnknowns),
}

impl std::fmt::Display for StableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StableError::Eval(e) => write!(f, "{e}"),
            StableError::TooManyUnknowns(t) => write!(f, "{t}"),
        }
    }
}

impl std::error::Error for StableError {}

impl From<EvalError> for StableError {
    fn from(e: EvalError) -> Self {
        StableError::Eval(e)
    }
}

/// The least fixpoint of the Gelfond–Lifschitz reduct `P/M` over
/// `input`: negative literals are checked against the *fixed* candidate
/// `M` while positive facts accumulate from the input.
fn reduct_lfp(
    program: &Program,
    input: &Instance,
    candidate: &Instance,
    adom: &[unchained_common::Value],
    options: &EvalOptions,
) -> Result<Instance, EvalError> {
    use crate::exec::{for_each_match, Sources};
    use crate::planner::plan_rule;
    use crate::subst::instantiate;
    use std::ops::ControlFlow;
    use unchained_parser::HeadLiteral;
    let plans: Vec<_> = program.rules.iter().map(plan_rule).collect();
    let mut cache = IndexCache::new();
    let mut instance = input.clone();
    let mut stage = 0usize;
    loop {
        stage += 1;
        if options.max_stages.is_some_and(|m| stage > m) {
            return Err(EvalError::StageLimitExceeded(stage - 1));
        }
        let mut new_facts = Vec::new();
        for (rule, plan) in program.rules.iter().zip(&plans) {
            let HeadLiteral::Pos(head) = &rule.head[0] else {
                unreachable!("Datalog¬ heads are positive")
            };
            let sources = Sources {
                full: &instance,
                delta: None,
                neg: Some(candidate),
                delta_from: None,
            };
            let _ = for_each_match(plan, sources, adom, &mut cache, &mut |env| {
                let tuple = instantiate(&head.args, env);
                if !instance.contains_fact(head.pred, &tuple) {
                    new_facts.push((head.pred, tuple));
                }
                ControlFlow::Continue(())
            });
        }
        let mut changed = false;
        for (pred, tuple) in new_facts {
            changed |= instance.insert_fact(pred, tuple);
        }
        if !changed {
            return Ok(instance);
        }
    }
}

/// True iff `model` is a stable model of `program` on `input`.
pub fn is_stable_model(
    program: &Program,
    input: &Instance,
    model: &Instance,
    options: EvalOptions,
) -> Result<bool, EvalError> {
    require_language(program, Language::DatalogNeg)?;
    check_range_restricted(program, false)?;
    let adom = active_domain(program, input);
    let lfp = reduct_lfp(program, input, model, &adom, &options)?;
    Ok(lfp.same_facts(model))
}

/// Enumerates all stable models of a Datalog¬ program on `input`,
/// sorted deterministically.
///
/// ```
/// use unchained_common::{Instance, Interner};
/// use unchained_core::stable::{stable_models, StableOptions};
/// use unchained_parser::parse_program;
///
/// let mut interner = Interner::new();
/// // The mutual-exclusion pair: two stable models, {p} and {q}.
/// let program = parse_program("p :- !q. q :- !p.", &mut interner).unwrap();
/// let models = stable_models(&program, &Instance::new(), StableOptions::default()).unwrap();
/// assert_eq!(models.len(), 2);
/// ```
///
/// Candidates are `WF.true ∪ S` for each subset `S` of the well-founded
/// model's unknown facts (every stable model lies in that interval).
///
/// # Errors
/// [`StableError::TooManyUnknowns`] when the unknown-fact count exceeds
/// `options.max_unknowns`, plus any underlying evaluation error.
pub fn stable_models(
    program: &Program,
    input: &Instance,
    options: StableOptions,
) -> Result<Vec<Instance>, StableError> {
    require_language(program, Language::DatalogNeg).map_err(StableError::Eval)?;
    check_range_restricted(program, false)
        .map_err(|e| StableError::Eval(EvalError::Analysis(e)))?;
    // The stable engine owns the trace; inner well-founded and reduct
    // runs get a muted handle so candidate churn doesn't clobber it.
    let tel = options.eval.telemetry.clone();
    tel.begin("stable");
    let run_sw = tel.stopwatch();
    let tracer = tel.tracer().clone();
    let eval_guard = tracer.span(SpanKind::Eval, "stable");
    let inner = options.eval.clone().with_telemetry(Telemetry::off());
    let wf_phase = tracer.span(SpanKind::Phase, "wellfounded interval");
    let wf = wellfounded::eval(program, input, inner.clone())?;
    let unknowns: Vec<(unchained_common::Symbol, Tuple)> = wf.unknown_facts();
    tracer.gauge("true_facts", wf.true_facts.fact_count() as u64);
    tracer.gauge("unknowns", unknowns.len() as u64);
    drop(wf_phase);
    if unknowns.len() > options.max_unknowns {
        return Err(StableError::TooManyUnknowns(TooManyUnknowns {
            unknowns: unknowns.len(),
            bound: options.max_unknowns,
        }));
    }
    let adom = active_domain(program, input);
    let mut models = Vec::new();
    for mask in 0u64..(1u64 << unknowns.len()) {
        let mut candidate = wf.true_facts.clone();
        for (bit, (pred, tuple)) in unknowns.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                candidate.insert_fact(*pred, tuple.clone());
            }
        }
        let candidate_start = tracer.now_nanos();
        let lfp = reduct_lfp(program, input, &candidate, &adom, &inner)?;
        let stable = lfp.same_facts(&candidate);
        if tracer.is_enabled() {
            let mut leaf = Span::leaf(SpanKind::Phase, format!("candidate {mask}"));
            leaf.start_nanos = candidate_start;
            leaf.dur_nanos = tracer.now_nanos().saturating_sub(candidate_start);
            leaf.gauges.push(("stable", u64::from(stable)));
            tracer.leaf(leaf);
        }
        if stable {
            models.push(candidate);
        }
    }
    models.sort_by_cached_key(|m| format!("{m:?}"));
    tracer.gauge("models", models.len() as u64);
    drop(eval_guard);
    tel.note(format!(
        "well-founded interval: {} true facts, {} unknown; {} candidates tested, {} stable",
        wf.true_facts.fact_count(),
        unknowns.len(),
        1u64 << unknowns.len(),
        models.len()
    ));
    tel.finish(
        &run_sw,
        models
            .first()
            .map_or(wf.true_facts.fact_count(), Instance::fact_count),
    );
    Ok(models)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unchained_common::{Interner, Value};
    use unchained_parser::parse_program;

    #[test]
    fn paper_game_has_no_stable_model() {
        // Example 3.2's instance: the drawn odd cycle a→b→c→a forces a
        // contradiction, so no stable model exists — the historical
        // motivation for the well-founded semantics.
        let mut i = Interner::new();
        let program = parse_program("win(x) :- moves(x,y), !win(y).", &mut i).unwrap();
        let moves = i.get("moves").unwrap();
        let mut input = Instance::new();
        let s = |i: &mut Interner, n: &str| Value::sym(i, n);
        let nodes: Vec<Value> = ["a", "b", "c", "d", "e", "f", "g"]
            .iter()
            .map(|n| s(&mut i, n))
            .collect();
        let (a, b, c, d, e, f, g) = (
            nodes[0], nodes[1], nodes[2], nodes[3], nodes[4], nodes[5], nodes[6],
        );
        for (x, y) in [(b, c), (c, a), (a, b), (a, d), (d, e), (d, f), (f, g)] {
            input.insert_fact(moves, Tuple::from([x, y]));
        }
        let models = stable_models(&program, &input, StableOptions::default()).unwrap();
        assert!(models.is_empty());
    }

    #[test]
    fn two_cycle_game_has_two_stable_models() {
        // a ↔ b: stable models are {win(a)} and {win(b)} (the two
        // kernels of the 2-cycle).
        let mut i = Interner::new();
        let program = parse_program("win(x) :- moves(x,y), !win(y).", &mut i).unwrap();
        let moves = i.get("moves").unwrap();
        let win = i.get("win").unwrap();
        let a = Value::sym(&mut i, "a");
        let b = Value::sym(&mut i, "b");
        let mut input = Instance::new();
        input.insert_fact(moves, Tuple::from([a, b]));
        input.insert_fact(moves, Tuple::from([b, a]));
        let models = stable_models(&program, &input, StableOptions::default()).unwrap();
        assert_eq!(models.len(), 2);
        for m in &models {
            let wins = m.relation(win).unwrap();
            assert_eq!(wins.len(), 1);
        }
        let has_a = models
            .iter()
            .any(|m| m.contains_fact(win, &Tuple::from([a])));
        let has_b = models
            .iter()
            .any(|m| m.contains_fact(win, &Tuple::from([b])));
        assert!(has_a && has_b);
    }

    #[test]
    fn stratified_program_has_unique_stable_model() {
        let mut i = Interner::new();
        let program = parse_program(
            "T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y). CT(x,y) :- !T(x,y).",
            &mut i,
        )
        .unwrap();
        let g = i.get("G").unwrap();
        let mut input = Instance::new();
        input.insert_fact(g, Tuple::from([Value::Int(0), Value::Int(1)]));
        input.insert_fact(g, Tuple::from([Value::Int(1), Value::Int(2)]));
        let models = stable_models(&program, &input, StableOptions::default()).unwrap();
        assert_eq!(models.len(), 1);
        let strat = crate::stratified::eval(&program, &input, EvalOptions::default()).unwrap();
        assert!(models[0].same_facts(&strat.instance));
    }

    #[test]
    fn p_not_q_mutual_exclusion() {
        // p :- !q. q :- !p. — two stable models: {p} and {q}.
        let mut i = Interner::new();
        let program = parse_program("p :- !q. q :- !p.", &mut i).unwrap();
        let models = stable_models(&program, &Instance::new(), StableOptions::default()).unwrap();
        assert_eq!(models.len(), 2);
        let p = i.get("p").unwrap();
        let q = i.get("q").unwrap();
        for m in &models {
            let has_p = m.contains_fact(p, &Tuple::from([]));
            let has_q = m.contains_fact(q, &Tuple::from([]));
            assert!(has_p ^ has_q);
        }
    }

    #[test]
    fn odd_loop_has_no_stable_model() {
        // p :- !p. — the canonical incoherent program.
        let mut i = Interner::new();
        let program = parse_program("p :- !p.", &mut i).unwrap();
        let models = stable_models(&program, &Instance::new(), StableOptions::default()).unwrap();
        assert!(models.is_empty());
    }

    #[test]
    fn stable_models_lie_in_wellfounded_interval() {
        let mut i = Interner::new();
        let program = parse_program("win(x) :- moves(x,y), !win(y).", &mut i).unwrap();
        let moves = i.get("moves").unwrap();
        let win = i.get("win").unwrap();
        // 4-cycle: two stable models (alternating kernels).
        let mut input = Instance::new();
        for k in 0..4i64 {
            input.insert_fact(moves, Tuple::from([Value::Int(k), Value::Int((k + 1) % 4)]));
        }
        let wf = wellfounded::eval(&program, &input, EvalOptions::default()).unwrap();
        let models = stable_models(&program, &input, StableOptions::default()).unwrap();
        assert_eq!(models.len(), 2);
        for m in &models {
            // WF.true ⊆ M ⊆ WF.possible on the win relation.
            for t in wf
                .true_facts
                .relation(win)
                .into_iter()
                .flat_map(|r| r.iter())
            {
                assert!(m.contains_fact(win, t));
            }
            for t in m.relation(win).unwrap().iter() {
                assert!(wf.possible_facts.contains_fact(win, t));
            }
        }
    }

    #[test]
    fn is_stable_model_checks_directly() {
        let mut i = Interner::new();
        let program = parse_program("p :- !q. q :- !p.", &mut i).unwrap();
        let p = i.get("p").unwrap();
        let q = i.get("q").unwrap();
        let mut m_p = Instance::new();
        m_p.insert_fact(p, Tuple::from([]));
        assert!(is_stable_model(&program, &Instance::new(), &m_p, EvalOptions::default()).unwrap());
        let mut m_both = m_p.clone();
        m_both.insert_fact(q, Tuple::from([]));
        assert!(
            !is_stable_model(&program, &Instance::new(), &m_both, EvalOptions::default()).unwrap()
        );
        assert!(!is_stable_model(
            &program,
            &Instance::new(),
            &Instance::new(),
            EvalOptions::default()
        )
        .unwrap());
    }

    #[test]
    fn unknown_budget_enforced() {
        let mut i = Interner::new();
        let program = parse_program("win(x) :- moves(x,y), !win(y).", &mut i).unwrap();
        let moves = i.get("moves").unwrap();
        let mut input = Instance::new();
        // A big even cycle: every win fact is unknown under WF.
        for k in 0..30i64 {
            input.insert_fact(
                moves,
                Tuple::from([Value::Int(k), Value::Int((k + 1) % 30)]),
            );
        }
        let err = stable_models(
            &program,
            &input,
            StableOptions {
                max_unknowns: 8,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, StableError::TooManyUnknowns(_)));
    }
}

//! Incremental view maintenance (IVM): a long-lived evaluation session
//! that keeps a stratified Datalog¬ fixpoint synchronized with
//! insert/retract batches on the EDB instead of recomputing from
//! scratch.
//!
//! Inserts propagate through the same semi-naive Δ-variant plans the
//! batch engines use, driven over a scratch change set via
//! [`Sources::delta_from`]. Deletes use DRed-style maintenance: an
//! *overdelete* pass computes an overestimate of the tuples whose
//! support may be gone (Δ plans over the deleted set, every other
//! literal pinned to the pre-update fixpoint), then a *rederive* pass
//! restores each withdrawn tuple that still has alternative support in
//! the new state, queried through bound-head plans whose head variables
//! become index probe keys. Strata without same-stratum positive
//! dependencies additionally keep lazy support counts: a deletion that
//! leaves a positive stored count is absorbed without any support
//! query. Stored counts only ever *under*-estimate the true number of
//! derivations (Δ-matches over-count lost derivations, and new support
//! merely invalidates), so a non-positive count conservatively falls
//! back to an exact recount — see DESIGN.md § Incremental maintenance
//! for why this is safe exactly there and not under recursion.
//!
//! Two changes force a stratum back onto the batch path ([`PollStats::
//! strata_recomputed`]): a change to a negated predicate (deletion
//! under negation can *grow* the stratum, which Δ plans over positive
//! literals cannot see), and an active-domain change under a rule with
//! a variable not bound by any positive literal (its `Domain` steps
//! enumerate the adom). Both recompute the stratum from scratch and
//! diff, so downstream strata still see a minimal change set.

use std::ops::ControlFlow;

use crate::error::EvalError;
use crate::exec::{for_each_head, for_each_match_from, IndexCache, Sources};
use crate::ir::Plan;
use crate::options::EvalOptions;
use crate::planner::{Catalog, PlanMode, Planner};
use crate::require_language;
use crate::seminaive::seminaive_fixpoint;
use crate::subst::{active_domain, Env};
use unchained_common::{
    DeltaHandle, FxHashMap, FxHashSet, HeapSize, Instance, JoinCounters, Schema, Symbol, Tuple,
    Value,
};
use unchained_parser::{
    check_range_restricted, Atom, DependencyGraph, HeadLiteral, Language, Literal, Program, Rule,
    Stratification, Var,
};

/// One queued EDB edit.
#[derive(Clone, Debug)]
enum Edit {
    Insert(Symbol, Tuple),
    Retract(Symbol, Tuple),
}

/// Deterministic work gauges for one [`IncrementalSession::poll`].
#[derive(Clone, Copy, Debug, Default)]
pub struct PollStats {
    /// Net EDB facts the batch changed (inserts + retracts after
    /// cancellation).
    pub applied: u64,
    /// Net facts added to the maintained instance (EDB and IDB).
    pub facts_added: u64,
    /// Net facts removed from the maintained instance (EDB and IDB).
    pub facts_removed: u64,
    /// Tuples withdrawn by the overdelete pass (the DRed overestimate).
    pub overdeleted: u64,
    /// Withdrawn tuples restored from alternative support.
    pub rederived: u64,
    /// Deletions absorbed by a positive support count, with no support
    /// query at all.
    pub support_hits: u64,
    /// Strata skipped because nothing they read changed.
    pub strata_skipped: u64,
    /// Strata recomputed from scratch (negated input or active domain
    /// changed).
    pub strata_recomputed: u64,
    /// Satisfying valuations enumerated by Δ-variant and support plans
    /// (join-order invariant, like the batch engines' gauge; fallback
    /// recomputation reports its matches through telemetry stages
    /// instead).
    pub rules_fired: u64,
    /// Join work across every phase of the poll.
    pub joins: JoinCounters,
}

/// A long-lived incremental evaluation session over one stratified
/// Datalog¬ program.
///
/// Construction runs the initial fixpoint; afterwards
/// [`insert`](Self::insert)/[`retract`](Self::retract) queue EDB edits
/// and [`poll`](Self::poll) re-stabilizes the IDB strata incrementally.
/// The maintained [`instance`](Self::instance) always equals what
/// [`crate::stratified::eval`] would compute on the current
/// [`edb`](Self::edb) — the edit-script fuzz campaign holds the session
/// to exactly that oracle.
pub struct IncrementalSession {
    program: Program,
    options: EvalOptions,
    stratification: Stratification,
    schema: Schema,
    /// EDB mirror: exactly the input a from-scratch run would receive.
    edb: Instance,
    /// The maintained fixpoint (EDB plus all IDB strata).
    instance: Instance,
    /// Active domain of (program, edb) as of the last stabilization.
    adom: Vec<Value>,
    idb: FxHashSet<Symbol>,
    pending: Vec<Edit>,
    /// Long-lived index cache over the maintained instance.
    cache: IndexCache,
    /// Bound-head support plan per program rule (head variables
    /// prebound, so support checks probe instead of scan).
    support_plans: Vec<Plan>,
    /// Head predicate → indices of the rules deriving it.
    rules_for: FxHashMap<Symbol, Vec<usize>>,
    /// Per stratum: eligible for support counting (no rule reads a
    /// same-stratum head positively)?
    counted: Vec<bool>,
    /// Per stratum: some rule has a variable outside every positive
    /// body literal (bound by `Domain` enumeration of the adom)?
    adom_dependent: Vec<bool>,
    /// Lazy derivation counts for counted predicates; absent = unknown,
    /// stored ≤ true count.
    supports: FxHashMap<Symbol, FxHashMap<Tuple, i64>>,
}

impl IncrementalSession {
    /// Creates a session and computes the initial fixpoint.
    ///
    /// # Errors
    /// Rejects everything [`crate::stratified::eval`] rejects, plus
    /// initial instances that already contain facts for IDB predicates
    /// (input IDB facts would have no derivation to maintain).
    pub fn new(
        program: Program,
        input: &Instance,
        options: EvalOptions,
    ) -> Result<Self, EvalError> {
        require_language(&program, Language::DatalogNeg)?;
        check_range_restricted(&program, false)?;
        let stratification = DependencyGraph::build(&program).stratify()?;
        let schema = program.schema()?;
        let idb: FxHashSet<Symbol> = program.idb().into_iter().collect();
        for (pred, rel) in input.iter() {
            if idb.contains(&pred) && !rel.is_empty() {
                return Err(EvalError::InvalidUpdate(
                    "initial instance contains facts for a derived (IDB) predicate".into(),
                ));
            }
        }

        let adom = active_domain(&program, input);
        let mut instance = input.clone();
        for pred in program.idb() {
            instance.ensure(pred, schema.arity(pred).expect("idb has arity"));
        }
        let mut cache = IndexCache::new();
        options.telemetry.begin("ivm");

        let mut counted = Vec::new();
        let mut adom_dependent = Vec::new();
        for stratum_rules in stratification.partition_rules(&program) {
            let heads: FxHashSet<Symbol> = stratum_rules
                .iter()
                .filter_map(|r| r.head.first().and_then(HeadLiteral::atom))
                .map(|a| a.pred)
                .collect();
            let reads_own_stratum = stratum_rules.iter().any(|r| {
                r.body
                    .iter()
                    .any(|l| matches!(l, Literal::Pos(a) if heads.contains(&a.pred)))
            });
            counted.push(!reads_own_stratum);
            adom_dependent.push(stratum_rules.iter().any(|r| {
                let mut pos_vars: FxHashSet<Var> = FxHashSet::default();
                for l in &r.body {
                    if let Literal::Pos(a) = l {
                        pos_vars.extend(a.vars());
                    }
                }
                r.head_vars()
                    .into_iter()
                    .chain(r.body_vars())
                    .any(|v| !pos_vars.contains(&v))
            }));
            if stratum_rules.is_empty() {
                continue;
            }
            seminaive_fixpoint(
                &stratum_rules,
                &mut instance,
                &adom,
                &heads,
                &mut cache,
                &options,
            )?;
        }

        // Bound-head support plans: one per rule, head variables
        // prebound so a support check for a concrete tuple starts from
        // index probes on the head bindings.
        let mut planner = Planner::new(Catalog::from_instance(&instance), options.plan_mode);
        let mut rules_for: FxHashMap<Symbol, Vec<usize>> = FxHashMap::default();
        let mut support_plans = Vec::with_capacity(program.rules.len());
        for (ri, rule) in program.rules.iter().enumerate() {
            let head = head_atom(rule);
            rules_for.entry(head.pred).or_default().push(ri);
            let mut prebound: Vec<Var> = Vec::new();
            for v in head.vars() {
                if !prebound.contains(&v) {
                    prebound.push(v);
                }
            }
            support_plans.push(planner.plan_rule_bound(rule, &prebound));
        }

        Ok(IncrementalSession {
            edb: input.clone(),
            program,
            options,
            stratification,
            schema,
            instance,
            adom,
            idb,
            pending: Vec::new(),
            cache,
            support_plans,
            rules_for,
            counted,
            adom_dependent,
            supports: FxHashMap::default(),
        })
    }

    /// The maintained instance (EDB plus derived strata). Between a
    /// queued edit and the next [`poll`](Self::poll) this reflects the
    /// *previous* stable state.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The EDB mirror: the input a from-scratch evaluation of the same
    /// program would receive right now (queued edits not yet applied).
    pub fn edb(&self) -> &Instance {
        &self.edb
    }

    /// The program this session maintains.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Number of queued, not-yet-polled edits.
    pub fn pending_edits(&self) -> usize {
        self.pending.len()
    }

    /// The IDB portion of the maintained instance (the paper's answer
    /// restriction).
    pub fn answer(&self) -> Instance {
        self.instance.project_schema(self.program.idb())
    }

    /// Queues an EDB insertion.
    ///
    /// # Errors
    /// Rejects edits on IDB predicates and arity mismatches.
    pub fn insert(&mut self, pred: Symbol, tuple: Tuple) -> Result<(), EvalError> {
        self.validate_edit(pred, &tuple)?;
        self.pending.push(Edit::Insert(pred, tuple));
        Ok(())
    }

    /// Queues an EDB retraction.
    ///
    /// # Errors
    /// Rejects edits on IDB predicates and arity mismatches.
    pub fn retract(&mut self, pred: Symbol, tuple: Tuple) -> Result<(), EvalError> {
        self.validate_edit(pred, &tuple)?;
        self.pending.push(Edit::Retract(pred, tuple));
        Ok(())
    }

    fn validate_edit(&self, pred: Symbol, tuple: &Tuple) -> Result<(), EvalError> {
        if self.idb.contains(&pred) {
            return Err(EvalError::InvalidUpdate(
                "edits must target EDB relations, but this predicate is derived by a rule".into(),
            ));
        }
        let expected = self.schema.arity(pred).or_else(|| {
            self.edb
                .relation(pred)
                .map(unchained_common::Relation::arity)
        });
        if let Some(arity) = expected {
            if arity != tuple.arity() {
                return Err(EvalError::InvalidUpdate(format!(
                    "arity mismatch: relation has arity {arity}, tuple has arity {}",
                    tuple.arity()
                )));
            }
        }
        Ok(())
    }

    /// Applies every queued edit and re-stabilizes the IDB strata
    /// incrementally.
    ///
    /// # Errors
    /// Propagates the stage/fact budget errors of [`EvalOptions`]; the
    /// session stays usable only if `poll` returns `Ok`.
    pub fn poll(&mut self) -> Result<PollStats, EvalError> {
        let mut stats = PollStats::default();
        if self.pending.is_empty() {
            return Ok(stats);
        }
        let joins_entry = self.cache.counters;
        let poll_sw = self.options.telemetry.stopwatch();

        // Net EDB change: apply the batch to the mirror in order, then
        // diff — inserting and retracting the same tuple in one batch
        // cancels out.
        let edb_before = self.edb.clone();
        for edit in std::mem::take(&mut self.pending) {
            match edit {
                Edit::Insert(pred, tuple) => {
                    self.edb.insert_fact(pred, tuple);
                }
                Edit::Retract(pred, tuple) => {
                    self.edb.retract_fact(pred, &tuple);
                }
            }
        }
        let mut deleted = Instance::new();
        let mut inserted = Instance::new();
        let mut edb_preds: Vec<Symbol> = edb_before.symbols().chain(self.edb.symbols()).collect();
        edb_preds.sort_unstable();
        edb_preds.dedup();
        for pred in edb_preds {
            diff_pred(&edb_before, &self.edb, pred, &mut deleted, &mut inserted);
        }
        stats.applied = (deleted.fact_count() + inserted.fact_count()) as u64;
        if deleted.is_empty() && inserted.is_empty() {
            return Ok(stats);
        }

        // Pin the pre-update fixpoint, then apply the EDB net change to
        // the maintained instance.
        let old = self.instance.clone();
        for (pred, rel) in deleted.iter() {
            for t in rel.iter() {
                self.instance.retract_fact(pred, t);
            }
        }
        for (pred, rel) in inserted.iter() {
            for t in rel.iter() {
                self.instance.insert_fact(pred, t.clone());
            }
        }
        self.instance.commit_all();

        let adom = active_domain(&self.program, &self.edb);
        let adom_changed = adom != self.adom;
        self.adom = adom.clone();

        // Reads of the pre-update fixpoint and the scratch delete set go
        // through a per-poll cache: they would otherwise collide with
        // the session cache's entries for the live instance.
        let mut old_cache = IndexCache::new();
        let touched =
            |change: &Instance, p: Symbol| change.relation(p).is_some_and(|r| !r.is_empty());

        for (stratum, stratum_rules) in self
            .stratification
            .partition_rules(&self.program)
            .into_iter()
            .enumerate()
        {
            if stratum_rules.is_empty() {
                continue;
            }
            let heads: FxHashSet<Symbol> = stratum_rules
                .iter()
                .filter_map(|r| r.head.first().and_then(HeadLiteral::atom))
                .map(|a| a.pred)
                .collect();
            let mut pos_preds: FxHashSet<Symbol> = FxHashSet::default();
            let mut neg_preds: FxHashSet<Symbol> = FxHashSet::default();
            for rule in &stratum_rules {
                for lit in &rule.body {
                    match lit {
                        Literal::Pos(a) => {
                            pos_preds.insert(a.pred);
                        }
                        Literal::Neg(a) => {
                            neg_preds.insert(a.pred);
                        }
                        _ => {}
                    }
                }
            }
            let neg_changed = neg_preds
                .iter()
                .any(|&p| touched(&deleted, p) || touched(&inserted, p));
            if neg_changed || (adom_changed && self.adom_dependent[stratum]) {
                // Batch fallback: Δ plans over positive literals cannot
                // see growth caused by deletion under negation or by a
                // shifted active domain.
                for &p in &heads {
                    if let Some(rel) = self.instance.relation_mut(p) {
                        rel.clear();
                    }
                    self.supports.remove(&p);
                }
                seminaive_fixpoint(
                    &stratum_rules,
                    &mut self.instance,
                    &adom,
                    &heads,
                    &mut self.cache,
                    &self.options,
                )?;
                diff_heads(&heads, &old, &self.instance, &mut deleted, &mut inserted);
                stats.strata_recomputed += 1;
                continue;
            }
            let del_hit = pos_preds.iter().any(|&p| touched(&deleted, p));
            let ins_hit = pos_preds.iter().any(|&p| touched(&inserted, p));
            if !del_hit && !ins_hit {
                stats.strata_skipped += 1;
                continue;
            }
            if del_hit {
                if self.counted[stratum] {
                    counted_delete(
                        &stratum_rules,
                        &old,
                        &deleted,
                        &mut self.instance,
                        &mut self.supports,
                        &self.program,
                        &self.rules_for,
                        &self.support_plans,
                        &adom,
                        &mut old_cache,
                        &mut self.cache,
                        self.options.plan_mode,
                        &mut stats,
                    );
                } else {
                    let overdeleted = overdelete_closure(
                        &stratum_rules,
                        &old,
                        &deleted,
                        &mut self.instance,
                        &adom,
                        &mut old_cache,
                        self.options.plan_mode,
                        self.options.max_stages,
                        &mut stats,
                    )?;
                    rederive(
                        &overdeleted,
                        &self.program,
                        &self.rules_for,
                        &self.support_plans,
                        &mut self.instance,
                        &adom,
                        &mut self.cache,
                        &mut stats,
                    );
                }
            }
            if ins_hit {
                insert_closure(
                    &stratum_rules,
                    &mut self.instance,
                    &inserted,
                    &mut self.supports,
                    &adom,
                    &mut self.cache,
                    &self.options,
                    &mut stats,
                )?;
            }
            diff_heads(&heads, &old, &self.instance, &mut deleted, &mut inserted);
        }

        self.instance.commit_all();
        stats.facts_removed = deleted.fact_count() as u64;
        stats.facts_added = inserted.fact_count() as u64;
        stats.joins = self.cache.counters.since(&joins_entry);
        stats.joins.absorb(&old_cache.counters);
        // Each poll is one telemetry stage, so a trace of a session
        // reads as: initial fixpoint rounds, then one record per poll.
        let (facts, bytes) = (
            self.instance.fact_count(),
            self.instance.heap_bytes() as u64,
        );
        self.options.telemetry.with(|t| {
            t.ivm_overdeleted += stats.overdeleted;
            t.ivm_rederived += stats.rederived;
            t.stages.push(unchained_common::StageRecord {
                stage: t.stages.len() + 1,
                wall_nanos: poll_sw.nanos(),
                facts_added: stats.facts_added as usize,
                facts_removed: stats.facts_removed as usize,
                rules_fired: stats.rules_fired,
                delta: Vec::new(),
                bytes,
                joins: stats.joins,
            });
            t.peak_facts = t.peak_facts.max(facts);
            t.bytes_peak = t.bytes_peak.max(bytes);
        });
        Ok(stats)
    }
}

fn head_atom(rule: &Rule) -> &Atom {
    match &rule.head[0] {
        HeadLiteral::Pos(a) => a,
        _ => unreachable!("Datalog¬ rules have a single positive head"),
    }
}

/// Seeds a valuation environment from a concrete head tuple: `None` if
/// the tuple contradicts a head constant or a repeated head variable.
fn seed_env(head: &Atom, tuple: &Tuple, var_count: usize) -> Option<Env> {
    let mut env: Env = vec![None; var_count];
    for (i, term) in head.args.iter().enumerate() {
        match term {
            unchained_parser::Term::Const(v) => {
                if *v != tuple[i] {
                    return None;
                }
            }
            unchained_parser::Term::Var(v) => match env[v.index()] {
                Some(existing) => {
                    if existing != tuple[i] {
                        return None;
                    }
                }
                None => env[v.index()] = Some(tuple[i]),
            },
        }
    }
    Some(env)
}

/// Extends `deleted`/`inserted` with `new` vs `old` on one predicate.
fn diff_pred(
    old: &Instance,
    new: &Instance,
    pred: Symbol,
    deleted: &mut Instance,
    inserted: &mut Instance,
) {
    let old_rel = old.relation(pred);
    let new_rel = new.relation(pred);
    if let Some(o) = old_rel {
        for t in o.iter() {
            if !new_rel.is_some_and(|n| n.contains(t)) {
                deleted.insert_fact(pred, t.clone());
            }
        }
    }
    if let Some(n) = new_rel {
        for t in n.iter() {
            if !old_rel.is_some_and(|o| o.contains(t)) {
                inserted.insert_fact(pred, t.clone());
            }
        }
    }
}

fn diff_heads(
    heads: &FxHashSet<Symbol>,
    old: &Instance,
    new: &Instance,
    deleted: &mut Instance,
    inserted: &mut Instance,
) {
    let mut preds: Vec<Symbol> = heads.iter().copied().collect();
    preds.sort_unstable();
    for pred in preds {
        diff_pred(old, new, pred, deleted, inserted);
    }
}

/// Counts derivations of `tuple` (or just probes for one, with
/// `first_only`) across every rule whose head predicate matches,
/// against the current `instance`.
#[allow(clippy::too_many_arguments)]
fn count_support(
    pred: Symbol,
    tuple: &Tuple,
    program: &Program,
    rules_for: &FxHashMap<Symbol, Vec<usize>>,
    support_plans: &[Plan],
    instance: &Instance,
    adom: &[Value],
    cache: &mut IndexCache,
    stats: &mut PollStats,
    first_only: bool,
) -> u64 {
    let mut count = 0u64;
    let Some(rule_indices) = rules_for.get(&pred) else {
        return 0;
    };
    for &ri in rule_indices {
        let rule = &program.rules[ri];
        let Some(mut env) = seed_env(head_atom(rule), tuple, rule.var_count()) else {
            continue;
        };
        let _ = for_each_match_from(
            &support_plans[ri],
            Sources::simple(instance),
            adom,
            cache,
            &mut env,
            &mut |_| {
                count += 1;
                if first_only {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            },
        );
        if first_only && count > 0 {
            break;
        }
    }
    stats.rules_fired += count;
    count
}

/// The DRed overdelete closure for one stratum: Δ-variant plans driven
/// over the scratch delete set, every other literal reading the
/// pre-update fixpoint `old`. Affected head tuples are withdrawn from
/// `instance` and fed back into the delete set until nothing new is
/// reachable. Returns the withdrawn tuples, in withdrawal order.
#[allow(clippy::too_many_arguments)]
fn overdelete_closure(
    stratum_rules: &[&Rule],
    old: &Instance,
    seed: &Instance,
    instance: &mut Instance,
    adom: &[Value],
    old_cache: &mut IndexCache,
    plan_mode: PlanMode,
    max_stages: Option<usize>,
    stats: &mut PollStats,
) -> Result<Vec<(Symbol, Tuple)>, EvalError> {
    let mut ddel = seed.clone();
    // The default handle marks everything in the seed as new; captured
    // marks restrict later rounds to that round's additions.
    let mut mark = DeltaHandle::default();
    let mut overdeleted: Vec<(Symbol, Tuple)> = Vec::new();
    let mut planner = Planner::new(Catalog::from_instance(old), plan_mode);
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        if max_stages.is_some_and(|m| rounds > m) {
            return Err(EvalError::StageLimitExceeded(rounds - 1));
        }
        old_cache.begin_delta_round();
        let del_preds: FxHashSet<Symbol> = ddel
            .iter()
            .filter(|(_, r)| !r.is_empty())
            .map(|(p, _)| p)
            .collect();
        let mut found: Vec<(Symbol, Tuple)> = Vec::new();
        for rule in stratum_rules {
            let head = head_atom(rule);
            for plan in planner.seminaive_variants(rule, &|p| del_preds.contains(&p)) {
                stats.rules_fired += for_each_head(
                    &plan,
                    &head.args,
                    Sources {
                        full: old,
                        delta: Some(&mark),
                        neg: None,
                        delta_from: Some(&ddel),
                    },
                    adom,
                    old_cache,
                    &mut |tuple| {
                        if instance.contains_fact(head.pred, &tuple) {
                            found.push((head.pred, tuple));
                        }
                    },
                );
            }
        }
        if found.is_empty() {
            return Ok(overdeleted);
        }
        mark = DeltaHandle::capture(&ddel);
        for (pred, tuple) in found {
            if ddel.insert_fact(pred, tuple.clone()) {
                instance.retract_fact(pred, &tuple);
                stats.overdeleted += 1;
                overdeleted.push((pred, tuple));
            }
        }
    }
}

/// The DRed rederivation pass: each withdrawn tuple that still has a
/// derivation from surviving (certified) facts is restored. Iterates to
/// fixpoint because a restored tuple can in turn support another
/// candidate.
#[allow(clippy::too_many_arguments)]
fn rederive(
    candidates: &[(Symbol, Tuple)],
    program: &Program,
    rules_for: &FxHashMap<Symbol, Vec<usize>>,
    support_plans: &[Plan],
    instance: &mut Instance,
    adom: &[Value],
    cache: &mut IndexCache,
    stats: &mut PollStats,
) {
    loop {
        let mut changed = false;
        for (pred, tuple) in candidates {
            if instance.contains_fact(*pred, tuple) {
                continue;
            }
            let supported = count_support(
                *pred,
                tuple,
                program,
                rules_for,
                support_plans,
                instance,
                adom,
                cache,
                stats,
                true,
            ) > 0;
            if supported {
                instance.insert_fact(*pred, tuple.clone());
                stats.rederived += 1;
                changed = true;
            }
        }
        if !changed {
            return;
        }
    }
}

/// Support-counted deletion for a stratum with no same-stratum positive
/// dependencies: one Δ pass over the accumulated deletions finds every
/// affected head tuple (no cascade is possible within the stratum), a
/// stored count that stays positive absorbs the deletion outright, and
/// anything else gets an exact recount against the new state.
#[allow(clippy::too_many_arguments)]
fn counted_delete(
    stratum_rules: &[&Rule],
    old: &Instance,
    seed: &Instance,
    instance: &mut Instance,
    supports: &mut FxHashMap<Symbol, FxHashMap<Tuple, i64>>,
    program: &Program,
    rules_for: &FxHashMap<Symbol, Vec<usize>>,
    support_plans: &[Plan],
    adom: &[Value],
    old_cache: &mut IndexCache,
    cache: &mut IndexCache,
    plan_mode: PlanMode,
    stats: &mut PollStats,
) {
    let mark = DeltaHandle::default();
    let del_preds: FxHashSet<Symbol> = seed
        .iter()
        .filter(|(_, r)| !r.is_empty())
        .map(|(p, _)| p)
        .collect();
    let mut planner = Planner::new(Catalog::from_instance(old), plan_mode);
    let mut affected: Vec<(Symbol, Tuple)> = Vec::new();
    let mut seen: FxHashSet<(Symbol, Tuple)> = FxHashSet::default();
    old_cache.begin_delta_round();
    for rule in stratum_rules {
        let head = head_atom(rule);
        for plan in planner.seminaive_variants(rule, &|p| del_preds.contains(&p)) {
            stats.rules_fired += for_each_head(
                &plan,
                &head.args,
                Sources {
                    full: old,
                    delta: Some(&mark),
                    neg: None,
                    delta_from: Some(seed),
                },
                adom,
                old_cache,
                &mut |tuple| {
                    if !instance.contains_fact(head.pred, &tuple) {
                        return;
                    }
                    // Every Δ-match witnesses a (possibly repeated)
                    // lost derivation: decrementing once per match can
                    // only push the stored count *below* the truth,
                    // which is the safe direction.
                    if let Some(c) = supports.get_mut(&head.pred).and_then(|m| m.get_mut(&tuple)) {
                        *c -= 1;
                    }
                    let key = (head.pred, tuple);
                    if seen.insert(key.clone()) {
                        affected.push(key);
                    }
                },
            );
        }
    }
    for (pred, tuple) in affected {
        if let Some(&c) = supports.get(&pred).and_then(|m| m.get(&tuple)) {
            if c > 0 {
                stats.support_hits += 1;
                continue;
            }
        }
        let count = count_support(
            pred,
            &tuple,
            program,
            rules_for,
            support_plans,
            instance,
            adom,
            cache,
            stats,
            false,
        );
        supports
            .entry(pred)
            .or_default()
            .insert(tuple.clone(), count as i64);
        if count == 0 {
            instance.retract_fact(pred, &tuple);
        }
    }
}

/// Semi-naive insertion propagation for one stratum: Δ-variant plans
/// over a scratch insert set, full scans against the live (growing)
/// instance. Stored support counts of re-derived tuples are invalidated
/// rather than incremented — a Δ-match with `k` new body tuples is
/// enumerated `k` times, so incrementing could overshoot the truth.
#[allow(clippy::too_many_arguments)]
fn insert_closure(
    stratum_rules: &[&Rule],
    instance: &mut Instance,
    seed: &Instance,
    supports: &mut FxHashMap<Symbol, FxHashMap<Tuple, i64>>,
    adom: &[Value],
    cache: &mut IndexCache,
    options: &EvalOptions,
    stats: &mut PollStats,
) -> Result<(), EvalError> {
    let mut dins = seed.clone();
    let mut mark = DeltaHandle::default();
    let mut planner = Planner::new(Catalog::from_instance(instance), options.plan_mode);
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        if options.max_stages.is_some_and(|m| rounds > m) {
            return Err(EvalError::StageLimitExceeded(rounds - 1));
        }
        cache.begin_delta_round();
        let ins_preds: FxHashSet<Symbol> = dins
            .iter()
            .filter(|(_, r)| !r.is_empty())
            .map(|(p, _)| p)
            .collect();
        let mut found: Vec<(Symbol, Tuple)> = Vec::new();
        for rule in stratum_rules {
            let head = head_atom(rule);
            for plan in planner.seminaive_variants(rule, &|p| ins_preds.contains(&p)) {
                stats.rules_fired += for_each_head(
                    &plan,
                    &head.args,
                    Sources {
                        full: instance,
                        delta: Some(&mark),
                        neg: None,
                        delta_from: Some(&dins),
                    },
                    adom,
                    cache,
                    &mut |tuple| {
                        if !instance.contains_fact(head.pred, &tuple) {
                            found.push((head.pred, tuple));
                        }
                    },
                );
            }
        }
        if found.is_empty() {
            return Ok(());
        }
        mark = DeltaHandle::capture(&dins);
        for (pred, tuple) in found {
            if instance.insert_fact(pred, tuple.clone()) {
                if let Some(m) = supports.get_mut(&pred) {
                    m.remove(&tuple);
                }
                dins.insert_fact(pred, tuple);
            }
        }
        if options.max_facts.is_some_and(|m| instance.fact_count() > m) {
            return Err(EvalError::FactLimitExceeded(instance.fact_count()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stratified;
    use unchained_common::{Interner, Value};
    use unchained_parser::parse_program;

    fn tc_program(interner: &mut Interner) -> Program {
        parse_program(
            "T(x,y) :- G(x,y).\n\
             T(x,y) :- G(x,z), T(z,y).",
            interner,
        )
        .unwrap()
    }

    fn edge(a: i64, b: i64) -> Tuple {
        Tuple::from([Value::Int(a), Value::Int(b)])
    }

    fn chain(interner: &mut Interner, n: i64) -> Instance {
        let g = interner.intern("G");
        let mut inst = Instance::new();
        for k in 0..n - 1 {
            inst.insert_fact(g, edge(k, k + 1));
        }
        inst
    }

    /// The session must equal a from-scratch run on its current EDB.
    fn assert_matches_scratch(session: &IncrementalSession, interner: &Interner) {
        let scratch =
            stratified::eval(session.program(), session.edb(), EvalOptions::default()).unwrap();
        assert!(
            session.instance().same_facts(&scratch.instance),
            "session diverged from from-scratch evaluation:\nsession:\n{}\nscratch:\n{}",
            session.instance().display(interner),
            scratch.instance.display(interner),
        );
    }

    #[test]
    fn inserts_match_from_scratch() {
        let mut i = Interner::new();
        let p = tc_program(&mut i);
        let g = i.get("G").unwrap();
        let mut s = IncrementalSession::new(p, &chain(&mut i, 4), EvalOptions::default()).unwrap();
        s.insert(g, edge(3, 4)).unwrap();
        s.insert(g, edge(4, 0)).unwrap();
        let stats = s.poll().unwrap();
        assert!(stats.facts_added > 2, "inserts must derive new T facts");
        assert_eq!(stats.facts_removed, 0);
        assert_matches_scratch(&s, &i);
    }

    #[test]
    fn retractions_match_from_scratch() {
        let mut i = Interner::new();
        let p = tc_program(&mut i);
        let g = i.get("G").unwrap();
        let mut s = IncrementalSession::new(p, &chain(&mut i, 6), EvalOptions::default()).unwrap();
        s.retract(g, edge(2, 3)).unwrap();
        let stats = s.poll().unwrap();
        assert!(stats.overdeleted > 0, "a cut chain loses T facts");
        assert!(stats.facts_removed > 1);
        assert_matches_scratch(&s, &i);
    }

    #[test]
    fn alternative_support_is_rederived() {
        let mut i = Interner::new();
        let p = tc_program(&mut i);
        let g = i.get("G").unwrap();
        let t = i.get("T").unwrap();
        let mut input = Instance::new();
        for (a, b) in [(0, 1), (1, 2), (0, 2)] {
            input.insert_fact(g, edge(a, b));
        }
        let mut s = IncrementalSession::new(p, &input, EvalOptions::default()).unwrap();
        s.retract(g, edge(0, 2)).unwrap();
        let stats = s.poll().unwrap();
        // T(0,2) loses its direct edge but survives via G(0,1), T(1,2).
        assert!(s.instance().contains_fact(t, &edge(0, 2)));
        assert!(stats.rederived >= 1, "overdeleted T(0,2) must be restored");
        assert_matches_scratch(&s, &i);
    }

    #[test]
    fn negation_stratum_falls_back_to_recompute() {
        let mut i = Interner::new();
        let p = parse_program(
            "T(x,y) :- G(x,y).\n\
             T(x,y) :- G(x,z), T(z,y).\n\
             CT(x,y) :- !T(x,y).",
            &mut i,
        )
        .unwrap();
        let g = i.get("G").unwrap();
        let mut s = IncrementalSession::new(p, &chain(&mut i, 4), EvalOptions::default()).unwrap();
        s.retract(g, edge(1, 2)).unwrap();
        let stats = s.poll().unwrap();
        assert!(stats.strata_recomputed >= 1, "CT reads ¬T, which shrank");
        assert_matches_scratch(&s, &i);
        // Insert it back: the complement must return to its old state.
        s.insert(g, edge(1, 2)).unwrap();
        s.poll().unwrap();
        assert_matches_scratch(&s, &i);
    }

    #[test]
    fn support_counting_absorbs_deletions_with_remaining_support() {
        let mut i = Interner::new();
        let p = parse_program("P(x) :- A(x). P(x) :- B(x). P(x) :- C(x).", &mut i).unwrap();
        let (a, b, c) = (
            i.get("A").unwrap(),
            i.get("B").unwrap(),
            i.get("C").unwrap(),
        );
        let pp = i.get("P").unwrap();
        let one = Tuple::from([Value::Int(1)]);
        let mut input = Instance::new();
        for pred in [a, b, c] {
            input.insert_fact(pred, one.clone());
        }
        let mut s = IncrementalSession::new(p, &input, EvalOptions::default()).unwrap();
        // First deletion: the count is unknown, so it is established by
        // an exact recount (A and B remain → 2).
        s.retract(c, one.clone()).unwrap();
        let stats = s.poll().unwrap();
        assert_eq!(stats.support_hits, 0);
        assert!(s.instance().contains_fact(pp, &one));
        assert_matches_scratch(&s, &i);
        // Second deletion: 2 − 1 = 1 > 0, absorbed without any query.
        s.retract(a, one.clone()).unwrap();
        let stats = s.poll().unwrap();
        assert_eq!(stats.support_hits, 1);
        assert!(s.instance().contains_fact(pp, &one));
        assert_matches_scratch(&s, &i);
        // Last support gone: 1 − 1 = 0 forces a recount, which deletes.
        s.retract(b, one.clone()).unwrap();
        let stats = s.poll().unwrap();
        assert_eq!(stats.support_hits, 0);
        assert!(!s.instance().contains_fact(pp, &one));
        assert_matches_scratch(&s, &i);
    }

    #[test]
    fn mixed_batch_nets_out_to_nothing() {
        let mut i = Interner::new();
        let p = tc_program(&mut i);
        let g = i.get("G").unwrap();
        let mut s = IncrementalSession::new(p, &chain(&mut i, 4), EvalOptions::default()).unwrap();
        let before = s.instance().clone();
        s.insert(g, edge(7, 8)).unwrap();
        s.retract(g, edge(7, 8)).unwrap();
        let stats = s.poll().unwrap();
        assert_eq!(stats.applied, 0);
        assert!(s.instance().same_facts(&before));
        // An empty poll is a no-op too.
        let stats = s.poll().unwrap();
        assert_eq!(stats.applied, 0);
    }

    #[test]
    fn rejects_idb_edits_arity_mismatches_and_idb_input() {
        let mut i = Interner::new();
        let p = tc_program(&mut i);
        let g = i.get("G").unwrap();
        let t = i.get("T").unwrap();
        let mut s =
            IncrementalSession::new(p.clone(), &chain(&mut i, 3), EvalOptions::default()).unwrap();
        assert!(matches!(
            s.insert(t, edge(0, 1)),
            Err(EvalError::InvalidUpdate(_))
        ));
        assert!(matches!(
            s.retract(g, Tuple::from([Value::Int(0)])),
            Err(EvalError::InvalidUpdate(_))
        ));
        let mut tainted = Instance::new();
        tainted.insert_fact(t, edge(0, 1));
        assert!(matches!(
            IncrementalSession::new(p, &tainted, EvalOptions::default()),
            Err(EvalError::InvalidUpdate(_))
        ));
    }

    #[test]
    fn updates_across_strata_cascade() {
        let mut i = Interner::new();
        // Three strata with only positive inter-stratum dependencies.
        let p = parse_program(
            "T(x,y) :- G(x,y).\n\
             T(x,y) :- G(x,z), T(z,y).\n\
             S(x) :- T(x,x).\n\
             U(x) :- S(x), V(x).",
            &mut i,
        )
        .unwrap();
        let g = i.get("G").unwrap();
        let v = i.get("V").unwrap();
        let mut input = Instance::new();
        for (a, b) in [(0, 1), (1, 2)] {
            input.insert_fact(g, edge(a, b));
        }
        input.insert_fact(v, Tuple::from([Value::Int(0)]));
        let mut s = IncrementalSession::new(p, &input, EvalOptions::default()).unwrap();
        // Close the cycle: S(0), S(1), S(2) and U(0) appear.
        s.insert(g, edge(2, 0)).unwrap();
        s.poll().unwrap();
        assert_matches_scratch(&s, &i);
        // Cut it again: the cascade must retract through S into U.
        s.retract(g, edge(2, 0)).unwrap();
        let stats = s.poll().unwrap();
        assert!(stats.facts_removed > 0);
        assert_matches_scratch(&s, &i);
    }

    /// The acceptance gauge of ISSUE 9: after a retraction on the
    /// chain-TC workload, one poll must do strictly less join work than
    /// recomputing from scratch — by the deterministic gauges, not wall
    /// time.
    #[test]
    fn chain_tc_retraction_beats_from_scratch_on_work_gauges() {
        let mut i = Interner::new();
        let n = 48i64;
        let p = tc_program(&mut i);
        let g = i.get("G").unwrap();
        let mut s = IncrementalSession::new(p, &chain(&mut i, n), EvalOptions::default()).unwrap();
        s.retract(g, edge(n - 2, n - 1)).unwrap();
        let stats = s.poll().unwrap();
        assert_matches_scratch(&s, &i);

        let telemetry = unchained_common::Telemetry::enabled();
        let scratch = stratified::eval(
            s.program(),
            s.edb(),
            EvalOptions::default().with_telemetry(telemetry.clone()),
        )
        .unwrap();
        let trace = telemetry.snapshot().unwrap();
        assert!(scratch.instance.same_facts(s.instance()));
        assert!(
            stats.rules_fired < trace.rules_fired,
            "poll fired {} vs from-scratch {}",
            stats.rules_fired,
            trace.rules_fired
        );
        assert!(
            stats.joins.probe_tuples < trace.joins.probe_tuples,
            "poll probed {} tuples vs from-scratch {}",
            stats.joins.probe_tuples,
            trace.joins.probe_tuples
        );
        // The margin is structural (O(n) vs O(n²)), so assert a real
        // gap rather than a knife's edge.
        assert!(stats.rules_fired * 4 < trace.rules_fired);
    }
}

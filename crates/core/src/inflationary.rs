//! Inflationary (forward chaining) Datalog¬ — Section 4.1.
//!
//! The semantics of the two PODS 1988 papers ("Why not negation by
//! fixpoint?"): all rules are fired in parallel with all applicable
//! instantiations, facts accumulate, and a negative literal `¬A` is true
//! at a stage iff `A` has not been inferred *so far* — which does not
//! preclude `A` from being inferred later. The sequence
//! `Γ_P(I) ⊆ Γ²_P(I) ⊆ …` reaches its fixpoint `Γ^ω_P(I)` after
//! polynomially many stages.
//!
//! By Theorem 4.2 this language expresses exactly the **fixpoint
//! queries**.

use crate::error::EvalError;
use crate::exec::{for_each_head, IndexCache, Sources};
use crate::ir::Plan;
use crate::options::{EvalOptions, FixpointRun};
use crate::planner::{Catalog, Planner};
use crate::require_language;
use crate::subst::{active_domain, merge_new_facts, merge_new_facts_with, record_births};
use unchained_common::{HeapSize, Instance, SpanKind, StageRecord};
use unchained_parser::{check_range_restricted, HeadLiteral, Language, Program};

/// Plans every rule against the *current* instance — called once per
/// round, because a catalog snapshotted at entry goes stale as the idb
/// grows and the stale join orders would stick for the whole run. The
/// idb cardinalities are inflated only on the first round, while the
/// relations are genuinely empty.
fn plan_rules(
    program: &Program,
    instance: &Instance,
    options: &EvalOptions,
    first_round: bool,
) -> Vec<Plan> {
    let mut planner = Planner::new(Catalog::from_instance(instance), options.plan_mode);
    if first_round {
        planner.inflate(program.idb());
    }
    program.rules.iter().map(|r| planner.plan_rule(r)).collect()
}

/// Evaluates a Datalog¬ program under the inflationary semantics.
///
/// Any Datalog¬ program is accepted — including non-stratifiable ones
/// like `win(x) ← moves(x,y), ¬win(y)` — because the procedural
/// semantics is defined for all of them. Termination is guaranteed (the
/// instance grows within a fixed polynomial space of facts), so
/// `options.max_stages` is only a safety valve.
///
/// # Errors
/// Rejects programs with head negation, invention, or nondeterministic
/// constructs, and non-range-restricted rules.
pub fn eval(
    program: &Program,
    input: &Instance,
    options: EvalOptions,
) -> Result<FixpointRun, EvalError> {
    require_language(program, Language::DatalogNeg)?;
    check_range_restricted(program, false)?;

    let adom = active_domain(program, input);
    let mut cache = IndexCache::new();
    let mut instance = input.clone();
    let schema = program.schema()?;
    for pred in program.idb() {
        instance.ensure(pred, schema.arity(pred).expect("idb has arity"));
    }

    let tel = &options.telemetry;
    tel.begin("inflationary");
    let run_sw = tel.stopwatch();
    let tracer = tel.tracer().clone();
    let eval_guard = tracer.span(SpanKind::Eval, "inflationary");

    let mut stages = 0;
    loop {
        stages += 1;
        if options.max_stages.is_some_and(|m| stages > m) {
            return Err(EvalError::StageLimitExceeded(stages - 1));
        }
        let round_guard = tracer.span(SpanKind::Round, format!("round {stages}"));
        let stage_sw = tel.stopwatch();
        let joins_before = cache.counters;
        let plans = plan_rules(program, &instance, &options, stages == 1);
        let mut fired: u64 = 0;
        // One parallel firing: all rules read the same instance; newly
        // inferred facts only become visible at the next stage.
        let mut new_facts = Vec::new();
        for (rule, plan) in program.rules.iter().zip(&plans) {
            let HeadLiteral::Pos(head) = &rule.head[0] else {
                unreachable!("Datalog¬ heads are positive")
            };
            fired += for_each_head(
                plan,
                &head.args,
                Sources::simple(&instance),
                &adom,
                &mut cache,
                &mut |tuple| {
                    if !instance.contains_fact(head.pred, &tuple) {
                        new_facts.push((head.pred, tuple));
                    }
                },
            );
        }
        let (changed, delta) = merge_new_facts(
            &mut instance,
            new_facts,
            tel.is_enabled() || tracer.is_enabled(),
        );
        let added: usize = delta.iter().map(|(_, n)| n).sum();
        tracer.gauge("facts_added", added as u64);
        tracer.gauge("rules_fired", fired);
        drop(round_guard);
        tel.with(|t| {
            t.stages.push(StageRecord {
                stage: stages,
                wall_nanos: stage_sw.nanos(),
                facts_added: added,
                facts_removed: 0,
                rules_fired: fired,
                delta,
                bytes: instance.heap_bytes() as u64,
                joins: cache.counters.since(&joins_before),
            });
            t.peak_facts = t.peak_facts.max(instance.fact_count());
            t.bytes_peak = t.bytes_peak.max(instance.heap_bytes() as u64);
        });
        if !changed {
            tracer.gauge("rounds", stages as u64);
            tracer.gauge("final_facts", instance.fact_count() as u64);
            drop(eval_guard);
            tel.with(|t| t.bytes_final = instance.heap_bytes() as u64);
            tel.finish(&run_sw, instance.fact_count());
            return Ok(FixpointRun { instance, stages });
        }
        if options.max_facts.is_some_and(|m| instance.fact_count() > m) {
            return Err(EvalError::FactLimitExceeded(instance.fact_count()));
        }
    }
}

/// Semi-naive evaluation of inflationary Datalog¬.
///
/// Semantically identical to [`eval`], usually much faster. The
/// optimization is sound for the *inflationary* semantics even with
/// negation — unlike for the noninflationary languages — by a
/// monotonicity argument: facts only accumulate, so a negative literal
/// `¬A` that holds at stage `k+1` also held at stage `k`. An
/// instantiation newly firing at stage `k+1` therefore must use at
/// least one positive fact first derived at stage `k` (its negative
/// part cannot have *become* true), which is exactly the delta
/// discipline of [`crate::seminaive`]. Consequently the engine derives
/// the same facts at the same stages — including for the
/// stage-sensitive programs of Examples 4.1/4.3/4.4, which the tests
/// check.
pub fn eval_seminaive(
    program: &Program,
    input: &Instance,
    options: EvalOptions,
) -> Result<FixpointRun, EvalError> {
    require_language(program, Language::DatalogNeg)?;
    check_range_restricted(program, false)?;

    let adom = active_domain(program, input);
    let mut instance = input.clone();
    let schema = program.schema()?;
    for pred in program.idb() {
        instance.ensure(pred, schema.arity(pred).expect("idb has arity"));
    }
    let recursive: unchained_common::FxHashSet<unchained_common::Symbol> =
        program.idb().into_iter().collect();
    let rules: Vec<&unchained_parser::Rule> = program.rules.iter().collect();
    let mut cache = IndexCache::new();
    options.telemetry.begin("inflationary-seminaive");
    let run_sw = options.telemetry.stopwatch();
    let tracer = options.telemetry.tracer().clone();
    let eval_guard = tracer.span(SpanKind::Eval, "inflationary-seminaive");
    let stratum_guard = tracer.span(SpanKind::Stratum, "stratum 0");
    let stages = crate::seminaive::seminaive_fixpoint(
        &rules,
        &mut instance,
        &adom,
        &recursive,
        &mut cache,
        &options,
    )?;
    tracer.gauge("rounds", stages as u64);
    tracer.gauge("rules", rules.len() as u64);
    drop(stratum_guard);
    tracer.gauge("final_facts", instance.fact_count() as u64);
    drop(eval_guard);
    options
        .telemetry
        .with(|t| t.bytes_final = instance.heap_bytes() as u64);
    options.telemetry.finish(&run_sw, instance.fact_count());
    Ok(FixpointRun { instance, stages })
}

/// A fixpoint run that also records the *birth stage* of every derived
/// fact — the procedural information the inflationary semantics turns
/// into meaning (Example 4.1 reads shortest-path distance off it).
#[derive(Clone, Debug)]
pub struct TracedRun {
    /// The fixpoint instance.
    pub instance: Instance,
    /// Stages performed (as in [`FixpointRun`]).
    pub stages: usize,
    /// `birth[(pred, tuple)]` = stage at which the fact was first
    /// inferred (input facts are not recorded).
    pub birth:
        unchained_common::FxHashMap<(unchained_common::Symbol, unchained_common::Tuple), usize>,
}

impl TracedRun {
    /// The birth stage of a fact (`None` for input facts and facts
    /// never derived).
    pub fn birth_stage(
        &self,
        pred: unchained_common::Symbol,
        tuple: &unchained_common::Tuple,
    ) -> Option<usize> {
        self.birth.get(&(pred, tuple.clone())).copied()
    }
}

/// Like [`eval`], additionally recording when each fact was first
/// inferred.
pub fn eval_traced(
    program: &Program,
    input: &Instance,
    options: EvalOptions,
) -> Result<TracedRun, EvalError> {
    require_language(program, Language::DatalogNeg)?;
    check_range_restricted(program, false)?;

    let adom = active_domain(program, input);
    let mut cache = IndexCache::new();
    let mut instance = input.clone();
    let schema = program.schema()?;
    for pred in program.idb() {
        instance.ensure(pred, schema.arity(pred).expect("idb has arity"));
    }
    let mut birth = unchained_common::FxHashMap::default();

    let tel = &options.telemetry;
    tel.begin("inflationary-traced");
    let run_sw = tel.stopwatch();
    let tracer = tel.tracer().clone();
    let eval_guard = tracer.span(SpanKind::Eval, "inflationary-traced");

    let mut stages = 0;
    loop {
        stages += 1;
        if options.max_stages.is_some_and(|m| stages > m) {
            return Err(EvalError::StageLimitExceeded(stages - 1));
        }
        let round_guard = tracer.span(SpanKind::Round, format!("round {stages}"));
        let stage_sw = tel.stopwatch();
        let joins_before = cache.counters;
        let plans = plan_rules(program, &instance, &options, stages == 1);
        let mut fired: u64 = 0;
        let mut new_facts = Vec::new();
        for (rule, plan) in program.rules.iter().zip(&plans) {
            let HeadLiteral::Pos(head) = &rule.head[0] else {
                unreachable!("Datalog¬ heads are positive")
            };
            fired += for_each_head(
                plan,
                &head.args,
                Sources::simple(&instance),
                &adom,
                &mut cache,
                &mut |tuple| {
                    if !instance.contains_fact(head.pred, &tuple) {
                        new_facts.push((head.pred, tuple));
                    }
                },
            );
        }
        let enabled = tel.is_enabled() || tracer.is_enabled();
        let (changed, mut delta) = merge_new_facts_with(
            &mut instance,
            new_facts,
            enabled,
            &mut record_births(&mut birth, stages),
        );
        let added: usize = delta.iter().map(|(_, n)| n).sum();
        tracer.gauge("facts_added", added as u64);
        tracer.gauge("rules_fired", fired);
        drop(round_guard);
        tel.with(|t| {
            t.stages.push(StageRecord {
                stage: stages,
                wall_nanos: stage_sw.nanos(),
                facts_added: added,
                facts_removed: 0,
                rules_fired: fired,
                delta: std::mem::take(&mut delta),
                bytes: instance.heap_bytes() as u64,
                joins: cache.counters.since(&joins_before),
            });
            t.peak_facts = t.peak_facts.max(instance.fact_count());
            t.bytes_peak = t.bytes_peak.max(instance.heap_bytes() as u64);
        });
        if !changed {
            tracer.gauge("rounds", stages as u64);
            tracer.gauge("final_facts", instance.fact_count() as u64);
            drop(eval_guard);
            tel.with(|t| t.bytes_final = instance.heap_bytes() as u64);
            tel.finish(&run_sw, instance.fact_count());
            return Ok(TracedRun {
                instance,
                stages,
                birth,
            });
        }
        if options.max_facts.is_some_and(|m| instance.fact_count() > m) {
            return Err(EvalError::FactLimitExceeded(instance.fact_count()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unchained_common::{Interner, Tuple, Value};
    use unchained_parser::parse_program;

    fn line(interner: &mut Interner, n: i64) -> Instance {
        let g = interner.intern("G");
        let mut inst = Instance::new();
        for k in 0..n - 1 {
            inst.insert_fact(g, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
        }
        inst
    }

    /// Example 4.1 of the paper: the `closer` program.
    #[test]
    fn paper_example_closer() {
        let mut i = Interner::new();
        let program = parse_program(
            "T(x,y) :- G(x,y).\n\
             T(x,y) :- T(x,z), G(z,y).\n\
             closer(x,y,xp,yp) :- T(x,y), !T(xp,yp).",
            &mut i,
        )
        .unwrap();
        // Line 0→1→2: d(0,1)=d(1,2)=1, d(0,2)=2, others ∞.
        let input = line(&mut i, 3);
        let run = eval(&program, &input, EvalOptions::default()).unwrap();
        let closer = i.get("closer").unwrap();
        let rel = run.instance.relation(closer).unwrap();
        let v = Value::Int;
        // Note on fidelity: the paper's prose defines closer with
        // d(x,y) ≤ d(x',y'), but its own stage argument ("if T(x,y) and
        // ¬T(x',y') hold at some stage n, then d(x,y) ≤ n and
        // d(x',y') > n") yields the *strict* comparison — a pair with
        // d(x,y) = d(x',y') never satisfies both conditions at one
        // stage. We test the procedural semantics the program actually
        // has: closer(x,y,x',y') ⟺ d(x,y) < d(x',y').
        //
        // d(0,1) < d(0,2): closer(0,1,0,2) holds.
        assert!(rel.contains(&Tuple::from([v(0), v(1), v(0), v(2)])));
        // d(0,2) < d(1,0) (=∞): holds.
        assert!(rel.contains(&Tuple::from([v(0), v(2), v(1), v(0)])));
        // d(0,2) < d(0,1) is false: must be absent.
        assert!(!rel.contains(&Tuple::from([v(0), v(2), v(0), v(1)])));
        // Equal distances: neither is strictly closer.
        assert!(!rel.contains(&Tuple::from([v(0), v(1), v(1), v(2)])));
        assert!(!rel.contains(&Tuple::from([v(1), v(2), v(0), v(1)])));
        // Exhaustive check against a distance oracle.
        let dist = |a: i64, b: i64| -> i64 {
            // distance in the 3-line (∞ → i64::MAX)
            if a < b {
                b - a
            } else {
                i64::MAX
            }
        };
        for x in 0..3i64 {
            for y in 0..3i64 {
                for xp in 0..3i64 {
                    for yp in 0..3i64 {
                        let expected = dist(x, y) < dist(xp, yp);
                        let got = rel.contains(&Tuple::from([v(x), v(y), v(xp), v(yp)]));
                        assert_eq!(got, expected, "closer({x},{y},{xp},{yp})");
                    }
                }
            }
        }
    }

    /// Example 4.3 of the paper: complement of transitive closure via the
    /// delayed-firing technique, verbatim from the paper (assumes G
    /// nonempty).
    #[test]
    fn paper_example_delayed_complement() {
        let mut i = Interner::new();
        let program = parse_program(
            "T(x,y) :- G(x,y).\n\
             T(x,y) :- G(x,z), T(z,y).\n\
             old-T(x,y) :- T(x,y).\n\
             old-T-except-final(x,y) :- T(x,y), T(xp,zp), T(zp,yp), !T(xp,yp).\n\
             CT(x,y) :- !T(x,y), old-T(xp,yp), !old-T-except-final(xp,yp).",
            &mut i,
        )
        .unwrap();
        for n in [2i64, 3, 5] {
            let input = line(&mut i, n);
            let run = eval(&program, &input, EvalOptions::default()).unwrap();
            let strat = crate::stratified::eval(
                &parse_program(
                    "T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y). CT(x,y) :- !T(x,y).",
                    &mut i,
                )
                .unwrap(),
                &input,
                EvalOptions::default(),
            )
            .unwrap();
            let ct = i.get("CT").unwrap();
            assert!(
                run.instance
                    .relation(ct)
                    .unwrap()
                    .same_tuples(strat.instance.relation(ct).unwrap()),
                "inflationary delayed CT must match stratified CT (n={n})"
            );
        }
    }

    #[test]
    fn win_move_game_inflationary_two_valued() {
        // Under inflationary semantics win is computed procedurally; on
        // a line 0→1→2→3 stage parity yields the game-theoretic answer
        // only partially (the inflationary answer differs from WF in
        // general, but on this acyclic line the true wins appear).
        let mut i = Interner::new();
        let program = parse_program("win(x) :- moves(x,y), !win(y).", &mut i).unwrap();
        let moves = i.get("moves").unwrap();
        let win = i.get("win").unwrap();
        let mut input = Instance::new();
        for k in 0..3i64 {
            input.insert_fact(moves, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
        }
        let run = eval(&program, &input, EvalOptions::default()).unwrap();
        let rel = run.instance.relation(win).unwrap();
        // Stage 1 infers win(0), win(1), win(2) (no win facts yet), and
        // nothing changes after: the inflationary answer here is the
        // overestimate {0,1,2}.
        assert_eq!(rel.len(), 3);
        assert!(!rel.contains(&Tuple::from([Value::Int(3)])));
    }

    #[test]
    fn matches_minimum_model_on_pure_datalog() {
        let mut i = Interner::new();
        let program = parse_program("T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).", &mut i).unwrap();
        let input = line(&mut i, 6);
        let inf = eval(&program, &input, EvalOptions::default()).unwrap();
        let mm = crate::seminaive::minimum_model(&program, &input, EvalOptions::default()).unwrap();
        assert!(inf.instance.same_facts(&mm.instance));
    }

    #[test]
    fn rejects_nondeterministic_syntax() {
        let mut i = Interner::new();
        let program = parse_program("A(x), B(x) :- C(x).", &mut i).unwrap();
        assert!(matches!(
            eval(&program, &Instance::new(), EvalOptions::default()),
            Err(EvalError::WrongLanguage { .. })
        ));
    }

    #[test]
    fn seminaive_matches_naive_inflationary_on_stage_sensitive_programs() {
        // The paper's three stage-sensitive example programs: identical
        // answers AND identical stage counts under the semi-naive
        // optimization.
        let mut i = Interner::new();
        let programs = [
            // Example 4.1 closer
            "T(x,y) :- G(x,y).\nT(x,y) :- T(x,z), G(z,y).\ncloser(x,y,xp,yp) :- T(x,y), !T(xp,yp).",
            // Example 4.3 delayed complement
            "T(x,y) :- G(x,y).\nT(x,y) :- G(x,z), T(z,y).\nold-T(x,y) :- T(x,y).\nold-T-except-final(x,y) :- T(x,y), T(xp,zp), T(zp,yp), !T(xp,yp).\nCT(x,y) :- !T(x,y), old-T(xp,yp), !old-T-except-final(xp,yp).",
            // Example 4.4 timestamped good
            "bad(x) :- G(y,x), !good(y).\ndelay :- .\ngood(x) :- delay, !bad(x).\nbad-stamped(x,t) :- G(y,x), !good(y), good(t).\ndelay-stamped(t) :- good(t).\ngood(x) :- delay-stamped(t), !bad-stamped(x,t).",
        ];
        for src in programs {
            let program = parse_program(src, &mut i).unwrap();
            for n in [2i64, 4, 6] {
                let input = line(&mut i, n);
                let a = eval(&program, &input, EvalOptions::default()).unwrap();
                let b = eval_seminaive(&program, &input, EvalOptions::default()).unwrap();
                assert!(
                    a.instance.same_facts(&b.instance),
                    "answers differ (n={n}):\n{src}"
                );
                assert_eq!(a.stages, b.stages, "stage counts differ (n={n}):\n{src}");
            }
        }
    }

    #[test]
    fn seminaive_matches_on_unstratifiable_win() {
        let mut i = Interner::new();
        let program = parse_program("win(x) :- moves(x,y), !win(y).", &mut i).unwrap();
        let moves = i.get("moves").unwrap();
        for seed in 0..5u64 {
            // Deterministic pseudo-random games.
            let mut input = Instance::new();
            input.ensure(moves, 2);
            let mut s = seed;
            for _ in 0..10 {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let a = ((s >> 33) % 7) as i64;
                let b = ((s >> 13) % 7) as i64;
                input.insert_fact(moves, Tuple::from([Value::Int(a), Value::Int(b)]));
            }
            let a = eval(&program, &input, EvalOptions::default()).unwrap();
            let b = eval_seminaive(&program, &input, EvalOptions::default()).unwrap();
            assert!(a.instance.same_facts(&b.instance), "seed {seed}");
            assert_eq!(a.stages, b.stages, "seed {seed}");
        }
    }

    #[test]
    fn traced_run_birth_stages_are_distances() {
        // Example 4.1's insight, directly observable: T(x,y) is born at
        // stage d(x,y).
        let mut i = Interner::new();
        let program = parse_program("T(x,y) :- G(x,y). T(x,y) :- T(x,z), G(z,y).", &mut i).unwrap();
        let input = line(&mut i, 6);
        let t = i.get("T").unwrap();
        let traced = eval_traced(&program, &input, EvalOptions::default()).unwrap();
        for a in 0..6i64 {
            for b in (a + 1)..6 {
                let tuple = Tuple::from([Value::Int(a), Value::Int(b)]);
                assert_eq!(
                    traced.birth_stage(t, &tuple),
                    Some((b - a) as usize),
                    "T({a},{b})"
                );
            }
        }
        // Input facts and underivable facts have no birth stage.
        let g = i.get("G").unwrap();
        assert_eq!(
            traced.birth_stage(g, &Tuple::from([Value::Int(0), Value::Int(1)])),
            None
        );
        assert_eq!(
            traced.birth_stage(t, &Tuple::from([Value::Int(3), Value::Int(0)])),
            None
        );
        // Traced and untraced runs agree.
        let plain = eval(&program, &input, EvalOptions::default()).unwrap();
        assert!(plain.instance.same_facts(&traced.instance));
        assert_eq!(plain.stages, traced.stages);
    }

    #[test]
    fn accepts_unstratifiable_programs() {
        let mut i = Interner::new();
        let program = parse_program("p :- !q. q :- !p.", &mut i).unwrap();
        let run = eval(&program, &Instance::new(), EvalOptions::default()).unwrap();
        // Stage 1: neither p nor q present, so both rules fire: {p, q}.
        let p = i.get("p").unwrap();
        let q = i.get("q").unwrap();
        assert!(run.instance.contains_fact(p, &Tuple::from([])));
        assert!(run.instance.contains_fact(q, &Tuple::from([])));
    }
}

//! Why-provenance for positive Datalog: record, for every derived
//! fact, the rule and premise facts of its first derivation, and
//! explain answers as derivation trees.
//!
//! Deductive databases justify their answers — the "deduction" in the
//! name (Section 3.1). This module instruments the naive engine to keep
//! one witness derivation per fact (why-provenance in the
//! minimal-witness sense); because a fact's premises were present
//! *before* the fact was first inserted, the recorded graph is acyclic
//! and [`explain`] always terminates.

use crate::error::EvalError;
use crate::exec::{for_each_match, IndexCache, Sources};
use crate::ir::Plan;
use crate::options::EvalOptions;
use crate::planner::plan_rule;
use crate::require_language;
use crate::subst::{active_domain, instantiate};
use std::ops::ControlFlow;
use unchained_common::{FxHashMap, Instance, Interner, Symbol, Tuple};
use unchained_parser::{check_range_restricted, HeadLiteral, Language, Literal, Program};

/// One recorded derivation step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Derivation {
    /// Index of the rule that fired.
    pub rule: usize,
    /// The instantiated positive body atoms used as premises.
    pub premises: Vec<(Symbol, Tuple)>,
}

/// A fixpoint run with provenance.
#[derive(Clone, Debug)]
pub struct ProvenanceRun {
    /// The minimum model (input included).
    pub instance: Instance,
    /// Stages performed.
    pub stages: usize,
    /// First derivation of every *derived* fact (input facts absent).
    pub why: FxHashMap<(Symbol, Tuple), Derivation>,
}

impl ProvenanceRun {
    /// The derivation of a fact, if it was derived (rather than given).
    pub fn derivation(&self, pred: Symbol, tuple: &Tuple) -> Option<&Derivation> {
        self.why.get(&(pred, tuple.clone()))
    }
}

/// Computes the minimum model of a positive Datalog program while
/// recording one derivation per derived fact.
///
/// ```
/// use unchained_common::{Instance, Interner, Tuple, Value};
/// use unchained_core::provenance::{explain, minimum_model_with_provenance};
/// use unchained_core::EvalOptions;
/// use unchained_parser::parse_program;
///
/// let mut interner = Interner::new();
/// let program = parse_program(
///     "T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).",
///     &mut interner,
/// ).unwrap();
/// let g = interner.get("G").unwrap();
/// let t = interner.get("T").unwrap();
/// let mut input = Instance::new();
/// input.insert_fact(g, Tuple::from([Value::Int(1), Value::Int(2)]));
/// input.insert_fact(g, Tuple::from([Value::Int(2), Value::Int(3)]));
/// let run = minimum_model_with_provenance(&program, &input, EvalOptions::default()).unwrap();
/// let tree = explain(&run, t, &Tuple::from([Value::Int(1), Value::Int(3)]), &interner);
/// assert!(tree.contains("(given)"));
/// ```
pub fn minimum_model_with_provenance(
    program: &Program,
    input: &Instance,
    options: EvalOptions,
) -> Result<ProvenanceRun, EvalError> {
    require_language(program, Language::Datalog)?;
    check_range_restricted(program, false)?;

    let adom = active_domain(program, input);
    let plans: Vec<Plan> = program.rules.iter().map(plan_rule).collect();
    // Premise templates: the positive body atoms of each rule, in body
    // order.
    let premise_templates: Vec<Vec<&unchained_parser::Atom>> = program
        .rules
        .iter()
        .map(|r| {
            r.body
                .iter()
                .filter_map(|l| match l {
                    Literal::Pos(a) => Some(a),
                    _ => None,
                })
                .collect()
        })
        .collect();
    let mut cache = IndexCache::new();
    let mut instance = input.clone();
    let schema = program.schema()?;
    for pred in program.idb() {
        instance.ensure(pred, schema.arity(pred).expect("idb has arity"));
    }
    let mut why: FxHashMap<(Symbol, Tuple), Derivation> = FxHashMap::default();

    let mut stages = 0;
    loop {
        stages += 1;
        if options.max_stages.is_some_and(|m| stages > m) {
            return Err(EvalError::StageLimitExceeded(stages - 1));
        }
        let mut new_facts: Vec<(Symbol, Tuple, Derivation)> = Vec::new();
        for (ridx, (rule, plan)) in program.rules.iter().zip(&plans).enumerate() {
            let HeadLiteral::Pos(head) = &rule.head[0] else {
                unreachable!("pure Datalog heads are positive")
            };
            let templates = &premise_templates[ridx];
            let _ = for_each_match(
                plan,
                Sources::simple(&instance),
                &adom,
                &mut cache,
                &mut |env| {
                    let tuple = instantiate(&head.args, env);
                    if !instance.contains_fact(head.pred, &tuple) {
                        let premises = templates
                            .iter()
                            .map(|a| (a.pred, instantiate(&a.args, env)))
                            .collect();
                        new_facts.push((
                            head.pred,
                            tuple,
                            Derivation {
                                rule: ridx,
                                premises,
                            },
                        ));
                    }
                    ControlFlow::Continue(())
                },
            );
        }
        let mut changed = false;
        for (pred, tuple, derivation) in new_facts {
            if instance.insert_fact(pred, tuple.clone()) {
                changed = true;
                why.entry((pred, tuple)).or_insert(derivation);
            }
        }
        if !changed {
            return Ok(ProvenanceRun {
                instance,
                stages,
                why,
            });
        }
    }
}

/// Renders the derivation tree of `pred(tuple)` as indented text.
/// Input facts print as `⊢ fact (given)`; derived facts list their
/// rule and recurse into the premises.
pub fn explain(run: &ProvenanceRun, pred: Symbol, tuple: &Tuple, interner: &Interner) -> String {
    fn fact_str(pred: Symbol, tuple: &Tuple, interner: &Interner) -> String {
        if tuple.arity() == 0 {
            interner.name(pred).to_string()
        } else {
            format!("{}{}", interner.name(pred), tuple.display(interner))
        }
    }
    fn rec(
        run: &ProvenanceRun,
        pred: Symbol,
        tuple: &Tuple,
        interner: &Interner,
        indent: usize,
        out: &mut String,
    ) {
        let pad = "  ".repeat(indent);
        match run.derivation(pred, tuple) {
            None => {
                if run.instance.contains_fact(pred, tuple) {
                    out.push_str(&format!(
                        "{pad}⊢ {} (given)\n",
                        fact_str(pred, tuple, interner)
                    ));
                } else {
                    out.push_str(&format!(
                        "{pad}✗ {} (not derivable)\n",
                        fact_str(pred, tuple, interner)
                    ));
                }
            }
            Some(d) => {
                out.push_str(&format!(
                    "{pad}⊢ {} (rule {})\n",
                    fact_str(pred, tuple, interner),
                    d.rule
                ));
                for (p, t) in &d.premises {
                    rec(run, *p, t, interner, indent + 1, out);
                }
            }
        }
    }
    let mut out = String::new();
    rec(run, pred, tuple, interner, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use unchained_common::Value;
    use unchained_parser::parse_program;

    fn setup() -> (Interner, Program, Instance) {
        let mut i = Interner::new();
        let program =
            parse_program("T(x,y) :- G(x,y).\nT(x,y) :- G(x,z), T(z,y).", &mut i).unwrap();
        let g = i.get("G").unwrap();
        let mut input = Instance::new();
        for k in 0..4i64 {
            input.insert_fact(g, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
        }
        (i, program, input)
    }

    #[test]
    fn provenance_agrees_with_plain_evaluation() {
        let (_, program, input) = setup();
        let prov = minimum_model_with_provenance(&program, &input, EvalOptions::default()).unwrap();
        let plain =
            crate::seminaive::minimum_model(&program, &input, EvalOptions::default()).unwrap();
        assert!(prov.instance.same_facts(&plain.instance));
    }

    #[test]
    fn every_derived_fact_has_a_derivation_over_present_facts() {
        let (mut i, program, input) = setup();
        let t = i.intern("T");
        let prov = minimum_model_with_provenance(&program, &input, EvalOptions::default()).unwrap();
        let rel = prov.instance.relation(t).unwrap();
        assert_eq!(rel.len(), 10);
        for tuple in rel.iter() {
            let d = prov
                .derivation(t, tuple)
                .expect("derived fact has provenance");
            for (p, prem) in &d.premises {
                assert!(prov.instance.contains_fact(*p, prem));
            }
        }
    }

    #[test]
    fn explain_renders_a_tree_down_to_given_facts() {
        let (i, program, input) = setup();
        let t = i.get("T").unwrap();
        let prov = minimum_model_with_provenance(&program, &input, EvalOptions::default()).unwrap();
        let tree = explain(&prov, t, &Tuple::from([Value::Int(0), Value::Int(3)]), &i);
        // The tree bottoms out in given G facts and derives through T.
        assert!(tree.contains("⊢ T(0, 3) (rule 1)"), "{tree}");
        assert!(tree.contains("(given)"), "{tree}");
        // Distance-3 fact: at least three G premises appear.
        assert_eq!(tree.matches("(given)").count(), 3, "{tree}");
    }

    #[test]
    fn explain_handles_underivable_and_input_facts() {
        let (mut i, program, input) = setup();
        let g = i.intern("G");
        let t = i.intern("T");
        let prov = minimum_model_with_provenance(&program, &input, EvalOptions::default()).unwrap();
        let given = explain(&prov, g, &Tuple::from([Value::Int(0), Value::Int(1)]), &i);
        assert!(given.contains("(given)"));
        let missing = explain(&prov, t, &Tuple::from([Value::Int(3), Value::Int(0)]), &i);
        assert!(missing.contains("not derivable"));
    }

    #[test]
    fn first_derivation_uses_shortest_expansion() {
        // The base rule (rule 0) derives distance-1 pairs; recursion
        // builds on them. The first recorded derivation of T(0,1) is
        // via rule 0, not a longer one.
        let (mut i, program, input) = setup();
        let t = i.intern("T");
        let prov = minimum_model_with_provenance(&program, &input, EvalOptions::default()).unwrap();
        let d = prov
            .derivation(t, &Tuple::from([Value::Int(0), Value::Int(1)]))
            .unwrap();
        assert_eq!(d.rule, 0);
        assert_eq!(d.premises.len(), 1);
    }

    #[test]
    fn rejects_non_datalog() {
        let mut i = Interner::new();
        let program = parse_program("A(x) :- B(x), !C(x).", &mut i).unwrap();
        assert!(matches!(
            minimum_model_with_provenance(&program, &Instance::new(), EvalOptions::default()),
            Err(EvalError::WrongLanguage { .. })
        ));
    }
}

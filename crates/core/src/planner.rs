//! The rule planner: lowers parser-AST rule bodies into the shared
//! relational-algebra IR ([`crate::ir`]) with cost-based join ordering,
//! sideways-information-passing filter pushdown, and common-subplan
//! sharing.
//!
//! Planning decisions, in order, per rule body:
//!
//! 1. **Join order** — positive atoms are scheduled greedily. Under
//!    [`PlanMode::Cost`] the next atom is the one with the smallest
//!    estimated probe cost `card(pred) / 4^bound_positions`, using
//!    relation cardinalities snapshotted from the input [`Instance`]
//!    into a [`Catalog`] (recursive predicates, whose relations grow
//!    during the fixpoint, are estimated at no less than the total fact
//!    count), with a Cartesian guard: once any position is bound, atoms
//!    sharing a bound position always beat unconnected ones regardless
//!    of cardinality. Under [`PlanMode::Syntactic`] the next atom is simply the
//!    one with the most bound argument positions, tie-broken by source
//!    order — the historical ordering, kept as the differential-fuzzing
//!    counterpart. Ties in cost fall back to bound positions, then
//!    source order, so plans are deterministic.
//! 2. **SIP pushdown** — every argument position whose value is known
//!    when an atom is scheduled (constants, variables bound by earlier
//!    atoms or equalities) becomes part of the scan's index key: the
//!    filter is pushed *into* the probe rather than applied after
//!    enumeration. Negative literals and comparisons are checked at the
//!    earliest point where their variables are bound.
//! 3. **Delta variants** — semi-naive evaluation needs, per recursive
//!    scan, a variant reading that scan from the round's delta. Under
//!    cost mode the delta scan is forced first (a delta is presumed
//!    smaller than anything else); under syntactic mode the variant
//!    keeps the full plan's order with the one source flipped.
//! 4. **Sharing** — all nodes are interned into one [`PlanArena`] with
//!    canonical slot names, so identical body prefixes across the rules
//!    of a program become the same nodes. The planner reports
//!    [`PlanStats`]: `joins_pruned` (scans whose probe key is
//!    non-empty, i.e. joins the SIP pushdown narrowed) and
//!    `subplans_shared` (arena intern hits).
//!
//! The plan is computed once, from a deterministic catalog snapshot —
//! never from runtime state — so the same program and input produce the
//! same plan at any thread count: the *plan* is deterministic, the
//! schedule need not be.

use unchained_common::{FxHashMap, FxHashSet, Instance, Symbol};
use unchained_parser::{HeadLiteral, Literal, Rule, Term, Var};

use crate::ir::{ColOp, Node, NodeId, PTerm, Plan, PlanArena, ScanSource, Step};

/// How rule bodies are ordered.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PlanMode {
    /// Cost-based greedy ordering from catalog cardinalities (the
    /// default).
    #[default]
    Cost,
    /// Most-bound-first ordering, ignoring cardinalities. This is the
    /// pre-IR planner's behavior, kept as the reference leg for
    /// planned-vs-unplanned differential fuzzing.
    Syntactic,
}

/// Relation cardinalities snapshotted at plan time.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    cards: FxHashMap<Symbol, u64>,
    total: u64,
}

impl Catalog {
    /// A catalog with no information: every relation estimates to 0, so
    /// cost mode degenerates to most-bound-first ordering.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Snapshots the cardinality of every relation in `instance`.
    pub fn from_instance(instance: &Instance) -> Self {
        let mut cards = FxHashMap::default();
        let mut total = 0u64;
        for pred in instance.symbols() {
            let len = instance.relation(pred).map_or(0, |r| r.len()) as u64;
            cards.insert(pred, len);
            total += len;
        }
        Catalog { cards, total }
    }

    /// The snapshotted cardinality of `pred` (0 when unknown).
    pub fn card(&self, pred: Symbol) -> u64 {
        self.cards.get(&pred).copied().unwrap_or(0)
    }

    /// Total facts in the snapshot.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// Deterministic gauges describing what planning achieved.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PlanStats {
    /// Scans whose probe key is non-empty: joins the SIP pushdown
    /// narrowed from full enumeration to an index probe.
    pub joins_pruned: u64,
    /// Arena intern hits (excluding the unit leaf): subplan nodes
    /// shared with an earlier compilation in the same batch.
    pub subplans_shared: u64,
}

/// Compiles the rules of one program into plans sharing one arena.
pub struct Planner {
    arena: PlanArena,
    catalog: Catalog,
    mode: PlanMode,
    inflated: FxHashSet<Symbol>,
    stats: PlanStats,
}

impl Planner {
    /// A planner over `catalog` in `mode`.
    pub fn new(catalog: Catalog, mode: PlanMode) -> Self {
        Planner {
            arena: PlanArena::new(),
            catalog,
            mode,
            inflated: FxHashSet::default(),
            stats: PlanStats::default(),
        }
    }

    /// Marks predicates whose relations grow during the fixpoint (idb /
    /// recursive predicates): their cost estimate is raised to at least
    /// the catalog's total fact count, so an initially-empty recursive
    /// relation is not mistaken for a free scan.
    pub fn inflate(&mut self, preds: impl IntoIterator<Item = Symbol>) {
        self.inflated.extend(preds);
    }

    /// Gauges accumulated so far.
    pub fn stats(&self) -> PlanStats {
        self.stats
    }

    /// The shared node arena (for rendering and plan-shape tests).
    pub fn arena(&self) -> &PlanArena {
        &self.arena
    }

    /// Consumes the planner, returning the arena and final gauges.
    pub fn finish(self) -> (PlanArena, PlanStats) {
        (self.arena, self.stats)
    }

    /// Plans a rule's full body, requiring all body variables bound.
    pub fn plan_rule(&mut self, rule: &Rule) -> Plan {
        let literals: Vec<&Literal> = rule.body.iter().collect();
        let vars = rule.body_vars();
        self.compile(rule, &literals, &vars, None, &[])
    }

    /// Plans a rule's full body with `prebound` variables already bound
    /// by the caller: they act as constants, so scans over atoms using
    /// them turn the positions into probe-key columns. Run the result
    /// with [`crate::exec::for_each_match_from`], seeding the
    /// environment at each prebound variable's index.
    ///
    /// The incremental-maintenance engine uses this for support queries:
    /// with every head variable prebound, "does any body valuation
    /// rederive this tuple?" becomes a chain of point lookups instead of
    /// a full join.
    pub fn plan_rule_bound(&mut self, rule: &Rule, prebound: &[Var]) -> Plan {
        let literals: Vec<&Literal> = rule.body.iter().collect();
        let vars = rule.body_vars();
        self.compile(rule, &literals, &vars, None, prebound)
    }

    /// Plans the given body literals of `rule`.
    ///
    /// `vars_to_bind` lists the variables the plan must have bound when
    /// the callback fires (normally all body variables; the
    /// nondeterministic `forall` engine plans only the non-universal
    /// part of the body). Variables not bound by scans or equalities get
    /// [`Step::Domain`] steps.
    pub fn plan_body(&mut self, rule: &Rule, literals: &[&Literal], vars_to_bind: &[Var]) -> Plan {
        self.compile(rule, literals, vars_to_bind, None, &[])
    }

    /// Produces the semi-naive variants of a rule: for each positive
    /// body atom over a predicate in `recursive`, a plan where that
    /// atom (and only that one) reads the delta. Returns an empty
    /// vector if the body scans no recursive predicate (such rules only
    /// fire in the first iteration).
    pub fn seminaive_variants(
        &mut self,
        rule: &Rule,
        recursive: &dyn Fn(Symbol) -> bool,
    ) -> Vec<Plan> {
        let literals: Vec<&Literal> = rule.body.iter().collect();
        let vars = rule.body_vars();
        let mut variants = Vec::new();
        for (i, lit) in rule.body.iter().enumerate() {
            if let Literal::Pos(atom) = lit {
                if recursive(atom.pred) {
                    variants.push(self.compile(rule, &literals, &vars, Some(i), &[]));
                }
            }
        }
        variants
    }

    /// Estimated tuples enumerated by scanning `pred` with `known`
    /// bound positions: `card / 4^known`, never below the raw count's
    /// usefulness for ordering. Inflated (growing) predicates estimate
    /// at no less than the snapshot's total.
    fn estimate(&self, pred: Symbol, known: usize) -> u64 {
        let card = self.catalog.card(pred);
        let card = if self.inflated.contains(&pred) {
            card.max(self.catalog.total).max(1)
        } else {
            card
        };
        card >> (2 * known).min(63)
    }

    /// Orders the body into steps (the join-ordering loop). When
    /// `delta_lit` names a literal, its scan reads the delta; under
    /// cost mode it is additionally forced to the front. Variables in
    /// `prebound` start out bound (seeded by the caller at run time),
    /// so they count as known positions for SIP pushdown and cost.
    fn order_steps(
        &self,
        rule: &Rule,
        literals: &[&Literal],
        vars_to_bind: &[Var],
        delta_lit: Option<usize>,
        prebound: &[Var],
    ) -> Vec<Step> {
        #[derive(PartialEq)]
        enum LitState {
            Pending,
            Done,
        }
        let mut state: Vec<LitState> = literals.iter().map(|_| LitState::Pending).collect();
        let mut bound = vec![false; rule.var_count()];
        for v in prebound {
            bound[v.index()] = true;
        }
        let mut steps = Vec::new();

        let term_known = |t: &Term, bound: &[bool]| match t {
            Term::Const(_) => true,
            Term::Var(v) => bound[v.index()],
        };

        // Flush every pending check whose variables are now all bound.
        // Negative literals and comparisons never bind variables
        // (matching the paper: negation tests absence under a full
        // valuation).
        fn flush_checks(
            literals: &[&Literal],
            state: &mut [LitState],
            bound: &[bool],
            steps: &mut Vec<Step>,
        ) {
            for (i, lit) in literals.iter().enumerate() {
                if state[i] == LitState::Done {
                    continue;
                }
                let ready = lit.vars().iter().all(|v| bound[v.index()]);
                if !ready {
                    continue;
                }
                match lit {
                    Literal::Neg(atom) => {
                        steps.push(Step::CheckNeg {
                            pred: atom.pred,
                            args: atom.args.clone(),
                        });
                        state[i] = LitState::Done;
                    }
                    Literal::Eq(l, r) => {
                        steps.push(Step::CheckCmp {
                            left: *l,
                            right: *r,
                            equal: true,
                        });
                        state[i] = LitState::Done;
                    }
                    Literal::Neq(l, r) => {
                        steps.push(Step::CheckCmp {
                            left: *l,
                            right: *r,
                            equal: false,
                        });
                        state[i] = LitState::Done;
                    }
                    Literal::Pos(_) => {
                        // Positive atoms are handled by scans below; even
                        // when fully bound we emit a scan (a cheap point
                        // lookup).
                    }
                    Literal::Choice(..) => {
                        unreachable!(
                            "choice constraints are stripped before planning (nondet engine only)"
                        )
                    }
                }
            }
        }

        loop {
            flush_checks(literals, &mut state, &bound, &mut steps);

            // 1. Equality that can bind a variable?
            let mut progressed = false;
            for (i, lit) in literals.iter().enumerate() {
                if state[i] == LitState::Done {
                    continue;
                }
                if let Literal::Eq(l, r) = lit {
                    let (lk, rk) = (term_known(l, &bound), term_known(r, &bound));
                    let bind = match (lk, rk) {
                        (true, false) => r.as_var().map(|v| (v, *l)),
                        (false, true) => l.as_var().map(|v| (v, *r)),
                        _ => None,
                    };
                    if let Some((var, term)) = bind {
                        steps.push(Step::BindEq { var, term });
                        bound[var.index()] = true;
                        state[i] = LitState::Done;
                        progressed = true;
                        break;
                    }
                }
            }
            if progressed {
                continue;
            }

            // 2. Positive atom: pick the next scan. The selection key is
            //    (cost, fewest-unbound, source order), minimized; under
            //    syntactic mode cost is constant so the key degenerates
            //    to most-bound-first with source-order tie-break. A
            //    forced delta literal always wins (deltas are presumed
            //    small).
            let mut best: Option<((u64, u64, u64, u64), usize)> = None;
            for (i, lit) in literals.iter().enumerate() {
                if state[i] == LitState::Done {
                    continue;
                }
                if let Literal::Pos(atom) = lit {
                    let known = atom.args.iter().filter(|t| term_known(t, &bound)).count();
                    let key = if self.mode == PlanMode::Cost && delta_lit == Some(i) {
                        (0, 0, 0, 0)
                    } else {
                        let cost = match self.mode {
                            PlanMode::Cost => self.estimate(atom.pred, known),
                            PlanMode::Syntactic => 0,
                        };
                        // Cartesian guard: an atom with no known position
                        // joins nothing — every frontier-connected atom,
                        // however expensive, beats a cross product. (Only
                        // cost mode needs the explicit flag; the syntactic
                        // key's most-bound-first already encodes it.)
                        // Without it, a cheap unconnected relation wins on
                        // raw cardinality and each delta tuple re-enumerates
                        // it wholesale: the Andersen `Load`/`Store` rules
                        // turn quadratic exactly that way.
                        let cross = u64::from(self.mode == PlanMode::Cost && known == 0);
                        (cross, cost, (usize::MAX - known) as u64, i as u64)
                    };
                    if best.is_none_or(|(k, _)| key < k) {
                        best = Some((key, i));
                    }
                }
            }
            if let Some((_, i)) = best {
                let Literal::Pos(atom) = literals[i] else {
                    unreachable!()
                };
                let key: Vec<usize> = atom
                    .args
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| term_known(t, &bound))
                    .map(|(p, _)| p)
                    .collect();
                for t in &atom.args {
                    if let Term::Var(v) = t {
                        bound[v.index()] = true;
                    }
                }
                steps.push(Step::Scan {
                    pred: atom.pred,
                    args: atom.args.clone(),
                    key,
                    source: if delta_lit == Some(i) {
                        ScanSource::Delta
                    } else {
                        ScanSource::Full
                    },
                });
                state[i] = LitState::Done;
                continue;
            }

            // 3. Still-unbound variable that the caller needs: enumerate
            //    it over the active domain.
            let next_unbound = vars_to_bind.iter().copied().find(|v| !bound[v.index()]);
            if let Some(v) = next_unbound {
                steps.push(Step::Domain { var: v });
                bound[v.index()] = true;
                continue;
            }

            break;
        }
        flush_checks(literals, &mut state, &bound, &mut steps);
        debug_assert!(
            state.iter().all(|s| *s == LitState::Done),
            "planner left literals unscheduled"
        );
        steps
    }

    fn intern(&mut self, node: Node) -> NodeId {
        let is_unit = matches!(node, Node::Unit);
        let (id, hit) = self.arena.intern(node);
        if hit && !is_unit {
            self.stats.subplans_shared += 1;
        }
        id
    }

    /// Lowers ordered steps into the canonical IR chain: plan slots are
    /// assigned in first-bind order, so alphabetic-variant prefixes of
    /// different rules intern to the same nodes.
    fn compile(
        &mut self,
        rule: &Rule,
        literals: &[&Literal],
        vars_to_bind: &[Var],
        delta_lit: Option<usize>,
        prebound: &[Var],
    ) -> Plan {
        let steps = self.order_steps(rule, literals, vars_to_bind, delta_lit, prebound);

        let mut slot_of: Vec<Option<u32>> = vec![None; rule.var_count()];
        let mut next_slot = 0u32;
        // Prebound variables get the first slots, in caller order, so the
        // IR below can reference them as key columns before any step
        // binds them.
        for v in prebound {
            if slot_of[v.index()].is_none() {
                slot_of[v.index()] = Some(next_slot);
                next_slot += 1;
            }
        }
        let mut assign = |v: Var, slot_of: &mut Vec<Option<u32>>| {
            debug_assert!(slot_of[v.index()].is_none(), "slot assigned twice");
            let s = next_slot;
            slot_of[v.index()] = Some(s);
            next_slot += 1;
            s
        };
        fn pterm(t: &Term, slot_of: &[Option<u32>]) -> PTerm {
            match t {
                Term::Const(v) => PTerm::Const(*v),
                Term::Var(v) => {
                    PTerm::Slot(slot_of[v.index()].expect("plan term over unbound variable"))
                }
            }
        }

        let mut node = self.intern(Node::Unit);
        for step in &steps {
            node = match step {
                Step::Scan {
                    pred,
                    args,
                    key,
                    source,
                } => {
                    if !key.is_empty() {
                        self.stats.joins_pruned += 1;
                    }
                    let mut cols = Vec::with_capacity(args.len());
                    for (p, t) in args.iter().enumerate() {
                        if key.contains(&p) {
                            cols.push(ColOp::Key(pterm(t, &slot_of)));
                        } else {
                            let Term::Var(v) = t else {
                                unreachable!("constant positions are always key positions")
                            };
                            match slot_of[v.index()] {
                                // Bound earlier in this same atom: a
                                // repeated-variable check.
                                Some(s) => cols.push(ColOp::Check(s)),
                                None => cols.push(ColOp::Load(assign(*v, &mut slot_of))),
                            }
                        }
                    }
                    self.intern(Node::Join {
                        input: node,
                        pred: *pred,
                        source: *source,
                        cols: cols.into_boxed_slice(),
                    })
                }
                Step::BindEq { var, term } => {
                    let term = pterm(term, &slot_of);
                    let slot = assign(*var, &mut slot_of);
                    self.intern(Node::Bind {
                        input: node,
                        slot,
                        term,
                    })
                }
                Step::Domain { var } => {
                    let slot = assign(*var, &mut slot_of);
                    self.intern(Node::Domain { input: node, slot })
                }
                Step::CheckNeg { pred, args } => {
                    let args: Box<[PTerm]> = args.iter().map(|t| pterm(t, &slot_of)).collect();
                    self.intern(Node::Antijoin {
                        input: node,
                        pred: *pred,
                        args,
                    })
                }
                Step::CheckCmp { left, right, equal } => self.intern(Node::Select {
                    input: node,
                    left: pterm(left, &slot_of),
                    right: pterm(right, &slot_of),
                    equal: *equal,
                }),
            };
        }
        let body_root = node;

        // Head projection: only when the rule has the single-positive
        // head shape and the body binds every head variable (rules with
        // invented head variables keep a bare body chain — their engines
        // extend the valuation themselves).
        let mut root = body_root;
        if let [HeadLiteral::Pos(head)] = &rule.head[..] {
            let resolvable = head.args.iter().all(|t| match t {
                Term::Const(_) => true,
                Term::Var(v) => slot_of[v.index()].is_some(),
            });
            if resolvable {
                let args: Box<[PTerm]> = head.args.iter().map(|t| pterm(t, &slot_of)).collect();
                let project = self.intern(Node::Project {
                    input: body_root,
                    pred: head.pred,
                    args,
                });
                root = self.intern(Node::Distinct { input: project });
            }
        }

        Plan {
            steps,
            var_count: rule.var_count(),
            body_root,
            root,
        }
    }
}

/// Plans a rule's full body with an empty catalog (cost ordering
/// degenerates to most-bound-first). Engines that plan against a real
/// input should use a [`Planner`] with [`Catalog::from_instance`].
pub fn plan_rule(rule: &Rule) -> Plan {
    Planner::new(Catalog::empty(), PlanMode::Cost).plan_rule(rule)
}

/// Plans the given body literals with an empty catalog (see
/// [`Planner::plan_body`]).
pub fn plan_body(rule: &Rule, literals: &[&Literal], vars_to_bind: &[Var]) -> Plan {
    Planner::new(Catalog::empty(), PlanMode::Cost).plan_body(rule, literals, vars_to_bind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{for_each_match, for_each_match_from, IndexCache, Sources};
    use crate::subst::active_domain;
    use std::ops::ControlFlow;
    use unchained_common::{Instance, Interner, Tuple, Value};
    use unchained_parser::parse_program;

    fn collect_matches(
        src: &str,
        facts: &[(&str, Vec<i64>)],
    ) -> (Vec<Vec<Value>>, unchained_parser::Program) {
        let mut interner = Interner::new();
        let program = parse_program(src, &mut interner).unwrap();
        let mut instance = Instance::new();
        for (name, vals) in facts {
            let sym = interner.intern(name);
            let tuple: Tuple = vals.iter().map(|&v| Value::Int(v)).collect();
            instance.insert_fact(sym, tuple);
        }
        let adom = active_domain(&program, &instance);
        let rule = &program.rules[0];
        let plan = plan_rule(rule);
        let mut cache = IndexCache::new();
        let mut out = Vec::new();
        let n_vars = rule.var_count();
        let _ = for_each_match(
            &plan,
            Sources::simple(&instance),
            &adom,
            &mut cache,
            &mut |env| {
                out.push((0..n_vars).map(|i| env[i].unwrap()).collect::<Vec<_>>());
                ControlFlow::Continue(())
            },
        );
        out.sort();
        (out, program)
    }

    #[test]
    fn join_two_atoms() {
        let (matches, _) = collect_matches(
            "P(x,y) :- G(x,z), G(z,y).",
            &[("G", vec![1, 2]), ("G", vec![2, 3])],
        );
        // x=1, y=3, z=2 (vars in first-occurrence order: x, y, z).
        assert_eq!(
            matches,
            vec![vec![Value::Int(1), Value::Int(3), Value::Int(2)]]
        );
    }

    #[test]
    fn negative_only_rule_ranges_over_adom() {
        // CT(x,y) :- !T(x,y). — x, y enumerate the active domain.
        let (matches, _) =
            collect_matches("CT(x,y) :- !T(x,y).", &[("T", vec![1, 1]), ("E", vec![2])]);
        // adom = {1, 2}; all pairs except (1,1).
        assert_eq!(matches.len(), 3);
        assert!(!matches.contains(&vec![Value::Int(1), Value::Int(1)]));
    }

    #[test]
    fn repeated_variables_in_atom() {
        let (matches, _) =
            collect_matches("L(x) :- G(x,x).", &[("G", vec![1, 2]), ("G", vec![3, 3])]);
        assert_eq!(matches, vec![vec![Value::Int(3)]]);
    }

    #[test]
    fn constants_in_atoms() {
        let (matches, _) =
            collect_matches("P(x) :- G(1,x).", &[("G", vec![1, 2]), ("G", vec![2, 3])]);
        assert_eq!(matches, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn equality_binding_and_checks() {
        let (matches, _) = collect_matches(
            "P(x,y) :- G(x,y), y = 2.",
            &[("G", vec![1, 2]), ("G", vec![2, 3])],
        );
        assert_eq!(matches, vec![vec![Value::Int(1), Value::Int(2)]]);
        let (matches, _) = collect_matches(
            "P(x,y) :- G(x,y), x != y.",
            &[("G", vec![1, 1]), ("G", vec![1, 2])],
        );
        assert_eq!(matches, vec![vec![Value::Int(1), Value::Int(2)]]);
    }

    #[test]
    fn equality_can_introduce_domain_var() {
        // y bound through equality to x which is scanned.
        let (matches, _) = collect_matches("P(y) :- G(x,x), y = x.", &[("G", vec![3, 3])]);
        assert_eq!(matches, vec![vec![Value::Int(3), Value::Int(3)]]);
    }

    #[test]
    fn empty_body_matches_once() {
        let (matches, _) = collect_matches("delay :- .", &[("G", vec![1, 2])]);
        assert_eq!(matches.len(), 1);
    }

    #[test]
    fn missing_relation_is_empty_for_scan_and_true_for_negation() {
        let (matches, _) = collect_matches("P(x) :- M(x).", &[("G", vec![1, 2])]);
        assert!(matches.is_empty());
        let (matches, _) = collect_matches("P(x) :- G(x,y), !M(x).", &[("G", vec![1, 2])]);
        assert_eq!(matches.len(), 1);
    }

    #[test]
    fn early_exit_stops_enumeration() {
        let mut interner = Interner::new();
        let program = parse_program("P(x) :- G(x,y).", &mut interner).unwrap();
        let g = interner.get("G").unwrap();
        let mut instance = Instance::new();
        for k in 0..10 {
            instance.insert_fact(g, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
        }
        let adom = active_domain(&program, &instance);
        let plan = plan_rule(&program.rules[0]);
        let mut cache = IndexCache::new();
        let mut count = 0;
        let _ = for_each_match(
            &plan,
            Sources::simple(&instance),
            &adom,
            &mut cache,
            &mut |_| {
                count += 1;
                ControlFlow::Break(())
            },
        );
        assert_eq!(count, 1);
    }

    fn scan_preds(plan: &Plan) -> Vec<Symbol> {
        plan.steps
            .iter()
            .filter_map(|s| match s {
                Step::Scan { pred, .. } => Some(*pred),
                _ => None,
            })
            .collect()
    }

    fn instance_with(interner: &mut Interner, rels: &[(&str, usize, usize)]) -> Instance {
        // rels: (name, arity, cardinality); tuples are distinct ints.
        let mut instance = Instance::new();
        for (name, arity, card) in rels {
            let sym = interner.intern(name);
            instance.ensure(sym, *arity);
            for k in 0..*card {
                let tuple: Tuple = (0..*arity)
                    .map(|c| Value::Int((k * 7 + c) as i64))
                    .collect();
                instance.insert_fact(sym, tuple);
            }
        }
        instance
    }

    #[test]
    fn seminaive_variant_generation() {
        let mut interner = Interner::new();
        let program = parse_program("T(x,y) :- G(x,z), T(z,y).", &mut interner).unwrap();
        let t = interner.get("T").unwrap();
        let mut planner = Planner::new(Catalog::empty(), PlanMode::Cost);
        let variants = planner.seminaive_variants(&program.rules[0], &|p| p == t);
        assert_eq!(variants.len(), 1);
        let delta_scans = variants[0]
            .steps
            .iter()
            .filter(|s| {
                matches!(
                    s,
                    Step::Scan {
                        source: ScanSource::Delta,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(delta_scans, 1);
        // Non-recursive rule: no variants.
        let program2 = parse_program("T(x,y) :- G(x,y).", &mut interner).unwrap();
        assert!(planner
            .seminaive_variants(&program2.rules[0], &|p| p == t)
            .is_empty());
    }

    #[test]
    fn cost_mode_forces_delta_scan_first() {
        let mut interner = Interner::new();
        let program = parse_program("T(x,y) :- G(x,z), T(z,y).", &mut interner).unwrap();
        let g = interner.get("G").unwrap();
        let t = interner.get("T").unwrap();
        let instance = instance_with(&mut interner, &[("G", 2, 8)]);
        let mut planner = Planner::new(Catalog::from_instance(&instance), PlanMode::Cost);
        planner.inflate([t]);
        let variants = planner.seminaive_variants(&program.rules[0], &|p| p == t);
        assert_eq!(scan_preds(&variants[0]), vec![t, g]);
        // Syntactic mode keeps the full plan's order (G first) and only
        // flips the source.
        let mut planner = Planner::new(Catalog::from_instance(&instance), PlanMode::Syntactic);
        let variants = planner.seminaive_variants(&program.rules[0], &|p| p == t);
        assert_eq!(scan_preds(&variants[0]), vec![g, t]);
        assert!(matches!(
            variants[0].steps[1],
            Step::Scan {
                source: ScanSource::Delta,
                ..
            }
        ));
    }

    #[test]
    fn chain_join_order_tracks_cardinalities() {
        // A chain body: the cheapest relation leads, then the join
        // frontier follows the bindings.
        let mut interner = Interner::new();
        let program = parse_program("P(x,w) :- A(x,y), B(y,z), C(z,w).", &mut interner).unwrap();
        let (a, b, c) = (
            interner.get("A").unwrap(),
            interner.get("B").unwrap(),
            interner.get("C").unwrap(),
        );
        let instance = instance_with(&mut interner, &[("A", 2, 64), ("B", 2, 16), ("C", 2, 1)]);
        let mut planner = Planner::new(Catalog::from_instance(&instance), PlanMode::Cost);
        let plan = planner.plan_rule(&program.rules[0]);
        // C (card 1) first; B joins on z (16/16 = 1) before A (64/16 = 4).
        assert_eq!(scan_preds(&plan), vec![c, b, a]);
        // Syntactic mode ignores cardinalities: source order on the
        // all-unbound tie.
        let mut planner = Planner::new(Catalog::from_instance(&instance), PlanMode::Syntactic);
        let plan = planner.plan_rule(&program.rules[0]);
        assert_eq!(scan_preds(&plan), vec![a, b, c]);
    }

    #[test]
    fn star_join_order_tracks_cardinalities() {
        let mut interner = Interner::new();
        let program = parse_program("P(x) :- R(x,a), S(x,b), U(x,c).", &mut interner).unwrap();
        let (r, s, u) = (
            interner.get("R").unwrap(),
            interner.get("S").unwrap(),
            interner.get("U").unwrap(),
        );
        let instance = instance_with(&mut interner, &[("R", 2, 40), ("S", 2, 1), ("U", 2, 12)]);
        let mut planner = Planner::new(Catalog::from_instance(&instance), PlanMode::Cost);
        let plan = planner.plan_rule(&program.rules[0]);
        // S (card 1) binds the hub x; then U (12/4 = 3) before R (40/4 = 10).
        assert_eq!(scan_preds(&plan), vec![s, u, r]);
    }

    #[test]
    fn triangle_join_order_tracks_cardinalities() {
        let mut interner = Interner::new();
        let program =
            parse_program("P(x,y,z) :- E1(x,y), E2(y,z), E3(z,x).", &mut interner).unwrap();
        let (e1, e2, e3) = (
            interner.get("E1").unwrap(),
            interner.get("E2").unwrap(),
            interner.get("E3").unwrap(),
        );
        let instance = instance_with(&mut interner, &[("E1", 2, 2), ("E2", 2, 50), ("E3", 2, 50)]);
        let mut planner = Planner::new(Catalog::from_instance(&instance), PlanMode::Cost);
        let plan = planner.plan_rule(&program.rules[0]);
        // E1 (card 2) first; E2/E3 tie at one bound position → source
        // order; the last scan is fully bound.
        assert_eq!(scan_preds(&plan), vec![e1, e2, e3]);
        let Step::Scan { key, .. } = plan.steps.last().unwrap() else {
            panic!("last step must be the closing scan");
        };
        assert_eq!(key, &[0, 1], "closing triangle scan is a point lookup");
    }

    #[test]
    fn cost_mode_never_picks_a_cross_product_over_a_connected_atom() {
        // The Andersen load rule. After the forced delta scan binds
        // (q, o), the connected PT(p,q) atom must be scheduled before
        // the *smaller but unconnected* Load(v,p): picking Load there
        // re-enumerates it per delta tuple — a Cartesian product that
        // turns the whole fixpoint quadratic.
        let mut interner = Interner::new();
        let program =
            parse_program("PT(v,o) :- Load(v,p), PT(p,q), PT(q,o).", &mut interner).unwrap();
        let load = interner.get("Load").unwrap();
        let pt = interner.get("PT").unwrap();
        let instance = instance_with(&mut interner, &[("Load", 2, 4), ("PT", 2, 64)]);
        let mut planner = Planner::new(Catalog::from_instance(&instance), PlanMode::Cost);
        planner.inflate([pt]);
        let variants = planner.seminaive_variants(&program.rules[0], &|p| p == pt);
        assert_eq!(variants.len(), 2);
        // Δ on PT(q,o): delta first, then PT(p,q) via q, then Load via p.
        assert_eq!(scan_preds(&variants[1]), vec![pt, pt, load]);
        // Every post-delta scan probes on at least one bound column.
        for step in variants[1].steps.iter().skip(1) {
            if let Step::Scan { key, .. } = step {
                assert!(!key.is_empty(), "cross product scheduled: {step:?}");
            }
        }
        // Δ on PT(p,q): Load joins via p and is cheap, so it may lead
        // the remainder — but it too must arrive connected.
        for step in variants[0].steps.iter().skip(1) {
            if let Step::Scan { key, .. } = step {
                assert!(!key.is_empty(), "cross product scheduled: {step:?}");
            }
        }
    }

    #[test]
    fn sip_filters_only_push_into_bound_positions() {
        let mut interner = Interner::new();
        let program = parse_program("T(x,y) :- G(x,z), T(z,y).", &mut interner).unwrap();
        let instance = instance_with(&mut interner, &[("G", 2, 8)]);
        let t = interner.get("T").unwrap();
        let mut planner = Planner::new(Catalog::from_instance(&instance), PlanMode::Cost);
        planner.inflate([t]);
        let plan = planner.plan_rule(&program.rules[0]);
        // First scan (G) has nothing bound: empty key. Second scan (T)
        // probes exactly on column 0 (z is bound, y is not).
        let keys: Vec<&Vec<usize>> = plan
            .steps
            .iter()
            .filter_map(|s| match s {
                Step::Scan { key, .. } => Some(key),
                _ => None,
            })
            .collect();
        assert_eq!(keys, vec![&vec![], &vec![0]]);
        // The same fact is visible on the IR: one pruned join.
        assert_eq!(planner.stats().joins_pruned, 1);
        // And the join node keys only the bound column.
        let Node::Join { cols, .. } = planner.arena().node(plan.body_root) else {
            panic!("body root must be the T join");
        };
        assert!(matches!(cols[0], ColOp::Key(PTerm::Slot(_))));
        assert!(matches!(cols[1], ColOp::Load(_)));
    }

    #[test]
    fn common_subplan_sharing_dedupes_identical_body_prefixes() {
        let mut interner = Interner::new();
        let program = parse_program(
            "P(x,y) :- G(x,z), H(z,y).\nQ(u,v) :- G(u,w), H(w,v).",
            &mut interner,
        )
        .unwrap();
        let mut planner = Planner::new(Catalog::empty(), PlanMode::Cost);
        let p1 = planner.plan_rule(&program.rules[0]);
        let p2 = planner.plan_rule(&program.rules[1]);
        // Canonical slots make the alphabetic-variant bodies identical:
        // both scan G then join H, so the second rule's body chain is
        // fully shared (2 nodes), while project/distinct differ.
        assert_eq!(planner.stats().subplans_shared, 2);
        assert_eq!(p1.body_root, p2.body_root);
        assert_eq!(p1.node_count(planner.arena()), 4); // scan, join, project, distinct
        assert!(
            planner.arena().node_count()
                < p1.node_count(planner.arena()) + p2.node_count(planner.arena()) + 1
        );
        // A rule with a different body shares nothing.
        let other = parse_program("R(x,y) :- H(x,z), G(z,y).", &mut interner).unwrap();
        let before = planner.stats().subplans_shared;
        planner.plan_rule(&other.rules[0]);
        assert_eq!(planner.stats().subplans_shared, before);
    }

    #[test]
    fn cost_ordering_never_changes_answers() {
        // The same tricky bodies under both modes: answers agree.
        let sources = [
            "H(x,y) :- A(x,z), !B(z), A(y,w).",
            "H(x) :- A(x,x), B(x), A(x,y), !B(y).",
            "H(x) :- A(1,x), !A(x,2), x != 1.",
            "H(x,y) :- B(z), x = z, y = x, !A(x,y).",
            "H(x) :- B(x), A(x,x).",
        ];
        let mut interner = Interner::new();
        let a = interner.intern("A");
        let b = interner.intern("B");
        let mut instance = Instance::new();
        for (p, q) in [(1i64, 2), (2, 2), (2, 3), (3, 1)] {
            instance.insert_fact(a, Tuple::from([Value::Int(p), Value::Int(q)]));
        }
        for v in [1i64, 3] {
            instance.insert_fact(b, Tuple::from([Value::Int(v)]));
        }
        for src in sources {
            let program = parse_program(src, &mut interner).unwrap();
            let rule = &program.rules[0];
            let adom = active_domain(&program, &instance);
            let mut answers: Vec<Vec<Vec<Value>>> = Vec::new();
            for mode in [PlanMode::Cost, PlanMode::Syntactic] {
                let mut planner = Planner::new(Catalog::from_instance(&instance), mode);
                let plan = planner.plan_rule(rule);
                let mut cache = IndexCache::new();
                let mut out: Vec<Vec<Value>> = Vec::new();
                let vars = rule.body_vars();
                let _ = for_each_match(
                    &plan,
                    Sources::simple(&instance),
                    &adom,
                    &mut cache,
                    &mut |env| {
                        out.push(vars.iter().map(|v| env[v.index()].unwrap()).collect());
                        ControlFlow::Continue(())
                    },
                );
                out.sort();
                out.dedup();
                answers.push(out);
            }
            assert_eq!(answers[0], answers[1], "modes disagree on:\n{src}");
        }
    }

    #[test]
    fn prebound_head_variables_become_probe_keys() {
        // Support query: does any body valuation derive T(a, b) for a
        // *fixed* (a, b)? With x and y prebound the G scan probes on
        // both columns instead of enumerating.
        let mut interner = Interner::new();
        let program = parse_program("T(x,y) :- G(x,z), G(z,y).", &mut interner).unwrap();
        let rule = &program.rules[0];
        let g = interner.get("G").unwrap();
        let mut instance = Instance::new();
        for (p, q) in [(1i64, 2), (2, 3), (3, 4)] {
            instance.insert_fact(g, Tuple::from([Value::Int(p), Value::Int(q)]));
        }
        let head_vars: Vec<Var> = rule
            .head
            .first()
            .and_then(HeadLiteral::atom)
            .map(|a| a.args.iter().filter_map(|t| t.as_var()).collect())
            .unwrap_or_default();
        let mut planner = Planner::new(Catalog::from_instance(&instance), PlanMode::Cost);
        let plan = planner.plan_rule_bound(rule, &head_vars);
        // The first scheduled scan already probes on a bound column.
        let Some(Step::Scan { key, .. }) =
            plan.steps.iter().find(|s| matches!(s, Step::Scan { .. }))
        else {
            panic!("plan must scan G");
        };
        assert!(!key.is_empty(), "prebound vars must reach the probe key");

        // Seeded execution answers the point query.
        let adom = active_domain(&program, &instance);
        let mut cache = IndexCache::new();
        let mut supported = |a: i64, b: i64| {
            let mut env: Vec<Option<Value>> = vec![None; plan.var_count];
            for (v, val) in head_vars.iter().zip([a, b]) {
                env[v.index()] = Some(Value::Int(val));
            }
            let mut hit = false;
            let _ = for_each_match_from(
                &plan,
                Sources::simple(&instance),
                &adom,
                &mut cache,
                &mut env,
                &mut |_| {
                    hit = true;
                    ControlFlow::Break(())
                },
            );
            hit
        };
        assert!(supported(1, 3));
        assert!(supported(2, 4));
        assert!(!supported(1, 4));
        assert!(!supported(3, 3));
    }

    #[test]
    fn plans_render_through_the_arena() {
        let mut interner = Interner::new();
        let program = parse_program("T(x,y) :- G(x,z), T(z,y).", &mut interner).unwrap();
        let t = interner.get("T").unwrap();
        let instance = instance_with(&mut interner, &[("G", 2, 4)]);
        let mut planner = Planner::new(Catalog::from_instance(&instance), PlanMode::Cost);
        planner.inflate([t]);
        let plan = planner.plan_rule(&program.rules[0]);
        let text = planner.arena().render(plan.root, &interner);
        assert!(text.contains("distinct"), "{text}");
        assert!(text.contains("project T(s0, s2)"), "{text}");
        assert!(text.contains("join T(=s1, s2)"), "{text}");
        assert!(text.contains("scan G(s0, s1)"), "{text}");
    }
}

//! Stratified Datalog¬ (Section 3.2).
//!
//! The program's predicates are partitioned into strata such that
//! negation is only applied to predicates defined in strictly earlier
//! strata. Each stratum is then evaluated to a (semi-naive) fixpoint in
//! order, so every negative literal reads a fully computed relation —
//! "the portion of P defining R comes before the negation of R is used".

use crate::error::EvalError;
use crate::exec::IndexCache;
use crate::options::{EvalOptions, FixpointRun};
use crate::require_language;
use crate::seminaive::seminaive_fixpoint;
use crate::subst::active_domain;
use unchained_common::{FxHashSet, HeapSize, Instance, SpanKind, Symbol};
use unchained_parser::{check_range_restricted, DependencyGraph, HeadLiteral, Language, Program};

/// Evaluates a stratified Datalog¬ program.
///
/// # Errors
/// Rejects programs with recursion through negation
/// ([`AnalysisError::NotStratifiable`](unchained_parser::AnalysisError)),
/// programs outside Datalog¬ syntax, and non-range-restricted rules.
pub fn eval(
    program: &Program,
    input: &Instance,
    options: EvalOptions,
) -> Result<FixpointRun, EvalError> {
    // Accept Datalog¬ *syntax* here and let stratification reject
    // recursion through negation with the informative
    // `NotStratifiable` error (classification alone would report a
    // less specific `WrongLanguage`).
    require_language(program, Language::DatalogNeg)?;
    check_range_restricted(program, false)?;
    let stratification = DependencyGraph::build(program).stratify()?;

    let adom = active_domain(program, input);
    let mut instance = input.clone();
    let schema = program.schema()?;
    for pred in program.idb() {
        instance.ensure(pred, schema.arity(pred).expect("idb has arity"));
    }

    let mut cache = IndexCache::new();
    options.telemetry.begin("stratified");
    let run_sw = options.telemetry.stopwatch();
    let tracer = options.telemetry.tracer().clone();
    let eval_guard = tracer.span(SpanKind::Eval, "stratified");
    let mut stages = 0;
    for (stratum, stratum_rules) in stratification
        .partition_rules(program)
        .into_iter()
        .enumerate()
    {
        if stratum_rules.is_empty() {
            continue;
        }
        // Recursive predicates of this stratum: those defined here.
        let recursive: FxHashSet<Symbol> = stratum_rules
            .iter()
            .filter_map(|r| r.head.first().and_then(HeadLiteral::atom))
            .map(|a| a.pred)
            .collect();
        let stratum_guard = tracer.span(SpanKind::Stratum, format!("stratum {stratum}"));
        let rounds = seminaive_fixpoint(
            &stratum_rules,
            &mut instance,
            &adom,
            &recursive,
            &mut cache,
            &options,
        )?;
        tracer.gauge("rounds", rounds as u64);
        tracer.gauge("rules", stratum_rules.len() as u64);
        drop(stratum_guard);
        stages += rounds;
        options.telemetry.note(format!(
            "stratum {stratum}: {} rules, {rounds} rounds",
            stratum_rules.len()
        ));
    }
    tracer.gauge("final_facts", instance.fact_count() as u64);
    drop(eval_guard);
    let (segments, recent) = instance.storage_stats();
    options.telemetry.note(format!(
        "storage: {segments} segments, {recent} uncommitted"
    ));
    options
        .telemetry
        .with(|t| t.bytes_final = instance.heap_bytes() as u64);
    options.telemetry.finish(&run_sw, instance.fact_count());
    Ok(FixpointRun {
        instance,
        stages: stages.max(1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use unchained_common::{Interner, Tuple, Value};
    use unchained_parser::parse_program;

    /// The paper's Section 3.2 example: complement of transitive closure.
    fn ctc_program(interner: &mut Interner) -> Program {
        parse_program(
            "T(x,y) :- G(x,y).\n\
             T(x,y) :- G(x,z), T(z,y).\n\
             CT(x,y) :- !T(x,y).",
            interner,
        )
        .unwrap()
    }

    fn line(interner: &mut Interner, n: i64) -> Instance {
        let g = interner.intern("G");
        let mut inst = Instance::new();
        for k in 0..n - 1 {
            inst.insert_fact(g, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
        }
        inst
    }

    #[test]
    fn complement_of_transitive_closure() {
        let mut i = Interner::new();
        let p = ctc_program(&mut i);
        let input = line(&mut i, 4);
        let run = eval(&p, &input, EvalOptions::default()).unwrap();
        let t = i.get("T").unwrap();
        let ct = i.get("CT").unwrap();
        let t_rel = run.instance.relation(t).unwrap();
        let ct_rel = run.instance.relation(ct).unwrap();
        // |T| + |CT| = |adom|² and they are disjoint.
        assert_eq!(t_rel.len() + ct_rel.len(), 16);
        for tup in t_rel.iter() {
            assert!(!ct_rel.contains(tup));
        }
        // (0,1) reachable, so in T not CT; (1,0) unreachable.
        assert!(ct_rel.contains(&Tuple::from([Value::Int(1), Value::Int(0)])));
        assert!(!ct_rel.contains(&Tuple::from([Value::Int(0), Value::Int(1)])));
    }

    #[test]
    fn pure_datalog_agrees_with_seminaive() {
        let mut i = Interner::new();
        let p = parse_program("T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).", &mut i).unwrap();
        let input = line(&mut i, 6);
        let a = eval(&p, &input, EvalOptions::default()).unwrap();
        let b = crate::seminaive::minimum_model(&p, &input, EvalOptions::default()).unwrap();
        assert!(a.instance.same_facts(&b.instance));
    }

    #[test]
    fn multiple_strata_chain() {
        // Three strata: T, then A = ¬T restricted, then B = ¬A restricted.
        let mut i = Interner::new();
        let p = parse_program(
            "T(x,y) :- G(x,y).\n\
             T(x,y) :- G(x,z), T(z,y).\n\
             A(x,y) :- !T(x,y).\n\
             B(x,y) :- !A(x,y).",
            &mut i,
        )
        .unwrap();
        let input = line(&mut i, 3);
        let run = eval(&p, &input, EvalOptions::default()).unwrap();
        let t = i.get("T").unwrap();
        let b = i.get("B").unwrap();
        // B = ¬¬T = T (over adom²).
        assert!(run
            .instance
            .relation(b)
            .unwrap()
            .same_tuples(run.instance.relation(t).unwrap()));
    }

    #[test]
    fn rejects_unstratifiable() {
        let mut i = Interner::new();
        let p = parse_program("win(x) :- moves(x,y), !win(y).", &mut i).unwrap();
        assert!(matches!(
            eval(&p, &Instance::new(), EvalOptions::default()),
            Err(EvalError::Analysis(
                unchained_parser::AnalysisError::NotStratifiable { .. }
            ))
        ));
    }

    #[test]
    fn semipositive_program() {
        // NG = complement of edge relation over the vertex set.
        let mut i = Interner::new();
        let p = parse_program("NG(x,y) :- V(x), V(y), !G(x,y).", &mut i).unwrap();
        let v = i.get("V").unwrap();
        let g = i.get("G").unwrap();
        let mut input = Instance::new();
        for k in 0..3 {
            input.insert_fact(v, Tuple::from([Value::Int(k)]));
        }
        input.insert_fact(g, Tuple::from([Value::Int(0), Value::Int(1)]));
        let run = eval(&p, &input, EvalOptions::default()).unwrap();
        let ng = i.get("NG").unwrap();
        assert_eq!(run.instance.relation(ng).unwrap().len(), 8);
    }

    #[test]
    fn empty_stratum_rules_skipped() {
        let mut i = Interner::new();
        let p = parse_program("A(x) :- B(x).", &mut i).unwrap();
        let run = eval(&p, &Instance::new(), EvalOptions::default()).unwrap();
        assert!(run.stages >= 1);
    }

    #[test]
    fn negation_on_empty_relation() {
        // CT over a graph with no edges at all: adom comes only from V.
        let mut i = Interner::new();
        let p = parse_program("R(x) :- V(x), !S(x).", &mut i).unwrap();
        let v = i.get("V").unwrap();
        let mut input = Instance::new();
        input.insert_fact(v, Tuple::from([Value::Int(1)]));
        let run = eval(&p, &input, EvalOptions::default()).unwrap();
        let r = i.get("R").unwrap();
        assert_eq!(run.instance.relation(r).unwrap().len(), 1);
    }
}

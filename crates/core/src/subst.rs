//! Substitution helpers shared by every engine: valuation
//! environments, term evaluation, head instantiation, the active
//! domain, and the fact-merge loop of the parallel-firing fixpoints.
//!
//! Before the IR refactor these helpers were copy-pasted (with small
//! drift) across `eval.rs`, `naive.rs`, and `inflationary.rs`; they now
//! live here once.

use unchained_common::{FxHashMap, Instance, Symbol, Tuple, Value};
use unchained_parser::Term;

/// A valuation environment: one slot per rule variable.
pub type Env = Vec<Option<Value>>;

/// Evaluates `term` under `env`.
///
/// # Panics
/// Panics if the term is an unbound variable — the planner guarantees
/// this cannot happen for well-formed plans.
#[inline]
pub fn term_value(term: &Term, env: &Env) -> Value {
    match term {
        Term::Const(v) => *v,
        Term::Var(v) => env[v.index()].expect("planner bound all variables"),
    }
}

/// Instantiates `args` under a complete environment.
pub fn instantiate(args: &[Term], env: &Env) -> Tuple {
    args.iter().map(|t| term_value(t, env)).collect()
}

/// Computes the sorted active domain `adom(P, I)`: constants of the
/// program plus values of the instance.
pub fn active_domain(program: &unchained_parser::Program, instance: &Instance) -> Vec<Value> {
    let mut dom = instance.adom();
    dom.extend(program.adom());
    let mut v: Vec<Value> = dom.into_iter().collect();
    v.sort_unstable();
    v
}

/// Merges `new_facts` into `instance`, reporting whether anything
/// changed and (only when `enabled`) the per-predicate delta counts.
pub fn merge_new_facts(
    instance: &mut Instance,
    new_facts: Vec<(Symbol, Tuple)>,
    enabled: bool,
) -> (bool, Vec<(Symbol, usize)>) {
    merge_new_facts_with(instance, new_facts, enabled, &mut |_, _| {})
}

/// Like [`merge_new_facts`], invoking `on_insert` for every fact that
/// was actually new (the inflationary traced engine records birth
/// stages this way).
pub fn merge_new_facts_with(
    instance: &mut Instance,
    new_facts: Vec<(Symbol, Tuple)>,
    enabled: bool,
    on_insert: &mut dyn FnMut(Symbol, &Tuple),
) -> (bool, Vec<(Symbol, usize)>) {
    let mut changed = false;
    let mut delta: Vec<(Symbol, usize)> = Vec::new();
    for (pred, tuple) in new_facts {
        if instance.insert_fact(pred, tuple.clone()) {
            changed = true;
            on_insert(pred, &tuple);
            if enabled {
                match delta.iter_mut().find(|(p, _)| *p == pred) {
                    Some((_, n)) => *n += 1,
                    None => delta.push((pred, 1)),
                }
            }
        }
    }
    (changed, delta)
}

/// Records the birth stage of each newly inserted fact into `birth`
/// (first insertion wins), for use as a `merge_new_facts_with` hook.
pub fn record_births<'a>(
    birth: &'a mut FxHashMap<(Symbol, Tuple), usize>,
    stage: usize,
) -> impl FnMut(Symbol, &Tuple) + 'a {
    move |pred, tuple| {
        birth.entry((pred, tuple.clone())).or_insert(stage);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unchained_common::Interner;
    use unchained_parser::parse_program;

    #[test]
    fn term_value_and_instantiate() {
        let mut i = Interner::new();
        let program = parse_program("P(x, 7) :- Q(x).", &mut i).unwrap();
        let head = match &program.rules[0].head[0] {
            unchained_parser::HeadLiteral::Pos(a) => a,
            _ => unreachable!(),
        };
        let env: Env = vec![Some(Value::Int(3))];
        assert_eq!(
            instantiate(&head.args, &env),
            Tuple::from([Value::Int(3), Value::Int(7)])
        );
    }

    #[test]
    fn active_domain_merges_program_and_instance_constants() {
        let mut i = Interner::new();
        let program = parse_program("P(x) :- Q(x), x != 9.", &mut i).unwrap();
        let q = i.get("Q").unwrap();
        let mut instance = Instance::new();
        instance.insert_fact(q, Tuple::from([Value::Int(1)]));
        let adom = active_domain(&program, &instance);
        assert_eq!(adom, vec![Value::Int(1), Value::Int(9)]);
    }

    #[test]
    fn merge_reports_change_and_delta_counts() {
        let mut i = Interner::new();
        let p = i.intern("P");
        let q = i.intern("Q");
        let mut instance = Instance::new();
        instance.insert_fact(p, Tuple::from([Value::Int(1)]));
        let new_facts = vec![
            (p, Tuple::from([Value::Int(1)])), // already present
            (p, Tuple::from([Value::Int(2)])),
            (q, Tuple::from([Value::Int(3)])),
            (q, Tuple::from([Value::Int(3)])), // duplicate in the batch
        ];
        let (changed, delta) = merge_new_facts(&mut instance, new_facts, true);
        assert!(changed);
        assert_eq!(delta, vec![(p, 1), (q, 1)]);
        // With telemetry disabled the delta stays empty but the change
        // flag is still exact.
        let (changed, delta) = merge_new_facts(
            &mut instance,
            vec![(q, Tuple::from([Value::Int(3)]))],
            false,
        );
        assert!(!changed);
        assert!(delta.is_empty());
    }

    #[test]
    fn birth_hook_records_first_insertion_only() {
        let mut i = Interner::new();
        let p = i.intern("P");
        let mut instance = Instance::new();
        let mut birth = FxHashMap::default();
        let t = Tuple::from([Value::Int(1)]);
        merge_new_facts_with(
            &mut instance,
            vec![(p, t.clone())],
            false,
            &mut record_births(&mut birth, 2),
        );
        merge_new_facts_with(
            &mut instance,
            vec![(p, t.clone())],
            false,
            &mut record_births(&mut birth, 5),
        );
        assert_eq!(birth.get(&(p, t)), Some(&2));
    }
}

//! An active-database trigger engine — the framework of Picouet–Vianu
//! \[104\] ("Semantics and expressiveness issues in active databases"),
//! which the paper points to at the end of Section 4.3, in its
//! deferred-execution, set-oriented form.
//!
//! Active rules are ordinary Datalog¬¬-style rules over the base schema
//! **extended with delta relations**: for a base relation `R`, the
//! relation `ins-R` holds the tuples inserted in the previous round and
//! `del-R` those deleted. Execution:
//!
//! 1. an external **update** (a set of insertions and deletions) is
//!    applied to the state and becomes the round-0 deltas;
//! 2. each round evaluates all rules *once* (one parallel firing)
//!    against the state plus the current deltas; positive heads request
//!    insertions, negative heads deletions;
//! 3. the *effective* changes (requests that actually change the state)
//!    are applied and become the next round's deltas;
//! 4. the database **quiesces** when a round changes nothing.
//!
//! Like Datalog¬¬ itself (Section 4.2), triggers need not terminate;
//! a round budget bounds runaway cascades. \[104\] shows such languages
//! climb the complexity ladder (pspace, exptime, …) depending on the
//! features enabled — here we provide the core machinery and validate
//! its behavioural properties (cascades, audit rules, quiescence,
//! divergence).

use crate::error::EvalError;
use crate::exec::{for_each_match, IndexCache, Sources};
use crate::ir::Plan;
use crate::planner::plan_rule;
use crate::subst::{active_domain, instantiate};
use std::ops::ControlFlow;
use unchained_common::{FxHashSet, Instance, Interner, Symbol, Tuple};
use unchained_parser::{check_range_restricted, HeadLiteral, Program};

/// Prefix naming the insertion delta of a relation (`ins-R`).
pub const INS_PREFIX: &str = "ins-";
/// Prefix naming the deletion delta of a relation (`del-R`).
pub const DEL_PREFIX: &str = "del-";

/// An external update: the triggering event.
#[derive(Clone, Default, Debug)]
pub struct Update {
    /// Facts to insert.
    pub insertions: Vec<(Symbol, Tuple)>,
    /// Facts to delete.
    pub deletions: Vec<(Symbol, Tuple)>,
}

impl Update {
    /// An update inserting one fact.
    pub fn insert(pred: Symbol, tuple: Tuple) -> Self {
        Update {
            insertions: vec![(pred, tuple)],
            deletions: vec![],
        }
    }

    /// An update deleting one fact.
    pub fn delete(pred: Symbol, tuple: Tuple) -> Self {
        Update {
            insertions: vec![],
            deletions: vec![(pred, tuple)],
        }
    }

    /// Adds an insertion (builder style).
    pub fn and_insert(mut self, pred: Symbol, tuple: Tuple) -> Self {
        self.insertions.push((pred, tuple));
        self
    }

    /// Adds a deletion (builder style).
    pub fn and_delete(mut self, pred: Symbol, tuple: Tuple) -> Self {
        self.deletions.push((pred, tuple));
        self
    }
}

/// Outcome of processing one update to quiescence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ActiveReport {
    /// Rounds of trigger firing (0 if the update itself changed
    /// nothing).
    pub rounds: usize,
    /// Total effective insertions (including the external ones).
    pub inserted: usize,
    /// Total effective deletions (including the external ones).
    pub deleted: usize,
}

/// An active database: base state plus trigger rules.
pub struct ActiveDatabase {
    /// Trigger rules (over base relations and `ins-`/`del-` deltas).
    pub program: Program,
    /// The base state. Delta relations never appear here.
    pub state: Instance,
    /// Round budget per update.
    pub max_rounds: usize,
}

impl ActiveDatabase {
    /// Creates an active database.
    ///
    /// # Errors
    /// Rejects non-range-restricted rules.
    pub fn new(program: Program, state: Instance) -> Result<Self, EvalError> {
        check_range_restricted(&program, false)?;
        Ok(ActiveDatabase {
            program,
            state,
            max_rounds: 10_000,
        })
    }

    /// Applies `update` and fires triggers until quiescence.
    ///
    /// `interner` is needed to resolve the `ins-R` / `del-R` delta
    /// relation names used by the rules.
    pub fn apply(
        &mut self,
        update: Update,
        interner: &mut Interner,
    ) -> Result<ActiveReport, EvalError> {
        // Apply the external update; effective changes seed the deltas.
        let mut report = ActiveReport {
            rounds: 0,
            inserted: 0,
            deleted: 0,
        };
        let mut delta_ins: Vec<(Symbol, Tuple)> = Vec::new();
        let mut delta_del: Vec<(Symbol, Tuple)> = Vec::new();
        for (pred, tuple) in update.insertions {
            if self.state.insert_fact(pred, tuple.clone()) {
                report.inserted += 1;
                delta_ins.push((pred, tuple));
            }
        }
        for (pred, tuple) in update.deletions {
            if self
                .state
                .relation_mut(pred)
                .is_some_and(|r| r.remove(&tuple))
            {
                report.deleted += 1;
                delta_del.push((pred, tuple));
            }
        }

        let plans: Vec<Plan> = self.program.rules.iter().map(plan_rule).collect();
        while !delta_ins.is_empty() || !delta_del.is_empty() {
            report.rounds += 1;
            if report.rounds > self.max_rounds {
                return Err(EvalError::StageLimitExceeded(self.max_rounds));
            }
            // Resolve delta names for every base relation currently
            // known (schema, state, or this round's deltas) — relations
            // first introduced by an update or a trigger head get their
            // deltas here.
            let mut delta_of: unchained_common::FxHashMap<Symbol, (Symbol, Symbol)> =
                unchained_common::FxHashMap::default();
            let schema = self.program.schema()?;
            let mut base_preds: Vec<Symbol> = schema.iter().map(|(s, _)| s).collect();
            base_preds.extend(self.state.symbols());
            base_preds.extend(delta_ins.iter().chain(delta_del.iter()).map(|(p, _)| *p));
            base_preds.sort_unstable();
            base_preds.dedup();
            for pred in base_preds {
                let name = interner.name(pred).to_string();
                if name.starts_with(INS_PREFIX) || name.starts_with(DEL_PREFIX) {
                    continue;
                }
                let ins = interner.intern(&format!("{INS_PREFIX}{name}"));
                let del = interner.intern(&format!("{DEL_PREFIX}{name}"));
                delta_of.insert(pred, (ins, del));
            }
            // Working view: state + delta relations.
            let mut view = self.state.clone();
            for (pred, tuple) in &delta_ins {
                if let Some(&(ins, _)) = delta_of.get(pred) {
                    view.insert_fact(ins, tuple.clone());
                }
            }
            for (pred, tuple) in &delta_del {
                if let Some(&(_, del)) = delta_of.get(pred) {
                    view.insert_fact(del, tuple.clone());
                }
            }
            // One parallel firing of all rules against the view.
            let adom = active_domain(&self.program, &view);
            let mut cache = IndexCache::new();
            let mut req_ins: FxHashSet<(Symbol, Tuple)> = FxHashSet::default();
            let mut req_del: FxHashSet<(Symbol, Tuple)> = FxHashSet::default();
            for (rule, plan) in self.program.rules.iter().zip(&plans) {
                let (pred, args, negative) = match &rule.head[0] {
                    HeadLiteral::Pos(a) => (a.pred, &a.args, false),
                    HeadLiteral::Neg(a) => (a.pred, &a.args, true),
                    HeadLiteral::Bottom => continue,
                };
                let _ = for_each_match(
                    plan,
                    Sources::simple(&view),
                    &adom,
                    &mut cache,
                    &mut |env| {
                        let tuple = instantiate(args, env);
                        if negative {
                            req_del.insert((pred, tuple));
                        } else {
                            req_ins.insert((pred, tuple));
                        }
                        ControlFlow::Continue(())
                    },
                );
            }
            // Effective changes (insertion priority on conflicts, as in
            // the paper's Datalog¬¬ semantics).
            delta_ins.clear();
            delta_del.clear();
            for (pred, tuple) in &req_del {
                if req_ins.contains(&(*pred, tuple.clone())) {
                    continue;
                }
                if self
                    .state
                    .relation_mut(*pred)
                    .is_some_and(|r| r.remove(tuple))
                {
                    report.deleted += 1;
                    delta_del.push((*pred, tuple.clone()));
                }
            }
            for (pred, tuple) in req_ins {
                if self.state.insert_fact(pred, tuple.clone()) {
                    report.inserted += 1;
                    delta_ins.push((pred, tuple));
                }
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unchained_common::Value;
    use unchained_parser::parse_program;

    fn sym(i: &mut Interner, s: &str) -> Value {
        Value::sym(i, s)
    }

    /// Referential integrity by genuinely cascading triggers: deleting
    /// a department deletes its employees (round 1), which deletes
    /// their assignments (round 2).
    #[test]
    fn cascading_delete_over_two_rounds() {
        let mut i = Interner::new();
        let program = parse_program(
            "!emp(e, d) :- del-dept(d), emp(e, d).\n\
             !assigned(e, p) :- del-emp(e, d), assigned(e, p).",
            &mut i,
        )
        .unwrap();
        let dept = i.get("dept").unwrap_or_else(|| i.intern("dept"));
        let emp = i.get("emp").unwrap();
        let assigned = i.get("assigned").unwrap();
        let mut state = Instance::new();
        let sales = sym(&mut i, "sales");
        let ops = sym(&mut i, "ops");
        state.insert_fact(dept, Tuple::from([sales]));
        state.insert_fact(dept, Tuple::from([ops]));
        let (ann, bob, dan) = (sym(&mut i, "ann"), sym(&mut i, "bob"), sym(&mut i, "dan"));
        state.insert_fact(emp, Tuple::from([ann, sales]));
        state.insert_fact(emp, Tuple::from([bob, sales]));
        state.insert_fact(emp, Tuple::from([dan, ops]));
        let (p1, p2, p3) = (sym(&mut i, "p1"), sym(&mut i, "p2"), sym(&mut i, "p3"));
        state.insert_fact(assigned, Tuple::from([ann, p1]));
        state.insert_fact(assigned, Tuple::from([bob, p2]));
        state.insert_fact(assigned, Tuple::from([dan, p3]));

        let mut db = ActiveDatabase::new(program, state).unwrap();
        let report = db
            .apply(Update::delete(dept, Tuple::from([sales])), &mut i)
            .unwrap();
        // 1 dept + 2 emps + 2 assignments deleted; 2 cascade rounds +
        // a quiescing round.
        assert_eq!(report.deleted, 5);
        assert_eq!(report.inserted, 0);
        assert!(report.rounds >= 2);
        assert_eq!(db.state.relation(emp).unwrap().len(), 1);
        assert_eq!(db.state.relation(assigned).unwrap().len(), 1);
    }

    /// Audit triggers: insertions are logged, and the log itself does
    /// not retrigger anything.
    #[test]
    fn audit_log_trigger() {
        let mut i = Interner::new();
        let program = parse_program("log(e, d) :- ins-emp(e, d).", &mut i).unwrap();
        let emp = i.intern("emp");
        let log = i.get("log").unwrap();
        let mut db = ActiveDatabase::new(program, Instance::new()).unwrap();
        let e = sym(&mut i, "eve");
        let d = sym(&mut i, "rnd");
        let report = db
            .apply(Update::insert(emp, Tuple::from([e, d])), &mut i)
            .unwrap();
        assert!(db.state.contains_fact(log, &Tuple::from([e, d])));
        // emp insert + log insert.
        assert_eq!(report.inserted, 2);
        // Re-inserting an existing fact is a no-op: no deltas, no firing.
        let report = db
            .apply(Update::insert(emp, Tuple::from([e, d])), &mut i)
            .unwrap();
        assert_eq!(
            report,
            ActiveReport {
                rounds: 0,
                inserted: 0,
                deleted: 0
            }
        );
    }

    /// Repair trigger: deleting a protected fact re-inserts it
    /// (compensating action), reaching quiescence.
    #[test]
    fn compensating_trigger_restores_protected_fact() {
        let mut i = Interner::new();
        let program =
            parse_program("config(k, v) :- del-config(k, v), protected(k).", &mut i).unwrap();
        let config = i.get("config").unwrap();
        let protected = i.get("protected").unwrap();
        let mut state = Instance::new();
        let k = sym(&mut i, "root-key");
        let v = sym(&mut i, "v1");
        state.insert_fact(config, Tuple::from([k, v]));
        state.insert_fact(protected, Tuple::from([k]));
        let mut db = ActiveDatabase::new(program, state).unwrap();
        let report = db
            .apply(Update::delete(config, Tuple::from([k, v])), &mut i)
            .unwrap();
        assert!(db.state.contains_fact(config, &Tuple::from([k, v])));
        assert_eq!(report.deleted, 1);
        assert_eq!(report.inserted, 1);
    }

    /// Two triggers that undo each other forever exhaust the round
    /// budget — active rule sets need not terminate, like Datalog¬¬.
    #[test]
    fn ping_pong_triggers_hit_round_budget() {
        let mut i = Interner::new();
        // Delete on insert, re-insert on delete: each round undoes the
        // previous one forever.
        let program = parse_program("!A(x) :- ins-A(x). A(x) :- del-A(x).", &mut i).unwrap();
        let a = i.intern("A");
        let mut db = ActiveDatabase::new(program, Instance::new()).unwrap();
        db.max_rounds = 30;
        let result = db.apply(Update::insert(a, Tuple::from([Value::Int(1)])), &mut i);
        assert!(matches!(result, Err(EvalError::StageLimitExceeded(30))));
    }

    /// Mixed update: simultaneous insertions and deletions both seed
    /// round-0 deltas.
    #[test]
    fn mixed_update_seeds_both_deltas() {
        let mut i = Interner::new();
        let program =
            parse_program("sawins(x) :- ins-R(x). sawdel(x) :- del-R(x).", &mut i).unwrap();
        let r = i.intern("R");
        let sawins = i.get("sawins").unwrap();
        let sawdel = i.get("sawdel").unwrap();
        let mut state = Instance::new();
        state.insert_fact(r, Tuple::from([Value::Int(1)]));
        let mut db = ActiveDatabase::new(program, state).unwrap();
        let update = Update::insert(r, Tuple::from([Value::Int(2)]))
            .and_delete(r, Tuple::from([Value::Int(1)]));
        db.apply(update, &mut i).unwrap();
        assert!(db
            .state
            .contains_fact(sawins, &Tuple::from([Value::Int(2)])));
        assert!(db
            .state
            .contains_fact(sawdel, &Tuple::from([Value::Int(1)])));
    }
}

//! Errors produced by the evaluation engines.

use std::fmt;
use unchained_parser::{AnalysisError, Language};

/// An evaluation error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EvalError {
    /// The program failed a syntactic precondition (range restriction,
    /// stratifiability, arity consistency, …).
    Analysis(AnalysisError),
    /// The program belongs to a language the engine does not implement
    /// (e.g. a Datalog¬¬ program handed to the inflationary engine).
    WrongLanguage {
        /// The most expressive language the engine accepts.
        engine_accepts: Language,
        /// What the program classified as.
        found: Language,
    },
    /// A noninflationary computation revisited a previous state and will
    /// therefore never reach a fixpoint (like the flip-flop program of
    /// Section 4.2).
    Diverged {
        /// Stage at which the repeated state was re-entered.
        stage: usize,
        /// Length of the cycle (stage − first occurrence).
        period: usize,
    },
    /// The configured stage budget was exhausted without reaching a
    /// fixpoint (or detecting a cycle).
    StageLimitExceeded(usize),
    /// The configured fact budget was exhausted (only reachable with
    /// value invention, which can grow instances without bound).
    FactLimitExceeded(usize),
    /// Simultaneous inference of `A` and `¬A` under the
    /// [`ConflictPolicy::Undefined`](crate::noninflationary::ConflictPolicy)
    /// semantics.
    Contradiction {
        /// Stage at which the contradiction occurred.
        stage: usize,
    },
    /// An incremental-session update was rejected: edits must target
    /// EDB relations with schema-consistent arities, and the initial
    /// instance must not already contain IDB facts.
    InvalidUpdate(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Analysis(e) => write!(f, "{e}"),
            EvalError::WrongLanguage {
                engine_accepts,
                found,
            } => write!(
                f,
                "program is in {found}, but this engine accepts at most {engine_accepts}"
            ),
            EvalError::Diverged { stage, period } => write!(
                f,
                "computation diverges: state at stage {stage} repeats with period {period}"
            ),
            EvalError::StageLimitExceeded(n) => {
                write!(f, "stage limit of {n} exceeded without reaching a fixpoint")
            }
            EvalError::FactLimitExceeded(n) => write!(f, "fact limit of {n} exceeded"),
            EvalError::Contradiction { stage } => write!(
                f,
                "A and ¬A inferred simultaneously at stage {stage} (undefined semantics)"
            ),
            EvalError::InvalidUpdate(msg) => write!(f, "invalid incremental update: {msg}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<AnalysisError> for EvalError {
    fn from(e: AnalysisError) -> Self {
        EvalError::Analysis(e)
    }
}

impl From<unchained_common::schema::ArityConflict> for EvalError {
    fn from(e: unchained_common::schema::ArityConflict) -> Self {
        EvalError::Analysis(AnalysisError::ArityConflict(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_facts() {
        let e = EvalError::Diverged {
            stage: 7,
            period: 2,
        };
        let s = e.to_string();
        assert!(s.contains('7') && s.contains('2'));
        let e = EvalError::WrongLanguage {
            engine_accepts: Language::DatalogNeg,
            found: Language::DatalogNegNeg,
        };
        assert!(e.to_string().contains("Datalog¬¬"));
    }
}

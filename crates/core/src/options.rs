//! Evaluation options and result types shared by the engines.

use std::num::NonZeroUsize;
use std::sync::OnceLock;

use unchained_common::{Instance, Telemetry};
use unchained_parser::{HeadLiteral, Program};

use crate::planner::PlanMode;

/// Default worker-thread count: `UNCHAINED_THREADS` from the environment
/// (read once per process), else 1. Letting the env var steer the default
/// means `UNCHAINED_THREADS=4 cargo test` exercises the parallel rounds
/// across the whole suite without touching any call site.
fn default_threads() -> NonZeroUsize {
    static DEFAULT: OnceLock<NonZeroUsize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("UNCHAINED_THREADS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(NonZeroUsize::MIN)
    })
}

/// Default [`EvalOptions::morsel_size`]: small enough to load-balance
/// skewed rounds across workers, large enough that the shared-queue
/// fetch is noise next to the per-row join work.
pub const DEFAULT_MORSEL_SIZE: usize = 2048;

/// How the noninflationary engines detect that a computation will never
/// reach a fixpoint (Section 4.2: e.g. the flip-flop program).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DivergenceDetection {
    /// Remember every visited state and compare exactly. Precise, memory
    /// proportional to the number of stages × instance size.
    #[default]
    Exact,
    /// Remember only 64-bit state fingerprints. Uses constant memory per
    /// stage; a false divergence report requires a fingerprint collision
    /// (probability ≈ 2⁻⁶⁴ per pair of states).
    Fingerprint,
    /// No cycle detection; rely on the stage limit alone.
    Off,
}

/// Budgets and knobs for an evaluation run.
#[derive(Clone, Debug)]
pub struct EvalOptions {
    /// Maximum number of stages (applications of the immediate
    /// consequence operator) before giving up with
    /// [`EvalError::StageLimitExceeded`](crate::EvalError).
    pub max_stages: Option<usize>,
    /// Maximum total number of facts before giving up with
    /// [`EvalError::FactLimitExceeded`](crate::EvalError). Only value
    /// invention can grow an instance beyond polynomial bounds, but the
    /// limit is enforced wherever set.
    pub max_facts: Option<usize>,
    /// Cycle detection for noninflationary semantics.
    pub divergence: DivergenceDetection,
    /// Trace sink. Disabled by default; cloning the options clones the
    /// handle, so all clones feed the same trace.
    pub telemetry: Telemetry,
    /// Worker threads for the semi-naive hot path (and the engines built
    /// on it). 1 (the default, unless `UNCHAINED_THREADS` overrides it)
    /// keeps evaluation strictly sequential; output is byte-identical for
    /// every value.
    pub threads: NonZeroUsize,
    /// Maximum driver rows per morsel for the parallel executor: each
    /// fixpoint round is cut into contiguous driver-row ranges of at
    /// most this many rows, pulled by workers from a shared queue.
    /// Output is byte-identical for every value (the morsel partition
    /// is deterministic and schedule-independent); the knob trades
    /// scheduling overhead against load balance. Ignored at 1 thread.
    pub morsel_size: usize,
    /// How rule bodies are ordered by the planner. [`PlanMode::Cost`]
    /// (the default) orders joins by catalog cardinalities;
    /// [`PlanMode::Syntactic`] keeps the historical most-bound-first
    /// order and exists as the differential-fuzzing reference leg.
    pub plan_mode: PlanMode,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            max_stages: None,
            max_facts: None,
            divergence: DivergenceDetection::Exact,
            telemetry: Telemetry::off(),
            threads: default_threads(),
            morsel_size: DEFAULT_MORSEL_SIZE,
            plan_mode: PlanMode::default(),
        }
    }
}

impl EvalOptions {
    /// Options with a stage budget.
    pub fn with_max_stages(mut self, n: usize) -> Self {
        self.max_stages = Some(n);
        self
    }

    /// Options with a fact budget.
    pub fn with_max_facts(mut self, n: usize) -> Self {
        self.max_facts = Some(n);
        self
    }

    /// Options with the given divergence detector.
    pub fn with_divergence(mut self, d: DivergenceDetection) -> Self {
        self.divergence = d;
        self
    }

    /// Options feeding the given telemetry handle.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Options with the given worker-thread count (`n == 0` is clamped
    /// to 1, i.e. sequential).
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = NonZeroUsize::new(n).unwrap_or(NonZeroUsize::MIN);
        self
    }

    /// Options with the given morsel size (`n == 0` is clamped to 1).
    pub fn with_morsel_size(mut self, n: usize) -> Self {
        self.morsel_size = n.max(1);
        self
    }

    /// Options with the given planning mode.
    pub fn with_plan_mode(mut self, mode: PlanMode) -> Self {
        self.plan_mode = mode;
        self
    }
}

/// The result of a terminating fixpoint computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FixpointRun {
    /// The final instance over `sch(P)` (input relations included).
    pub instance: Instance,
    /// Number of stages performed, counting the stage that detects the
    /// fixpoint (so a program that infers nothing still takes 1 stage).
    pub stages: usize,
}

impl FixpointRun {
    /// The *image* (answer) of the program: the final instance restricted
    /// to the idb relations, as defined in Section 4.1 of the paper.
    pub fn answer(&self, program: &Program) -> Instance {
        self.instance.project_schema(program.idb())
    }
}

/// True if the program's rules all have a single positive head literal
/// (the shape required by the deterministic Datalog(¬) engines).
pub fn single_positive_heads(program: &Program) -> bool {
    program
        .rules
        .iter()
        .all(|r| r.head.len() == 1 && matches!(r.head[0], HeadLiteral::Pos(_)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_builders() {
        let o = EvalOptions::default()
            .with_max_stages(5)
            .with_max_facts(100)
            .with_divergence(DivergenceDetection::Fingerprint);
        assert_eq!(o.max_stages, Some(5));
        assert_eq!(o.max_facts, Some(100));
        assert_eq!(o.divergence, DivergenceDetection::Fingerprint);
    }

    #[test]
    fn default_has_no_budgets() {
        let o = EvalOptions::default();
        assert!(o.max_stages.is_none() && o.max_facts.is_none());
        assert_eq!(o.divergence, DivergenceDetection::Exact);
    }

    #[test]
    fn morsel_size_builder_clamps_zero() {
        assert_eq!(EvalOptions::default().morsel_size, DEFAULT_MORSEL_SIZE);
        assert_eq!(EvalOptions::default().with_morsel_size(0).morsel_size, 1);
        assert_eq!(EvalOptions::default().with_morsel_size(64).morsel_size, 64);
    }

    #[test]
    fn thread_builder_clamps_zero_to_sequential() {
        assert_eq!(EvalOptions::default().with_threads(4).threads.get(), 4);
        assert_eq!(EvalOptions::default().with_threads(0).threads.get(), 1);
    }

    /// `EvalOptions` must be shareable by reference across scoped worker
    /// threads (it carries the telemetry handle into them).
    #[test]
    fn options_are_send_and_sync() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<EvalOptions>();
    }
}

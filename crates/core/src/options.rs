//! Evaluation options and result types shared by the engines.

use unchained_common::{Instance, Telemetry};
use unchained_parser::{HeadLiteral, Program};

/// How the noninflationary engines detect that a computation will never
/// reach a fixpoint (Section 4.2: e.g. the flip-flop program).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DivergenceDetection {
    /// Remember every visited state and compare exactly. Precise, memory
    /// proportional to the number of stages × instance size.
    #[default]
    Exact,
    /// Remember only 64-bit state fingerprints. Uses constant memory per
    /// stage; a false divergence report requires a fingerprint collision
    /// (probability ≈ 2⁻⁶⁴ per pair of states).
    Fingerprint,
    /// No cycle detection; rely on the stage limit alone.
    Off,
}

/// Budgets and knobs for an evaluation run.
#[derive(Clone, Debug)]
pub struct EvalOptions {
    /// Maximum number of stages (applications of the immediate
    /// consequence operator) before giving up with
    /// [`EvalError::StageLimitExceeded`](crate::EvalError).
    pub max_stages: Option<usize>,
    /// Maximum total number of facts before giving up with
    /// [`EvalError::FactLimitExceeded`](crate::EvalError). Only value
    /// invention can grow an instance beyond polynomial bounds, but the
    /// limit is enforced wherever set.
    pub max_facts: Option<usize>,
    /// Cycle detection for noninflationary semantics.
    pub divergence: DivergenceDetection,
    /// Trace sink. Disabled by default; cloning the options clones the
    /// handle, so all clones feed the same trace.
    pub telemetry: Telemetry,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            max_stages: None,
            max_facts: None,
            divergence: DivergenceDetection::Exact,
            telemetry: Telemetry::off(),
        }
    }
}

impl EvalOptions {
    /// Options with a stage budget.
    pub fn with_max_stages(mut self, n: usize) -> Self {
        self.max_stages = Some(n);
        self
    }

    /// Options with a fact budget.
    pub fn with_max_facts(mut self, n: usize) -> Self {
        self.max_facts = Some(n);
        self
    }

    /// Options with the given divergence detector.
    pub fn with_divergence(mut self, d: DivergenceDetection) -> Self {
        self.divergence = d;
        self
    }

    /// Options feeding the given telemetry handle.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }
}

/// The result of a terminating fixpoint computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FixpointRun {
    /// The final instance over `sch(P)` (input relations included).
    pub instance: Instance,
    /// Number of stages performed, counting the stage that detects the
    /// fixpoint (so a program that infers nothing still takes 1 stage).
    pub stages: usize,
}

impl FixpointRun {
    /// The *image* (answer) of the program: the final instance restricted
    /// to the idb relations, as defined in Section 4.1 of the paper.
    pub fn answer(&self, program: &Program) -> Instance {
        self.instance.project_schema(program.idb())
    }
}

/// True if the program's rules all have a single positive head literal
/// (the shape required by the deterministic Datalog(¬) engines).
pub fn single_positive_heads(program: &Program) -> bool {
    program
        .rules
        .iter()
        .all(|r| r.head.len() == 1 && matches!(r.head[0], HeadLiteral::Pos(_)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_builders() {
        let o = EvalOptions::default()
            .with_max_stages(5)
            .with_max_facts(100)
            .with_divergence(DivergenceDetection::Fingerprint);
        assert_eq!(o.max_stages, Some(5));
        assert_eq!(o.max_facts, Some(100));
        assert_eq!(o.divergence, DivergenceDetection::Fingerprint);
    }

    #[test]
    fn default_has_no_budgets() {
        let o = EvalOptions::default();
        assert!(o.max_stages.is_none() && o.max_facts.is_none());
        assert_eq!(o.divergence, DivergenceDetection::Exact);
    }
}

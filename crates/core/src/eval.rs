//! Shared rule-evaluation machinery: body planning, plan execution, and
//! index caching.
//!
//! Every engine in this crate (and the nondeterministic engines in
//! `unchained-nondet`) evaluates rule bodies the same way:
//!
//! 1. a **plan** orders the body's work: positive atoms become indexed
//!    scans (most-bound-first, greedy), equalities that can bind a
//!    variable become binding steps, remaining variables — those
//!    occurring only under negation, as in `CT(x,y) ← ¬T(x,y)` — are
//!    enumerated over the active domain (the paper's semantics valuates
//!    *every* variable over `adom(P, K)`), and negative / (in)equality
//!    literals are checked as soon as their variables are bound;
//! 2. an **executor** runs the plan against an instance, invoking a
//!    callback once per satisfying valuation;
//! 3. an **index cache** memoizes per-(relation, columns) hash indexes
//!    across fixpoint iterations, tracked by relation [`Generation`]:
//!    when a relation only grew, the cached index absorbs the new tuples
//!    incrementally instead of being rebuilt from scratch.

use std::collections::hash_map::Entry as MapEntry;
use std::ops::ControlFlow;
use unchained_common::{
    DeltaHandle, FxHashMap, Generation, HeapSize, Index, Instance, JoinCounters, Relation, Symbol,
    Tuple, Value,
};
use unchained_parser::{Literal, Rule, Term, Var};

/// Where a scan reads from: the full relation or the per-round delta
/// slice (semi-naive evaluation).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ScanSource {
    /// The full current relation.
    Full,
    /// The tuples added since the caller's [`DeltaHandle`] mark.
    Delta,
}

/// One step of a compiled rule body.
#[derive(Clone, Debug)]
pub enum Step {
    /// Probe `pred` (via an index on `key` positions) and bind the
    /// remaining positions.
    Scan {
        /// The relation scanned.
        pred: Symbol,
        /// The atom's argument terms.
        args: Vec<Term>,
        /// Positions whose value is known before the scan (constants and
        /// already-bound variables). The index is built on these.
        key: Vec<usize>,
        /// Full or delta relation.
        source: ScanSource,
    },
    /// Bind `var` to the value of `term` (which the plan guarantees is
    /// evaluable here).
    BindEq {
        /// The variable being bound.
        var: Var,
        /// Its defining term.
        term: Term,
    },
    /// Enumerate `var` over the active domain.
    Domain {
        /// The variable enumerated.
        var: Var,
    },
    /// Check that `pred(args)` is absent.
    CheckNeg {
        /// The negated relation.
        pred: Symbol,
        /// Argument terms (all bound here).
        args: Vec<Term>,
    },
    /// Check `(left = right) == equal`.
    CheckCmp {
        /// Left term.
        left: Term,
        /// Right term.
        right: Term,
        /// Equality (`true`) or inequality (`false`).
        equal: bool,
    },
}

/// A compiled rule body.
#[derive(Clone, Debug)]
pub struct Plan {
    /// Ordered steps.
    pub steps: Vec<Step>,
    /// Number of variables in the owning rule (environment size).
    pub var_count: usize,
}

/// Plans the given body literals of `rule`.
///
/// `vars_to_bind` lists the variables the plan must have bound when the
/// callback fires (normally all body variables; the nondeterministic
/// `forall` engine plans only the non-universal part of the body).
/// Variables not bound by scans or equalities get [`Step::Domain`] steps.
pub fn plan_body(rule: &Rule, literals: &[&Literal], vars_to_bind: &[Var]) -> Plan {
    #[derive(PartialEq)]
    enum LitState {
        Pending,
        Done,
    }
    let mut state: Vec<LitState> = literals.iter().map(|_| LitState::Pending).collect();
    let mut bound = vec![false; rule.var_count()];
    let mut steps = Vec::new();

    let term_known = |t: &Term, bound: &[bool]| match t {
        Term::Const(_) => true,
        Term::Var(v) => bound[v.index()],
    };

    // Flush every pending check whose variables are now all bound.
    // Negative literals and comparisons never bind variables (matching
    // the paper: negation tests absence under a full valuation).
    fn flush_checks(
        literals: &[&Literal],
        state: &mut [LitState],
        bound: &[bool],
        steps: &mut Vec<Step>,
    ) {
        for (i, lit) in literals.iter().enumerate() {
            if state[i] == LitState::Done {
                continue;
            }
            let ready = lit.vars().iter().all(|v| bound[v.index()]);
            if !ready {
                continue;
            }
            match lit {
                Literal::Neg(atom) => {
                    steps.push(Step::CheckNeg {
                        pred: atom.pred,
                        args: atom.args.clone(),
                    });
                    state[i] = LitState::Done;
                }
                Literal::Eq(l, r) => {
                    steps.push(Step::CheckCmp {
                        left: *l,
                        right: *r,
                        equal: true,
                    });
                    state[i] = LitState::Done;
                }
                Literal::Neq(l, r) => {
                    steps.push(Step::CheckCmp {
                        left: *l,
                        right: *r,
                        equal: false,
                    });
                    state[i] = LitState::Done;
                }
                Literal::Pos(_) => {
                    // Positive atoms are handled by scans below; even when
                    // fully bound we emit a scan (a cheap point lookup).
                }
                Literal::Choice(..) => {
                    unreachable!(
                        "choice constraints are stripped before planning (nondet engine only)"
                    )
                }
            }
        }
    }

    loop {
        flush_checks(literals, &mut state, &bound, &mut steps);

        // 1. Equality that can bind a variable?
        let mut progressed = false;
        for (i, lit) in literals.iter().enumerate() {
            if state[i] == LitState::Done {
                continue;
            }
            if let Literal::Eq(l, r) = lit {
                let (lk, rk) = (term_known(l, &bound), term_known(r, &bound));
                let bind = match (lk, rk) {
                    (true, false) => r.as_var().map(|v| (v, *l)),
                    (false, true) => l.as_var().map(|v| (v, *r)),
                    _ => None,
                };
                if let Some((var, term)) = bind {
                    steps.push(Step::BindEq { var, term });
                    bound[var.index()] = true;
                    state[i] = LitState::Done;
                    progressed = true;
                    break;
                }
            }
        }
        if progressed {
            continue;
        }

        // 2. Positive atom: pick the pending one with the most known
        //    argument positions (greedy bound-first join order).
        let mut best: Option<(usize, usize)> = None; // (lit index, #known)
        for (i, lit) in literals.iter().enumerate() {
            if state[i] == LitState::Done {
                continue;
            }
            if let Literal::Pos(atom) = lit {
                let known = atom.args.iter().filter(|t| term_known(t, &bound)).count();
                // Prefer more bound columns; tie-break on source order.
                if best.is_none_or(|(_, k)| known > k) {
                    best = Some((i, known));
                }
            }
        }
        if let Some((i, _)) = best {
            let Literal::Pos(atom) = literals[i] else {
                unreachable!()
            };
            let key: Vec<usize> = atom
                .args
                .iter()
                .enumerate()
                .filter(|(_, t)| term_known(t, &bound))
                .map(|(p, _)| p)
                .collect();
            for t in &atom.args {
                if let Term::Var(v) = t {
                    bound[v.index()] = true;
                }
            }
            steps.push(Step::Scan {
                pred: atom.pred,
                args: atom.args.clone(),
                key,
                source: ScanSource::Full,
            });
            state[i] = LitState::Done;
            continue;
        }

        // 3. Still-unbound variable that the caller needs: enumerate it
        //    over the active domain.
        let next_unbound = vars_to_bind.iter().copied().find(|v| !bound[v.index()]);
        if let Some(v) = next_unbound {
            steps.push(Step::Domain { var: v });
            bound[v.index()] = true;
            continue;
        }

        break;
    }
    flush_checks(literals, &mut state, &bound, &mut steps);
    debug_assert!(
        state.iter().all(|s| *s == LitState::Done),
        "planner left literals unscheduled"
    );
    Plan {
        steps,
        var_count: rule.var_count(),
    }
}

/// Plans a rule's full body, requiring all body variables bound.
pub fn plan_rule(rule: &Rule) -> Plan {
    let literals: Vec<&Literal> = rule.body.iter().collect();
    let vars = rule.body_vars();
    plan_body(rule, &literals, &vars)
}

/// Produces the semi-naive variants of a plan: for each scan of a
/// predicate in `recursive`, a variant where that scan (and only that
/// one) reads the delta. Returns an empty vector if the plan scans no
/// recursive predicate (such rules only fire in the first iteration).
pub fn seminaive_variants(plan: &Plan, recursive: &dyn Fn(Symbol) -> bool) -> Vec<Plan> {
    let mut variants = Vec::new();
    for (i, step) in plan.steps.iter().enumerate() {
        if let Step::Scan { pred, .. } = step {
            if recursive(*pred) {
                let mut v = plan.clone();
                if let Step::Scan { source, .. } = &mut v.steps[i] {
                    *source = ScanSource::Delta;
                }
                variants.push(v);
            }
        }
    }
    variants
}

/// A per-run cache of relation indexes, keyed by
/// `(relation, key columns, source)` and tracked by relation generation.
///
/// A full-source entry whose relation only grew since the index was built
/// absorbs the new tuples by appending postings ([`Index::absorb_from`]);
/// only lineage breaks (removals, clears, diverged clones) force a rebuild,
/// so on append-only fixpoints rebuilds stay bounded by the number of
/// relations instead of scaling with the number of rounds. Delta-source
/// entries index one round's `iter_since` slice; they are built fresh each
/// round — work proportional to the round's delta — and dropped by
/// [`IndexCache::begin_delta_round`].
/// Cache key: relation, index columns, scan source.
type IndexKey = (Symbol, Box<[usize]>, ScanSource);

struct CacheEntry {
    /// Generation of the relation the index is current for.
    gen: Generation,
    /// For delta-source entries, the mark the slice was taken from.
    mark: Option<Generation>,
    index: Index,
}

#[derive(Default)]
pub struct IndexCache {
    entries: FxHashMap<IndexKey, CacheEntry>,
    /// Join-work counters, incremented unconditionally (plain integer
    /// adds — the telemetry-off path stays branch-free). Engines
    /// snapshot and diff this per stage when telemetry is enabled.
    pub counters: JoinCounters,
    /// When set to `(part, parts)`, delta indexes cover only worker
    /// `part`'s contiguous chunk of each delta enumeration
    /// ([`Index::build_delta_part`]). Since every delta-variant match
    /// consumes exactly one delta tuple, restricting the delta index
    /// restricts the worker to its share of the round's matches — the
    /// partitioning primitive of the parallel executor. Full-source
    /// entries are unaffected.
    delta_part: Option<(usize, usize)>,
}

impl IndexCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a worker-shard cache whose delta indexes cover chunk
    /// `part` of `parts` (see the `delta_part` field).
    pub fn with_delta_part(part: usize, parts: usize) -> Self {
        assert!(part < parts, "partition {part} out of {parts}");
        IndexCache {
            delta_part: Some((part, parts)),
            ..Self::default()
        }
    }

    /// Drops all delta-source entries. Call at the start of each
    /// semi-naive round: delta indexes cover one round's slice and are
    /// never carried across rounds.
    pub fn begin_delta_round(&mut self) {
        self.entries
            .retain(|(_, _, source), _| *source == ScanSource::Full);
    }

    /// Logical bytes held by every cached index (see
    /// [`unchained_common::space`]). Reported as a telemetry note, not
    /// part of the `--memstats` tree: live cache contents depend on the
    /// worker-shard layout, so unlike relation bytes they are not
    /// invariant across thread counts.
    pub fn heap_bytes(&self) -> usize {
        self.entries.values().map(|e| e.index.heap_bytes()).sum()
    }

    /// Number of cached indexes.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    fn get(
        &mut self,
        pred: Symbol,
        cols: &[usize],
        source: ScanSource,
        relation: &Relation,
        mark: Option<Generation>,
    ) -> &Index {
        let key = (pred, cols.to_vec().into_boxed_slice(), source);
        let gen_now = relation.generation();
        let counters = &mut self.counters;
        let delta_part = self.delta_part;
        let fresh = |counters: &mut JoinCounters| {
            let index = match (mark, delta_part) {
                (Some(m), Some((part, parts))) => {
                    Index::build_delta_part(relation, cols, m, part, parts)
                }
                (Some(m), None) => Index::build_delta(relation, cols, m),
                (None, _) => Index::build(relation, cols),
            };
            counters.index_builds += 1;
            counters.indexed_tuples += index.tuple_count() as u64;
            CacheEntry {
                gen: gen_now,
                mark,
                index,
            }
        };
        match self.entries.entry(key) {
            MapEntry::Vacant(slot) => &slot.insert(fresh(counters)).index,
            MapEntry::Occupied(slot) => {
                let entry = slot.into_mut();
                if entry.gen == gen_now && entry.mark == mark {
                    counters.index_hits += 1;
                } else if mark.is_some() {
                    // Delta indexes are rebuilt per round, never absorbed.
                    *entry = fresh(counters);
                } else if let Some(appended) = entry.index.absorb_from(relation, entry.gen) {
                    counters.index_appends += 1;
                    counters.appended_tuples += appended as u64;
                    entry.gen = gen_now;
                } else {
                    counters.index_rebuilds += 1;
                    counters.indexed_tuples += relation.len() as u64;
                    entry.index = Index::build(relation, cols);
                    entry.gen = gen_now;
                    entry.mark = None;
                }
                &entry.index
            }
        }
    }
}

/// A valuation environment: one slot per rule variable.
pub type Env = Vec<Option<Value>>;

/// Evaluates `term` under `env`.
///
/// # Panics
/// Panics if the term is an unbound variable — the planner guarantees
/// this cannot happen for well-formed plans.
#[inline]
pub fn term_value(term: &Term, env: &Env) -> Value {
    match term {
        Term::Const(v) => *v,
        Term::Var(v) => env[v.index()].expect("planner bound all variables"),
    }
}

/// The instances a plan reads from.
///
/// * `full` — the current instance, read by [`ScanSource::Full`] scans.
/// * `delta` — the generation marks captured at the previous round
///   boundary; [`ScanSource::Delta`] scans of semi-naive plan variants
///   read `full`'s relations restricted to the tuples added since the
///   mark (`Relation::iter_since`). No separate delta instance exists.
/// * `neg` — when set, negative literals are checked against this
///   instance instead of `full`. The well-founded engine uses this for
///   the Gelfond–Lifschitz-style reduct of the alternating fixpoint,
///   where negation reads the *previous* iterate while positive facts
///   accumulate in the current one.
#[derive(Clone, Copy)]
pub struct Sources<'a> {
    /// Current instance.
    pub full: &'a Instance,
    /// Delta marks, if running a semi-naive delta variant.
    pub delta: Option<&'a DeltaHandle>,
    /// Override instance for negative checks.
    pub neg: Option<&'a Instance>,
}

impl<'a> Sources<'a> {
    /// Sources reading everything from one instance.
    pub fn simple(full: &'a Instance) -> Self {
        Sources {
            full,
            delta: None,
            neg: None,
        }
    }
}

/// Runs `plan` against `sources`, with domain steps enumerating `adom`,
/// invoking `on_match` for every satisfying valuation. `on_match` may
/// stop the enumeration early by returning [`ControlFlow::Break`].
#[allow(clippy::type_complexity)]
pub fn for_each_match(
    plan: &Plan,
    sources: Sources<'_>,
    adom: &[Value],
    cache: &mut IndexCache,
    on_match: &mut dyn FnMut(&Env) -> ControlFlow<()>,
) -> ControlFlow<()> {
    let mut env: Env = vec![None; plan.var_count];
    run_steps(&plan.steps, sources, adom, cache, &mut env, on_match)
}

fn run_steps(
    steps: &[Step],
    sources: Sources<'_>,
    adom: &[Value],
    cache: &mut IndexCache,
    env: &mut Env,
    on_match: &mut dyn FnMut(&Env) -> ControlFlow<()>,
) -> ControlFlow<()> {
    let Some((step, rest)) = steps.split_first() else {
        return on_match(env);
    };
    match step {
        Step::Scan {
            pred,
            args,
            key,
            source,
        } => {
            let mark = match source {
                ScanSource::Full => None,
                ScanSource::Delta => Some(
                    sources
                        .delta
                        .expect("delta plan run without delta marks")
                        .mark(*pred),
                ),
            };
            let Some(relation) = sources.full.relation(*pred) else {
                return ControlFlow::Continue(()); // absent relation = empty
            };
            // Build the probe key from the bound positions.
            let probe: Vec<Value> = key.iter().map(|&p| term_value(&args[p], env)).collect();
            // The borrow checker will not let us hold the index across the
            // recursive call (which needs `cache`), so clone the matching
            // tuples. Buckets are typically small.
            let matches: Vec<Tuple> = cache
                .get(*pred, key, *source, relation, mark)
                .probe(&probe)
                .to_vec();
            cache.counters.probes += 1;
            cache.counters.probe_tuples += matches.len() as u64;
            'tuples: for tuple in matches {
                // Bind non-key positions, checking repeated variables.
                let mut newly_bound: Vec<usize> = Vec::new();
                for (p, term) in args.iter().enumerate() {
                    if key.contains(&p) {
                        continue;
                    }
                    let Term::Var(v) = term else {
                        unreachable!("constant positions are always key positions")
                    };
                    match env[v.index()] {
                        Some(existing) => {
                            if existing != tuple[p] {
                                // Repeated variable mismatch.
                                for &b in &newly_bound {
                                    env[b] = None;
                                }
                                continue 'tuples;
                            }
                        }
                        None => {
                            env[v.index()] = Some(tuple[p]);
                            newly_bound.push(v.index());
                        }
                    }
                }
                let flow = run_steps(rest, sources, adom, cache, env, on_match);
                for &b in &newly_bound {
                    env[b] = None;
                }
                flow?;
            }
            ControlFlow::Continue(())
        }
        Step::BindEq { var, term } => {
            let value = term_value(term, env);
            let prev = env[var.index()];
            env[var.index()] = Some(value);
            let flow = run_steps(rest, sources, adom, cache, env, on_match);
            env[var.index()] = prev;
            flow
        }
        Step::Domain { var } => {
            for &value in adom {
                env[var.index()] = Some(value);
                run_steps(rest, sources, adom, cache, env, on_match)?;
            }
            env[var.index()] = None;
            ControlFlow::Continue(())
        }
        Step::CheckNeg { pred, args } => {
            let tuple: Tuple = args.iter().map(|t| term_value(t, env)).collect();
            let neg_instance = sources.neg.unwrap_or(sources.full);
            let present = neg_instance
                .relation(*pred)
                .is_some_and(|r| r.contains(&tuple));
            if present {
                ControlFlow::Continue(())
            } else {
                run_steps(rest, sources, adom, cache, env, on_match)
            }
        }
        Step::CheckCmp { left, right, equal } => {
            if (term_value(left, env) == term_value(right, env)) == *equal {
                run_steps(rest, sources, adom, cache, env, on_match)
            } else {
                ControlFlow::Continue(())
            }
        }
    }
}

/// Instantiates `args` under a complete environment.
pub fn instantiate(args: &[Term], env: &Env) -> Tuple {
    args.iter().map(|t| term_value(t, env)).collect()
}

/// Computes the sorted active domain `adom(P, I)`: constants of the
/// program plus values of the instance.
pub fn active_domain(program: &unchained_parser::Program, instance: &Instance) -> Vec<Value> {
    let mut dom = instance.adom();
    dom.extend(program.adom());
    let mut v: Vec<Value> = dom.into_iter().collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use unchained_common::Interner;
    use unchained_parser::parse_program;

    fn collect_matches(
        src: &str,
        facts: &[(&str, Vec<i64>)],
    ) -> (Vec<Vec<Value>>, unchained_parser::Program) {
        let mut interner = Interner::new();
        let program = parse_program(src, &mut interner).unwrap();
        let mut instance = Instance::new();
        for (name, vals) in facts {
            let sym = interner.intern(name);
            let tuple: Tuple = vals.iter().map(|&v| Value::Int(v)).collect();
            instance.insert_fact(sym, tuple);
        }
        let adom = active_domain(&program, &instance);
        let rule = &program.rules[0];
        let plan = plan_rule(rule);
        let mut cache = IndexCache::new();
        let mut out = Vec::new();
        let n_vars = rule.var_count();
        let _ = for_each_match(
            &plan,
            Sources::simple(&instance),
            &adom,
            &mut cache,
            &mut |env| {
                out.push((0..n_vars).map(|i| env[i].unwrap()).collect::<Vec<_>>());
                ControlFlow::Continue(())
            },
        );
        out.sort();
        (out, program)
    }

    #[test]
    fn join_two_atoms() {
        let (matches, _) = collect_matches(
            "P(x,y) :- G(x,z), G(z,y).",
            &[("G", vec![1, 2]), ("G", vec![2, 3])],
        );
        // x=1, y=3, z=2 (vars in first-occurrence order: x, y, z).
        assert_eq!(
            matches,
            vec![vec![Value::Int(1), Value::Int(3), Value::Int(2)]]
        );
    }

    #[test]
    fn negative_only_rule_ranges_over_adom() {
        // CT(x,y) :- !T(x,y). — x, y enumerate the active domain.
        let (matches, _) =
            collect_matches("CT(x,y) :- !T(x,y).", &[("T", vec![1, 1]), ("E", vec![2])]);
        // adom = {1, 2}; all pairs except (1,1).
        assert_eq!(matches.len(), 3);
        assert!(!matches.contains(&vec![Value::Int(1), Value::Int(1)]));
    }

    #[test]
    fn repeated_variables_in_atom() {
        let (matches, _) =
            collect_matches("L(x) :- G(x,x).", &[("G", vec![1, 2]), ("G", vec![3, 3])]);
        assert_eq!(matches, vec![vec![Value::Int(3)]]);
    }

    #[test]
    fn constants_in_atoms() {
        let (matches, _) =
            collect_matches("P(x) :- G(1,x).", &[("G", vec![1, 2]), ("G", vec![2, 3])]);
        assert_eq!(matches, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn equality_binding_and_checks() {
        let (matches, _) = collect_matches(
            "P(x,y) :- G(x,y), y = 2.",
            &[("G", vec![1, 2]), ("G", vec![2, 3])],
        );
        assert_eq!(matches, vec![vec![Value::Int(1), Value::Int(2)]]);
        let (matches, _) = collect_matches(
            "P(x,y) :- G(x,y), x != y.",
            &[("G", vec![1, 1]), ("G", vec![1, 2])],
        );
        assert_eq!(matches, vec![vec![Value::Int(1), Value::Int(2)]]);
    }

    #[test]
    fn equality_can_introduce_domain_var() {
        // y bound through equality to x which is scanned.
        let (matches, _) = collect_matches("P(y) :- G(x,x), y = x.", &[("G", vec![3, 3])]);
        assert_eq!(matches, vec![vec![Value::Int(3), Value::Int(3)]]);
    }

    #[test]
    fn empty_body_matches_once() {
        let (matches, _) = collect_matches("delay :- .", &[("G", vec![1, 2])]);
        assert_eq!(matches.len(), 1);
    }

    #[test]
    fn missing_relation_is_empty_for_scan_and_true_for_negation() {
        let (matches, _) = collect_matches("P(x) :- M(x).", &[("G", vec![1, 2])]);
        assert!(matches.is_empty());
        let (matches, _) = collect_matches("P(x) :- G(x,y), !M(x).", &[("G", vec![1, 2])]);
        assert_eq!(matches.len(), 1);
    }

    #[test]
    fn seminaive_variant_generation() {
        let mut interner = Interner::new();
        let program = parse_program("T(x,y) :- G(x,z), T(z,y).", &mut interner).unwrap();
        let t = interner.get("T").unwrap();
        let plan = plan_rule(&program.rules[0]);
        let variants = seminaive_variants(&plan, &|p| p == t);
        assert_eq!(variants.len(), 1);
        let delta_scans = variants[0]
            .steps
            .iter()
            .filter(|s| {
                matches!(
                    s,
                    Step::Scan {
                        source: ScanSource::Delta,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(delta_scans, 1);
        // Non-recursive rule: no variants.
        let program2 = parse_program("T(x,y) :- G(x,y).", &mut interner).unwrap();
        let plan2 = plan_rule(&program2.rules[0]);
        assert!(seminaive_variants(&plan2, &|p| p == t).is_empty());
    }

    #[test]
    fn early_exit_stops_enumeration() {
        let mut interner = Interner::new();
        let program = parse_program("P(x) :- G(x,y).", &mut interner).unwrap();
        let g = interner.get("G").unwrap();
        let mut instance = Instance::new();
        for k in 0..10 {
            instance.insert_fact(g, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
        }
        let adom = active_domain(&program, &instance);
        let plan = plan_rule(&program.rules[0]);
        let mut cache = IndexCache::new();
        let mut count = 0;
        let _ = for_each_match(
            &plan,
            Sources::simple(&instance),
            &adom,
            &mut cache,
            &mut |_| {
                count += 1;
                ControlFlow::Break(())
            },
        );
        assert_eq!(count, 1);
    }

    #[test]
    fn index_cache_absorbs_growth_instead_of_rebuilding() {
        let mut interner = Interner::new();
        let g = interner.intern("G");
        let mut rel = Relation::new(1);
        rel.insert(Tuple::from([Value::Int(1)]));
        rel.commit();
        let mut cache = IndexCache::new();
        assert_eq!(
            cache
                .get(g, &[0], ScanSource::Full, &rel, None)
                .probe(&[Value::Int(1)])
                .len(),
            1
        );
        assert_eq!(cache.counters.index_builds, 1);
        // Unchanged relation: a cache hit, no index work.
        let _ = cache.get(g, &[0], ScanSource::Full, &rel, None);
        assert_eq!(cache.counters.index_hits, 1);
        // Growth (including across a commit) is absorbed incrementally.
        rel.insert(Tuple::from([Value::Int(2)]));
        rel.commit();
        assert_eq!(
            cache
                .get(g, &[0], ScanSource::Full, &rel, None)
                .probe(&[Value::Int(2)])
                .len(),
            1
        );
        assert_eq!(cache.counters.index_appends, 1);
        assert_eq!(cache.counters.appended_tuples, 1);
        assert_eq!(cache.counters.index_rebuilds, 0);
        // A removal breaks the lineage and forces a rebuild.
        rel.remove(&Tuple::from([Value::Int(1)]));
        assert!(cache
            .get(g, &[0], ScanSource::Full, &rel, None)
            .probe(&[Value::Int(1)])
            .is_empty());
        assert_eq!(cache.counters.index_rebuilds, 1);
    }

    #[test]
    fn delta_index_covers_only_the_slice_since_the_mark() {
        let mut interner = Interner::new();
        let g = interner.intern("G");
        let mut rel = Relation::new(1);
        rel.insert(Tuple::from([Value::Int(1)]));
        rel.commit();
        let mark = rel.generation();
        rel.insert(Tuple::from([Value::Int(2)]));
        rel.commit();
        let mut cache = IndexCache::new();
        let idx = cache.get(g, &[0], ScanSource::Delta, &rel, Some(mark));
        assert!(idx.probe(&[Value::Int(1)]).is_empty());
        assert_eq!(idx.probe(&[Value::Int(2)]).len(), 1);
        assert_eq!(cache.counters.index_builds, 1);
        assert_eq!(cache.counters.indexed_tuples, 1);
    }
}

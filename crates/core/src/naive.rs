//! Naive bottom-up evaluation of positive Datalog (Section 3.1).
//!
//! Computes the minimum model `P(I)`: the least fixpoint of the
//! immediate consequence operator, by firing all rules with all
//! applicable valuations until nothing new is inferred. The semi-naive
//! engine ([`crate::seminaive`]) computes the same result while avoiding
//! rederivations; this one exists as the reference implementation and as
//! the baseline for the `naive_vs_seminaive` benchmark.

use crate::error::EvalError;
use crate::exec::{for_each_head, IndexCache, Sources};
use crate::options::{EvalOptions, FixpointRun};
use crate::planner::{Catalog, Planner};
use crate::require_language;
use crate::subst::{active_domain, merge_new_facts};
use unchained_common::{HeapSize, Instance, SpanKind, StageRecord};
use unchained_parser::{check_range_restricted, HeadLiteral, Language, Program};

/// Computes the minimum model of a positive Datalog program on `input`.
///
/// The result instance contains the input edb relations plus the
/// computed idb relations; use [`FixpointRun::answer`] to project to the
/// idb.
///
/// # Errors
/// Rejects programs outside pure Datalog and non-range-restricted rules.
pub fn minimum_model(
    program: &Program,
    input: &Instance,
    options: EvalOptions,
) -> Result<FixpointRun, EvalError> {
    require_language(program, Language::Datalog)?;
    check_range_restricted(program, false)?;

    let adom = active_domain(program, input);
    let mut cache = IndexCache::new();
    let mut instance = input.clone();
    // Make sure every idb relation exists, even if it stays empty.
    let schema = program.schema()?;
    for pred in program.idb() {
        instance.ensure(pred, schema.arity(pred).expect("idb has arity"));
    }

    let tel = &options.telemetry;
    tel.begin("naive");
    let run_sw = tel.stopwatch();
    let tracer = tel.tracer().clone();
    let eval_guard = tracer.span(SpanKind::Eval, "naive");

    let mut stages = 0;
    let mut plan_stats = crate::planner::PlanStats::default();
    loop {
        stages += 1;
        if options.max_stages.is_some_and(|m| stages > m) {
            return Err(EvalError::StageLimitExceeded(stages - 1));
        }
        let round_guard = tracer.span(SpanKind::Round, format!("round {stages}"));
        let stage_sw = tel.stopwatch();
        let joins_before = cache.counters;
        // Replan every round: a catalog snapshotted at entry goes stale
        // as the idb grows, and join orders chosen against empty (or
        // merely inflated) relations would stick for the whole run. On
        // the first round the idb really is empty, so its cardinality is
        // inflated; afterwards the live counts speak for themselves.
        let mut planner = Planner::new(Catalog::from_instance(&instance), options.plan_mode);
        if stages == 1 {
            planner.inflate(program.idb());
        }
        let plans: Vec<_> = program.rules.iter().map(|r| planner.plan_rule(r)).collect();
        let round_plans = planner.stats();
        plan_stats.joins_pruned += round_plans.joins_pruned;
        plan_stats.subplans_shared += round_plans.subplans_shared;
        let mut fired: u64 = 0;
        let mut new_facts = Vec::new();
        for (rule, plan) in program.rules.iter().zip(&plans) {
            let HeadLiteral::Pos(head) = &rule.head[0] else {
                unreachable!("pure Datalog heads are positive")
            };
            fired += for_each_head(
                plan,
                &head.args,
                Sources::simple(&instance),
                &adom,
                &mut cache,
                &mut |tuple| {
                    if !instance.contains_fact(head.pred, &tuple) {
                        new_facts.push((head.pred, tuple));
                    }
                },
            );
        }
        let enabled = tel.is_enabled() || tracer.is_enabled();
        let (changed, mut delta) = merge_new_facts(&mut instance, new_facts, enabled);
        let added: usize = delta.iter().map(|(_, n)| n).sum();
        tracer.gauge("facts_added", added as u64);
        tracer.gauge("rules_fired", fired);
        drop(round_guard);
        tel.with(|t| {
            t.stages.push(StageRecord {
                stage: stages,
                wall_nanos: stage_sw.nanos(),
                facts_added: added,
                facts_removed: 0,
                rules_fired: fired,
                delta: std::mem::take(&mut delta),
                bytes: instance.heap_bytes() as u64,
                joins: cache.counters.since(&joins_before),
            });
            t.peak_facts = t.peak_facts.max(instance.fact_count());
            t.bytes_peak = t.bytes_peak.max(instance.heap_bytes() as u64);
        });
        if !changed {
            tracer.gauge("rounds", stages as u64);
            tracer.gauge("final_facts", instance.fact_count() as u64);
            tracer.gauge("plan_joins_pruned", plan_stats.joins_pruned);
            tracer.gauge("subplans_shared", plan_stats.subplans_shared);
            drop(eval_guard);
            tel.with(|t| {
                t.bytes_final = instance.heap_bytes() as u64;
                t.plan_joins_pruned = plan_stats.joins_pruned;
                t.subplans_shared = plan_stats.subplans_shared;
            });
            tel.finish(&run_sw, instance.fact_count());
            return Ok(FixpointRun { instance, stages });
        }
        if options.max_facts.is_some_and(|m| instance.fact_count() > m) {
            return Err(EvalError::FactLimitExceeded(instance.fact_count()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unchained_common::{Interner, Tuple, Value};
    use unchained_parser::parse_program;

    fn tc_program(interner: &mut Interner) -> Program {
        parse_program(
            "T(x,y) :- G(x,y).\n\
             T(x,y) :- G(x,z), T(z,y).",
            interner,
        )
        .unwrap()
    }

    fn line_graph(interner: &mut Interner, n: i64) -> Instance {
        let g = interner.intern("G");
        let mut inst = Instance::new();
        for k in 0..n - 1 {
            inst.insert_fact(g, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
        }
        inst
    }

    #[test]
    fn transitive_closure_of_a_line() {
        let mut i = Interner::new();
        let p = tc_program(&mut i);
        let input = line_graph(&mut i, 5);
        let run = minimum_model(&p, &input, EvalOptions::default()).unwrap();
        let t = i.get("T").unwrap();
        // A 5-node line has C(5,2) = 10 transitive-closure pairs.
        assert_eq!(run.instance.relation(t).unwrap().len(), 10);
        assert!(run
            .instance
            .contains_fact(t, &Tuple::from([Value::Int(0), Value::Int(4)])));
        // Answer projects away the edb.
        let answer = run.answer(&p);
        assert!(answer.relation(i.get("G").unwrap()).is_none());
    }

    #[test]
    fn empty_input_fixpoint_in_one_stage() {
        let mut i = Interner::new();
        let p = tc_program(&mut i);
        let run = minimum_model(&p, &Instance::new(), EvalOptions::default()).unwrap();
        assert_eq!(run.stages, 1);
        let t = i.get("T").unwrap();
        assert!(run.instance.relation(t).unwrap().is_empty());
    }

    #[test]
    fn stage_count_tracks_distance() {
        // On a line of n nodes, the left-linear TC rule needs ~n stages.
        let mut i = Interner::new();
        let p = tc_program(&mut i);
        let input = line_graph(&mut i, 6);
        let run = minimum_model(&p, &input, EvalOptions::default()).unwrap();
        // Distances up to 5; stage k infers pairs at distance k; +1 to
        // detect the fixpoint.
        assert_eq!(run.stages, 6);
    }

    #[test]
    fn rejects_negation() {
        let mut i = Interner::new();
        let p = parse_program("A(x) :- B(x), !C(x).", &mut i).unwrap();
        assert!(matches!(
            minimum_model(&p, &Instance::new(), EvalOptions::default()),
            Err(EvalError::WrongLanguage { .. })
        ));
    }

    #[test]
    fn stage_limit_enforced() {
        let mut i = Interner::new();
        let p = tc_program(&mut i);
        let input = line_graph(&mut i, 10);
        assert!(matches!(
            minimum_model(&p, &input, EvalOptions::default().with_max_stages(2)),
            Err(EvalError::StageLimitExceeded(_))
        ));
    }

    #[test]
    fn cyclic_graph_terminates() {
        let mut i = Interner::new();
        let p = tc_program(&mut i);
        let g = i.intern("G");
        let mut input = Instance::new();
        for k in 0..4 {
            input.insert_fact(g, Tuple::from([Value::Int(k), Value::Int((k + 1) % 4)]));
        }
        let run = minimum_model(&p, &input, EvalOptions::default()).unwrap();
        let t = i.get("T").unwrap();
        // Complete relation on 4 nodes.
        assert_eq!(run.instance.relation(t).unwrap().len(), 16);
    }

    /// Regression: plans must be rebuilt against the grown idb each
    /// round. With one entry-time catalog both of Q's body atoms are
    /// idb, so both get the same inflated cardinality; the tie puts the
    /// 200-tuple P1 on the scan side of the join, and every round after
    /// the first scans all of P1 probing the one-fact P2 — hundreds of
    /// probe lookups where a fresh catalog needs a handful.
    #[test]
    fn replanning_tracks_grown_idb_cardinalities() {
        let mut i = Interner::new();
        let p = parse_program(
            "P1(x,y) :- E1(x,y).\n\
             P2(x,y) :- E2(x,y).\n\
             Q(x,y) :- P1(x,y), P2(x,y).",
            &mut i,
        )
        .unwrap();
        let e1 = i.get("E1").unwrap();
        let e2 = i.get("E2").unwrap();
        let mut input = Instance::new();
        for k in 0..200i64 {
            input.insert_fact(e1, Tuple::from([Value::Int(k), Value::Int(k)]));
        }
        input.insert_fact(e2, Tuple::from([Value::Int(0), Value::Int(0)]));
        let telemetry = unchained_common::Telemetry::enabled();
        let run = minimum_model(
            &p,
            &input,
            EvalOptions::default().with_telemetry(telemetry.clone()),
        )
        .unwrap();
        let q = i.get("Q").unwrap();
        assert_eq!(run.instance.relation(q).unwrap().len(), 1);
        let trace = telemetry.snapshot().unwrap();
        assert!(
            trace.joins.probes < 50,
            "stale join order: {} probe lookups for a one-fact join",
            trace.joins.probes
        );
    }

    #[test]
    fn facts_in_program_text() {
        let mut i = Interner::new();
        let p = parse_program("G(1,2). T(x,y) :- G(x,y).", &mut i).unwrap();
        let run = minimum_model(&p, &Instance::new(), EvalOptions::default()).unwrap();
        let t = i.get("T").unwrap();
        assert!(run
            .instance
            .contains_fact(t, &Tuple::from([Value::Int(1), Value::Int(2)])));
    }
}

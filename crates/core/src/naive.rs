//! Naive bottom-up evaluation of positive Datalog (Section 3.1).
//!
//! Computes the minimum model `P(I)`: the least fixpoint of the
//! immediate consequence operator, by firing all rules with all
//! applicable valuations until nothing new is inferred. The semi-naive
//! engine ([`crate::seminaive`]) computes the same result while avoiding
//! rederivations; this one exists as the reference implementation and as
//! the baseline for the `naive_vs_seminaive` benchmark.

use crate::error::EvalError;
use crate::exec::{for_each_head, IndexCache, Sources};
use crate::options::{EvalOptions, FixpointRun};
use crate::planner::{Catalog, Planner};
use crate::require_language;
use crate::subst::{active_domain, merge_new_facts};
use unchained_common::{HeapSize, Instance, SpanKind, StageRecord};
use unchained_parser::{check_range_restricted, HeadLiteral, Language, Program};

/// Computes the minimum model of a positive Datalog program on `input`.
///
/// The result instance contains the input edb relations plus the
/// computed idb relations; use [`FixpointRun::answer`] to project to the
/// idb.
///
/// # Errors
/// Rejects programs outside pure Datalog and non-range-restricted rules.
pub fn minimum_model(
    program: &Program,
    input: &Instance,
    options: EvalOptions,
) -> Result<FixpointRun, EvalError> {
    require_language(program, Language::Datalog)?;
    check_range_restricted(program, false)?;

    let adom = active_domain(program, input);
    let mut planner = Planner::new(Catalog::from_instance(input), options.plan_mode);
    planner.inflate(program.idb());
    let plans: Vec<_> = program.rules.iter().map(|r| planner.plan_rule(r)).collect();
    let plan_stats = planner.stats();
    let mut cache = IndexCache::new();
    let mut instance = input.clone();
    // Make sure every idb relation exists, even if it stays empty.
    let schema = program.schema()?;
    for pred in program.idb() {
        instance.ensure(pred, schema.arity(pred).expect("idb has arity"));
    }

    let tel = &options.telemetry;
    tel.begin("naive");
    let run_sw = tel.stopwatch();
    let tracer = tel.tracer().clone();
    let eval_guard = tracer.span(SpanKind::Eval, "naive");

    let mut stages = 0;
    loop {
        stages += 1;
        if options.max_stages.is_some_and(|m| stages > m) {
            return Err(EvalError::StageLimitExceeded(stages - 1));
        }
        let round_guard = tracer.span(SpanKind::Round, format!("round {stages}"));
        let stage_sw = tel.stopwatch();
        let joins_before = cache.counters;
        let mut fired: u64 = 0;
        let mut new_facts = Vec::new();
        for (rule, plan) in program.rules.iter().zip(&plans) {
            let HeadLiteral::Pos(head) = &rule.head[0] else {
                unreachable!("pure Datalog heads are positive")
            };
            fired += for_each_head(
                plan,
                &head.args,
                Sources::simple(&instance),
                &adom,
                &mut cache,
                &mut |tuple| {
                    if !instance.contains_fact(head.pred, &tuple) {
                        new_facts.push((head.pred, tuple));
                    }
                },
            );
        }
        let enabled = tel.is_enabled() || tracer.is_enabled();
        let (changed, mut delta) = merge_new_facts(&mut instance, new_facts, enabled);
        let added: usize = delta.iter().map(|(_, n)| n).sum();
        tracer.gauge("facts_added", added as u64);
        tracer.gauge("rules_fired", fired);
        drop(round_guard);
        tel.with(|t| {
            t.stages.push(StageRecord {
                stage: stages,
                wall_nanos: stage_sw.nanos(),
                facts_added: added,
                facts_removed: 0,
                rules_fired: fired,
                delta: std::mem::take(&mut delta),
                bytes: instance.heap_bytes() as u64,
                joins: cache.counters.since(&joins_before),
            });
            t.peak_facts = t.peak_facts.max(instance.fact_count());
            t.bytes_peak = t.bytes_peak.max(instance.heap_bytes() as u64);
        });
        if !changed {
            tracer.gauge("rounds", stages as u64);
            tracer.gauge("final_facts", instance.fact_count() as u64);
            tracer.gauge("plan_joins_pruned", plan_stats.joins_pruned);
            tracer.gauge("subplans_shared", plan_stats.subplans_shared);
            drop(eval_guard);
            tel.with(|t| {
                t.bytes_final = instance.heap_bytes() as u64;
                t.plan_joins_pruned = plan_stats.joins_pruned;
                t.subplans_shared = plan_stats.subplans_shared;
            });
            tel.finish(&run_sw, instance.fact_count());
            return Ok(FixpointRun { instance, stages });
        }
        if options.max_facts.is_some_and(|m| instance.fact_count() > m) {
            return Err(EvalError::FactLimitExceeded(instance.fact_count()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unchained_common::{Interner, Tuple, Value};
    use unchained_parser::parse_program;

    fn tc_program(interner: &mut Interner) -> Program {
        parse_program(
            "T(x,y) :- G(x,y).\n\
             T(x,y) :- G(x,z), T(z,y).",
            interner,
        )
        .unwrap()
    }

    fn line_graph(interner: &mut Interner, n: i64) -> Instance {
        let g = interner.intern("G");
        let mut inst = Instance::new();
        for k in 0..n - 1 {
            inst.insert_fact(g, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
        }
        inst
    }

    #[test]
    fn transitive_closure_of_a_line() {
        let mut i = Interner::new();
        let p = tc_program(&mut i);
        let input = line_graph(&mut i, 5);
        let run = minimum_model(&p, &input, EvalOptions::default()).unwrap();
        let t = i.get("T").unwrap();
        // A 5-node line has C(5,2) = 10 transitive-closure pairs.
        assert_eq!(run.instance.relation(t).unwrap().len(), 10);
        assert!(run
            .instance
            .contains_fact(t, &Tuple::from([Value::Int(0), Value::Int(4)])));
        // Answer projects away the edb.
        let answer = run.answer(&p);
        assert!(answer.relation(i.get("G").unwrap()).is_none());
    }

    #[test]
    fn empty_input_fixpoint_in_one_stage() {
        let mut i = Interner::new();
        let p = tc_program(&mut i);
        let run = minimum_model(&p, &Instance::new(), EvalOptions::default()).unwrap();
        assert_eq!(run.stages, 1);
        let t = i.get("T").unwrap();
        assert!(run.instance.relation(t).unwrap().is_empty());
    }

    #[test]
    fn stage_count_tracks_distance() {
        // On a line of n nodes, the left-linear TC rule needs ~n stages.
        let mut i = Interner::new();
        let p = tc_program(&mut i);
        let input = line_graph(&mut i, 6);
        let run = minimum_model(&p, &input, EvalOptions::default()).unwrap();
        // Distances up to 5; stage k infers pairs at distance k; +1 to
        // detect the fixpoint.
        assert_eq!(run.stages, 6);
    }

    #[test]
    fn rejects_negation() {
        let mut i = Interner::new();
        let p = parse_program("A(x) :- B(x), !C(x).", &mut i).unwrap();
        assert!(matches!(
            minimum_model(&p, &Instance::new(), EvalOptions::default()),
            Err(EvalError::WrongLanguage { .. })
        ));
    }

    #[test]
    fn stage_limit_enforced() {
        let mut i = Interner::new();
        let p = tc_program(&mut i);
        let input = line_graph(&mut i, 10);
        assert!(matches!(
            minimum_model(&p, &input, EvalOptions::default().with_max_stages(2)),
            Err(EvalError::StageLimitExceeded(_))
        ));
    }

    #[test]
    fn cyclic_graph_terminates() {
        let mut i = Interner::new();
        let p = tc_program(&mut i);
        let g = i.intern("G");
        let mut input = Instance::new();
        for k in 0..4 {
            input.insert_fact(g, Tuple::from([Value::Int(k), Value::Int((k + 1) % 4)]));
        }
        let run = minimum_model(&p, &input, EvalOptions::default()).unwrap();
        let t = i.get("T").unwrap();
        // Complete relation on 4 nodes.
        assert_eq!(run.instance.relation(t).unwrap().len(), 16);
    }

    #[test]
    fn facts_in_program_text() {
        let mut i = Interner::new();
        let p = parse_program("G(1,2). T(x,y) :- G(x,y).", &mut i).unwrap();
        let run = minimum_model(&p, &Instance::new(), EvalOptions::default()).unwrap();
        let t = i.get("T").unwrap();
        assert!(run
            .instance
            .contains_fact(t, &Tuple::from([Value::Int(1), Value::Int(2)])));
    }
}

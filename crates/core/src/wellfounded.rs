//! The well-founded semantics of Datalog¬ (Section 3.3), computed via
//! Van Gelder's **alternating fixpoint** \[62\].
//!
//! The well-founded model is 3-valued: each fact is *true*, *false* or
//! *unknown*. The alternating fixpoint computes it as follows. For an
//! instance `J`, let `Γ̂(J)` be the least fixpoint of the program where
//! every negative literal `¬A` is read as "`A ∉ J`" (the
//! Gelfond–Lifschitz-style reduct, evaluated bottom-up from the input).
//! `Γ̂` is *antimonotone*, so its square is monotone and the sequence
//!
//! ```text
//! I₀ = input,  I₁ = Γ̂(I₀),  I₂ = Γ̂(I₁), …
//! ```
//!
//! has an increasing even subsequence (underestimates: facts certainly
//! true) and a decreasing odd subsequence (overestimates: facts possibly
//! true). At the simultaneous fixpoint, the even limit is the set of
//! **true** facts, facts in the odd limit but not the even one are
//! **unknown**, and everything else is **false**.

use crate::error::EvalError;
use crate::exec::{for_each_match, IndexCache, Sources};
use crate::ir::Plan;
use crate::options::{EvalOptions, FixpointRun};
use crate::planner::plan_rule;
use crate::require_language;
use crate::subst::{active_domain, instantiate};
use std::ops::ControlFlow;
use unchained_common::{
    HeapSize, Instance, SpanKind, StageRecord, Stopwatch, Symbol, Telemetry, Tuple, Value,
};
use unchained_parser::{check_range_restricted, HeadLiteral, Language, Program};

/// The truth value of a fact in a 3-valued model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Truth {
    /// Certainly true.
    True,
    /// Certainly false.
    False,
    /// Undetermined by the program (e.g. drawn positions in the win-move
    /// game of Example 3.2).
    Unknown,
}

/// The well-founded (3-valued) model of a program on an input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WellFoundedModel {
    /// Facts true in the model (includes the input edb facts).
    pub true_facts: Instance,
    /// Facts true-or-unknown (superset of `true_facts`).
    pub possible_facts: Instance,
    /// Number of alternating rounds (applications of `Γ̂`) performed.
    pub rounds: usize,
}

impl WellFoundedModel {
    /// The truth value of `pred(tuple)`.
    pub fn truth(&self, pred: Symbol, tuple: &Tuple) -> Truth {
        if self.true_facts.contains_fact(pred, tuple) {
            Truth::True
        } else if self.possible_facts.contains_fact(pred, tuple) {
            Truth::Unknown
        } else {
            Truth::False
        }
    }

    /// The *unknown* facts: in the overestimate but not the underestimate.
    pub fn unknown_facts(&self) -> Vec<(Symbol, Tuple)> {
        let mut out = Vec::new();
        for (pred, rel) in self.possible_facts.iter() {
            for t in rel.sorted().iter() {
                if !self.true_facts.contains_fact(pred, t) {
                    out.push((pred, t.clone()));
                }
            }
        }
        out
    }

    /// Whether the model is total (2-valued): no unknown facts.
    pub fn is_total(&self) -> bool {
        self.possible_facts.same_facts(&self.true_facts)
    }

    /// The 2-valued reading used by Theorem comparison with fixpoint
    /// queries: take the true facts as the answer.
    pub fn two_valued(&self) -> &Instance {
        &self.true_facts
    }
}

/// The reduct least-fixpoint `Γ̂(J)`: evaluates the program bottom-up
/// from `input` with every negative literal checked against the frozen
/// instance `J`.
#[allow(clippy::too_many_arguments)]
fn reduct_lfp(
    program: &Program,
    plans: &[Plan],
    input: &Instance,
    frozen: &Instance,
    adom: &[Value],
    cache: &mut IndexCache,
    options: &EvalOptions,
    fired: &mut u64,
) -> Result<Instance, EvalError> {
    let mut instance = input.clone();
    let mut stage = 0usize;
    loop {
        stage += 1;
        if options.max_stages.is_some_and(|m| stage > m) {
            return Err(EvalError::StageLimitExceeded(stage - 1));
        }
        let mut new_facts = Vec::new();
        for (rule, plan) in program.rules.iter().zip(plans) {
            let HeadLiteral::Pos(head) = &rule.head[0] else {
                unreachable!("Datalog¬ heads are positive")
            };
            let sources = Sources {
                full: &instance,
                delta: None,
                neg: Some(frozen),
                delta_from: None,
            };
            let _ = for_each_match(plan, sources, adom, cache, &mut |env| {
                *fired += 1;
                let tuple = instantiate(&head.args, env);
                if !instance.contains_fact(head.pred, &tuple) {
                    new_facts.push((head.pred, tuple));
                }
                ControlFlow::Continue(())
            });
        }
        let mut changed = false;
        for (pred, tuple) in new_facts {
            changed |= instance.insert_fact(pred, tuple);
        }
        if !changed {
            return Ok(instance);
        }
    }
}

/// Records one application of `Γ̂` as a telemetry stage: the iterate's
/// idb cardinalities are the "delta" (each application recomputes from
/// the base, so sizes are absolute, not incremental).
#[allow(clippy::too_many_arguments)]
fn record_application(
    tel: &Telemetry,
    cache: &IndexCache,
    sw: &Stopwatch,
    joins_before: unchained_common::JoinCounters,
    fired: u64,
    application: usize,
    iterate: &Instance,
    base_count: usize,
    idb: &[Symbol],
) {
    tel.with(|t| {
        t.stages.push(StageRecord {
            stage: application,
            wall_nanos: sw.nanos(),
            facts_added: iterate.fact_count().saturating_sub(base_count),
            facts_removed: 0,
            rules_fired: fired,
            delta: idb
                .iter()
                .filter_map(|&p| iterate.relation(p).map(|r| (p, r.len())))
                .filter(|&(_, n)| n > 0)
                .collect(),
            bytes: iterate.heap_bytes() as u64,
            joins: cache.counters.since(&joins_before),
        });
        t.peak_facts = t.peak_facts.max(iterate.fact_count());
        t.bytes_peak = t.bytes_peak.max(iterate.heap_bytes() as u64);
    });
}

/// Computes the well-founded model of a Datalog¬ program on `input`.
///
/// # Errors
/// Rejects programs outside Datalog¬ syntax (no head negation, no
/// invention, no nondeterministic constructs) and non-range-restricted
/// rules.
pub fn eval(
    program: &Program,
    input: &Instance,
    options: EvalOptions,
) -> Result<WellFoundedModel, EvalError> {
    require_language(program, Language::DatalogNeg)?;
    check_range_restricted(program, false)?;

    let adom = active_domain(program, input);
    let plans: Vec<Plan> = program.rules.iter().map(plan_rule).collect();
    let mut cache = IndexCache::new();

    let mut base = input.clone();
    let schema = program.schema()?;
    for pred in program.idb() {
        base.ensure(pred, schema.arity(pred).expect("idb has arity"));
    }

    let tel = options.telemetry.clone();
    tel.begin("wellfounded");
    let run_sw = tel.stopwatch();
    let idb: Vec<Symbol> = program.idb().into_iter().collect();
    let base_count = base.fact_count();

    // Alternating sequence: even iterates underestimate, odd iterates
    // overestimate. I₀ = base (idb empty).
    let tracer = tel.tracer().clone();
    let eval_guard = tracer.span(SpanKind::Eval, "wellfounded");
    let mut even = base.clone(); // I₀
    let mut sw = tel.stopwatch();
    let mut joins_before = cache.counters;
    let mut fired: u64 = 0;
    let mut phase = tracer.span(SpanKind::Phase, "reduct 1");
    let mut odd = reduct_lfp(
        program, &plans, &base, &even, &adom, &mut cache, &options, &mut fired,
    )?; // I₁
    let mut rounds = 1;
    tracer.gauge(
        "facts_added",
        odd.fact_count().saturating_sub(base_count) as u64,
    );
    tracer.gauge("rules_fired", fired);
    drop(phase);
    record_application(
        &tel,
        &cache,
        &sw,
        joins_before,
        fired,
        rounds,
        &odd,
        base_count,
        &idb,
    );
    loop {
        sw = tel.stopwatch();
        joins_before = cache.counters;
        fired = 0;
        phase = tracer.span(SpanKind::Phase, format!("reduct {}", rounds + 1));
        let next_even = reduct_lfp(
            program, &plans, &base, &odd, &adom, &mut cache, &options, &mut fired,
        )?;
        rounds += 1;
        tracer.gauge(
            "facts_added",
            next_even.fact_count().saturating_sub(base_count) as u64,
        );
        tracer.gauge("rules_fired", fired);
        drop(phase);
        record_application(
            &tel,
            &cache,
            &sw,
            joins_before,
            fired,
            rounds,
            &next_even,
            base_count,
            &idb,
        );
        if next_even.same_facts(&even) {
            // Simultaneous fixpoint reached: (even, odd) is stable.
            tracer.gauge("rounds", rounds as u64);
            tracer.gauge("final_facts", even.fact_count() as u64);
            drop(eval_guard);
            tel.note(format!(
                "alternating fixpoint stable after {rounds} reduct applications: \
                 {} true facts, {} possible facts",
                even.fact_count(),
                odd.fact_count()
            ));
            tel.with(|t| t.bytes_final = even.heap_bytes() as u64);
            tel.finish(&run_sw, even.fact_count());
            return Ok(WellFoundedModel {
                true_facts: even,
                possible_facts: odd,
                rounds,
            });
        }
        even = next_even;
        sw = tel.stopwatch();
        joins_before = cache.counters;
        fired = 0;
        phase = tracer.span(SpanKind::Phase, format!("reduct {}", rounds + 1));
        odd = reduct_lfp(
            program, &plans, &base, &even, &adom, &mut cache, &options, &mut fired,
        )?;
        rounds += 1;
        tracer.gauge(
            "facts_added",
            odd.fact_count().saturating_sub(base_count) as u64,
        );
        tracer.gauge("rules_fired", fired);
        drop(phase);
        record_application(
            &tel,
            &cache,
            &sw,
            joins_before,
            fired,
            rounds,
            &odd,
            base_count,
            &idb,
        );
    }
}

/// Convenience wrapper returning the 2-valued reading (true facts only),
/// shaped like the other engines' results for cross-engine comparisons.
pub fn eval_two_valued(
    program: &Program,
    input: &Instance,
    options: EvalOptions,
) -> Result<FixpointRun, EvalError> {
    let model = eval(program, input, options)?;
    Ok(FixpointRun {
        instance: model.true_facts,
        stages: model.rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use unchained_common::Interner;
    use unchained_parser::parse_program;

    /// Example 3.2 of the paper: the win-move game.
    #[test]
    fn paper_example_win_move_game() {
        let mut i = Interner::new();
        let program = parse_program("win(x) :- moves(x,y), !win(y).", &mut i).unwrap();
        let moves = i.get("moves").unwrap();
        let win = i.get("win").unwrap();
        let mut input = Instance::new();
        let node = |name: &str, i: &mut Interner| Value::sym(i, name);
        let (a, b, c, d, e, f, g) = (
            node("a", &mut i),
            node("b", &mut i),
            node("c", &mut i),
            node("d", &mut i),
            node("e", &mut i),
            node("f", &mut i),
            node("g", &mut i),
        );
        for (x, y) in [(b, c), (c, a), (a, b), (a, d), (d, e), (d, f), (f, g)] {
            input.insert_fact(moves, Tuple::from([x, y]));
        }
        let model = eval(&program, &input, EvalOptions::default()).unwrap();
        // The paper's exact 3-valued answer:
        //   true:    win(d), win(f)
        //   false:   win(e), win(g)
        //   unknown: win(a), win(b), win(c)
        assert_eq!(model.truth(win, &Tuple::from([d])), Truth::True);
        assert_eq!(model.truth(win, &Tuple::from([f])), Truth::True);
        assert_eq!(model.truth(win, &Tuple::from([e])), Truth::False);
        assert_eq!(model.truth(win, &Tuple::from([g])), Truth::False);
        assert_eq!(model.truth(win, &Tuple::from([a])), Truth::Unknown);
        assert_eq!(model.truth(win, &Tuple::from([b])), Truth::Unknown);
        assert_eq!(model.truth(win, &Tuple::from([c])), Truth::Unknown);
        assert!(!model.is_total());
        assert_eq!(model.unknown_facts().len(), 3);
    }

    #[test]
    fn stratified_program_is_total_and_agrees() {
        let mut i = Interner::new();
        let program = parse_program(
            "T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y). CT(x,y) :- !T(x,y).",
            &mut i,
        )
        .unwrap();
        let g = i.get("G").unwrap();
        let mut input = Instance::new();
        for k in 0..3i64 {
            input.insert_fact(g, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
        }
        let model = eval(&program, &input, EvalOptions::default()).unwrap();
        assert!(model.is_total());
        let strat = crate::stratified::eval(&program, &input, EvalOptions::default()).unwrap();
        assert!(model.true_facts.same_facts(&strat.instance));
    }

    #[test]
    fn pure_datalog_is_total_and_minimum_model() {
        let mut i = Interner::new();
        let program = parse_program("T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).", &mut i).unwrap();
        let g = i.get("G").unwrap();
        let mut input = Instance::new();
        input.insert_fact(g, Tuple::from([Value::Int(1), Value::Int(2)]));
        input.insert_fact(g, Tuple::from([Value::Int(2), Value::Int(3)]));
        let model = eval(&program, &input, EvalOptions::default()).unwrap();
        assert!(model.is_total());
        let mm = crate::seminaive::minimum_model(&program, &input, EvalOptions::default()).unwrap();
        assert!(model.true_facts.same_facts(&mm.instance));
    }

    #[test]
    fn fully_unknown_loop() {
        // p :- !q. q :- !p. — both unknown under WF semantics.
        let mut i = Interner::new();
        let program = parse_program("p :- !q. q :- !p.", &mut i).unwrap();
        let p = i.get("p").unwrap();
        let q = i.get("q").unwrap();
        let model = eval(&program, &Instance::new(), EvalOptions::default()).unwrap();
        assert_eq!(model.truth(p, &Tuple::from([])), Truth::Unknown);
        assert_eq!(model.truth(q, &Tuple::from([])), Truth::Unknown);
    }

    #[test]
    fn negation_resolves_when_grounded() {
        // p :- !q. with q underivable: p true, q false.
        let mut i = Interner::new();
        let program = parse_program("p :- !q. q :- r.", &mut i).unwrap();
        let p = i.get("p").unwrap();
        let q = i.get("q").unwrap();
        let model = eval(&program, &Instance::new(), EvalOptions::default()).unwrap();
        assert_eq!(model.truth(p, &Tuple::from([])), Truth::True);
        assert_eq!(model.truth(q, &Tuple::from([])), Truth::False);
        assert!(model.is_total());
    }

    #[test]
    fn win_move_on_a_line_is_total() {
        // Game on a simple line 0→1→2→3: positions alternate lose/win
        // from the sink; no draws.
        let mut i = Interner::new();
        let program = parse_program("win(x) :- moves(x,y), !win(y).", &mut i).unwrap();
        let moves = i.get("moves").unwrap();
        let win = i.get("win").unwrap();
        let mut input = Instance::new();
        for k in 0..3i64 {
            input.insert_fact(moves, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
        }
        let model = eval(&program, &input, EvalOptions::default()).unwrap();
        assert!(model.is_total());
        // 3 is lost (no moves), 2 wins, 1 loses, 0 wins.
        assert_eq!(
            model.truth(win, &Tuple::from([Value::Int(3)])),
            Truth::False
        );
        assert_eq!(model.truth(win, &Tuple::from([Value::Int(2)])), Truth::True);
        assert_eq!(
            model.truth(win, &Tuple::from([Value::Int(1)])),
            Truth::False
        );
        assert_eq!(model.truth(win, &Tuple::from([Value::Int(0)])), Truth::True);
    }

    #[test]
    fn rejects_head_negation() {
        let mut i = Interner::new();
        let program = parse_program("!A(x) :- B(x).", &mut i).unwrap();
        assert!(matches!(
            eval(&program, &Instance::new(), EvalOptions::default()),
            Err(EvalError::WrongLanguage { .. })
        ));
    }
}

//! The shared plan executor: one tuple-at-a-time interpreter over the
//! existing [`Relation`]/[`IndexCache`] storage, driven by every
//! engine.
//!
//! The interpreter walks a compiled [`Plan`]'s steps
//! ([`crate::ir::Step`]) depth-first, invoking a callback once per
//! satisfying valuation, and memoizes per-(relation, columns) hash
//! indexes across fixpoint iterations in an [`IndexCache`] tracked by
//! relation [`Generation`]: when a relation only grew, the cached index
//! absorbs the new tuples incrementally instead of being rebuilt from
//! scratch. Join-work telemetry ([`JoinCounters`]) is emitted here, in
//! one place, for all engines.

use std::collections::hash_map::Entry as MapEntry;
use std::ops::ControlFlow;
use unchained_common::{
    DeltaHandle, FxHashMap, Generation, HeapSize, Index, Instance, JoinCounters, Relation, Symbol,
    Tuple, Value,
};
use unchained_parser::Term;

use crate::ir::{Plan, ScanSource, Step};
use crate::subst::{instantiate, term_value, Env};

/// Cache key: relation, index columns, scan source.
type IndexKey = (Symbol, Box<[usize]>, ScanSource);

struct CacheEntry {
    /// Generation of the relation the index is current for.
    gen: Generation,
    /// For delta-source entries, the mark the slice was taken from.
    mark: Option<Generation>,
    index: Index,
}

/// A per-run cache of relation indexes, keyed by
/// `(relation, key columns, source)` and tracked by relation generation.
///
/// A full-source entry whose relation only grew since the index was built
/// absorbs the new tuples by appending postings ([`Index::absorb_from`]);
/// only lineage breaks (removals, clears, diverged clones) force a rebuild,
/// so on append-only fixpoints rebuilds stay bounded by the number of
/// relations instead of scaling with the number of rounds. Delta-source
/// entries index one round's `iter_since` slice; they are built fresh each
/// round — work proportional to the round's delta — and dropped by
/// [`IndexCache::begin_delta_round`].
#[derive(Default)]
pub struct IndexCache {
    entries: FxHashMap<IndexKey, CacheEntry>,
    /// Join-work counters, incremented unconditionally (plain integer
    /// adds — the telemetry-off path stays branch-free). Engines
    /// snapshot and diff this per stage when telemetry is enabled.
    pub counters: JoinCounters,
    /// Pool of packed-value scratch buffers reused by the scan step
    /// (probe keys and posting copies), so steady-state probing does
    /// not allocate. Depth-bounded: the pool high-water mark is the
    /// deepest scan nesting of any plan, not the data size.
    scratch: Vec<Vec<Value>>,
}

impl IndexCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a cleared scratch buffer from the pool (or a fresh one).
    fn take_scratch(&mut self) -> Vec<Value> {
        self.scratch.pop().unwrap_or_default()
    }

    /// Returns a scratch buffer to the pool for reuse.
    fn put_scratch(&mut self, mut buf: Vec<Value>) {
        buf.clear();
        self.scratch.push(buf);
    }

    /// Drops all delta-source entries. Call at the start of each
    /// semi-naive round: delta indexes cover one round's slice and are
    /// never carried across rounds.
    pub fn begin_delta_round(&mut self) {
        self.entries
            .retain(|(_, _, source), _| *source == ScanSource::Full);
    }

    /// Logical bytes held by every cached index (see
    /// [`unchained_common::space`]). Reported as a telemetry note, not
    /// part of the `--memstats` tree: live cache contents depend on the
    /// worker-shard layout, so unlike relation bytes they are not
    /// invariant across thread counts.
    pub fn heap_bytes(&self) -> usize {
        self.entries.values().map(|e| e.index.heap_bytes()).sum()
    }

    /// Number of cached indexes.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn get(
        &mut self,
        pred: Symbol,
        cols: &[usize],
        source: ScanSource,
        relation: &Relation,
        mark: Option<Generation>,
    ) -> &Index {
        let key = (pred, cols.to_vec().into_boxed_slice(), source);
        let gen_now = relation.generation();
        let counters = &mut self.counters;
        let fresh = |counters: &mut JoinCounters| {
            let index = match mark {
                Some(m) => Index::build_delta(relation, cols, m),
                None => Index::build(relation, cols),
            };
            counters.index_builds += 1;
            counters.indexed_tuples += index.tuple_count() as u64;
            CacheEntry {
                gen: gen_now,
                mark,
                index,
            }
        };
        match self.entries.entry(key) {
            MapEntry::Vacant(slot) => &slot.insert(fresh(counters)).index,
            MapEntry::Occupied(slot) => {
                let entry = slot.into_mut();
                if entry.gen == gen_now && entry.mark == mark {
                    counters.index_hits += 1;
                } else if mark.is_some() {
                    // Delta indexes are rebuilt per round, never absorbed.
                    *entry = fresh(counters);
                } else if let Some(appended) = entry.index.absorb_from(relation, entry.gen) {
                    counters.index_appends += 1;
                    counters.appended_tuples += appended as u64;
                    entry.gen = gen_now;
                } else {
                    counters.index_rebuilds += 1;
                    counters.indexed_tuples += relation.len() as u64;
                    entry.index = Index::build(relation, cols);
                    entry.gen = gen_now;
                    entry.mark = None;
                }
                &entry.index
            }
        }
    }
}

/// The instances a plan reads from.
///
/// * `full` — the current instance, read by [`ScanSource::Full`] scans.
/// * `delta` — the generation marks captured at the previous round
///   boundary; [`ScanSource::Delta`] scans of semi-naive plan variants
///   read `full`'s relations restricted to the tuples added since the
///   mark (`Relation::iter_since`). No separate delta instance exists.
/// * `neg` — when set, negative literals are checked against this
///   instance instead of `full`. The well-founded engine uses this for
///   the Gelfond–Lifschitz-style reduct of the alternating fixpoint,
///   where negation reads the *previous* iterate while positive facts
///   accumulate in the current one.
/// * `delta_from` — when set, [`ScanSource::Delta`] scans read their
///   relations from this instance instead of `full` (marks still come
///   from `delta`). The incremental-maintenance engine uses this to
///   drive Δ-variant plans over a scratch change set (the overdeleted
///   or newly inserted tuples) while `full` stays pinned to the
///   appropriate database state.
#[derive(Clone, Copy)]
pub struct Sources<'a> {
    /// Current instance.
    pub full: &'a Instance,
    /// Delta marks, if running a semi-naive delta variant.
    pub delta: Option<&'a DeltaHandle>,
    /// Override instance for negative checks.
    pub neg: Option<&'a Instance>,
    /// Override instance for delta scans.
    pub delta_from: Option<&'a Instance>,
}

impl<'a> Sources<'a> {
    /// Sources reading everything from one instance.
    pub fn simple(full: &'a Instance) -> Self {
        Sources {
            full,
            delta: None,
            neg: None,
            delta_from: None,
        }
    }
}

/// Runs `plan` against `sources`, with domain steps enumerating `adom`,
/// invoking `on_match` for every satisfying valuation. `on_match` may
/// stop the enumeration early by returning [`ControlFlow::Break`].
#[allow(clippy::type_complexity)]
pub fn for_each_match(
    plan: &Plan,
    sources: Sources<'_>,
    adom: &[Value],
    cache: &mut IndexCache,
    on_match: &mut dyn FnMut(&Env) -> ControlFlow<()>,
) -> ControlFlow<()> {
    let mut env: Env = vec![None; plan.var_count];
    run_steps(&plan.steps, sources, adom, cache, &mut env, on_match)
}

/// Like [`for_each_match`], but starting from a caller-seeded
/// environment: variables already bound in `env` act as constants
/// (plans compiled with those variables prebound turn them into scan
/// key columns). `env` must have `plan.var_count` slots; bindings the
/// plan adds are undone before returning, the seeded ones survive.
#[allow(clippy::type_complexity)]
pub fn for_each_match_from(
    plan: &Plan,
    sources: Sources<'_>,
    adom: &[Value],
    cache: &mut IndexCache,
    env: &mut Env,
    on_match: &mut dyn FnMut(&Env) -> ControlFlow<()>,
) -> ControlFlow<()> {
    debug_assert_eq!(env.len(), plan.var_count);
    run_steps(&plan.steps, sources, adom, cache, env, on_match)
}

/// Runs `plan` and instantiates `head_args` once per match, invoking
/// `on_tuple` with each head tuple. Returns the number of body matches
/// (the engines' `rules_fired` gauge, which is join-order invariant:
/// it counts satisfying valuations, not tuples).
pub fn for_each_head(
    plan: &Plan,
    head_args: &[Term],
    sources: Sources<'_>,
    adom: &[Value],
    cache: &mut IndexCache,
    on_tuple: &mut dyn FnMut(Tuple),
) -> u64 {
    let mut fired = 0u64;
    let _ = for_each_match(plan, sources, adom, cache, &mut |env| {
        fired += 1;
        on_tuple(instantiate(head_args, env));
        ControlFlow::Continue(())
    });
    fired
}

/// One unit of work for the morsel-driven parallel executor: either a
/// whole-plan evaluation, or a contiguous row range of the plan's
/// *driver* — its first scan step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Morsel {
    /// Run the plan in full. Used for plans whose first step is not a
    /// scan (no row range to partition).
    Whole,
    /// Run only driver rows `lo..hi` (a range of the driver relation's
    /// stored enumeration for full scans, or of its exact delta
    /// enumeration for delta scans).
    Rows {
        /// First driver row (inclusive).
        lo: usize,
        /// Past-the-end driver row (exclusive).
        hi: usize,
    },
}

/// Number of driver rows `plan` enumerates under `sources`: the stored
/// length of the first scan step's relation (full scans) or its delta
/// length (delta scans). `None` when the first step is not a scan — such
/// plans cannot be row-partitioned and run as one [`Morsel::Whole`].
/// An absent relation yields `Some(0)`: nothing to scan, zero morsels.
pub fn driver_len(plan: &Plan, sources: Sources<'_>) -> Option<usize> {
    let Some(Step::Scan { pred, source, .. }) = plan.steps.first() else {
        return None;
    };
    let scan_instance = match source {
        ScanSource::Full => sources.full,
        ScanSource::Delta => sources.delta_from.unwrap_or(sources.full),
    };
    let Some(relation) = scan_instance.relation(*pred) else {
        return Some(0);
    };
    match source {
        ScanSource::Full => Some(relation.stored_len()),
        ScanSource::Delta => {
            let mark = sources
                .delta
                .expect("delta plan run without delta marks")
                .mark(*pred);
            Some(relation.delta_len(mark))
        }
    }
}

/// Like [`for_each_head`], but restricted to one [`Morsel`] of the
/// plan's driver scan. The driver rows are enumerated directly from
/// columnar storage ([`Relation::iter_stored_range`] /
/// [`Relation::iter_since_range`]) instead of through an index, so
/// workers pulling disjoint row ranges partition the plan's match set
/// exactly: every match consumes exactly one driver row, and the ranges
/// partition the driver enumeration. Summing `fired` over a partition of
/// `0..driver_len(plan, sources)` therefore equals the sequential fired
/// count, independent of how morsels are assigned to workers.
pub fn for_each_head_morsel(
    plan: &Plan,
    head_args: &[Term],
    sources: Sources<'_>,
    adom: &[Value],
    cache: &mut IndexCache,
    morsel: Morsel,
    on_tuple: &mut dyn FnMut(Tuple),
) -> u64 {
    let (lo, hi) = match morsel {
        Morsel::Whole => return for_each_head(plan, head_args, sources, adom, cache, on_tuple),
        Morsel::Rows { lo, hi } => (lo, hi),
    };
    let Some((
        Step::Scan {
            pred, args, source, ..
        },
        rest,
    )) = plan.steps.split_first()
    else {
        unreachable!("row morsel for a plan without a driver scan");
    };
    let scan_instance = match source {
        ScanSource::Full => sources.full,
        ScanSource::Delta => sources.delta_from.unwrap_or(sources.full),
    };
    let Some(relation) = scan_instance.relation(*pred) else {
        return 0; // absent relation = empty driver
    };
    let rows: Box<dyn Iterator<Item = &[Value]>> = match source {
        ScanSource::Full => relation.iter_stored_range(lo, hi),
        ScanSource::Delta => {
            let mark = sources
                .delta
                .expect("delta plan run without delta marks")
                .mark(*pred);
            relation.iter_since_range(mark, lo, hi)
        }
    };
    let mut env: Env = vec![None; plan.var_count];
    let mut fired = 0u64;
    let mut scanned = 0u64;
    // The driver borrow comes from `sources`, not `cache`, so the row
    // iterator can be held across the recursive `run_steps` calls — no
    // buffering needed. At step 0 nothing is bound yet, so every
    // position is handled right here: constants are checked, variables
    // bound (with the repeated-variable check).
    'rows: for row in rows {
        scanned += 1;
        let mut newly_bound: Vec<usize> = Vec::new();
        for (p, term) in args.iter().enumerate() {
            match term {
                Term::Const(_) => {
                    if term_value(term, &env) != row[p] {
                        for &b in &newly_bound {
                            env[b] = None;
                        }
                        continue 'rows;
                    }
                }
                Term::Var(v) => match env[v.index()] {
                    Some(existing) => {
                        if existing != row[p] {
                            for &b in &newly_bound {
                                env[b] = None;
                            }
                            continue 'rows;
                        }
                    }
                    None => {
                        env[v.index()] = Some(row[p]);
                        newly_bound.push(v.index());
                    }
                },
            }
        }
        let _ = run_steps(rest, sources, adom, cache, &mut env, &mut |env| {
            fired += 1;
            on_tuple(instantiate(head_args, env));
            ControlFlow::Continue(())
        });
        for &b in &newly_bound {
            env[b] = None;
        }
    }
    cache.counters.probes += 1;
    cache.counters.probe_tuples += scanned;
    fired
}

fn run_steps(
    steps: &[Step],
    sources: Sources<'_>,
    adom: &[Value],
    cache: &mut IndexCache,
    env: &mut Env,
    on_match: &mut dyn FnMut(&Env) -> ControlFlow<()>,
) -> ControlFlow<()> {
    let Some((step, rest)) = steps.split_first() else {
        return on_match(env);
    };
    match step {
        Step::Scan {
            pred,
            args,
            key,
            source,
        } => {
            let mark = match source {
                ScanSource::Full => None,
                ScanSource::Delta => Some(
                    sources
                        .delta
                        .expect("delta plan run without delta marks")
                        .mark(*pred),
                ),
            };
            let scan_instance = match source {
                ScanSource::Full => sources.full,
                ScanSource::Delta => sources.delta_from.unwrap_or(sources.full),
            };
            let Some(relation) = scan_instance.relation(*pred) else {
                return ControlFlow::Continue(()); // absent relation = empty
            };
            // Build the probe key (packed) from the bound positions.
            let mut probe = cache.take_scratch();
            probe.extend(key.iter().map(|&p| term_value(&args[p], env)));
            // The borrow checker will not let us hold the index across the
            // recursive call (which needs `cache`), so copy the matching
            // rows into a pooled packed buffer. Buckets are typically
            // small, and in steady state this allocates nothing.
            let mut buf = cache.take_scratch();
            let rows = {
                let postings = cache.get(*pred, key, *source, relation, mark).probe(&probe);
                let rows = postings.len();
                for row in postings {
                    buf.extend_from_slice(row);
                }
                rows
            };
            cache.counters.probes += 1;
            cache.counters.probe_tuples += rows as u64;
            let arity = args.len();
            let mut flow = ControlFlow::Continue(());
            'rows: for i in 0..rows {
                let row = &buf[i * arity..i * arity + arity];
                // Bind non-key positions, checking repeated variables.
                let mut newly_bound: Vec<usize> = Vec::new();
                for (p, term) in args.iter().enumerate() {
                    if key.contains(&p) {
                        continue;
                    }
                    let Term::Var(v) = term else {
                        unreachable!("constant positions are always key positions")
                    };
                    match env[v.index()] {
                        Some(existing) => {
                            if existing != row[p] {
                                // Repeated variable mismatch.
                                for &b in &newly_bound {
                                    env[b] = None;
                                }
                                continue 'rows;
                            }
                        }
                        None => {
                            env[v.index()] = Some(row[p]);
                            newly_bound.push(v.index());
                        }
                    }
                }
                let f = run_steps(rest, sources, adom, cache, env, on_match);
                for &b in &newly_bound {
                    env[b] = None;
                }
                if f.is_break() {
                    flow = ControlFlow::Break(());
                    break 'rows;
                }
            }
            cache.put_scratch(buf);
            cache.put_scratch(probe);
            flow
        }
        Step::BindEq { var, term } => {
            let value = term_value(term, env);
            let prev = env[var.index()];
            env[var.index()] = Some(value);
            let flow = run_steps(rest, sources, adom, cache, env, on_match);
            env[var.index()] = prev;
            flow
        }
        Step::Domain { var } => {
            for &value in adom {
                env[var.index()] = Some(value);
                run_steps(rest, sources, adom, cache, env, on_match)?;
            }
            env[var.index()] = None;
            ControlFlow::Continue(())
        }
        Step::CheckNeg { pred, args } => {
            let tuple: Tuple = args.iter().map(|t| term_value(t, env)).collect();
            let neg_instance = sources.neg.unwrap_or(sources.full);
            let present = neg_instance
                .relation(*pred)
                .is_some_and(|r| r.contains(&tuple));
            if present {
                ControlFlow::Continue(())
            } else {
                run_steps(rest, sources, adom, cache, env, on_match)
            }
        }
        Step::CheckCmp { left, right, equal } => {
            if (term_value(left, env) == term_value(right, env)) == *equal {
                run_steps(rest, sources, adom, cache, env, on_match)
            } else {
                ControlFlow::Continue(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unchained_common::Interner;

    #[test]
    fn index_cache_absorbs_growth_instead_of_rebuilding() {
        let mut interner = Interner::new();
        let g = interner.intern("G");
        let mut rel = Relation::new(1);
        rel.insert(Tuple::from([Value::Int(1)]));
        rel.commit();
        let mut cache = IndexCache::new();
        assert_eq!(
            cache
                .get(g, &[0], ScanSource::Full, &rel, None)
                .probe(&[Value::Int(1)])
                .len(),
            1
        );
        assert_eq!(cache.counters.index_builds, 1);
        // Unchanged relation: a cache hit, no index work.
        let _ = cache.get(g, &[0], ScanSource::Full, &rel, None);
        assert_eq!(cache.counters.index_hits, 1);
        // Growth (including across a commit) is absorbed incrementally.
        rel.insert(Tuple::from([Value::Int(2)]));
        rel.commit();
        assert_eq!(
            cache
                .get(g, &[0], ScanSource::Full, &rel, None)
                .probe(&[Value::Int(2)])
                .len(),
            1
        );
        assert_eq!(cache.counters.index_appends, 1);
        assert_eq!(cache.counters.appended_tuples, 1);
        assert_eq!(cache.counters.index_rebuilds, 0);
        // A removal breaks the lineage and forces a rebuild.
        rel.remove(&Tuple::from([Value::Int(1)]));
        assert_eq!(
            cache
                .get(g, &[0], ScanSource::Full, &rel, None)
                .probe(&[Value::Int(1)])
                .len(),
            0
        );
        assert_eq!(cache.counters.index_rebuilds, 1);
    }

    #[test]
    fn delta_index_covers_only_the_slice_since_the_mark() {
        let mut interner = Interner::new();
        let g = interner.intern("G");
        let mut rel = Relation::new(1);
        rel.insert(Tuple::from([Value::Int(1)]));
        rel.commit();
        let mark = rel.generation();
        rel.insert(Tuple::from([Value::Int(2)]));
        rel.commit();
        let mut cache = IndexCache::new();
        let idx = cache.get(g, &[0], ScanSource::Delta, &rel, Some(mark));
        assert_eq!(idx.probe(&[Value::Int(1)]).len(), 0);
        assert_eq!(idx.probe(&[Value::Int(2)]).len(), 1);
        assert_eq!(cache.counters.index_builds, 1);
        assert_eq!(cache.counters.indexed_tuples, 1);
    }
}

//! Datalog¬new — value invention (Section 4.3).
//!
//! Variables that occur in a rule head but not in its body are valuated
//! *outside the current active domain*: each applicable body
//! instantiation is extended with **one** instantiation of the remaining
//! variables with distinct fresh values. The new values break the
//! polynomial "space barrier" of the other languages — with them the
//! language expresses *all* computable queries (Theorem 4.6), the proof
//! simulating a Turing machine on invented scratch space.
//!
//! ### Determinization
//! The paper notes the only nondeterminism is the identity of the fresh
//! values, and that a syntactic safety restriction (answers built only
//! from input values) makes the expressed query deterministic. We issue
//! fresh values from a counter and key them on `(rule, body valuation)`
//! — i.e. a Skolem-function reading, so re-firing the same body
//! instantiation at a later stage reuses its original invented values
//! instead of minting an endless stream. This keeps the inflationary
//! fixpoint semantics: without the memoization, *every* program with an
//! inventing rule whose body ever fires would diverge trivially. (See
//! DESIGN.md, "Substitutions".)
//!
//! Programs can still grow without bound through *chains* of inventions
//! (invented values enabling new body instantiations), which is exactly
//! the unbounded-space power the language is supposed to have. The
//! `max_stages` / `max_facts` budgets bound such runs.

use crate::error::EvalError;
use crate::exec::{for_each_match, IndexCache, Sources};
use crate::ir::Plan;
use crate::options::{EvalOptions, FixpointRun};
use crate::planner::plan_rule;
use crate::require_language;
use crate::subst::{active_domain, instantiate};
use std::ops::ControlFlow;
use unchained_common::{FxHashSet, HeapSize, Instance, SpanKind, StageRecord, Symbol, Value};
use unchained_parser::{check_range_restricted, features, HeadLiteral, Language, Program, Var};

/// Result of a Datalog¬new run: the fixpoint plus invention statistics.
#[derive(Clone, Debug)]
pub struct InventionRun {
    /// The fixpoint instance (may contain invented values).
    pub instance: Instance,
    /// Stages performed.
    pub stages: usize,
    /// Number of values invented.
    pub invented: u64,
}

impl InventionRun {
    /// The answer restricted to the idb, like [`FixpointRun::answer`].
    pub fn answer(&self, program: &Program) -> Instance {
        self.instance.project_schema(program.idb())
    }

    /// Checks the paper's *safety restriction*: the relation `answer`
    /// contains no invented values (then the query result is
    /// deterministic, independent of the choice of new values).
    pub fn is_safe_answer(&self, answer: unchained_common::Symbol) -> bool {
        self.instance
            .relation(answer)
            .is_none_or(|rel| rel.iter().all(|t| t.iter().all(|v| !v.is_invented())))
    }

    /// Converts to a [`FixpointRun`] (dropping invention stats).
    pub fn into_fixpoint(self) -> FixpointRun {
        FixpointRun {
            instance: self.instance,
            stages: self.stages,
        }
    }
}

/// Evaluates a Datalog¬new program under the inflationary semantics with
/// value invention.
///
/// # Errors
/// Rejects nondeterministic syntax and head negation; reports budget
/// exhaustion for unboundedly growing runs.
pub fn eval(
    program: &Program,
    input: &Instance,
    options: EvalOptions,
) -> Result<InventionRun, EvalError> {
    require_language(program, Language::DatalogNegNew)?;
    if features(program).head_negation {
        return Err(EvalError::WrongLanguage {
            engine_accepts: Language::DatalogNegNew,
            found: Language::DatalogNegNeg,
        });
    }
    check_range_restricted(program, true)?;

    let plans: Vec<Plan> = program.rules.iter().map(plan_rule).collect();
    let invented_vars: Vec<Vec<Var>> = program.rules.iter().map(|r| r.invented_vars()).collect();
    let body_vars: Vec<Vec<Var>> = program.rules.iter().map(|r| r.body_vars()).collect();

    let mut cache = IndexCache::new();
    let mut instance = input.clone();
    let schema = program.schema()?;
    for pred in program.idb() {
        instance.ensure(pred, schema.arity(pred).expect("idb has arity"));
    }

    // Skolem memo: one entry per (rule, body valuation) that has fired.
    let mut fired: Vec<FxHashSet<Box<[Value]>>> =
        program.rules.iter().map(|_| FxHashSet::default()).collect();
    let mut next_fresh: u64 = 0;

    let tel = options.telemetry.clone();
    tel.begin("invention");
    let run_sw = tel.stopwatch();
    let tracer = tel.tracer().clone();
    let eval_guard = tracer.span(SpanKind::Eval, "invention");
    let mut stages = 0;
    loop {
        stages += 1;
        if options.max_stages.is_some_and(|m| stages > m) {
            tel.finish(&run_sw, instance.fact_count());
            return Err(EvalError::StageLimitExceeded(stages - 1));
        }
        let round_guard = tracer.span(SpanKind::Round, format!("round {stages}"));
        let stage_sw = tel.stopwatch();
        let joins_before = cache.counters;
        let mut rules_fired: u64 = 0;
        // Invented values join the active domain, so recompute per stage.
        let adom = active_domain(program, &instance);
        let mut new_facts = Vec::new();
        for (ridx, (rule, plan)) in program.rules.iter().zip(&plans).enumerate() {
            let HeadLiteral::Pos(head) = &rule.head[0] else {
                unreachable!("head negation rejected above")
            };
            let rule_invented = &invented_vars[ridx];
            let rule_body_vars = &body_vars[ridx];
            let fired_rule = &mut fired[ridx];
            let _ = for_each_match(
                plan,
                Sources::simple(&instance),
                &adom,
                &mut cache,
                &mut |env| {
                    rules_fired += 1;
                    if rule_invented.is_empty() {
                        let tuple = instantiate(&head.args, env);
                        if !instance.contains_fact(head.pred, &tuple) {
                            new_facts.push((head.pred, tuple));
                        }
                        return ControlFlow::Continue(());
                    }
                    let key: Box<[Value]> = rule_body_vars
                        .iter()
                        .map(|v| env[v.index()].expect("body var bound"))
                        .collect();
                    if fired_rule.contains(&key) {
                        return ControlFlow::Continue(());
                    }
                    fired_rule.insert(key);
                    // Extend the valuation with distinct fresh values.
                    let mut extended = env.clone();
                    for v in rule_invented {
                        extended[v.index()] = Some(Value::Invented(next_fresh));
                        next_fresh += 1;
                    }
                    let tuple = instantiate(&head.args, &extended);
                    new_facts.push((head.pred, tuple));
                    ControlFlow::Continue(())
                },
            );
        }
        let enabled = tel.is_enabled() || tracer.is_enabled();
        let mut delta: Vec<(Symbol, usize)> = Vec::new();
        let mut changed = false;
        for (pred, tuple) in new_facts {
            if instance.insert_fact(pred, tuple) {
                changed = true;
                if enabled {
                    match delta.iter_mut().find(|(p, _)| *p == pred) {
                        Some((_, n)) => *n += 1,
                        None => delta.push((pred, 1)),
                    }
                }
            }
        }
        let added: usize = delta.iter().map(|(_, n)| n).sum();
        tracer.gauge("facts_added", added as u64);
        tracer.gauge("rules_fired", rules_fired);
        drop(round_guard);
        tel.with(|t| {
            t.stages.push(StageRecord {
                stage: stages,
                wall_nanos: stage_sw.nanos(),
                facts_added: added,
                facts_removed: 0,
                rules_fired,
                delta: std::mem::take(&mut delta),
                bytes: instance.heap_bytes() as u64,
                joins: cache.counters.since(&joins_before),
            });
            t.peak_facts = t.peak_facts.max(instance.fact_count());
            t.bytes_peak = t.bytes_peak.max(instance.heap_bytes() as u64);
            t.invented = next_fresh as usize;
        });
        if !changed {
            tracer.gauge("rounds", stages as u64);
            tracer.gauge("invented", next_fresh);
            tracer.gauge("final_facts", instance.fact_count() as u64);
            drop(eval_guard);
            tel.with(|t| t.bytes_final = instance.heap_bytes() as u64);
            tel.finish(&run_sw, instance.fact_count());
            return Ok(InventionRun {
                instance,
                stages,
                invented: next_fresh,
            });
        }
        if options.max_facts.is_some_and(|m| instance.fact_count() > m) {
            tel.finish(&run_sw, instance.fact_count());
            return Err(EvalError::FactLimitExceeded(instance.fact_count()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unchained_common::{Interner, Tuple};
    use unchained_parser::parse_program;

    #[test]
    fn invents_one_value_per_body_instantiation() {
        // Pair every edge with a fresh edge-object.
        let mut i = Interner::new();
        let program = parse_program("EdgeObj(e, x, y) :- G(x,y).", &mut i).unwrap();
        let g = i.get("G").unwrap();
        let mut input = Instance::new();
        let v = Value::Int;
        input.insert_fact(g, Tuple::from([v(1), v(2)]));
        input.insert_fact(g, Tuple::from([v(2), v(3)]));
        let run = eval(&program, &input, EvalOptions::default()).unwrap();
        assert_eq!(run.invented, 2);
        let eo = i.get("EdgeObj").unwrap();
        let rel = run.instance.relation(eo).unwrap();
        assert_eq!(rel.len(), 2);
        // All first components are distinct invented values.
        let ids: FxHashSet<Value> = rel.iter().map(|t| t[0]).collect();
        assert_eq!(ids.len(), 2);
        assert!(ids.iter().all(|v| v.is_invented()));
    }

    #[test]
    fn refire_does_not_mint_new_values() {
        // The body stays satisfiable forever; without Skolem memoization
        // this would never terminate.
        let mut i = Interner::new();
        let program = parse_program("Tag(n, x) :- P(x).", &mut i).unwrap();
        let p = i.get("P").unwrap();
        let mut input = Instance::new();
        input.insert_fact(p, Tuple::from([Value::Int(7)]));
        let run = eval(
            &program,
            &input,
            EvalOptions::default().with_max_stages(100),
        )
        .unwrap();
        assert_eq!(run.invented, 1);
        let tag = i.get("Tag").unwrap();
        assert_eq!(run.instance.relation(tag).unwrap().len(), 1);
    }

    #[test]
    fn multiple_invented_vars_are_distinct() {
        let mut i = Interner::new();
        let program = parse_program("Pair(a, b, x) :- P(x).", &mut i).unwrap();
        let p = i.get("P").unwrap();
        let mut input = Instance::new();
        input.insert_fact(p, Tuple::from([Value::Int(1)]));
        let run = eval(&program, &input, EvalOptions::default()).unwrap();
        let pair = i.get("Pair").unwrap();
        let t = run.instance.relation(pair).unwrap().sorted()[0].clone();
        assert!(t[0].is_invented() && t[1].is_invented());
        assert_ne!(t[0], t[1]);
    }

    #[test]
    fn unbounded_chain_hits_budget() {
        // Each invented value re-enables the rule: an unbounded chain
        // Succ(fresh, last). This is the pspace-barrier-breaking power —
        // and must be stopped by the budget.
        let mut i = Interner::new();
        let program = parse_program(
            "Chain(n, x) :- Start(x).\n\
             Chain(n2, n) :- Chain(n, x).",
            &mut i,
        )
        .unwrap();
        let start = i.get("Start").unwrap();
        let mut input = Instance::new();
        input.insert_fact(start, Tuple::from([Value::Int(0)]));
        let err = eval(&program, &input, EvalOptions::default().with_max_stages(50)).unwrap_err();
        assert!(matches!(
            err,
            EvalError::StageLimitExceeded(_) | EvalError::FactLimitExceeded(_)
        ));
        let err = eval(&program, &input, EvalOptions::default().with_max_facts(40)).unwrap_err();
        assert!(matches!(err, EvalError::FactLimitExceeded(_)));
    }

    #[test]
    fn plain_datalog_neg_runs_unchanged() {
        // Datalog¬ ⊆ Datalog¬new: no invention, same result as the
        // inflationary engine.
        let mut i = Interner::new();
        let program = parse_program(
            "T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y). CT(x,y) :- !T(x,y), V(x), V(y).",
            &mut i,
        )
        .unwrap();
        let g = i.get("G").unwrap();
        let vsym = i.get("V").unwrap();
        let mut input = Instance::new();
        for k in 0..3i64 {
            input.insert_fact(vsym, Tuple::from([Value::Int(k)]));
        }
        input.insert_fact(g, Tuple::from([Value::Int(0), Value::Int(1)]));
        let a = eval(&program, &input, EvalOptions::default()).unwrap();
        let b = crate::inflationary::eval(&program, &input, EvalOptions::default()).unwrap();
        assert!(a.instance.same_facts(&b.instance));
        assert_eq!(a.invented, 0);
    }

    #[test]
    fn safety_check_detects_invented_answers() {
        let mut i = Interner::new();
        let program = parse_program("A(n, x) :- P(x). B(x) :- P(x).", &mut i).unwrap();
        let p = i.get("P").unwrap();
        let mut input = Instance::new();
        input.insert_fact(p, Tuple::from([Value::Int(1)]));
        let run = eval(&program, &input, EvalOptions::default()).unwrap();
        assert!(!run.is_safe_answer(i.get("A").unwrap()));
        assert!(run.is_safe_answer(i.get("B").unwrap()));
        assert!(run.is_safe_answer(i.intern("missing")));
    }

    #[test]
    fn invented_values_participate_in_joins() {
        // Invented object ids can be dereferenced by later rules.
        let mut i = Interner::new();
        let program = parse_program(
            "EdgeObj(e, x, y) :- G(x,y).\n\
             Src(e, x) :- EdgeObj(e, x, y).",
            &mut i,
        )
        .unwrap();
        let g = i.get("G").unwrap();
        let mut input = Instance::new();
        input.insert_fact(g, Tuple::from([Value::Int(1), Value::Int(2)]));
        let run = eval(&program, &input, EvalOptions::default()).unwrap();
        let src = i.get("Src").unwrap();
        let rel = run.instance.relation(src).unwrap();
        assert_eq!(rel.len(), 1);
        let t = rel.sorted()[0].clone();
        assert!(t[0].is_invented());
        assert_eq!(t[1], Value::Int(1));
    }
}

//! # unchained-core
//!
//! The deterministic engine family of *Datalog Unchained* (Vianu, PODS
//! 2021): every deterministic semantics the paper surveys, over one
//! shared rule-evaluation substrate.
//!
//! | Engine | Paper | Expressiveness (Figure 1) |
//! |---|---|---|
//! | [`naive`], [`seminaive`] | §3.1 minimum model of Datalog | bottom of the hierarchy |
//! | [`stratified`] | §3.2 stratified Datalog¬ | strictly above Datalog |
//! | [`wellfounded`] | §3.3 well-founded (3-valued, alternating fixpoint) | ≡ fixpoint queries |
//! | [`inflationary`] | §4.1 forward chaining Datalog¬ | ≡ fixpoint queries |
//! | [`noninflationary`] | §4.2 Datalog¬¬ (retraction, updates) | ≡ while queries |
//! | [`invention`] | §4.3 Datalog¬new (value invention) | all computable queries |
//! | [`stable`] | §3.3 stable models (Gelfond–Lifschitz) | between WF true and possible |
//!
//! ## Quick example
//!
//! ```
//! use unchained_common::{Instance, Interner, Tuple, Value};
//! use unchained_parser::parse_program;
//! use unchained_core::{inflationary, EvalOptions};
//!
//! let mut interner = Interner::new();
//! let program = parse_program(
//!     "T(x,y) :- G(x,y).\n\
//!      T(x,y) :- G(x,z), T(z,y).",
//!     &mut interner,
//! ).unwrap();
//! let g = interner.get("G").unwrap();
//! let mut input = Instance::new();
//! input.insert_fact(g, Tuple::from([Value::Int(1), Value::Int(2)]));
//! input.insert_fact(g, Tuple::from([Value::Int(2), Value::Int(3)]));
//!
//! let run = inflationary::eval(&program, &input, EvalOptions::default()).unwrap();
//! let t = interner.get("T").unwrap();
//! assert!(run.instance.contains_fact(t, &Tuple::from([Value::Int(1), Value::Int(3)])));
//! ```

pub mod active;
pub mod error;
pub mod exec;
pub mod inflationary;
pub mod invention;
pub mod ir;
pub mod ivm;
pub mod magic;
pub mod naive;
pub mod noninflationary;
pub mod options;
mod parallel;
pub mod planner;
pub mod provenance;
pub mod seminaive;
pub mod stable;
pub mod stratified;
pub mod subst;
pub mod wellfounded;

pub use error::EvalError;
pub use ivm::{IncrementalSession, PollStats};
pub use options::{DivergenceDetection, EvalOptions, FixpointRun};
pub use planner::PlanMode;

use unchained_parser::{classify, Language, Program};

/// Checks that `program` classifies at or below `max` in the language
/// hierarchy (and that rules have the single-positive-head shape all
/// deterministic engines below Datalog¬¬ require).
pub(crate) fn require_language(program: &Program, max: Language) -> Result<(), EvalError> {
    let found = classify(program);
    if found > max {
        return Err(EvalError::WrongLanguage {
            engine_accepts: max,
            found,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use unchained_common::Interner;
    use unchained_parser::parse_program;

    #[test]
    fn require_language_orders_correctly() {
        let mut i = Interner::new();
        let datalog = parse_program("A(x) :- B(x).", &mut i).unwrap();
        assert!(require_language(&datalog, Language::Datalog).is_ok());
        assert!(require_language(&datalog, Language::DatalogNegNew).is_ok());
        let neg = parse_program("A(x) :- B(x), !A(x).", &mut i).unwrap();
        assert!(require_language(&neg, Language::Datalog).is_err());
        assert!(require_language(&neg, Language::DatalogNeg).is_ok());
    }
}

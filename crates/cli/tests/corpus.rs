//! End-to-end CLI runs over the `.dl` program corpus shipped in
//! `examples/programs/`.

use std::path::PathBuf;
use unchained_cli::args::parse_args;
use unchained_cli::run::execute;

fn corpus(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/programs")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"))
}

fn eval(
    semantics: &str,
    program: &str,
    facts: Option<&str>,
    extra: &str,
) -> Result<String, String> {
    let argv: Vec<String> = format!("eval --semantics {semantics} p.dl {extra}")
        .split_whitespace()
        .map(String::from)
        .collect();
    let cmd = parse_args(&argv).unwrap().command;
    execute(&cmd, program, facts)
}

#[test]
fn tc_corpus() {
    let out = eval(
        "seminaive",
        &corpus("tc.dl"),
        Some(&corpus("tc_facts.dl")),
        "",
    )
    .unwrap();
    assert!(out.contains("T('sd', 'nce')"));
}

#[test]
fn win_corpus_wellfounded() {
    let out = eval(
        "wellfounded",
        &corpus("win.dl"),
        Some(&corpus("win_facts.dl")),
        "",
    )
    .unwrap();
    assert!(out.contains("win('d')"));
    assert!(out.contains("% unknown facts:"));
    assert!(out.contains("win('a')"));
}

#[test]
fn ctc_corpora_agree() {
    let facts = "G(1,2). G(2,3).";
    let strat = eval(
        "stratified",
        &corpus("ctc_stratified.dl"),
        Some(facts),
        "--output CT",
    )
    .unwrap();
    let infl = eval(
        "inflationary",
        &corpus("ctc_inflationary.dl"),
        Some(facts),
        "--output CT",
    )
    .unwrap();
    let body = |s: &str| {
        s.lines()
            .filter(|l| l.starts_with("CT"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(body(&strat), body(&infl));
    assert!(strat.contains("CT(2, 1)"));
}

#[test]
fn flip_flop_corpus_diverges() {
    let err = eval(
        "noninflationary",
        &corpus("flip_flop.dl"),
        Some(&corpus("flip_flop_facts.dl")),
        "",
    )
    .unwrap_err();
    assert!(err.contains("diverges"), "{err}");
}

#[test]
fn orientation_corpus_effect() {
    let out = eval(
        "effect",
        &corpus("orientation.dl"),
        Some(&corpus("orientation_facts.dl")),
        "",
    )
    .unwrap();
    assert!(out.contains("% 4 terminal instance(s)"), "{out}");
}

#[test]
fn choice_parity_corpus() {
    let out = eval(
        "effect",
        &corpus("choice_parity.dl"),
        Some(&corpus("choice_parity_facts.dl")),
        "--output evenR",
    )
    .unwrap();
    // |R| = 4 is even: evenR certain.
    assert!(out.contains("% cert:\nevenR"), "{out}");
}

#[test]
fn even_semipositive_corpus() {
    let out = eval(
        "stratified",
        &corpus("even_semipositive.dl"),
        Some(&corpus("even_semipositive_facts.dl")),
        "--output even",
    )
    .unwrap();
    // |R| = 3 is odd: `even` must NOT be derived.
    assert!(!out.contains("\neven\n"), "{out}");
    let infl = eval(
        "inflationary",
        &corpus("even_semipositive.dl"),
        Some(&corpus("even_semipositive_facts.dl")),
        "--output odd-pref",
    )
    .unwrap();
    assert!(infl.contains("odd-pref(5)"), "{infl}");
}

#[test]
fn check_corpus_programs() {
    for (file, expected) in [
        ("tc.dl", "language: Datalog"),
        ("ctc_stratified.dl", "language: stratified Datalog¬"),
        ("win.dl", "language: Datalog¬"),
        ("flip_flop.dl", "language: Datalog¬¬"),
        ("orientation.dl", "language: Datalog¬¬"),
        ("choice_parity.dl", "language: N-Datalog"),
        ("even_semipositive.dl", "language: semipositive Datalog¬"),
    ] {
        let cmd = parse_args(&["check".into(), "p.dl".into()])
            .unwrap()
            .command;
        let out = execute(&cmd, &corpus(file), None).unwrap();
        assert!(out.contains(expected), "{file}: {out}");
    }
}

//! CLI end-to-end runs of while-language programs.

use std::path::PathBuf;
use unchained_cli::args::parse_args;
use unchained_cli::run::execute;

fn corpus(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/programs")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"))
}

#[test]
fn good_nodes_while_program() {
    let argv: Vec<String> = "eval --semantics whilelang p.wl f.dl"
        .split_whitespace()
        .map(String::from)
        .collect();
    let cmd = parse_args(&argv).unwrap().command;
    let out = execute(
        &cmd,
        &corpus("good_nodes.wl"),
        Some(&corpus("good_nodes_facts.dl")),
    )
    .unwrap();
    // Only node 6 is not reachable from the 1→2→3→1 cycle.
    assert!(out.contains("good(6)"), "{out}");
    assert!(!out.contains("good(1)"));
    assert!(out.contains("% iterations:"));
}

#[test]
fn witness_program_via_cli_is_seeded() {
    let cmd = |seed: u64| {
        let argv: Vec<String> = format!("eval --semantics whilelang --seed {seed} p.wl")
            .split_whitespace()
            .map(String::from)
            .collect();
        parse_args(&argv).unwrap().command
    };
    let program = "picked := W { x | R(x) };";
    let facts = "R(1). R(2). R(3). R(4). R(5).";
    let a = execute(&cmd(1), program, Some(facts)).unwrap();
    let b = execute(&cmd(1), program, Some(facts)).unwrap();
    assert_eq!(a, b, "same seed, same pick");
    // Some seed should differ from seed 1 (5 candidates).
    let mut differs = false;
    for seed in 2..10 {
        if execute(&cmd(seed), program, Some(facts)).unwrap() != a {
            differs = true;
            break;
        }
    }
    assert!(differs);
}

#[test]
fn while_parse_error_reported() {
    let argv: Vec<String> = "eval --semantics whilelang p.wl"
        .split_whitespace()
        .map(String::from)
        .collect();
    let cmd = parse_args(&argv).unwrap().command;
    let err = execute(&cmd, "while done do end", None).unwrap_err();
    assert!(err.contains("expected"), "{err}");
}

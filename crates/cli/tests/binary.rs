//! True end-to-end tests of the `unchained` binary (spawned as a
//! process): file I/O, exit codes, stdout/stderr wiring, and the REPL
//! over a piped stdin session.

use std::io::Write;
use std::process::{Command, Stdio};
use unchained_common::{BenchReport, Json, BENCH_SCHEMA_VERSION};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_unchained"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("unchained-bin-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

#[test]
fn eval_tc_from_files() {
    let prog = write_temp("tc.dl", "T(x,y) :- G(x,y).\nT(x,y) :- G(x,z), T(z,y).\n");
    let facts = write_temp("tc_facts.dl", "G(1,2). G(2,3).\n");
    let out = bin()
        .args(["eval", "--semantics", "seminaive"])
        .arg(&prog)
        .arg(&facts)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("T(1, 3)"), "{stdout}");
}

#[test]
fn missing_file_fails_with_message() {
    let out = bin()
        .args(["eval", "--semantics", "naive", "/definitely/not/here.dl"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn check_prints_analysis() {
    let prog = write_temp("win.dl", "win(x) :- moves(x,y), !win(y).\n");
    let out = bin().arg("check").arg(&prog).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("not stratifiable"), "{stdout}");
}

#[test]
fn help_exits_zero() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("USAGE"));
}

#[test]
fn bad_command_exits_nonzero() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn repl_session_over_stdin() {
    let mut child = bin()
        .arg("repl")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let stdin = child.stdin.as_mut().unwrap();
    stdin
        .write_all(
            b"G(1,2). G(2,3).\n\
              T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).\n\
              ? T\n\
              .explain T(1,3)\n\
              .quit\n",
        )
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("T(1, 3)"), "{stdout}");
    assert!(stdout.contains("(given)"), "{stdout}");
}

#[test]
fn run_stats_prints_table_and_writes_trace_json() {
    let prog = write_temp(
        "tc_stats.dl",
        "T(x,y) :- G(x,y).\nT(x,y) :- G(x,z), T(z,y).\n",
    );
    let facts = write_temp("tc_stats_facts.dl", "G(1,2). G(2,3). G(3,4).\n");
    let trace = std::env::temp_dir()
        .join("unchained-bin-tests")
        .join("tc_trace.jsonl");
    let _ = std::fs::remove_file(&trace);
    let out = bin()
        .args(["run", "--semantics", "seminaive", "--stats", "--trace-json"])
        .arg(&trace)
        .arg(&prog)
        .arg(&facts)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    // The answer, then the stats table with per-stage delta sizes and
    // total timing.
    assert!(stdout.contains("T(1, 4)"), "{stdout}");
    assert!(stdout.contains("engine: seminaive"), "{stdout}");
    assert!(stdout.contains("wall:"), "{stdout}");
    assert!(stdout.contains("T=3"), "{stdout}");
    // The trace file holds one valid JSON object per line: a `run`
    // header followed by one `stage` record per stage.
    let json = std::fs::read_to_string(&trace).unwrap();
    let lines: Vec<Json> = json
        .lines()
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad trace line {l}: {e}")))
        .collect();
    assert!(lines.len() >= 2, "{json}");
    assert_eq!(lines[0].get("type").and_then(Json::as_str), Some("run"));
    assert_eq!(
        lines[0].get("engine").and_then(Json::as_str),
        Some("seminaive")
    );
    for line in &lines[1..] {
        assert_eq!(line.get("type").and_then(Json::as_str), Some("stage"));
        assert!(line.get("wall_nanos").and_then(Json::as_u64).is_some());
    }
}

#[test]
fn bench_quick_smoke_writes_valid_bench_json() {
    let json_path = std::env::temp_dir()
        .join("unchained-bin-tests")
        .join("bench_smoke.json");
    std::fs::create_dir_all(json_path.parent().unwrap()).unwrap();
    let _ = std::fs::remove_file(&json_path);
    let out = bin()
        .args([
            "bench", "--quick", "--filter", "chain", "--reps", "1", "--warmup", "0", "--json",
        ])
        .arg(&json_path)
        .output()
        .unwrap();
    assert!(out.status.success(), "{:?}", out);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("chain/seminaive"), "{stdout}");

    let text = std::fs::read_to_string(&json_path).unwrap();
    let doc = Json::parse(&text).expect("BENCH.json parses");
    assert_eq!(
        doc.get("schema_version").and_then(Json::as_u64),
        Some(BENCH_SCHEMA_VERSION)
    );
    let entries = doc.get("entries").and_then(Json::as_arr).unwrap();
    assert!(!entries.is_empty());
    for e in entries {
        assert_eq!(e.get("workload").and_then(Json::as_str), Some("chain"));
        assert!(e.get("wall").and_then(|w| w.get("median")).is_some());
    }
    // The typed parser accepts its own emission too.
    let report = BenchReport::from_json(&text).unwrap();
    assert_eq!(report.entries.len(), entries.len());
}

#[test]
fn bench_baseline_regression_exits_nonzero() {
    let dir = std::env::temp_dir().join("unchained-bin-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let json_path = dir.join("bench_base.json");
    let _ = std::fs::remove_file(&json_path);
    let common = [
        "--quick",
        "--filter",
        "chain/seminaive",
        "--reps",
        "1",
        "--warmup",
        "0",
    ];
    let out = bin()
        .arg("bench")
        .args(common)
        .arg("--json")
        .arg(&json_path)
        .output()
        .unwrap();
    assert!(out.status.success(), "{:?}", out);

    // Self-comparison with a loose threshold passes.
    let out = bin()
        .arg("bench")
        .args(common)
        .args(["--threshold", "1000"])
        .arg("--baseline")
        .arg(&json_path)
        .output()
        .unwrap();
    assert!(out.status.success(), "{:?}", out);

    // An artificial slowdown fixture: doctor the baseline down to 1ns
    // medians so the fresh run reads as a massive regression.
    let mut doctored =
        BenchReport::from_json(&std::fs::read_to_string(&json_path).unwrap()).unwrap();
    for e in &mut doctored.entries {
        e.wall.min = 1;
        e.wall.median = 1;
        e.wall.p95 = 1;
        e.wall.total = 1;
    }
    let doctored_path = dir.join("bench_doctored.json");
    std::fs::write(&doctored_path, doctored.to_json()).unwrap();
    let out = bin()
        .arg("bench")
        .args(common)
        .arg("--baseline")
        .arg(&doctored_path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{:?}", out);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("REGRESSED"), "{stdout}");

    // Bad bench usage is distinguishable from a regression.
    let out = bin().args(["bench", "--bogus"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{:?}", out);
}

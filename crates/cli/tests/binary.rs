//! True end-to-end tests of the `unchained` binary (spawned as a
//! process): file I/O, exit codes, stdout/stderr wiring, and the REPL
//! over a piped stdin session.

use std::io::Write;
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_unchained"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("unchained-bin-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

#[test]
fn eval_tc_from_files() {
    let prog = write_temp("tc.dl", "T(x,y) :- G(x,y).\nT(x,y) :- G(x,z), T(z,y).\n");
    let facts = write_temp("tc_facts.dl", "G(1,2). G(2,3).\n");
    let out = bin()
        .args(["eval", "--semantics", "seminaive"])
        .arg(&prog)
        .arg(&facts)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("T(1, 3)"), "{stdout}");
}

#[test]
fn missing_file_fails_with_message() {
    let out = bin()
        .args(["eval", "--semantics", "naive", "/definitely/not/here.dl"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn check_prints_analysis() {
    let prog = write_temp("win.dl", "win(x) :- moves(x,y), !win(y).\n");
    let out = bin().arg("check").arg(&prog).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("not stratifiable"), "{stdout}");
}

#[test]
fn help_exits_zero() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("USAGE"));
}

#[test]
fn bad_command_exits_nonzero() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn repl_session_over_stdin() {
    let mut child = bin()
        .arg("repl")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let stdin = child.stdin.as_mut().unwrap();
    stdin
        .write_all(
            b"G(1,2). G(2,3).\n\
              T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).\n\
              ? T\n\
              .explain T(1,3)\n\
              .quit\n",
        )
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("T(1, 3)"), "{stdout}");
    assert!(stdout.contains("(given)"), "{stdout}");
}

#[test]
fn run_stats_prints_table_and_writes_trace_json() {
    let prog = write_temp(
        "tc_stats.dl",
        "T(x,y) :- G(x,y).\nT(x,y) :- G(x,z), T(z,y).\n",
    );
    let facts = write_temp("tc_stats_facts.dl", "G(1,2). G(2,3). G(3,4).\n");
    let trace = std::env::temp_dir()
        .join("unchained-bin-tests")
        .join("tc_trace.jsonl");
    let _ = std::fs::remove_file(&trace);
    let out = bin()
        .args(["run", "--semantics", "seminaive", "--stats", "--trace-json"])
        .arg(&trace)
        .arg(&prog)
        .arg(&facts)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    // The answer, then the stats table with per-stage delta sizes and
    // total timing.
    assert!(stdout.contains("T(1, 4)"), "{stdout}");
    assert!(stdout.contains("engine: seminaive"), "{stdout}");
    assert!(stdout.contains("wall:"), "{stdout}");
    assert!(stdout.contains("T=3"), "{stdout}");
    // The trace file holds one JSON object per line.
    let json = std::fs::read_to_string(&trace).unwrap();
    let lines: Vec<&str> = json.lines().collect();
    assert!(lines.len() >= 2, "{json}");
    assert!(lines[0].starts_with("{\"type\":\"run\""), "{json}");
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    }
}

//! Hand-rolled argument parsing (the sanctioned dependency set has no
//! CLI crate, and the surface is small).

use std::fmt;

/// Which engine to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Semantics {
    /// Naive positive-Datalog evaluation.
    Naive,
    /// Semi-naive positive-Datalog evaluation.
    Seminaive,
    /// Stratified Datalog¬.
    Stratified,
    /// Well-founded (3-valued) Datalog¬.
    WellFounded,
    /// Inflationary (forward chaining) Datalog¬.
    Inflationary,
    /// Datalog¬¬ (noninflationary, retraction).
    Noninflationary,
    /// Datalog¬new (value invention).
    Invention,
    /// Nondeterministic single run (N-Datalog¬(¬), ⊥, ∀, new).
    Nondet,
    /// Exhaustive effect enumeration + poss/cert.
    Effect,
    /// The imperative while / fixpoint language (program file uses the
    /// `unchained_while::parse` text syntax, not Datalog rules).
    WhileLang,
}

impl Semantics {
    /// Parses a semantics name.
    pub fn parse(s: &str) -> Option<Semantics> {
        Some(match s {
            "naive" => Semantics::Naive,
            "seminaive" | "semi-naive" => Semantics::Seminaive,
            "stratified" => Semantics::Stratified,
            "wellfounded" | "well-founded" | "wf" => Semantics::WellFounded,
            "inflationary" | "forward" => Semantics::Inflationary,
            "noninflationary" | "datalog-neg-neg" | "while" => Semantics::Noninflationary,
            "invention" | "datalog-new" => Semantics::Invention,
            "nondet" | "n" => Semantics::Nondet,
            "effect" | "eff" => Semantics::Effect,
            "whilelang" | "while-lang" | "wl" => Semantics::WhileLang,
            _ => return None,
        })
    }
}

impl fmt::Display for Semantics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Semantics::Naive => "naive",
            Semantics::Seminaive => "seminaive",
            Semantics::Stratified => "stratified",
            Semantics::WellFounded => "wellfounded",
            Semantics::Inflationary => "inflationary",
            Semantics::Noninflationary => "noninflationary",
            Semantics::Invention => "invention",
            Semantics::Nondet => "nondet",
            Semantics::Effect => "effect",
            Semantics::WhileLang => "whilelang",
        };
        f.write_str(s)
    }
}

/// Parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub struct Args {
    /// The command: `eval` or `check`.
    pub command: Command,
}

/// Supported subcommands.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Evaluate a program against facts.
    Eval {
        /// Path to the program file.
        program: String,
        /// Path to the facts file (optional; empty input otherwise).
        facts: Option<String>,
        /// Engine.
        semantics: Semantics,
        /// Print only this relation (otherwise: all idb relations).
        output: Option<String>,
        /// Stage budget.
        max_stages: Option<usize>,
        /// Seed for nondeterministic runs.
        seed: u64,
        /// Conflict policy name for Datalog¬¬ (positive | negative |
        /// noop | undefined).
        policy: String,
        /// Print a per-stage evaluation statistics table.
        stats: bool,
        /// Print the per-relation space report (logical byte
        /// breakdown, fattest relations/deltas) after the run.
        memstats: bool,
        /// Write the evaluation trace as JSON lines to this path.
        trace_json: Option<String>,
        /// Worker threads for the semi-naive hot path (None = engine
        /// default, which honors `UNCHAINED_THREADS`).
        threads: Option<usize>,
        /// Driver rows per parallel morsel (None = engine default).
        morsel_size: Option<usize>,
        /// Write a Chrome-trace-event profile (Perfetto-loadable) of
        /// the run's span tree to this path.
        profile: Option<String>,
        /// Write the process metrics registry (Prometheus text format)
        /// to this path after the run.
        metrics: Option<String>,
    },
    /// Parse and analyze a program: language class, edb/idb,
    /// stratification.
    Check {
        /// Path to the program file.
        program: String,
    },
    /// Show each rule's compiled query plan (and its semi-naive delta
    /// variants) without evaluating.
    Plan {
        /// Path to the program file.
        program: String,
        /// Path to the facts file (optional; the catalog that drives
        /// the cost-based join order is empty otherwise).
        facts: Option<String>,
        /// Use the most-bound-first reference ordering instead of the
        /// cost-based one.
        syntactic: bool,
    },
    /// Explain why a fact holds: derivation tree from the provenance
    /// engine.
    Explain {
        /// Path to the program file.
        program: String,
        /// Path to the facts file (optional; empty input otherwise).
        facts: Option<String>,
        /// The goal fact, e.g. `T(1,3)`.
        goal: String,
    },
    /// Validate a Chrome-trace-event JSON profile written by
    /// `--profile` (schema + optionally required span kinds).
    TraceCheck {
        /// Path to the trace JSON file.
        file: String,
        /// Span kinds that must be present (`--expect eval,round,...`).
        expect: Vec<String>,
    },
    /// Drive an incremental maintenance session from an edit script:
    /// compute the initial fixpoint, then apply `+Fact.` / `-Fact.`
    /// batches and re-stabilize at every `poll` line.
    Ivm {
        /// Path to the program file.
        program: String,
        /// Path to the edit script (`+Fact.`, `-Fact.`, `poll` lines).
        edits: String,
        /// Path to the initial facts file (optional; empty otherwise).
        facts: Option<String>,
        /// Print only this relation after the final poll.
        output: Option<String>,
        /// Stage budget per poll.
        max_stages: Option<usize>,
        /// Worker threads for the semi-naive substrate.
        threads: Option<usize>,
        /// Print per-poll maintenance statistics.
        stats: bool,
    },
    /// Interactive session.
    Repl,
    /// Run the benchmark harness (arguments passed through to
    /// `unchained_bench`).
    Bench {
        /// Everything after the `bench` word, verbatim.
        rest: Vec<String>,
    },
    /// Run the differential fuzzer (arguments passed through to
    /// `unchained_fuzz`).
    Fuzz {
        /// Everything after the `fuzz` word, verbatim.
        rest: Vec<String>,
    },
    /// Print usage.
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
unchained — the Datalog engine family of 'Datalog Unchained' (PODS 2021)

USAGE:
  unchained eval --semantics <SEM> <PROGRAM.dl> [FACTS.dl] [options]
  unchained run ...            alias for eval
  unchained check <PROGRAM.dl>
  unchained plan <PROGRAM.dl> [FACTS.dl] [--syntactic]
                               show each rule's compiled query plan and
                               Δ variants; join order is costed from the
                               facts (--syntactic: most-bound-first
                               reference ordering)
  unchained explain <PROGRAM.dl> [FACTS.dl] <FACT>
                               derivation tree for a fact, e.g.
                               `unchained explain tc.dl tc_facts.dl \"T(1,3)\"`
  unchained trace-check <TRACE.json> [--expect k1,k2,…]
                               validate a --profile trace file
  unchained ivm <PROGRAM.dl> <EDITS> [FACTS.dl] [options]
                               incremental maintenance: compute the
                               fixpoint, then replay an edit script of
                               `+Fact.` (insert), `-Fact.` (retract) and
                               `poll` (apply batch, re-stabilize) lines;
                               --stats prints per-poll maintenance work
  unchained repl
  unchained bench [options]     in-repo benchmark harness (BENCH.json);
                               see `unchained bench --help`
  unchained fuzz [options]      deterministic differential fuzzer (FUZZ.json,
                               repro corpus); see `unchained fuzz --help`
  unchained help

SEMANTICS (for --semantics / -s):
  naive | seminaive            positive Datalog (minimum model)
  stratified                   stratified Datalog¬
  wellfounded                  well-founded Datalog¬ (3-valued)
  inflationary                 forward chaining Datalog¬
  noninflationary              Datalog¬¬ (retraction; see --policy)
  invention                    Datalog¬new (value invention)
  nondet                       one nondeterministic run (N-Datalog…)
  effect                       exhaustive eff(P) + poss/cert
  whilelang                    imperative while/fixpoint program
                               (text syntax: R += { x | phi }; while … do … end)

OPTIONS:
  --output <PRED>              print only this relation
  --max-stages <N>             stage / step budget
  --seed <N>                   RNG seed for nondet runs (default 0)
  --policy <P>                 Datalog¬¬ conflict policy:
                               positive (default) | negative | noop | undefined
  --stats                      print per-stage evaluation statistics
                               (delta sizes, rules fired, join work, timing)
  --memstats                   print the space report: per-relation /
                               per-segment logical bytes, fattest relations
                               and rule deltas (identical for every
                               --threads count)
  --trace-json <PATH>          write the evaluation trace as JSON lines
  --threads <N>                worker threads for semi-naive rounds
                               (default 1, or the UNCHAINED_THREADS env var;
                               output is identical for every thread count)
  --morsel-size <N>            driver rows per parallel work morsel
                               (default 2048; output is identical for
                               every value — the knob trades scheduling
                               overhead against load balance)
  --profile <PATH>             write a Chrome-trace-event profile of the run
                               (open in Perfetto / chrome://tracing; one
                               timeline lane per worker with --threads)
  --metrics <PATH>             write process metrics (Prometheus text format)
";

/// Parses a command line (without the binary name).
pub fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut it = argv.iter().peekable();
    let Some(cmd) = it.next() else {
        return Ok(Args {
            command: Command::Help,
        });
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Args {
            command: Command::Help,
        }),
        "repl" => Ok(Args {
            command: Command::Repl,
        }),
        "bench" => Ok(Args {
            command: Command::Bench {
                rest: it.cloned().collect(),
            },
        }),
        "fuzz" => Ok(Args {
            command: Command::Fuzz {
                rest: it.cloned().collect(),
            },
        }),
        "check" => {
            let program = it.next().ok_or("check: missing program file")?.clone();
            Ok(Args {
                command: Command::Check { program },
            })
        }
        "plan" => {
            let mut program = None;
            let mut facts = None;
            let mut syntactic = false;
            for arg in it {
                match arg.as_str() {
                    "--syntactic" => syntactic = true,
                    other if other.starts_with('-') => {
                        return Err(format!("unknown option `{other}`"));
                    }
                    path => {
                        if program.is_none() {
                            program = Some(path.to_string());
                        } else if facts.is_none() {
                            facts = Some(path.to_string());
                        } else {
                            return Err(format!("unexpected argument `{path}`"));
                        }
                    }
                }
            }
            Ok(Args {
                command: Command::Plan {
                    program: program.ok_or("plan: missing program file")?,
                    facts,
                    syntactic,
                },
            })
        }
        "explain" | "why" => {
            let positional: Vec<String> = it.cloned().collect();
            match positional.len() {
                2 => Ok(Args {
                    command: Command::Explain {
                        program: positional[0].clone(),
                        facts: None,
                        goal: positional[1].clone(),
                    },
                }),
                3 => Ok(Args {
                    command: Command::Explain {
                        program: positional[0].clone(),
                        facts: Some(positional[1].clone()),
                        goal: positional[2].clone(),
                    },
                }),
                _ => Err("explain: expected <PROGRAM> [FACTS] <FACT>".to_string()),
            }
        }
        "trace-check" => {
            let mut file = None;
            let mut expect = Vec::new();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--expect" => {
                        let v = it.next().ok_or("--expect needs a value")?;
                        expect.extend(v.split(',').map(|s| s.trim().to_string()));
                    }
                    other if other.starts_with('-') => {
                        return Err(format!("unknown option `{other}`"));
                    }
                    path => {
                        if file.is_none() {
                            file = Some(path.to_string());
                        } else {
                            return Err(format!("unexpected argument `{path}`"));
                        }
                    }
                }
            }
            Ok(Args {
                command: Command::TraceCheck {
                    file: file.ok_or("trace-check: missing trace file")?,
                    expect,
                },
            })
        }
        "ivm" => {
            let mut positional = Vec::new();
            let mut output = None;
            let mut max_stages = None;
            let mut threads = None;
            let mut stats = false;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--output" | "-o" => {
                        output = Some(it.next().ok_or("--output needs a value")?.clone());
                    }
                    "--max-stages" => {
                        let v = it.next().ok_or("--max-stages needs a value")?;
                        max_stages =
                            Some(v.parse().map_err(|_| format!("bad --max-stages `{v}`"))?);
                    }
                    "--threads" => {
                        let v = it.next().ok_or("--threads needs a value")?;
                        let n: usize = v.parse().map_err(|_| format!("bad --threads `{v}`"))?;
                        if n == 0 {
                            return Err("--threads must be at least 1".to_string());
                        }
                        threads = Some(n);
                    }
                    "--stats" => stats = true,
                    other if other.starts_with('-') => {
                        return Err(format!("unknown option `{other}`"));
                    }
                    path => positional.push(path.to_string()),
                }
            }
            if positional.len() < 2 || positional.len() > 3 {
                return Err("ivm: expected <PROGRAM> <EDITS> [FACTS]".to_string());
            }
            Ok(Args {
                command: Command::Ivm {
                    program: positional[0].clone(),
                    edits: positional[1].clone(),
                    facts: positional.get(2).cloned(),
                    output,
                    max_stages,
                    threads,
                    stats,
                },
            })
        }
        "eval" | "run" => {
            let mut program = None;
            let mut facts = None;
            let mut semantics = None;
            let mut output = None;
            let mut max_stages = None;
            let mut seed = 0u64;
            let mut policy = "positive".to_string();
            let mut stats = false;
            let mut memstats = false;
            let mut trace_json = None;
            let mut threads = None;
            let mut morsel_size = None;
            let mut profile = None;
            let mut metrics = None;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--semantics" | "-s" => {
                        let v = it.next().ok_or("--semantics needs a value")?;
                        semantics = Some(
                            Semantics::parse(v)
                                .ok_or_else(|| format!("unknown semantics `{v}`"))?,
                        );
                    }
                    "--output" | "-o" => {
                        output = Some(it.next().ok_or("--output needs a value")?.clone());
                    }
                    "--max-stages" => {
                        let v = it.next().ok_or("--max-stages needs a value")?;
                        max_stages =
                            Some(v.parse().map_err(|_| format!("bad --max-stages `{v}`"))?);
                    }
                    "--seed" => {
                        let v = it.next().ok_or("--seed needs a value")?;
                        seed = v.parse().map_err(|_| format!("bad --seed `{v}`"))?;
                    }
                    "--policy" => {
                        policy = it.next().ok_or("--policy needs a value")?.clone();
                    }
                    "--stats" => {
                        stats = true;
                    }
                    "--memstats" => {
                        memstats = true;
                    }
                    "--trace-json" => {
                        trace_json = Some(it.next().ok_or("--trace-json needs a path")?.clone());
                    }
                    "--profile" => {
                        profile = Some(it.next().ok_or("--profile needs a path")?.clone());
                    }
                    "--metrics" => {
                        metrics = Some(it.next().ok_or("--metrics needs a path")?.clone());
                    }
                    "--threads" => {
                        let v = it.next().ok_or("--threads needs a value")?;
                        let n: usize = v.parse().map_err(|_| format!("bad --threads `{v}`"))?;
                        if n == 0 {
                            return Err("--threads must be at least 1".to_string());
                        }
                        threads = Some(n);
                    }
                    "--morsel-size" => {
                        let v = it.next().ok_or("--morsel-size needs a value")?;
                        let n: usize = v.parse().map_err(|_| format!("bad --morsel-size `{v}`"))?;
                        if n == 0 {
                            return Err("--morsel-size must be at least 1".to_string());
                        }
                        morsel_size = Some(n);
                    }
                    other if other.starts_with('-') => {
                        return Err(format!("unknown option `{other}`"));
                    }
                    path => {
                        if program.is_none() {
                            program = Some(path.to_string());
                        } else if facts.is_none() {
                            facts = Some(path.to_string());
                        } else {
                            return Err(format!("unexpected argument `{path}`"));
                        }
                    }
                }
            }
            Ok(Args {
                command: Command::Eval {
                    program: program.ok_or("eval: missing program file")?,
                    facts,
                    semantics: semantics.ok_or("eval: missing --semantics")?,
                    output,
                    max_stages,
                    seed,
                    policy,
                    stats,
                    memstats,
                    trace_json,
                    threads,
                    morsel_size,
                    profile,
                    metrics,
                },
            })
        }
        other => Err(format!("unknown command `{other}` (try `unchained help`)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_eval() {
        let args = parse_args(&argv(
            "eval --semantics inflationary prog.dl facts.dl --output T --max-stages 10",
        ))
        .unwrap();
        let Command::Eval {
            program,
            facts,
            semantics,
            output,
            max_stages,
            ..
        } = args.command
        else {
            panic!("expected eval");
        };
        assert_eq!(program, "prog.dl");
        assert_eq!(facts.as_deref(), Some("facts.dl"));
        assert_eq!(semantics, Semantics::Inflationary);
        assert_eq!(output.as_deref(), Some("T"));
        assert_eq!(max_stages, Some(10));
    }

    #[test]
    fn run_alias_and_observability_flags() {
        let args = parse_args(&argv(
            "run --semantics seminaive prog.dl --stats --trace-json out.jsonl",
        ))
        .unwrap();
        let Command::Eval {
            program,
            stats,
            trace_json,
            ..
        } = args.command
        else {
            panic!("expected eval");
        };
        assert_eq!(program, "prog.dl");
        assert!(stats);
        assert_eq!(trace_json.as_deref(), Some("out.jsonl"));
        // Flags default off.
        let args = parse_args(&argv("eval -s naive p.dl")).unwrap();
        let Command::Eval {
            stats, trace_json, ..
        } = args.command
        else {
            panic!("expected eval");
        };
        assert!(!stats);
        assert!(trace_json.is_none());
        assert!(parse_args(&argv("eval -s naive p.dl --trace-json")).is_err());
    }

    #[test]
    fn parse_memstats_flag() {
        let args = parse_args(&argv("run -s seminaive p.dl --memstats")).unwrap();
        let Command::Eval { memstats, .. } = args.command else {
            panic!("expected eval");
        };
        assert!(memstats);
        let args = parse_args(&argv("eval -s naive p.dl")).unwrap();
        let Command::Eval { memstats, .. } = args.command else {
            panic!("expected eval");
        };
        assert!(!memstats);
    }

    #[test]
    fn parse_threads_flag() {
        let args = parse_args(&argv("eval -s seminaive p.dl --threads 4")).unwrap();
        let Command::Eval { threads, .. } = args.command else {
            panic!("expected eval");
        };
        assert_eq!(threads, Some(4));
        // Default is None (engine default / UNCHAINED_THREADS).
        let args = parse_args(&argv("eval -s seminaive p.dl")).unwrap();
        let Command::Eval { threads, .. } = args.command else {
            panic!("expected eval");
        };
        assert_eq!(threads, None);
        assert!(parse_args(&argv("eval -s seminaive p.dl --threads 0")).is_err());
        assert!(parse_args(&argv("eval -s seminaive p.dl --threads nope")).is_err());
        assert!(parse_args(&argv("eval -s seminaive p.dl --threads")).is_err());
    }

    #[test]
    fn parse_morsel_size_flag() {
        let args = parse_args(&argv("eval -s seminaive p.dl --morsel-size 128")).unwrap();
        let Command::Eval { morsel_size, .. } = args.command else {
            panic!("expected eval");
        };
        assert_eq!(morsel_size, Some(128));
        let args = parse_args(&argv("eval -s seminaive p.dl")).unwrap();
        let Command::Eval { morsel_size, .. } = args.command else {
            panic!("expected eval");
        };
        assert_eq!(morsel_size, None);
        assert!(parse_args(&argv("eval -s seminaive p.dl --morsel-size 0")).is_err());
        assert!(parse_args(&argv("eval -s seminaive p.dl --morsel-size nope")).is_err());
        assert!(parse_args(&argv("eval -s seminaive p.dl --morsel-size")).is_err());
    }

    #[test]
    fn parse_profile_and_metrics_flags() {
        let args = parse_args(&argv(
            "run -s seminaive p.dl --profile out.trace.json --metrics out.prom",
        ))
        .unwrap();
        let Command::Eval {
            profile, metrics, ..
        } = args.command
        else {
            panic!("expected eval");
        };
        assert_eq!(profile.as_deref(), Some("out.trace.json"));
        assert_eq!(metrics.as_deref(), Some("out.prom"));
        // Default off; a bare flag is an error.
        let args = parse_args(&argv("eval -s naive p.dl")).unwrap();
        let Command::Eval {
            profile, metrics, ..
        } = args.command
        else {
            panic!("expected eval");
        };
        assert!(profile.is_none() && metrics.is_none());
        assert!(parse_args(&argv("eval -s naive p.dl --profile")).is_err());
    }

    #[test]
    fn parse_explain() {
        assert_eq!(
            parse_args(&argv("explain p.dl f.dl T(1,3)"))
                .unwrap()
                .command,
            Command::Explain {
                program: "p.dl".into(),
                facts: Some("f.dl".into()),
                goal: "T(1,3)".into(),
            }
        );
        assert_eq!(
            parse_args(&argv("why p.dl T(1,3)")).unwrap().command,
            Command::Explain {
                program: "p.dl".into(),
                facts: None,
                goal: "T(1,3)".into(),
            }
        );
        assert!(parse_args(&argv("explain p.dl")).is_err());
    }

    #[test]
    fn parse_trace_check() {
        assert_eq!(
            parse_args(&argv("trace-check out.json --expect eval,round,rule"))
                .unwrap()
                .command,
            Command::TraceCheck {
                file: "out.json".into(),
                expect: vec!["eval".into(), "round".into(), "rule".into()],
            }
        );
        assert_eq!(
            parse_args(&argv("trace-check out.json")).unwrap().command,
            Command::TraceCheck {
                file: "out.json".into(),
                expect: vec![],
            }
        );
        assert!(parse_args(&argv("trace-check")).is_err());
    }

    #[test]
    fn parse_plan() {
        assert_eq!(
            parse_args(&argv("plan p.dl f.dl")).unwrap().command,
            Command::Plan {
                program: "p.dl".into(),
                facts: Some("f.dl".into()),
                syntactic: false,
            }
        );
        assert_eq!(
            parse_args(&argv("plan p.dl --syntactic")).unwrap().command,
            Command::Plan {
                program: "p.dl".into(),
                facts: None,
                syntactic: true,
            }
        );
        assert!(parse_args(&argv("plan")).is_err());
        assert!(parse_args(&argv("plan p.dl --bogus")).is_err());
        assert!(parse_args(&argv("plan a b c")).is_err());
    }

    #[test]
    fn parse_check_and_help() {
        assert_eq!(
            parse_args(&argv("check p.dl")).unwrap().command,
            Command::Check {
                program: "p.dl".into()
            }
        );
        assert_eq!(parse_args(&argv("help")).unwrap().command, Command::Help);
        assert_eq!(parse_args(&[]).unwrap().command, Command::Help);
    }

    #[test]
    fn parse_ivm() {
        let args = parse_args(&argv(
            "ivm tc.dl edits.txt facts.dl --stats --threads 4 --output T",
        ))
        .unwrap();
        assert_eq!(
            args.command,
            Command::Ivm {
                program: "tc.dl".into(),
                edits: "edits.txt".into(),
                facts: Some("facts.dl".into()),
                output: Some("T".into()),
                max_stages: None,
                threads: Some(4),
                stats: true,
            }
        );
        let args = parse_args(&argv("ivm tc.dl edits.txt")).unwrap();
        let Command::Ivm { facts, stats, .. } = args.command else {
            panic!("expected ivm");
        };
        assert!(facts.is_none() && !stats);
        assert!(parse_args(&argv("ivm tc.dl")).is_err());
        assert!(parse_args(&argv("ivm a b c d")).is_err());
        assert!(parse_args(&argv("ivm a b --threads 0")).is_err());
        assert!(parse_args(&argv("ivm a b --bogus")).is_err());
    }

    #[test]
    fn parse_bench_passthrough() {
        let args = parse_args(&argv("bench --quick --filter chain")).unwrap();
        assert_eq!(
            args.command,
            Command::Bench {
                rest: argv("--quick --filter chain")
            }
        );
        assert_eq!(
            parse_args(&argv("bench")).unwrap().command,
            Command::Bench { rest: vec![] }
        );
    }

    #[test]
    fn errors() {
        assert!(parse_args(&argv("eval prog.dl")).is_err()); // no semantics
        assert!(parse_args(&argv("eval --semantics bogus p.dl")).is_err());
        assert!(parse_args(&argv("frobnicate")).is_err());
        assert!(parse_args(&argv("eval -s naive a b c")).is_err());
    }

    #[test]
    fn all_semantics_names_parse() {
        for name in [
            "naive",
            "seminaive",
            "stratified",
            "wellfounded",
            "inflationary",
            "noninflationary",
            "invention",
            "nondet",
            "effect",
            "whilelang",
        ] {
            assert!(Semantics::parse(name).is_some(), "{name}");
        }
    }
}

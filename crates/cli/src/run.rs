//! Command execution: load, evaluate, render.

use crate::args::{Command, Semantics};
use unchained_common::{
    hottest_rules, to_chrome_json, validate_chrome_trace, Instance, Interner, SpaceReport,
    Telemetry, Tracer, Tuple, TIME_BUCKETS,
};
use unchained_core::{
    inflationary, invention, naive, noninflationary, provenance, seminaive, stratified,
    wellfounded, EvalOptions, IncrementalSession,
};
use unchained_nondet::{effect, poss_cert, EffOptions, NondetProgram, RandomChooser};
use unchained_parser::{
    classify, parse_facts, parse_program, DependencyGraph, HeadLiteral, Program, Term,
};
use unchained_while::parse_while_program;

/// The outcome of a command: the text to print plus any side-channel
/// payloads (`--trace-json`, `--profile`, `--metrics`) for the caller
/// to write to the requested paths (this module stays I/O-free).
#[derive(Clone, Debug)]
pub struct ExecOutput {
    /// The text to print to stdout.
    pub text: String,
    /// JSON-lines trace content, when `--trace-json` was given.
    pub trace_json: Option<String>,
    /// Chrome-trace-event profile JSON, when `--profile` was given.
    pub profile_json: Option<String>,
    /// Prometheus text exposition, when `--metrics` was given.
    pub metrics_text: Option<String>,
}

/// Executes a parsed command against file contents already read by the
/// caller (keeping this function I/O-free and testable). Returns the
/// text to print.
pub fn execute(
    command: &Command,
    program_text: &str,
    facts_text: Option<&str>,
) -> Result<String, String> {
    execute_full(command, program_text, facts_text).map(|o| o.text)
}

/// Like [`execute`], but also returns the JSON-lines trace when the
/// command asked for one, and appends the `--stats` table to the text.
pub fn execute_full(
    command: &Command,
    program_text: &str,
    facts_text: Option<&str>,
) -> Result<ExecOutput, String> {
    let plain = |text: String| ExecOutput {
        text,
        trace_json: None,
        profile_json: None,
        metrics_text: None,
    };
    match command {
        Command::Help => Ok(plain(crate::args::USAGE.to_string())),
        Command::Repl => Ok(plain(
            "(interactive mode: run the `unchained` binary with `repl`)".into(),
        )),
        Command::Bench { .. } => Ok(plain(
            "(benchmark mode: run the `unchained` binary with `bench`)".into(),
        )),
        Command::Fuzz { .. } => Ok(plain(
            "(fuzzing mode: run the `unchained` binary with `fuzz`)".into(),
        )),
        Command::Ivm { .. } => Ok(plain(
            "(incremental mode: run the `unchained` binary with `ivm`)".into(),
        )),
        Command::Check { .. } => {
            let mut interner = Interner::new();
            let program = parse_program(program_text, &mut interner).map_err(|e| e.to_string())?;
            Ok(plain(render_check(&program, &interner)))
        }
        Command::Plan { syntactic, .. } => {
            let mut interner = Interner::new();
            let program = parse_program(program_text, &mut interner).map_err(|e| e.to_string())?;
            let input = match facts_text {
                Some(text) => parse_facts(text, &mut interner).map_err(|e| e.to_string())?,
                None => Instance::new(),
            };
            Ok(plain(render_plans(&program, &input, *syntactic, &interner)))
        }
        Command::Eval {
            semantics,
            output,
            max_stages,
            seed,
            policy,
            stats,
            memstats,
            trace_json,
            threads,
            morsel_size,
            profile,
            metrics,
            ..
        } => {
            let mut interner = Interner::new();
            let want_trace = *stats || *memstats || trace_json.is_some();
            let mut tel = if want_trace {
                Telemetry::enabled()
            } else {
                Telemetry::off()
            };
            if profile.is_some() {
                tel = tel.with_tracer(Tracer::enabled());
            }
            let wall = std::time::Instant::now();
            // Rendered space report plus its relation-bytes gauge,
            // captured before the answer is rendered away.
            let mut space: Option<(String, u64)> = None;
            let evaluated = if *semantics == Semantics::WhileLang {
                eval_while(
                    program_text,
                    facts_text,
                    output.as_deref(),
                    *max_stages,
                    *seed,
                    &mut interner,
                    tel.clone(),
                )
            } else {
                let program =
                    parse_program(program_text, &mut interner).map_err(|e| e.to_string())?;
                let input = match facts_text {
                    Some(text) => parse_facts(text, &mut interner).map_err(|e| e.to_string())?,
                    None => Instance::new(),
                };
                let mut options = EvalOptions::default().with_telemetry(tel.clone());
                if let Some(m) = max_stages {
                    options = options.with_max_stages(*m);
                }
                if let Some(n) = threads {
                    options = options.with_threads(*n);
                }
                if let Some(n) = morsel_size {
                    options = options.with_morsel_size(*n);
                }
                evaluate(
                    *semantics,
                    &program,
                    &input,
                    options,
                    *seed,
                    policy,
                    &mut interner,
                )
                .map(|answer| {
                    if *memstats {
                        space = Some(render_memstats(&answer, &interner));
                    }
                    render_answer(&answer, output.as_deref(), &program, &interner)
                })
            };
            tel.with(|t| t.interner_symbols = interner.len());
            // Process-wide metrics: every run counts, errors separately.
            let engine = semantics.to_string();
            let registry = unchained_common::metrics();
            registry.counter_add("unchained_eval_runs_total", &[("engine", &engine)], 1);
            registry.histogram_observe(
                "unchained_eval_wall_seconds",
                &[("engine", &engine)],
                wall.elapsed().as_secs_f64(),
                &TIME_BUCKETS,
            );
            match evaluated {
                Ok(mut text) => {
                    if *stats {
                        if let Some(trace) = tel.snapshot() {
                            text.push_str(&trace.render_table(&interner));
                        }
                    }
                    if *memstats {
                        if let Some((report, relation_bytes)) = &space {
                            text.push_str(report);
                            registry.gauge_set(
                                "unchained_relation_bytes",
                                &[("engine", &engine)],
                                *relation_bytes as f64,
                            );
                        }
                        if let Some(trace) = tel.snapshot() {
                            text.push_str(&trace.fattest_deltas(&interner, 8));
                            registry.gauge_set(
                                "unchained_peak_bytes",
                                &[("engine", &engine)],
                                trace.bytes_peak as f64,
                            );
                            let delta_tuples: usize = trace
                                .stages
                                .iter()
                                .flat_map(|s| s.delta.iter().map(|(_, n)| n))
                                .sum();
                            registry.gauge_set(
                                "unchained_delta_tuples",
                                &[("engine", &engine)],
                                delta_tuples as f64,
                            );
                        }
                    }
                    let json = match trace_json {
                        Some(_) => tel.snapshot().map(|t| t.to_json_lines(&interner)),
                        None => None,
                    };
                    let profile_json = profile.as_ref().map(|_| {
                        let roots = tel.tracer().finish();
                        registry.gauge_set(
                            "unchained_trace_spans",
                            &[("engine", &engine)],
                            span_count(&roots) as f64,
                        );
                        text.push_str(&hottest_rules(&roots, &interner, 10));
                        to_chrome_json(&roots, &interner)
                    });
                    let metrics_text = metrics.as_ref().map(|_| registry.render());
                    Ok(ExecOutput {
                        text,
                        trace_json: json,
                        profile_json,
                        metrics_text,
                    })
                }
                Err(mut message) => {
                    registry.counter_add("unchained_eval_errors_total", &[("engine", &engine)], 1);
                    // Engines finish their trace even on divergence or
                    // budget errors; surface it with the failure.
                    if *stats {
                        if let Some(trace) = tel.snapshot() {
                            if !trace.stages.is_empty() {
                                message.push('\n');
                                message.push_str(&trace.render_table(&interner));
                            }
                        }
                    }
                    Err(message)
                }
            }
        }
        Command::Explain { goal, .. } => {
            let mut interner = Interner::new();
            let program = parse_program(program_text, &mut interner).map_err(|e| e.to_string())?;
            let input = match facts_text {
                Some(text) => parse_facts(text, &mut interner).map_err(|e| e.to_string())?,
                None => Instance::new(),
            };
            let (pred, tuple) = parse_goal_fact(goal, &mut interner)?;
            let run =
                provenance::minimum_model_with_provenance(&program, &input, EvalOptions::default())
                    .map_err(|e| format!("{e} (explain requires pure Datalog)"))?;
            Ok(plain(provenance::explain(&run, pred, &tuple, &interner)))
        }
        Command::TraceCheck { expect, .. } => {
            let kinds: Vec<&str> = expect.iter().map(String::as_str).collect();
            let mut summary = validate_chrome_trace(program_text, &kinds)?;
            if !summary.ends_with('\n') {
                summary.push('\n');
            }
            Ok(plain(summary))
        }
    }
}

/// Parses a ground goal fact like `T(1,3)` into its predicate and tuple.
fn parse_goal_fact(
    goal: &str,
    interner: &mut Interner,
) -> Result<(unchained_common::Symbol, Tuple), String> {
    parse_ground_fact(goal, "explain", interner)
}

/// Parses a ground fact like `T(1,3)` into its predicate and tuple;
/// `context` names the caller (`explain` goals, `ivm` edits) in errors.
fn parse_ground_fact(
    text: &str,
    context: &str,
    interner: &mut Interner,
) -> Result<(unchained_common::Symbol, Tuple), String> {
    let text = text.trim().trim_end_matches('.');
    let parsed = parse_program(&format!("{text}."), interner).map_err(|e| e.to_string())?;
    let atom = parsed
        .rules
        .first()
        .filter(|r| r.body.is_empty() && r.head.len() == 1)
        .and_then(|r| r.head.first())
        .and_then(HeadLiteral::atom)
        .ok_or_else(|| format!("{context}: `{text}` is not a single fact"))?;
    let mut values = Vec::new();
    for term in &atom.args {
        match term {
            Term::Const(v) => values.push(*v),
            Term::Var(_) => return Err(format!("{context} needs a ground fact")),
        }
    }
    Ok((atom.pred, Tuple::from(values)))
}

/// Runs an edit script against an [`IncrementalSession`] and renders the
/// maintained answer (the `unchained ivm` batch driver).
///
/// Script syntax, one directive per line: `+Fact.` queues an insert,
/// `-Fact.` queues a retract, `poll` applies everything queued.
/// `%`-comments and blank lines are skipped. Edits still pending at
/// end-of-script are applied by one final implicit poll, so a script
/// with no `poll` lines still maintains the answer.
pub fn execute_ivm(
    program_text: &str,
    facts_text: Option<&str>,
    edits_text: &str,
    output: Option<&str>,
    max_stages: Option<usize>,
    threads: Option<usize>,
    stats: bool,
) -> Result<String, String> {
    use std::fmt::Write as _;
    let mut interner = Interner::new();
    let program = parse_program(program_text, &mut interner).map_err(|e| e.to_string())?;
    let input = match facts_text {
        Some(text) => parse_facts(text, &mut interner).map_err(|e| e.to_string())?,
        None => Instance::new(),
    };
    let mut options = EvalOptions::default();
    if let Some(max) = max_stages {
        options = options.with_max_stages(max);
    }
    if let Some(threads) = threads {
        options = options.with_threads(threads);
    }
    let mut session =
        IncrementalSession::new(program, &input, options).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let mut polls = 0usize;
    let mut poll = |session: &mut IncrementalSession, out: &mut String| -> Result<(), String> {
        let st = session.poll().map_err(|e| e.to_string())?;
        polls += 1;
        let _ = write!(
            out,
            "% poll {polls}: applied {} edit(s): +{} \u{2212}{} facts",
            st.applied, st.facts_added, st.facts_removed
        );
        if stats {
            let _ = write!(
                out,
                " (overdeleted {}, rederived {}, strata {} skipped / {} recomputed, \
                 {} rules fired)",
                st.overdeleted,
                st.rederived,
                st.strata_skipped,
                st.strata_recomputed,
                st.rules_fired
            );
        }
        out.push('\n');
        Ok(())
    };
    for (idx, raw) in edits_text.lines().enumerate() {
        let line = raw.split('%').next().unwrap_or("").trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = idx + 1;
        let located = |msg: String| format!("edit script line {lineno}: {msg}");
        if line == "poll" || line == ".poll" {
            poll(&mut session, &mut out).map_err(located)?;
            continue;
        }
        let (insert, fact) = if let Some(rest) = line.strip_prefix('+') {
            (true, rest)
        } else if let Some(rest) = line.strip_prefix('-') {
            (false, rest)
        } else {
            return Err(located(format!(
                "expected `+Fact.`, `-Fact.`, or `poll`, got `{line}`"
            )));
        };
        let (pred, tuple) = parse_ground_fact(fact, "edit", &mut interner).map_err(located)?;
        let queued = if insert {
            session.insert(pred, tuple)
        } else {
            session.retract(pred, tuple)
        };
        queued.map_err(|e| located(e.to_string()))?;
    }
    if session.pending_edits() > 0 {
        poll(&mut session, &mut out)?;
    }
    out.push_str(&render_instance(
        session.instance(),
        output,
        session.program(),
        &interner,
    ));
    Ok(out)
}

/// Total number of spans in a forest (for the `unchained_trace_spans`
/// gauge).
fn span_count(roots: &[unchained_common::Span]) -> usize {
    roots.iter().map(|s| 1 + span_count(&s.children)).sum()
}

/// Renders the `--memstats` space report for an answer and returns it
/// with its relation-bytes total (the `unchained_relation_bytes` gauge).
/// Three-valued answers report on the true facts, effect enumerations
/// on the possibility instance.
fn render_memstats(answer: &Answer, interner: &Interner) -> (String, u64) {
    let instance = match answer {
        Answer::Instance(instance, _) => instance,
        Answer::ThreeValued(model) => &model.true_facts,
        Answer::Effects { poss, .. } => poss,
    };
    let report = SpaceReport::for_instance(instance, interner);
    let mut out = report.render();
    out.push_str(&report.fattest_relations(8));
    (out, report.relation_bytes())
}

/// Evaluates a while-language program file.
#[allow(clippy::too_many_arguments)]
fn eval_while(
    program_text: &str,
    facts_text: Option<&str>,
    output: Option<&str>,
    max_stages: Option<usize>,
    seed: u64,
    interner: &mut Interner,
    telemetry: Telemetry,
) -> Result<String, String> {
    use std::fmt::Write as _;
    let (program, _) = parse_while_program(program_text, interner).map_err(|e| e.to_string())?;
    let input = match facts_text {
        Some(text) => parse_facts(text, interner).map_err(|e| e.to_string())?,
        None => Instance::new(),
    };
    let max = max_stages.unwrap_or(1_000_000);
    // Deterministic seeded LCG drives the witness operator if present.
    let mut state = seed
        .wrapping_mul(2862933555777941757)
        .wrapping_add(3037000493);
    let mut chooser = move |n: usize| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as usize) % n
    };
    let needs_chooser = program.has_witness();
    let result = if needs_chooser {
        unchained_while::run_traced(&program, &input, max, Some(&mut chooser), telemetry)
    } else {
        unchained_while::run_traced(&program, &input, max, None, telemetry)
    }
    .map_err(|e| e.to_string())?;
    let assigned = program.assigned();
    let shown = match output {
        Some(name) => match interner.get(name) {
            Some(sym) => result.instance.project_schema([sym]),
            None => Instance::new(),
        },
        None => result.instance.project_schema(assigned),
    };
    let mut out = shown.display(interner).to_string();
    let _ = writeln!(out, "% iterations: {}", result.iterations);
    Ok(out)
}

/// Renders every rule's compiled plan (and its semi-naive Δ variants)
/// without evaluating: the same [`Planner`] call the engines make, so
/// what prints is exactly what would run. The catalog comes from the
/// facts file (empty without one, which degenerates cost ordering to
/// most-bound-first).
fn render_plans(
    program: &Program,
    input: &Instance,
    syntactic: bool,
    interner: &Interner,
) -> String {
    use std::fmt::Write as _;
    use unchained_core::planner::{Catalog, Planner};
    let mode = if syntactic {
        unchained_core::PlanMode::Syntactic
    } else {
        unchained_core::PlanMode::Cost
    };
    let catalog = Catalog::from_instance(input);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "% mode: {}  catalog: {} fact(s)",
        if syntactic { "syntactic" } else { "cost" },
        catalog.total()
    );
    let mut planner = Planner::new(catalog, mode);
    let idb: unchained_common::FxHashSet<unchained_common::Symbol> =
        program.idb().into_iter().collect();
    planner.inflate(idb.iter().copied());
    // Plan the whole program before rendering so the sharing gauges
    // reflect cross-rule arena hits.
    let plans: Vec<_> = program
        .rules
        .iter()
        .map(|r| {
            (
                planner.plan_rule(r),
                planner.seminaive_variants(r, &|p| idb.contains(&p)),
            )
        })
        .collect();
    for (i, (rule, (full, deltas))) in program.rules.iter().zip(&plans).enumerate() {
        let _ = writeln!(out, "rule {}: {}.", i + 1, rule.display(interner));
        for line in planner.arena().render(full.root, interner).lines() {
            let _ = writeln!(out, "  {line}");
        }
        for delta in deltas {
            let _ = writeln!(out, "  Δ variant:");
            for line in planner.arena().render(delta.root, interner).lines() {
                let _ = writeln!(out, "    {line}");
            }
        }
    }
    let stats = planner.stats();
    let _ = writeln!(
        out,
        "% planner: {} join(s) pruned to index probes, {} subplan(s) shared, {} arena node(s)",
        stats.joins_pruned,
        stats.subplans_shared,
        planner.arena().node_count()
    );
    out
}

fn render_check(program: &Program, interner: &Interner) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let names = |syms: Vec<unchained_common::Symbol>| {
        syms.iter()
            .map(|&s| interner.name(s).to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    let _ = writeln!(out, "rules:    {}", program.rules.len());
    let _ = writeln!(out, "language: {}", classify(program));
    let _ = writeln!(out, "edb:      {}", names(program.edb()));
    let _ = writeln!(out, "idb:      {}", names(program.idb()));
    match DependencyGraph::build(program).stratify() {
        Ok(strat) => {
            let _ = writeln!(out, "strata:   {}", strat.strata_count());
        }
        Err(e) => {
            let _ = writeln!(out, "strata:   not stratifiable ({e})");
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn evaluate(
    semantics: Semantics,
    program: &Program,
    input: &Instance,
    options: EvalOptions,
    seed: u64,
    policy: &str,
    interner: &mut Interner,
) -> Result<Answer, String> {
    match semantics {
        Semantics::Naive => naive::minimum_model(program, input, options)
            .map(|r| Answer::Instance(r.instance, r.stages))
            .map_err(|e| e.to_string()),
        Semantics::Seminaive => seminaive::minimum_model(program, input, options)
            .map(|r| Answer::Instance(r.instance, r.stages))
            .map_err(|e| e.to_string()),
        Semantics::Stratified => stratified::eval(program, input, options)
            .map(|r| Answer::Instance(r.instance, r.stages))
            .map_err(|e| e.to_string()),
        Semantics::WellFounded => wellfounded::eval(program, input, options)
            .map(Answer::ThreeValued)
            .map_err(|e| e.to_string()),
        Semantics::Inflationary => inflationary::eval(program, input, options)
            .map(|r| Answer::Instance(r.instance, r.stages))
            .map_err(|e| e.to_string()),
        Semantics::Noninflationary => {
            let policy = match policy {
                "positive" => noninflationary::ConflictPolicy::PreferPositive,
                "negative" => noninflationary::ConflictPolicy::PreferNegative,
                "noop" => noninflationary::ConflictPolicy::NoOp,
                "undefined" => noninflationary::ConflictPolicy::Undefined,
                other => return Err(format!("unknown conflict policy `{other}`")),
            };
            noninflationary::eval(program, input, policy, options)
                .map(|r| Answer::Instance(r.instance, r.stages))
                .map_err(|e| e.to_string())
        }
        Semantics::Invention => invention::eval(program, input, options)
            .map(|r| {
                let stages = r.stages;
                Answer::Instance(r.instance, stages)
            })
            .map_err(|e| e.to_string()),
        Semantics::Nondet => {
            let compiled = NondetProgram::compile(program, true).map_err(|e| e.to_string())?;
            let mut chooser = RandomChooser::seeded(seed);
            unchained_nondet::run_once(&compiled, input, &mut chooser, options)
                .map(|r| Answer::Instance(r.instance, r.steps))
                .map_err(|e| e.to_string())
        }
        Semantics::WhileLang => {
            unreachable!("WhileLang is handled before Datalog parsing in execute()")
        }
        Semantics::Effect => {
            let compiled = NondetProgram::compile(program, true).map_err(|e| e.to_string())?;
            let effects =
                effect(&compiled, input, EffOptions::default()).map_err(|e| e.to_string())?;
            let pc =
                poss_cert(&compiled, input, EffOptions::default()).map_err(|e| e.to_string())?;
            let _ = interner; // symbols already interned during parse
            Ok(Answer::Effects {
                effects,
                poss: pc.poss,
                cert: pc.cert,
            })
        }
    }
}

enum Answer {
    Instance(Instance, usize),
    ThreeValued(wellfounded::WellFoundedModel),
    Effects {
        effects: Vec<Instance>,
        poss: Instance,
        cert: Instance,
    },
}

fn render_instance(
    instance: &Instance,
    output: Option<&str>,
    program: &Program,
    interner: &Interner,
) -> String {
    match output {
        Some(name) => match interner.get(name) {
            Some(sym) => instance.project_schema([sym]).display(interner).to_string(),
            None => String::new(),
        },
        None => instance
            .project_schema(program.idb())
            .display(interner)
            .to_string(),
    }
}

fn render_answer(
    answer: &Answer,
    output: Option<&str>,
    program: &Program,
    interner: &Interner,
) -> String {
    use std::fmt::Write as _;
    match answer {
        Answer::Instance(instance, stages) => {
            let mut out = render_instance(instance, output, program, interner);
            let _ = writeln!(out, "% stages: {stages}");
            out
        }
        Answer::ThreeValued(model) => {
            let mut out = String::new();
            let _ = writeln!(out, "% true facts:");
            out.push_str(&render_instance(
                &model.true_facts,
                output,
                program,
                interner,
            ));
            let _ = writeln!(out, "% unknown facts:");
            for (pred, tuple) in model.unknown_facts() {
                if output.is_some_and(|o| interner.get(o) != Some(pred)) {
                    continue;
                }
                if tuple.arity() == 0 {
                    let _ = writeln!(out, "{}", interner.name(pred));
                } else {
                    let _ = writeln!(out, "{}{}", interner.name(pred), tuple.display(interner));
                }
            }
            let _ = writeln!(out, "% rounds: {}", model.rounds);
            out
        }
        Answer::Effects {
            effects,
            poss,
            cert,
        } => {
            let mut out = String::new();
            let _ = writeln!(out, "% {} terminal instance(s)", effects.len());
            for (i, e) in effects.iter().enumerate() {
                let _ = writeln!(out, "% effect #{i}:");
                out.push_str(&render_instance(e, output, program, interner));
            }
            let _ = writeln!(out, "% poss:");
            out.push_str(&render_instance(poss, output, program, interner));
            let _ = writeln!(out, "% cert:");
            out.push_str(&render_instance(cert, output, program, interner));
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::{parse_args, Command};

    fn eval_cmd(sem: &str) -> Command {
        let argv: Vec<String> = format!("eval --semantics {sem} p.dl f.dl")
            .split_whitespace()
            .map(String::from)
            .collect();
        parse_args(&argv).unwrap().command
    }

    #[test]
    fn end_to_end_seminaive() {
        let out = execute(
            &eval_cmd("seminaive"),
            "T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).",
            Some("G(1,2). G(2,3)."),
        )
        .unwrap();
        assert!(out.contains("T(1, 3)"));
        assert!(out.contains("% stages:"));
    }

    const TC: &str = "T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).";

    #[test]
    fn ivm_script_polls_and_renders_maintained_answer() {
        let script = "\
% grow the chain, then cut it
+G(3,4).
poll
-G(1,2).   % severs 1 from the rest
poll
+G(4,5).   % left pending: the implicit final poll applies it
";
        let out = execute_ivm(TC, Some("G(1,2). G(2,3)."), script, None, None, None, true).unwrap();
        assert!(out.contains("% poll 1: applied 1 edit(s): +"), "{out}");
        assert!(out.contains("% poll 2:"), "{out}");
        assert!(out.contains("% poll 3:"), "{out}");
        assert!(out.contains("overdeleted"), "{out}");
        // After -G(1,2): no path from 1; after +G(3,4), +G(4,5): 2..5 chain.
        assert!(!out.contains("T(1, 2)"), "{out}");
        assert!(out.contains("T(2, 5)"), "{out}");
    }

    #[test]
    fn ivm_script_errors_carry_line_numbers() {
        let err =
            execute_ivm(TC, None, "+G(1,2).\nG(2,3).\n", None, None, None, false).unwrap_err();
        assert!(err.contains("edit script line 2"), "{err}");
        assert!(err.contains("expected `+Fact.`"), "{err}");
        // Edits must target edb relations, located to their line.
        let err = execute_ivm(TC, None, "\n+T(1,2).\n", None, None, None, false).unwrap_err();
        assert!(err.contains("edit script line 2"), "{err}");
        // A non-ground edit names the ivm context, not `explain`.
        let err = execute_ivm(TC, None, "-G(x,1).", None, None, None, false).unwrap_err();
        assert!(err.contains("edit needs a ground fact"), "{err}");
    }

    #[test]
    fn ivm_output_filter_projects_one_relation() {
        let out = execute_ivm(
            TC,
            Some("G(1,2)."),
            "+G(2,3).",
            Some("T"),
            None,
            None,
            false,
        )
        .unwrap();
        assert!(out.contains("T(1, 3)"), "{out}");
        assert!(!out.contains("G(1, 2)"), "{out}");
    }

    #[test]
    fn end_to_end_wellfounded_three_valued() {
        let out = execute(
            &eval_cmd("wellfounded"),
            "win(x) :- moves(x,y), !win(y).",
            Some("moves('a','b'). moves('b','a')."),
        )
        .unwrap();
        assert!(out.contains("% unknown facts:"));
        assert!(out.contains("win('a')"));
    }

    #[test]
    fn end_to_end_effect() {
        let out = execute(
            &eval_cmd("effect"),
            "!G(x,y) :- G(x,y), G(y,x).",
            Some("G(1,2). G(2,1)."),
        )
        .unwrap();
        assert!(out.contains("% 2 terminal instance(s)"));
        assert!(out.contains("% poss:"));
        assert!(out.contains("% cert:"));
    }

    #[test]
    fn check_renders_analysis() {
        let out = execute(
            &parse_args(&["check".to_string(), "p.dl".to_string()])
                .unwrap()
                .command,
            "T(x,y) :- G(x,y). CT(x,y) :- !T(x,y).",
            None,
        )
        .unwrap();
        assert!(out.contains("language: stratified Datalog¬"));
        assert!(out.contains("strata:   2"));
        assert!(out.contains("edb:      G"));
    }

    #[test]
    fn plan_command_renders_cost_ordered_plans() {
        let cmd = parse_args(&["plan", "p.dl", "f.dl"].map(String::from))
            .unwrap()
            .command;
        // B is much bigger than A: cost mode scans A first even though
        // the rule text names B first.
        let facts: String = (0..40)
            .map(|k| format!("B({k},{}).", k + 1))
            .chain(["A(1,2).".to_string()])
            .collect::<Vec<_>>()
            .join(" ");
        let out = execute(
            &cmd,
            "T(x,z) :- B(x,y), A(y,z). T(x,y) :- B(x,z), T(z,y).",
            Some(&facts),
        )
        .unwrap();
        assert!(out.contains("% mode: cost"), "{out}");
        assert!(
            out.contains("rule 1: T(x, z) :- B(x, y), A(y, z)."),
            "{out}"
        );
        assert!(out.contains("scan A("), "{out}");
        assert!(out.contains("join B("), "{out}");
        // The recursive rule shows its semi-naive delta variant.
        assert!(out.contains("Δ variant:"), "{out}");
        assert!(out.contains("Δ\n"), "{out}");
        assert!(out.contains("% planner:"), "{out}");
        // The syntactic reference leg keeps the textual order.
        let cmd = parse_args(&["plan", "p.dl", "f.dl", "--syntactic"].map(String::from))
            .unwrap()
            .command;
        let out = execute(&cmd, "T(x,z) :- B(x,y), A(y,z).", Some(&facts)).unwrap();
        assert!(out.contains("% mode: syntactic"), "{out}");
        assert!(out.contains("scan B("), "{out}");
        assert!(out.contains("join A("), "{out}");
    }

    #[test]
    fn bad_policy_reported() {
        let argv: Vec<String> = "eval --semantics noninflationary --policy bogus p.dl"
            .split_whitespace()
            .map(String::from)
            .collect();
        let cmd = parse_args(&argv).unwrap().command;
        let err = execute(&cmd, "!A(x) :- A(x).", None).unwrap_err();
        assert!(err.contains("bogus"));
    }

    #[test]
    fn output_filter() {
        let argv: Vec<String> = "eval --semantics seminaive --output T p.dl"
            .split_whitespace()
            .map(String::from)
            .collect();
        let cmd = parse_args(&argv).unwrap().command;
        let out = execute(&cmd, "T(x) :- A(x). U(x) :- A(x). A(1).", None).unwrap();
        assert!(out.contains("T(1)"));
        assert!(!out.contains("U(1)"));
    }

    #[test]
    fn parse_error_propagates() {
        assert!(execute(&eval_cmd("naive"), "T(x :- G(x).", None).is_err());
    }

    fn eval_cmd_with(sem: &str, extra: &str) -> Command {
        let argv: Vec<String> = format!("eval --semantics {sem} p.dl f.dl {extra}")
            .split_whitespace()
            .map(String::from)
            .collect();
        parse_args(&argv).unwrap().command
    }

    #[test]
    fn stats_flag_appends_stage_table() {
        let out = execute_full(
            &eval_cmd_with("seminaive", "--stats"),
            "T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).",
            Some("G(1,2). G(2,3). G(3,4)."),
        )
        .unwrap();
        assert!(out.text.contains("T(1, 4)"));
        assert!(out.text.contains("engine: seminaive"), "{}", out.text);
        // Per-stage delta sizes: chain of 4 → deltas 3, 2, 1, 0.
        assert!(out.text.contains("T=3"), "{}", out.text);
        assert!(out.text.contains("T=1"), "{}", out.text);
        assert!(out.text.contains("wall:"), "{}", out.text);
        // The index-maintenance gauges and storage shape ride along.
        assert!(out.text.contains("index cache:"), "{}", out.text);
        assert!(out.text.contains("reuse:"), "{}", out.text);
        assert!(out.text.contains("note: storage:"), "{}", out.text);
        // No --trace-json requested → no JSON payload.
        assert!(out.trace_json.is_none());
    }

    #[test]
    fn trace_json_flag_yields_json_lines() {
        let out = execute_full(
            &eval_cmd_with("seminaive", "--trace-json out.jsonl"),
            "T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).",
            Some("G(1,2). G(2,3)."),
        )
        .unwrap();
        // The answer text stays clean (no table without --stats)…
        assert!(!out.text.contains("engine:"));
        // …and the JSON-lines payload is present and well-formed.
        let json = out.trace_json.expect("trace json");
        let lines: Vec<&str> = json.lines().collect();
        assert!(lines.len() >= 2, "{json}");
        assert!(lines[0].starts_with("{\"type\":\"run\""), "{json}");
        assert!(lines[0].contains("\"engine\":\"seminaive\""), "{json}");
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(lines[1].contains("\"type\":\"stage\""), "{json}");
    }

    #[test]
    fn stats_survive_divergence_errors() {
        let err = execute_full(
            &eval_cmd_with("noninflationary", "--stats"),
            "T(0) :- T(1). !T(1) :- T(1). T(1) :- T(0). !T(0) :- T(0).",
            Some("T(0)."),
        )
        .unwrap_err();
        // The flip-flop diverges, but the stats table rides along with
        // the error so the period-2 cycle is visible.
        assert!(err.contains("diverge"), "{err}");
        assert!(err.contains("engine: noninflationary"), "{err}");
        assert!(err.contains("period 2"), "{err}");
    }

    #[test]
    fn threads_flag_output_byte_identical_to_sequential() {
        let prog = "T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).";
        let facts = "G(1,2). G(2,3). G(3,4). G(4,5). G(5,6).";
        let seq = execute(
            &eval_cmd_with("seminaive", "--threads 1"),
            prog,
            Some(facts),
        )
        .unwrap();
        let par = execute(
            &eval_cmd_with("seminaive", "--threads 4"),
            prog,
            Some(facts),
        )
        .unwrap();
        assert_eq!(seq, par);
        assert!(par.contains("T(1, 6)"));
        // The parallel run surfaces its thread count in the stats table.
        let out = execute_full(
            &eval_cmd_with("seminaive", "--threads 4 --stats"),
            prog,
            Some(facts),
        )
        .unwrap();
        assert!(out.text.contains("threads: 4"), "{}", out.text);
    }

    #[test]
    fn memstats_flag_appends_space_report() {
        let out = execute_full(
            &eval_cmd_with("seminaive", "--memstats --metrics out.prom"),
            "T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).",
            Some("G(1,2). G(2,3). G(3,4)."),
        )
        .unwrap();
        assert!(out.text.contains("space breakdown"), "{}", out.text);
        assert!(out.text.contains("additive: ok"), "{}", out.text);
        assert!(out.text.contains("T/2"), "{}", out.text);
        assert!(out.text.contains("fattest relations"), "{}", out.text);
        assert!(out.text.contains("fattest deltas"), "{}", out.text);
        // The space gauges land in the Prometheus registry.
        let prom = out.metrics_text.expect("metrics text");
        assert!(
            prom.contains("unchained_relation_bytes{engine=\"seminaive\"}"),
            "{prom}"
        );
        assert!(
            prom.contains("unchained_peak_bytes{engine=\"seminaive\"}"),
            "{prom}"
        );
        assert!(
            prom.contains("unchained_delta_tuples{engine=\"seminaive\"}"),
            "{prom}"
        );
        // Without the flag the report stays out of the output.
        let out =
            execute_full(&eval_cmd("seminaive"), "T(x,y) :- G(x,y).", Some("G(1,2).")).unwrap();
        assert!(!out.text.contains("space breakdown"));
    }

    #[test]
    fn memstats_report_identical_at_threads_1_and_4() {
        let prog = "T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).";
        let facts = "G(1,2). G(2,3). G(3,4). G(4,5). G(5,1). G(2,5).";
        let seq = execute_full(
            &eval_cmd_with("seminaive", "--memstats --threads 1"),
            prog,
            Some(facts),
        )
        .unwrap();
        let par = execute_full(
            &eval_cmd_with("seminaive", "--memstats --threads 4"),
            prog,
            Some(facts),
        )
        .unwrap();
        assert_eq!(seq.text, par.text);
        assert!(seq.text.contains("additive: ok"), "{}", seq.text);
    }

    #[test]
    fn memstats_covers_three_valued_answers() {
        let out = execute_full(
            &eval_cmd_with("wellfounded", "--memstats"),
            "win(x) :- moves(x,y), !win(y).",
            Some("moves('a','b'). moves('b','a')."),
        )
        .unwrap();
        assert!(out.text.contains("space breakdown"), "{}", out.text);
        assert!(out.text.contains("additive: ok"), "{}", out.text);
    }

    #[test]
    fn stats_flag_off_keeps_output_clean() {
        let out =
            execute_full(&eval_cmd("seminaive"), "T(x,y) :- G(x,y).", Some("G(1,2).")).unwrap();
        assert!(!out.text.contains("engine:"));
        assert!(out.trace_json.is_none());
    }

    #[test]
    fn profile_flag_yields_chrome_trace() {
        let out = execute_full(
            &eval_cmd_with("seminaive", "--profile out.trace.json"),
            "T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).",
            Some("G(1,2). G(2,3). G(3,4)."),
        )
        .unwrap();
        // The answer text gains the hottest-rules table…
        assert!(out.text.contains("hottest rules"), "{}", out.text);
        // …and the payload is a valid Chrome trace with the core kinds.
        let json = out.profile_json.expect("profile json");
        let summary = validate_chrome_trace(&json, &["eval", "stratum", "round", "rule"]).unwrap();
        assert!(summary.contains("eval"), "{summary}");
        assert!(out.trace_json.is_none());
        assert!(out.metrics_text.is_none());
    }

    #[test]
    fn metrics_flag_renders_prometheus_text() {
        let out = execute_full(
            &eval_cmd_with("naive", "--metrics out.prom"),
            "T(x) :- G(x).",
            Some("G(1)."),
        )
        .unwrap();
        let prom = out.metrics_text.expect("metrics text");
        assert!(
            prom.contains("unchained_eval_runs_total{engine=\"naive\"}"),
            "{prom}"
        );
        assert!(
            prom.contains("# TYPE unchained_eval_wall_seconds histogram"),
            "{prom}"
        );
        assert!(
            prom.contains("unchained_eval_wall_seconds_bucket"),
            "{prom}"
        );
    }

    #[test]
    fn explain_command_prints_derivation_tree() {
        let cmd = parse_args(&["explain", "p.dl", "f.dl", "T(1,3)"].map(String::from))
            .unwrap()
            .command;
        let out = execute(
            &cmd,
            "T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).",
            Some("G(1,2). G(2,3)."),
        )
        .unwrap();
        assert!(out.contains("⊢ T(1, 3)"), "{out}");
        assert!(out.contains("(given)"), "{out}");
        // Non-facts and non-ground goals are rejected.
        let cmd = parse_args(&["why", "p.dl", "T(x,y)"].map(String::from))
            .unwrap()
            .command;
        let err = execute(&cmd, "T(x,y) :- G(x,y).", None).unwrap_err();
        assert!(err.contains("ground"), "{err}");
    }

    #[test]
    fn trace_check_validates_profile_output() {
        let out = execute_full(
            &eval_cmd_with("seminaive", "--profile p.json"),
            "T(x,y) :- G(x,y).",
            Some("G(1,2)."),
        )
        .unwrap();
        let json = out.profile_json.unwrap();
        let cmd =
            parse_args(&["trace-check", "t.json", "--expect", "eval,round"].map(String::from))
                .unwrap()
                .command;
        // The trace file content travels in the program-text slot.
        let summary = execute(&cmd, &json, None).unwrap();
        assert!(summary.contains("kinds:"), "{summary}");
        // A missing kind or broken JSON is an error (seminaive emits no
        // Phase spans).
        let cmd = parse_args(&["trace-check", "t.json", "--expect", "phase"].map(String::from))
            .unwrap()
            .command;
        assert!(execute(&cmd, &json, None).is_err());
        let cmd = parse_args(&["trace-check", "t.json"].map(String::from))
            .unwrap()
            .command;
        assert!(execute(&cmd, "not json", None).is_err());
    }

    #[test]
    fn whilelang_stats_report_loop_iterations() {
        let out = execute_full(
            &eval_cmd_with("whilelang", "--stats"),
            "while change do\n  T += { x, y | G(x,y) or exists z (T(x,z) & G(z,y)) };\nend",
            Some("G(1,2). G(2,3). G(3,4)."),
        )
        .unwrap();
        assert!(out.text.contains("engine: while"), "{}", out.text);
        assert!(out.text.contains("loop iterations:"), "{}", out.text);
    }
}

//! # unchained-cli
//!
//! Library backing the `unchained` binary: argument parsing
//! ([`args`]) and I/O-free command execution ([`run`]), split out so
//! the whole pipeline is unit-testable.

pub mod args;
pub mod repl;
pub mod run;

pub use args::{parse_args, Args, Command, Semantics};
pub use repl::{run_repl, Repl, ReplOutcome};
pub use run::execute;

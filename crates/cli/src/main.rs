//! The `unchained` binary: evaluate `.dl` programs under any semantics
//! of the *Datalog Unchained* family.

use std::process::ExitCode;
use unchained_cli::args::{parse_args, Command};
use unchained_cli::run::{execute_full, execute_ivm};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Command::Bench { rest } = &args.command {
        return ExitCode::from(unchained_bench::main_with_args(rest));
    }
    if let Command::Fuzz { rest } = &args.command {
        return ExitCode::from(unchained_fuzz::main_with_args(rest));
    }
    // `ivm` reads a third file (the edit script), so it bypasses the
    // two-slot program/facts plumbing below.
    if let Command::Ivm {
        program,
        edits,
        facts,
        output,
        max_stages,
        threads,
        stats,
    } = &args.command
    {
        let read = |path: &str| {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
        };
        let run = || -> Result<String, String> {
            let program_text = read(program)?;
            let edits_text = read(edits)?;
            let facts_text = facts.as_deref().map(read).transpose()?;
            execute_ivm(
                &program_text,
                facts_text.as_deref(),
                &edits_text,
                output.as_deref(),
                *max_stages,
                *threads,
                *stats,
            )
        };
        return match run() {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if matches!(args.command, Command::Repl) {
        return match unchained_cli::run_repl() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let (program_path, facts_path) = match &args.command {
        Command::Eval { program, facts, .. } => (Some(program.clone()), facts.clone()),
        Command::Check { program } => (Some(program.clone()), None),
        Command::Plan { program, facts, .. } => (Some(program.clone()), facts.clone()),
        Command::Explain { program, facts, .. } => (Some(program.clone()), facts.clone()),
        // The trace file rides in the "program text" slot; run.rs
        // validates its contents directly.
        Command::TraceCheck { file, .. } => (Some(file.clone()), None),
        Command::Repl
        | Command::Bench { .. }
        | Command::Fuzz { .. }
        | Command::Ivm { .. }
        | Command::Help => (None, None),
    };
    let program_text = match &program_path {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {p}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => String::new(),
    };
    let facts_text = match &facts_path {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(t) => Some(t),
            Err(e) => {
                eprintln!("error: cannot read {p}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let (trace_path, profile_path, metrics_path) = match &args.command {
        Command::Eval {
            trace_json,
            profile,
            metrics,
            ..
        } => (trace_json.clone(), profile.clone(), metrics.clone()),
        _ => (None, None, None),
    };
    match execute_full(&args.command, &program_text, facts_text.as_deref()) {
        Ok(out) => {
            let payloads = [
                (&trace_path, &out.trace_json),
                (&profile_path, &out.profile_json),
                (&metrics_path, &out.metrics_text),
            ];
            for (path, content) in payloads {
                if let (Some(path), Some(content)) = (path, content) {
                    if let Err(e) = std::fs::write(path, content) {
                        eprintln!("error: cannot write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            print!("{}", out.text);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

//! An interactive session: accumulate facts and rules, evaluate under
//! any semantics of the family, inspect relations.
//!
//! The REPL is a pure line-processor ([`Repl::feed`]) so the whole
//! interaction is unit-testable; `main` wires it to stdin.
//!
//! ```text
//! > G(1,2).                      % ground fact → database
//! > T(x,y) :- G(x,y).            % rule → program
//! > T(x,y) :- G(x,z), T(z,y).
//! > ? T                          % evaluate, print relation T
//! T(1, 2)
//! > .semantics wellfounded       % switch engines
//! > .help                        % list commands
//! ```

use crate::args::Semantics;
use unchained_common::{Instance, Interner, Symbol, Tuple, Value};
use unchained_core::{EvalOptions, IncrementalSession};
use unchained_parser::{classify, parse_program, HeadLiteral, Program, Term};

/// REPL state.
pub struct Repl {
    interner: Interner,
    program: Program,
    database: Instance,
    semantics: Semantics,
    max_stages: Option<usize>,
    seed: u64,
    threads: Option<usize>,
    morsel_size: Option<usize>,
    /// The live incremental session behind `.insert`/`.retract`/`.poll`.
    /// Created lazily from the current program and database; dropped
    /// whenever either changes (the session would be maintaining a
    /// stale fixpoint).
    session: Option<IncrementalSession>,
}

impl Default for Repl {
    fn default() -> Self {
        Self::new()
    }
}

/// Help text for the in-REPL `.help` command.
pub const REPL_HELP: &str = "\
Enter Datalog statements (terminated by `.`) or commands:
  G('a','b').                 add a ground fact to the database
  T(x,y) :- G(x,y).           add a rule to the program
  ? <relation>                evaluate and print one relation
  ?                           evaluate and print all idb relations
  .semantics <name>           switch engine (naive, seminaive, stratified,
                              wellfounded, inflationary, noninflationary,
                              invention, nondet, effect)
  .seed <n>                   RNG seed for nondeterministic runs
  .max-stages <n>             stage budget
  .threads <n>                worker threads for semi-naive rounds
  .morsel-size <n>            driver rows per parallel work morsel
  .explain <fact>.            derivation tree of a fact (Datalog only)
  .why <fact>.                alias of .explain
  .insert <fact>.             queue an edb insertion on the live
                              incremental session (started on first use
                              from the current program and database)
  .retract <fact>.            queue an edb retraction
  .poll                       apply queued edits, re-stabilize the idb
                              incrementally, and report the maintenance
                              work (overdeletions, rederivations, strata
                              skipped); the database reflects the edits
  .stats [relation]           evaluate with per-stage statistics
  .mem [relation]             evaluate and print the space report
                              (per-relation logical bytes, fattest
                              relations and rule deltas)
  .profile [relation]         evaluate under the hierarchical tracer and
                              print the hottest-rules table
  .metrics                    print the process metrics registry
                              (Prometheus text format)
  .program                    show the accumulated rules
  .facts                      show the database
  .check                      classify the program
  .plan                       show each rule's compiled query plan and
                              Δ variants (join order costed from the
                              current database)
  .clear                      drop program and database
  .help                       this text
  .quit                       leave
Commands may also be spelled with a `:` prefix (`:stats`, `:help`, …).
";

/// What the caller should do after a line is processed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReplOutcome {
    /// Print this text (possibly empty) and continue.
    Continue(String),
    /// Exit the session.
    Quit,
}

impl Repl {
    /// Creates a fresh session (semi-naive semantics).
    pub fn new() -> Self {
        Repl {
            interner: Interner::new(),
            program: Program::new(),
            database: Instance::new(),
            semantics: Semantics::Seminaive,
            max_stages: None,
            seed: 0,
            threads: None,
            morsel_size: None,
            session: None,
        }
    }

    /// Processes one input line.
    pub fn feed(&mut self, line: &str) -> ReplOutcome {
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') || line.starts_with('#') {
            return ReplOutcome::Continue(String::new());
        }
        if let Some(rest) = line.strip_prefix('?') {
            return ReplOutcome::Continue(self.query(rest.trim().trim_end_matches('.'), false));
        }
        if let Some(cmd) = line.strip_prefix('.').or_else(|| line.strip_prefix(':')) {
            return self.command(cmd.trim());
        }
        ReplOutcome::Continue(self.add_statements(line))
    }

    fn command(&mut self, cmd: &str) -> ReplOutcome {
        let (name, arg) = match cmd.split_once(char::is_whitespace) {
            Some((n, a)) => (n, a.trim()),
            None => (cmd, ""),
        };
        let out = match name {
            "quit" | "exit" | "q" => return ReplOutcome::Quit,
            "help" | "h" => REPL_HELP.to_string(),
            "semantics" => match Semantics::parse(arg) {
                Some(Semantics::WhileLang) | None => {
                    format!("unknown semantics `{arg}`\n")
                }
                Some(s) => {
                    self.semantics = s;
                    format!("semantics: {s}\n")
                }
            },
            "seed" => match arg.parse::<u64>() {
                Ok(n) => {
                    self.seed = n;
                    format!("seed: {n}\n")
                }
                Err(_) => format!("bad seed `{arg}`\n"),
            },
            "max-stages" => match arg.parse::<usize>() {
                Ok(n) => {
                    self.max_stages = Some(n);
                    format!("max stages: {n}\n")
                }
                Err(_) => format!("bad stage budget `{arg}`\n"),
            },
            "threads" => match arg.parse::<usize>() {
                Ok(n) if n >= 1 => {
                    self.threads = Some(n);
                    format!("threads: {n}\n")
                }
                _ => format!("bad thread count `{arg}`\n"),
            },
            "morsel-size" => match arg.parse::<usize>() {
                Ok(n) if n >= 1 => {
                    self.morsel_size = Some(n);
                    format!("morsel size: {n}\n")
                }
                _ => format!("bad morsel size `{arg}`\n"),
            },
            "explain" | "why" => self.explain(arg),
            "insert" => self.ivm_edit(arg, true),
            "retract" => self.ivm_edit(arg, false),
            "poll" => self.ivm_poll(),
            "stats" => self.query(arg.trim_end_matches('.'), true),
            "mem" | "memstats" => self.memstats(arg.trim_end_matches('.')),
            "profile" => self.profile(arg.trim_end_matches('.')),
            "metrics" => {
                let rendered = unchained_common::metrics().render();
                if rendered.is_empty() {
                    "no metrics recorded yet (run a query first)\n".to_string()
                } else {
                    rendered
                }
            }
            "program" => self.program.display(&self.interner).to_string(),
            "facts" => self.database.display(&self.interner).to_string(),
            "check" => {
                if self.program.rules.is_empty() {
                    "no rules yet\n".to_string()
                } else {
                    format!("language: {}\n", classify(&self.program))
                }
            }
            "plan" => {
                if self.program.rules.is_empty() {
                    "no rules yet\n".to_string()
                } else {
                    self.plan()
                }
            }
            "clear" => {
                self.program = Program::new();
                self.database = Instance::new();
                self.session = None;
                "cleared\n".to_string()
            }
            other => format!("unknown command `.{other}` (try `.help`)\n"),
        };
        ReplOutcome::Continue(out)
    }

    /// Adds rules/facts from a statement line. Ground single-atom
    /// statements go to the database; everything else to the program.
    fn add_statements(&mut self, line: &str) -> String {
        let parsed = match parse_program(line, &mut self.interner) {
            Ok(p) => p,
            Err(e) => return format!("{e}\n"),
        };
        let mut added_facts = 0;
        let mut added_rules = 0;
        for rule in parsed.rules {
            let ground_fact = rule.body.is_empty()
                && rule.head.len() == 1
                && rule.forall.is_empty()
                && matches!(&rule.head[0], HeadLiteral::Pos(a)
                    if a.args.iter().all(|t| matches!(t, Term::Const(_))));
            if ground_fact {
                let HeadLiteral::Pos(atom) = &rule.head[0] else {
                    unreachable!()
                };
                let values: Vec<Value> = atom
                    .args
                    .iter()
                    .map(|t| match t {
                        Term::Const(v) => *v,
                        Term::Var(_) => unreachable!("checked ground"),
                    })
                    .collect();
                self.database.insert_fact(atom.pred, Tuple::from(values));
                added_facts += 1;
            } else {
                self.program.rules.push(rule);
                added_rules += 1;
            }
        }
        if added_facts + added_rules > 0 {
            // The session's fixpoint no longer matches the inputs.
            self.session = None;
        }
        match (added_facts, added_rules) {
            (0, 0) => String::new(),
            (f, 0) => format!("added {f} fact(s)\n"),
            (0, r) => format!("added {r} rule(s)\n"),
            (f, r) => format!("added {f} fact(s), {r} rule(s)\n"),
        }
    }

    /// Parses `text` as a single ground fact against the session
    /// interner.
    fn ground_fact(&mut self, text: &str) -> Result<(Symbol, Tuple), String> {
        let parsed =
            parse_program(&format!("{text}."), &mut self.interner).map_err(|e| format!("{e}\n"))?;
        let atom = parsed
            .rules
            .first()
            .filter(|r| r.body.is_empty() && r.head.len() == 1)
            .and_then(|r| r.head.first())
            .and_then(HeadLiteral::atom)
            .ok_or_else(|| format!("`{text}` is not a single fact\n"))?;
        let mut values = Vec::new();
        for term in &atom.args {
            match term {
                Term::Const(v) => values.push(*v),
                Term::Var(_) => return Err("edits need a ground fact\n".to_string()),
            }
        }
        Ok((atom.pred, Tuple::from(values)))
    }

    /// The live incremental session, started lazily from the current
    /// program and database.
    fn ivm_session(&mut self) -> Result<&mut IncrementalSession, String> {
        if self.session.is_none() {
            let session =
                IncrementalSession::new(self.program.clone(), &self.database, self.options())
                    .map_err(|e| format!("cannot start incremental session: {e}\n"))?;
            self.session = Some(session);
        }
        Ok(self.session.as_mut().expect("just created"))
    }

    /// Queues one edb edit (`.insert` / `.retract`) on the session.
    fn ivm_edit(&mut self, arg: &str, insert: bool) -> String {
        let verb = if insert { "insert" } else { "retract" };
        let arg = arg.trim().trim_end_matches('.');
        if arg.is_empty() {
            return format!("usage: .{verb} T(1,2).\n");
        }
        let (pred, tuple) = match self.ground_fact(arg) {
            Ok(edit) => edit,
            Err(e) => return e,
        };
        let fact = format!(
            "{}{}",
            self.interner.name(pred),
            tuple.display(&self.interner)
        );
        let session = match self.ivm_session() {
            Ok(s) => s,
            Err(e) => return e,
        };
        let queued = if insert {
            session.insert(pred, tuple)
        } else {
            session.retract(pred, tuple)
        };
        match queued {
            Ok(()) => format!(
                "queued {verb} {fact} ({} pending; `.poll` applies)\n",
                session.pending_edits()
            ),
            Err(e) => format!("error: {e}\n"),
        }
    }

    /// Applies queued edits and reports the maintenance work.
    fn ivm_poll(&mut self) -> String {
        let stats = match self.ivm_session().map(IncrementalSession::poll) {
            Ok(Ok(stats)) => stats,
            Ok(Err(e)) => {
                // A failed poll leaves the session in an unusable state.
                self.session = None;
                return format!("error: {e}\n");
            }
            Err(e) => return e,
        };
        let session = self.session.as_ref().expect("session polled");
        // Queries and `.facts` see the edited database from here on.
        self.database = session.edb().clone();
        format!(
            "applied {} edit(s): +{} −{} facts (overdeleted {}, rederived {}, \
             strata {} skipped / {} recomputed); {} facts total\n",
            stats.applied,
            stats.facts_added,
            stats.facts_removed,
            stats.overdeleted,
            stats.rederived,
            stats.strata_skipped,
            stats.strata_recomputed,
            session.instance().fact_count()
        )
    }

    /// Explains the derivation of a ground fact via why-provenance
    /// (positive Datalog programs only).
    fn explain(&mut self, fact_text: &str) -> String {
        let fact_text = fact_text.trim().trim_end_matches('.');
        if fact_text.is_empty() {
            return "usage: .explain T(1,2)
"
            .to_string();
        }
        // Parse the fact as a one-statement program.
        let parsed = match parse_program(&format!("{fact_text}."), &mut self.interner) {
            Ok(p) => p,
            Err(e) => {
                return format!(
                    "{e}
"
                )
            }
        };
        let Some(rule) = parsed.rules.first() else {
            return "usage: .explain T(1,2)
"
            .to_string();
        };
        let Some(atom) = rule.head.first().and_then(HeadLiteral::atom) else {
            return "usage: .explain T(1,2)
"
            .to_string();
        };
        let mut values = Vec::new();
        for term in &atom.args {
            match term {
                Term::Const(v) => values.push(*v),
                Term::Var(_) => {
                    return "explain needs a ground fact
"
                    .to_string()
                }
            }
        }
        match unchained_core::provenance::minimum_model_with_provenance(
            &self.program,
            &self.database,
            self.options(),
        ) {
            Ok(run) => unchained_core::provenance::explain(
                &run,
                atom.pred,
                &Tuple::from(values),
                &self.interner,
            ),
            Err(e) => format!(
                "error: {e} (explain requires pure Datalog)
"
            ),
        }
    }

    /// Evaluates the program and prints `target` (or all idb
    /// relations); with `stats`, appends the per-stage statistics table.
    fn query(&mut self, target: &str, stats: bool) -> String {
        self.run_eval(target, stats, false, false)
    }

    /// Evaluates and appends the space report to the answer.
    fn memstats(&mut self, target: &str) -> String {
        self.run_eval(target, false, true, false)
    }

    /// Evaluates under the hierarchical tracer and appends the
    /// hottest-rules table to the answer.
    fn profile(&mut self, target: &str) -> String {
        self.run_eval(target, false, false, true)
    }

    /// Renders each rule's compiled query plan, costing the join order
    /// from the current database's cardinalities.
    fn plan(&self) -> String {
        let cmd = crate::args::Command::Plan {
            program: String::new(),
            facts: None,
            syntactic: false,
        };
        let program_text = self.program.display(&self.interner).to_string();
        let facts_text = self.facts_text();
        match crate::run::execute_full(&cmd, &program_text, Some(&facts_text)) {
            Ok(out) => out.text,
            Err(e) => format!("error: {e}\n"),
        }
    }

    /// The database rendered as a fact file: instance display prints
    /// bare facts, and the fact-file parser wants statement terminators.
    fn facts_text(&self) -> String {
        self.database
            .display(&self.interner)
            .to_string()
            .lines()
            .map(|l| format!("{l}.\n"))
            .collect()
    }

    fn run_eval(&mut self, target: &str, stats: bool, memstats: bool, profile: bool) -> String {
        let cmd = crate::args::Command::Eval {
            program: String::new(),
            facts: None,
            semantics: self.semantics,
            output: if target.is_empty() {
                None
            } else {
                Some(target.to_string())
            },
            max_stages: self.max_stages,
            seed: self.seed,
            policy: "positive".to_string(),
            stats,
            memstats,
            trace_json: None,
            threads: self.threads,
            morsel_size: self.morsel_size,
            // The path is a placeholder: the REPL prints the profiling
            // table inline and discards the Chrome JSON payload.
            profile: profile.then(|| "(repl)".to_string()),
            metrics: None,
        };
        let program_text = self.program.display(&self.interner).to_string();
        let facts_text = self.facts_text();
        match crate::run::execute_full(&cmd, &program_text, Some(&facts_text)) {
            Ok(out) => out.text,
            Err(e) => format!("error: {e}\n"),
        }
    }

    /// The currently selected semantics.
    pub fn semantics(&self) -> Semantics {
        self.semantics
    }

    /// Exposes the evaluation options (for tests).
    pub fn options(&self) -> EvalOptions {
        let mut o = EvalOptions::default();
        if let Some(m) = self.max_stages {
            o = o.with_max_stages(m);
        }
        if let Some(n) = self.threads {
            o = o.with_threads(n);
        }
        if let Some(n) = self.morsel_size {
            o = o.with_morsel_size(n);
        }
        o
    }
}

/// Runs the REPL over stdin/stdout (used by `main`).
pub fn run_repl() -> std::io::Result<()> {
    use std::io::{BufRead, Write};
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    let mut repl = Repl::new();
    writeln!(
        stdout,
        "unchained repl — `.help` for commands, `.quit` to leave"
    )?;
    loop {
        write!(stdout, "> ")?;
        stdout.flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            return Ok(()); // EOF
        }
        match repl.feed(&line) {
            ReplOutcome::Continue(out) => {
                write!(stdout, "{out}")?;
            }
            ReplOutcome::Quit => return Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_ok(repl: &mut Repl, line: &str) -> String {
        match repl.feed(line) {
            ReplOutcome::Continue(out) => out,
            ReplOutcome::Quit => panic!("unexpected quit"),
        }
    }

    #[test]
    fn facts_rules_and_query() {
        let mut repl = Repl::new();
        assert_eq!(feed_ok(&mut repl, "G(1,2). G(2,3)."), "added 2 fact(s)\n");
        assert_eq!(
            feed_ok(&mut repl, "T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y)."),
            "added 2 rule(s)\n"
        );
        let out = feed_ok(&mut repl, "? T");
        assert!(out.contains("T(1, 3)"), "{out}");
        // Bare `?` prints all idb relations.
        let out = feed_ok(&mut repl, "?");
        assert!(out.contains("T(1, 2)"));
    }

    #[test]
    fn switching_semantics() {
        let mut repl = Repl::new();
        feed_ok(&mut repl, "moves('a','b'). moves('b','a').");
        feed_ok(&mut repl, "win(x) :- moves(x,y), !win(y).");
        // Semi-naive rejects negation…
        let out = feed_ok(&mut repl, "? win");
        assert!(out.contains("error"), "{out}");
        // …well-founded answers 3-valued.
        assert_eq!(
            feed_ok(&mut repl, ".semantics wellfounded"),
            "semantics: wellfounded\n"
        );
        let out = feed_ok(&mut repl, "? win");
        assert!(out.contains("unknown facts"), "{out}");
    }

    #[test]
    fn commands() {
        let mut repl = Repl::new();
        feed_ok(&mut repl, "A(x) :- B(x).");
        assert!(feed_ok(&mut repl, ".program").contains("A(x) :- B(x)."));
        assert!(feed_ok(&mut repl, ".check").contains("language: Datalog"));
        feed_ok(&mut repl, "B(7).");
        assert!(feed_ok(&mut repl, ".facts").contains("B(7)"));
        assert_eq!(feed_ok(&mut repl, ".clear"), "cleared\n");
        assert_eq!(feed_ok(&mut repl, ".check"), "no rules yet\n");
        assert!(feed_ok(&mut repl, ".help").contains(".semantics"));
        assert!(feed_ok(&mut repl, ".bogus").contains("unknown command"));
        assert!(feed_ok(&mut repl, ".semantics bogus").contains("unknown semantics"));
        assert_eq!(repl.feed(".quit"), ReplOutcome::Quit);
    }

    #[test]
    fn plan_command_renders_rule_plans() {
        let mut repl = Repl::new();
        assert_eq!(feed_ok(&mut repl, ".plan"), "no rules yet\n");
        feed_ok(&mut repl, "G(1,2). G(2,3). G(3,4).");
        feed_ok(&mut repl, "T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).");
        let out = feed_ok(&mut repl, ".plan");
        assert!(out.contains("% mode: cost"), "{out}");
        assert!(out.contains("rule 1: T(x, y) :- G(x, y)."), "{out}");
        assert!(out.contains("scan G("), "{out}");
        assert!(out.contains("Δ variant:"), "{out}");
        assert!(out.contains("% planner:"), "{out}");
    }

    #[test]
    fn stats_command_prints_stage_table() {
        let mut repl = Repl::new();
        feed_ok(&mut repl, "G(1,2). G(2,3). G(3,4).");
        feed_ok(&mut repl, "T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).");
        let out = feed_ok(&mut repl, ".stats T");
        assert!(out.contains("T(1, 4)"), "{out}");
        assert!(out.contains("engine: seminaive"), "{out}");
        assert!(out.contains("stage"), "{out}");
        // `:`-prefixed spelling works too.
        let out = feed_ok(&mut repl, ":stats");
        assert!(out.contains("engine: seminaive"), "{out}");
        // Plain queries stay stats-free.
        let out = feed_ok(&mut repl, "? T");
        assert!(!out.contains("engine:"), "{out}");
    }

    #[test]
    fn mem_command_prints_space_report() {
        let mut repl = Repl::new();
        feed_ok(&mut repl, "G(1,2). G(2,3). G(3,4).");
        feed_ok(&mut repl, "T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).");
        let out = feed_ok(&mut repl, ".mem T");
        assert!(out.contains("T(1, 4)"), "{out}");
        assert!(out.contains("space breakdown"), "{out}");
        assert!(out.contains("additive: ok"), "{out}");
        assert!(out.contains("fattest relations"), "{out}");
        // `.memstats` is an alias; plain queries stay report-free.
        let out = feed_ok(&mut repl, ".memstats");
        assert!(out.contains("space breakdown"), "{out}");
        let out = feed_ok(&mut repl, "? T");
        assert!(!out.contains("space breakdown"), "{out}");
    }

    #[test]
    fn incremental_session_commands() {
        let mut repl = Repl::new();
        feed_ok(&mut repl, "G(1,2). G(2,3).");
        feed_ok(&mut repl, "T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).");
        // Edits queue until `.poll` applies them in one batch.
        let out = feed_ok(&mut repl, ".insert G(3,4).");
        assert!(out.contains("queued insert G(3, 4)"), "{out}");
        assert!(out.contains("1 pending"), "{out}");
        let out = feed_ok(&mut repl, ".poll");
        assert!(out.contains("applied 1 edit(s)"), "{out}");
        let out = feed_ok(&mut repl, "? T");
        assert!(out.contains("T(1, 4)"), "{out}");
        // Retraction overdeletes downstream facts, rederiving survivors.
        feed_ok(&mut repl, ".retract G(1,2).");
        let out = feed_ok(&mut repl, ".poll");
        assert!(out.contains("overdeleted"), "{out}");
        let out = feed_ok(&mut repl, "? T");
        assert!(!out.contains("T(1, 2)"), "{out}");
        assert!(out.contains("T(2, 4)"), "{out}");
        // Edits must be validated: idb target, non-ground, empty arg.
        let out = feed_ok(&mut repl, ".insert T(9,9).");
        assert!(out.contains("error"), "{out}");
        let out = feed_ok(&mut repl, ".insert");
        assert!(out.contains("usage"), "{out}");
        let out = feed_ok(&mut repl, ".retract G(x,1).");
        assert!(out.contains("ground"), "{out}");
        // Adding a rule invalidates the session; the next edit restarts
        // it against the maintained database.
        feed_ok(&mut repl, "S(x) :- G(x,y).");
        let out = feed_ok(&mut repl, ".insert G(4,5).");
        assert!(out.contains("1 pending"), "{out}");
        let out = feed_ok(&mut repl, ".poll");
        assert!(out.contains("applied 1 edit(s)"), "{out}");
        let out = feed_ok(&mut repl, "? S");
        assert!(out.contains("S(4)"), "{out}");
    }

    #[test]
    fn explain_shows_derivations() {
        let mut repl = Repl::new();
        feed_ok(&mut repl, "G(1,2). G(2,3).");
        feed_ok(&mut repl, "T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).");
        let out = feed_ok(&mut repl, ".explain T(1,3).");
        assert!(out.contains("⊢ T(1, 3)"), "{out}");
        assert!(out.contains("(given)"), "{out}");
        let out = feed_ok(&mut repl, ".explain T(3,1)");
        assert!(out.contains("not derivable"), "{out}");
        let out = feed_ok(&mut repl, ".explain");
        assert!(out.contains("usage"), "{out}");
        let out = feed_ok(&mut repl, ".explain T(x,y)");
        assert!(out.contains("ground"), "{out}");
    }

    #[test]
    fn why_is_an_alias_of_explain() {
        let mut repl = Repl::new();
        feed_ok(&mut repl, "G(1,2).");
        feed_ok(&mut repl, "T(x,y) :- G(x,y).");
        let out = feed_ok(&mut repl, ".why T(1,2).");
        assert!(out.contains("⊢ T(1, 2)"), "{out}");
    }

    #[test]
    fn profile_command_prints_hottest_rules() {
        let mut repl = Repl::new();
        feed_ok(&mut repl, "G(1,2). G(2,3). G(3,4).");
        feed_ok(&mut repl, "T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).");
        let out = feed_ok(&mut repl, ".profile T");
        assert!(out.contains("T(1, 4)"), "{out}");
        assert!(out.contains("hottest rules"), "{out}");
        // Plain queries stay profile-free.
        let out = feed_ok(&mut repl, "? T");
        assert!(!out.contains("hottest rules"), "{out}");
    }

    #[test]
    fn metrics_command_scrapes_the_registry() {
        let mut repl = Repl::new();
        feed_ok(&mut repl, "G(1,2).");
        feed_ok(&mut repl, "T(x,y) :- G(x,y).");
        feed_ok(&mut repl, "? T");
        let out = feed_ok(&mut repl, ".metrics");
        assert!(out.contains("unchained_eval_runs_total"), "{out}");
        assert!(out.contains("unchained_eval_wall_seconds"), "{out}");
    }

    #[test]
    fn parse_errors_are_reported_not_fatal() {
        let mut repl = Repl::new();
        let out = feed_ok(&mut repl, "T(x :- G(x).");
        assert!(out.contains("parse error"));
        // Session still usable.
        assert_eq!(feed_ok(&mut repl, "G(1,1)."), "added 1 fact(s)\n");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let mut repl = Repl::new();
        assert_eq!(feed_ok(&mut repl, ""), "");
        assert_eq!(feed_ok(&mut repl, "% note"), "");
        assert_eq!(feed_ok(&mut repl, "   "), "");
    }

    #[test]
    fn budget_and_seed_settings() {
        let mut repl = Repl::new();
        assert_eq!(feed_ok(&mut repl, ".max-stages 5"), "max stages: 5\n");
        assert_eq!(feed_ok(&mut repl, ".seed 42"), "seed: 42\n");
        assert!(feed_ok(&mut repl, ".max-stages x").contains("bad"));
        assert_eq!(repl.options().max_stages, Some(5));
    }

    #[test]
    fn threads_setting_and_query_agreement() {
        let mut repl = Repl::new();
        assert_eq!(feed_ok(&mut repl, ".threads 4"), "threads: 4\n");
        assert_eq!(repl.options().threads.get(), 4);
        assert!(feed_ok(&mut repl, ".threads 0").contains("bad"));
        assert!(feed_ok(&mut repl, ".threads x").contains("bad"));
        // Queries through the parallel path match a sequential session.
        feed_ok(&mut repl, "G(1,2). G(2,3). G(3,4).");
        feed_ok(&mut repl, "T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).");
        let par = feed_ok(&mut repl, "? T");
        let mut seq = Repl::new();
        feed_ok(&mut seq, ".threads 1");
        feed_ok(&mut seq, "G(1,2). G(2,3). G(3,4).");
        feed_ok(&mut seq, "T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).");
        assert_eq!(par, feed_ok(&mut seq, "? T"));
        assert!(par.contains("T(1, 4)"), "{par}");
    }

    #[test]
    fn nonground_heads_become_rules() {
        let mut repl = Repl::new();
        // A "fact" with a variable is really an unconditional rule; it
        // lands in the program, not the database.
        let out = feed_ok(&mut repl, "delay :- .");
        assert_eq!(out, "added 1 fact(s)\n"); // ground zero-ary: a fact
        let out = feed_ok(&mut repl, "Self(x,x) :- Node(x).");
        assert_eq!(out, "added 1 rule(s)\n");
    }
}

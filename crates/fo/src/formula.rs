//! First-order formulas (relational calculus) and their evaluation under
//! the active-domain semantics.
//!
//! These formulas are the building blocks of the *while* and *fixpoint*
//! comparator languages of Section 2 of the paper: assignments
//! `R := {x̄ | φ(x̄)}` and loop conditions `while φ do` with `φ` a
//! sentence. Quantifiers range over the evaluation domain, which callers
//! typically take to be the active domain of the current instance
//! (optionally extended with program constants).

use std::fmt;
use unchained_common::{FxHashMap, Instance, Interner, Relation, Symbol, Tuple, Value};

/// A formula-scoped variable (index into the owning [`VarSet`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FoVar(pub u32);

impl FoVar {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A namespace of formula variables with human-readable names.
#[derive(Clone, Default, Debug)]
pub struct VarSet {
    names: Vec<String>,
    lookup: FxHashMap<String, FoVar>,
}

impl VarSet {
    /// Creates an empty variable namespace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (creating if necessary) the variable named `name`.
    pub fn var(&mut self, name: &str) -> FoVar {
        if let Some(&v) = self.lookup.get(name) {
            return v;
        }
        let v = FoVar(u32::try_from(self.names.len()).expect("too many variables"));
        self.names.push(name.to_string());
        self.lookup.insert(name.to_string(), v);
        v
    }

    /// The name of a variable.
    pub fn name(&self, v: FoVar) -> &str {
        &self.names[v.index()]
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no variable was created.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// A term: variable or constant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FoTerm {
    /// A variable.
    Var(FoVar),
    /// A constant.
    Const(Value),
}

/// A first-order formula over a relational vocabulary.
#[derive(Clone, PartialEq, Debug)]
pub enum Formula {
    /// Truth.
    True,
    /// Falsity.
    False,
    /// `R(t1, …, tk)`.
    Atom(Symbol, Vec<FoTerm>),
    /// `t1 = t2`.
    Eq(FoTerm, FoTerm),
    /// `¬φ`.
    Not(Box<Formula>),
    /// `φ1 ∧ … ∧ φn` (empty conjunction is `True`).
    And(Vec<Formula>),
    /// `φ1 ∨ … ∨ φn` (empty disjunction is `False`).
    Or(Vec<Formula>),
    /// `∃ x̄ φ`.
    Exists(Vec<FoVar>, Box<Formula>),
    /// `∀ x̄ φ`.
    Forall(Vec<FoVar>, Box<Formula>),
}

impl Formula {
    /// `¬self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// `self ∧ other`.
    pub fn and(self, other: Formula) -> Formula {
        Formula::And(vec![self, other])
    }

    /// `self ∨ other`.
    pub fn or(self, other: Formula) -> Formula {
        Formula::Or(vec![self, other])
    }

    /// `self → other`, i.e. `¬self ∨ other`.
    pub fn implies(self, other: Formula) -> Formula {
        self.not().or(other)
    }

    /// `∃ vars self`.
    pub fn exists(vars: impl IntoIterator<Item = FoVar>, body: Formula) -> Formula {
        Formula::Exists(vars.into_iter().collect(), Box::new(body))
    }

    /// `∀ vars self`.
    pub fn forall(vars: impl IntoIterator<Item = FoVar>, body: Formula) -> Formula {
        Formula::Forall(vars.into_iter().collect(), Box::new(body))
    }

    /// The free variables of the formula, in ascending order.
    pub fn free_vars(&self) -> Vec<FoVar> {
        let mut out = std::collections::BTreeSet::new();
        self.collect_free(&mut Vec::new(), &mut out);
        out.into_iter().collect()
    }

    fn collect_free(&self, bound: &mut Vec<FoVar>, out: &mut std::collections::BTreeSet<FoVar>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(_, terms) => {
                for t in terms {
                    if let FoTerm::Var(v) = t {
                        if !bound.contains(v) {
                            out.insert(*v);
                        }
                    }
                }
            }
            Formula::Eq(s, t) => {
                for term in [s, t] {
                    if let FoTerm::Var(v) = term {
                        if !bound.contains(v) {
                            out.insert(*v);
                        }
                    }
                }
            }
            Formula::Not(inner) => inner.collect_free(bound, out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_free(bound, out);
                }
            }
            Formula::Exists(vars, inner) | Formula::Forall(vars, inner) => {
                let depth = bound.len();
                bound.extend(vars.iter().copied());
                inner.collect_free(bound, out);
                bound.truncate(depth);
            }
        }
    }
}

/// An evaluation error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FoError {
    /// The formula mentions a relation absent from the instance.
    UnknownRelation(Symbol),
    /// An atom's arity does not match the instance relation's arity.
    ArityMismatch {
        /// The relation.
        relation: Symbol,
        /// Arity in the instance.
        expected: usize,
        /// Arity in the formula.
        found: usize,
    },
    /// A variable was used but not assigned (internal safety check).
    UnboundVariable(FoVar),
}

impl fmt::Display for FoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FoError::UnknownRelation(s) => write!(f, "unknown relation {s:?}"),
            FoError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "arity mismatch on {relation:?}: instance has {expected}, formula uses {found}"
            ),
            FoError::UnboundVariable(v) => write!(f, "unbound variable {v:?}"),
        }
    }
}

impl std::error::Error for FoError {}

/// A (partial) assignment of values to formula variables.
pub(crate) type Env = Vec<Option<Value>>;

pub(crate) fn term_value(term: &FoTerm, env: &Env) -> Result<Value, FoError> {
    match term {
        FoTerm::Const(v) => Ok(*v),
        FoTerm::Var(v) => env
            .get(v.index())
            .copied()
            .flatten()
            .ok_or(FoError::UnboundVariable(*v)),
    }
}

/// Evaluates whether `formula` holds in `instance` under `env`, with
/// quantifiers ranging over `domain`.
pub(crate) fn satisfies(
    formula: &Formula,
    instance: &Instance,
    domain: &[Value],
    env: &mut Env,
) -> Result<bool, FoError> {
    match formula {
        Formula::True => Ok(true),
        Formula::False => Ok(false),
        Formula::Atom(pred, terms) => {
            let rel = instance
                .relation(*pred)
                .ok_or(FoError::UnknownRelation(*pred))?;
            if rel.arity() != terms.len() {
                return Err(FoError::ArityMismatch {
                    relation: *pred,
                    expected: rel.arity(),
                    found: terms.len(),
                });
            }
            let tuple: Tuple = terms
                .iter()
                .map(|t| term_value(t, env))
                .collect::<Result<Vec<Value>, FoError>>()?
                .into();
            Ok(rel.contains(&tuple))
        }
        Formula::Eq(s, t) => Ok(term_value(s, env)? == term_value(t, env)?),
        Formula::Not(inner) => Ok(!satisfies(inner, instance, domain, env)?),
        Formula::And(fs) => {
            for f in fs {
                if !satisfies(f, instance, domain, env)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::Or(fs) => {
            for f in fs {
                if satisfies(f, instance, domain, env)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Formula::Exists(vars, inner) => {
            quantify(
                vars, inner, instance, domain, env, /* universal = */ false,
            )
        }
        Formula::Forall(vars, inner) => {
            quantify(
                vars, inner, instance, domain, env, /* universal = */ true,
            )
        }
    }
}

fn quantify(
    vars: &[FoVar],
    inner: &Formula,
    instance: &Instance,
    domain: &[Value],
    env: &mut Env,
    universal: bool,
) -> Result<bool, FoError> {
    // Enumerate assignments of `vars` over `domain`, depth-first.
    fn rec(
        vars: &[FoVar],
        inner: &Formula,
        instance: &Instance,
        domain: &[Value],
        env: &mut Env,
        universal: bool,
    ) -> Result<bool, FoError> {
        let Some((&v, rest)) = vars.split_first() else {
            return satisfies(inner, instance, domain, env);
        };
        if env.len() <= v.index() {
            env.resize(v.index() + 1, None);
        }
        let saved = env[v.index()];
        for &value in domain {
            env[v.index()] = Some(value);
            let holds = rec(rest, inner, instance, domain, env, universal)?;
            if holds != universal {
                env[v.index()] = saved;
                return Ok(!universal);
            }
        }
        env[v.index()] = saved;
        Ok(universal)
    }
    rec(vars, inner, instance, domain, env, universal)
}

/// Evaluates a **sentence** (formula without free variables).
///
/// Returns an error if the formula has free variables or mentions
/// unknown relations.
pub fn eval_sentence(
    formula: &Formula,
    instance: &Instance,
    domain: &[Value],
) -> Result<bool, FoError> {
    let free = formula.free_vars();
    if let Some(&v) = free.first() {
        return Err(FoError::UnboundVariable(v));
    }
    satisfies(formula, instance, domain, &mut Vec::new())
}

/// Evaluates an open formula: returns the relation
/// `{ (v(x1), …, v(xk)) | instance ⊨ φ[v] }` where `x1..xk` are
/// `free_vars` (which must cover the formula's free variables) and `v`
/// ranges over assignments into `domain`.
///
/// This is the `{x̄ | φ}` construct used by *while*-language
/// assignments. Complexity is `O(|domain|^k)` satisfaction checks; the
/// comparator programs in this workspace use small `k`.
pub fn eval_formula(
    formula: &Formula,
    free_vars: &[FoVar],
    instance: &Instance,
    domain: &[Value],
) -> Result<Relation, FoError> {
    for v in formula.free_vars() {
        if !free_vars.contains(&v) {
            return Err(FoError::UnboundVariable(v));
        }
    }
    let mut out = Relation::new(free_vars.len());
    let env_len = free_vars.iter().map(|v| v.index() + 1).max().unwrap_or(0);
    let mut env: Env = vec![None; env_len];
    fn rec(
        remaining: &[FoVar],
        all: &[FoVar],
        formula: &Formula,
        instance: &Instance,
        domain: &[Value],
        env: &mut Env,
        out: &mut Relation,
    ) -> Result<(), FoError> {
        let Some((&v, rest)) = remaining.split_first() else {
            if satisfies(formula, instance, domain, env)? {
                let tuple: Tuple = all
                    .iter()
                    .map(|v| env[v.index()].expect("free var assigned"))
                    .collect();
                out.insert(tuple);
            }
            return Ok(());
        };
        for &value in domain {
            env[v.index()] = Some(value);
            rec(rest, all, formula, instance, domain, env, out)?;
        }
        env[v.index()] = None;
        Ok(())
    }
    rec(
        free_vars, free_vars, formula, instance, domain, &mut env, &mut out,
    )?;
    Ok(out)
}

/// Pretty-printer for formulas (for diagnostics and docs).
pub fn display_formula(formula: &Formula, vars: &VarSet, interner: &Interner) -> String {
    fn term(t: &FoTerm, vars: &VarSet, interner: &Interner) -> String {
        match t {
            FoTerm::Var(v) => vars.name(*v).to_string(),
            FoTerm::Const(c) => c.display(interner).to_string(),
        }
    }
    match formula {
        Formula::True => "true".into(),
        Formula::False => "false".into(),
        Formula::Atom(p, ts) => format!(
            "{}({})",
            interner.name(*p),
            ts.iter()
                .map(|t| term(t, vars, interner))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Formula::Eq(s, t) => format!("{} = {}", term(s, vars, interner), term(t, vars, interner)),
        Formula::Not(inner) => format!("¬({})", display_formula(inner, vars, interner)),
        Formula::And(fs) => format!(
            "({})",
            fs.iter()
                .map(|f| display_formula(f, vars, interner))
                .collect::<Vec<_>>()
                .join(" ∧ ")
        ),
        Formula::Or(fs) => format!(
            "({})",
            fs.iter()
                .map(|f| display_formula(f, vars, interner))
                .collect::<Vec<_>>()
                .join(" ∨ ")
        ),
        Formula::Exists(vs, inner) => format!(
            "∃{} ({})",
            vs.iter()
                .map(|v| vars.name(*v))
                .collect::<Vec<_>>()
                .join(","),
            display_formula(inner, vars, interner)
        ),
        Formula::Forall(vs, inner) => format!(
            "∀{} ({})",
            vs.iter()
                .map(|v| vars.name(*v))
                .collect::<Vec<_>>()
                .join(","),
            display_formula(inner, vars, interner)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unchained_common::Interner;

    /// A three-node path graph a -> b -> c.
    fn path_instance() -> (Interner, Symbol, Instance, Vec<Value>) {
        let mut i = Interner::new();
        let g = i.intern("G");
        let a = Value::sym(&mut i, "a");
        let b = Value::sym(&mut i, "b");
        let c = Value::sym(&mut i, "c");
        let mut inst = Instance::new();
        inst.insert_fact(g, Tuple::from([a, b]));
        inst.insert_fact(g, Tuple::from([b, c]));
        let domain = inst.adom_sorted();
        (i, g, inst, domain)
    }

    #[test]
    fn atoms_and_equality() {
        let (_, g, inst, dom) = path_instance();
        let mut vs = VarSet::new();
        let x = vs.var("x");
        let y = vs.var("y");
        // {(x,y) | G(x,y)} == G
        let phi = Formula::Atom(g, vec![FoTerm::Var(x), FoTerm::Var(y)]);
        let rel = eval_formula(&phi, &[x, y], &inst, &dom).unwrap();
        assert_eq!(rel.len(), 2);
        // {(x) | G(x,x)} is empty
        let loopy = Formula::Atom(g, vec![FoTerm::Var(x), FoTerm::Var(x)]);
        assert!(eval_formula(&loopy, &[x], &inst, &dom).unwrap().is_empty());
        // {(x,y) | x = y} is the diagonal of the domain
        let diag = Formula::Eq(FoTerm::Var(x), FoTerm::Var(y));
        assert_eq!(eval_formula(&diag, &[x, y], &inst, &dom).unwrap().len(), 3);
    }

    #[test]
    fn sentences_and_quantifiers() {
        let (_, g, inst, dom) = path_instance();
        let mut vs = VarSet::new();
        let x = vs.var("x");
        let y = vs.var("y");
        // ∃x∃y G(x,y) — true.
        let some_edge = Formula::exists(
            [x, y],
            Formula::Atom(g, vec![FoTerm::Var(x), FoTerm::Var(y)]),
        );
        assert!(eval_sentence(&some_edge, &inst, &dom).unwrap());
        // ∀x∃y G(x,y) — false ('c' has no outgoing edge).
        let total = Formula::forall(
            [x],
            Formula::exists([y], Formula::Atom(g, vec![FoTerm::Var(x), FoTerm::Var(y)])),
        );
        assert!(!eval_sentence(&total, &inst, &dom).unwrap());
        // ∀x∀y (G(x,y) → ¬G(y,x)) — true (no 2-cycles).
        let antisym = Formula::forall(
            [x, y],
            Formula::Atom(g, vec![FoTerm::Var(x), FoTerm::Var(y)])
                .implies(Formula::Atom(g, vec![FoTerm::Var(y), FoTerm::Var(x)]).not()),
        );
        assert!(eval_sentence(&antisym, &inst, &dom).unwrap());
    }

    #[test]
    fn open_formula_with_negation() {
        let (mut i, g, inst, dom) = path_instance();
        let mut vs = VarSet::new();
        let x = vs.var("x");
        let y = vs.var("y");
        // sinks: {x | ∀y ¬G(x,y)} = {c}
        let sinks = Formula::forall(
            [y],
            Formula::Atom(g, vec![FoTerm::Var(x), FoTerm::Var(y)]).not(),
        );
        let rel = eval_formula(&sinks, &[x], &inst, &dom).unwrap();
        let c = Value::sym(&mut i, "c");
        assert_eq!(rel.len(), 1);
        assert!(rel.contains(&Tuple::from([c])));
    }

    #[test]
    fn errors() {
        let (mut i, g, inst, dom) = path_instance();
        let missing = i.intern("missing");
        let mut vs = VarSet::new();
        let x = vs.var("x");
        let bad = Formula::Atom(missing, vec![FoTerm::Var(x)]);
        assert!(matches!(
            eval_formula(&bad, &[x], &inst, &dom),
            Err(FoError::UnknownRelation(_))
        ));
        let wrong_arity = Formula::Atom(g, vec![FoTerm::Var(x)]);
        assert!(matches!(
            eval_formula(&wrong_arity, &[x], &inst, &dom),
            Err(FoError::ArityMismatch { .. })
        ));
        // Sentence with a free variable is rejected.
        let open = Formula::Atom(g, vec![FoTerm::Var(x), FoTerm::Var(x)]);
        assert!(matches!(
            eval_sentence(&open, &inst, &dom),
            Err(FoError::UnboundVariable(_))
        ));
        // Open formula whose free variables are not all listed.
        assert!(eval_formula(&open, &[], &inst, &dom).is_err());
    }

    #[test]
    fn free_vars_respect_binders() {
        let mut vs = VarSet::new();
        let x = vs.var("x");
        let y = vs.var("y");
        let mut i = Interner::new();
        let g = i.intern("G");
        let phi = Formula::exists([y], Formula::Atom(g, vec![FoTerm::Var(x), FoTerm::Var(y)]));
        assert_eq!(phi.free_vars(), vec![x]);
    }

    #[test]
    fn display_roundtrip_is_readable() {
        let mut vs = VarSet::new();
        let x = vs.var("x");
        let mut i = Interner::new();
        let p = i.intern("P");
        let phi = Formula::forall([x], Formula::Atom(p, vec![FoTerm::Var(x)]).not());
        assert_eq!(display_formula(&phi, &vs, &i), "∀x (¬(P(x)))");
    }

    #[test]
    fn empty_domain_quantifiers() {
        let mut i = Interner::new();
        let p = i.intern("P");
        let mut inst = Instance::new();
        inst.ensure(p, 1);
        let mut vs = VarSet::new();
        let x = vs.var("x");
        // Over the empty domain, ∀x φ is vacuously true and ∃x φ false.
        let atom = Formula::Atom(p, vec![FoTerm::Var(x)]);
        assert!(eval_sentence(&Formula::forall([x], atom.clone()), &inst, &[]).unwrap());
        assert!(!eval_sentence(&Formula::exists([x], atom), &inst, &[]).unwrap());
    }
}

//! Relational algebra: the algebraization of FO recalled in Section 2 of
//! the paper (Codd's theorem).
//!
//! Operators are positional: projection and selection address columns by
//! index, and the join operator concatenates the left-hand columns with
//! the right-hand ones. The classical attribute-rename operator `δ` is
//! subsumed by positional projection.

use std::fmt;
use unchained_common::{Index, Instance, Relation, Symbol, Tuple, Value};

/// One side of a selection comparison.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Operand {
    /// A column of the input.
    Col(usize),
    /// A constant.
    Const(Value),
}

/// A selection condition: (in)equality between two operands.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Condition {
    /// Left operand.
    pub left: Operand,
    /// Right operand.
    pub right: Operand,
    /// True for `=`, false for `≠`.
    pub equal: bool,
}

/// A relational algebra expression.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// A base relation of the instance.
    Rel(Symbol),
    /// A literal constant relation.
    Lit(Relation),
    /// `π_cols(e)` — also serves as positional rename/reorder.
    Project(Box<Expr>, Vec<usize>),
    /// `σ_conds(e)` (conjunction of conditions).
    Select(Box<Expr>, Vec<Condition>),
    /// Equi-join: tuples `l ++ r` with `l[i] = r[j]` for each `(i, j)`.
    /// With no pairs this is the Cartesian product `×`.
    Join(Box<Expr>, Box<Expr>, Vec<(usize, usize)>),
    /// `e1 ∪ e2`.
    Union(Box<Expr>, Box<Expr>),
    /// `e1 − e2`.
    Diff(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// A base relation.
    pub fn rel(name: Symbol) -> Expr {
        Expr::Rel(name)
    }

    /// `π_cols(self)`.
    pub fn project(self, cols: impl Into<Vec<usize>>) -> Expr {
        Expr::Project(Box::new(self), cols.into())
    }

    /// `σ` with a single condition.
    pub fn select(self, cond: Condition) -> Expr {
        Expr::Select(Box::new(self), vec![cond])
    }

    /// Natural-style equi-join on explicit column pairs.
    pub fn join_on(self, other: Expr, pairs: impl Into<Vec<(usize, usize)>>) -> Expr {
        Expr::Join(Box::new(self), Box::new(other), pairs.into())
    }

    /// Cartesian product.
    pub fn product(self, other: Expr) -> Expr {
        Expr::Join(Box::new(self), Box::new(other), vec![])
    }

    /// Union.
    pub fn union(self, other: Expr) -> Expr {
        Expr::Union(Box::new(self), Box::new(other))
    }

    /// Difference.
    pub fn diff(self, other: Expr) -> Expr {
        Expr::Diff(Box::new(self), Box::new(other))
    }
}

/// Algebra evaluation errors.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AlgebraError {
    /// The expression mentions a relation absent from the instance.
    UnknownRelation(Symbol),
    /// A column index exceeds the input arity.
    ColumnOutOfRange {
        /// Offending index.
        column: usize,
        /// Input arity.
        arity: usize,
    },
    /// Union/difference of relations with different arities.
    ArityMismatch {
        /// Left arity.
        left: usize,
        /// Right arity.
        right: usize,
    },
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::UnknownRelation(s) => write!(f, "unknown relation {s:?}"),
            AlgebraError::ColumnOutOfRange { column, arity } => {
                write!(f, "column {column} out of range for arity {arity}")
            }
            AlgebraError::ArityMismatch { left, right } => {
                write!(f, "arity mismatch: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for AlgebraError {}

fn operand_value(op: Operand, tuple: &Tuple) -> Value {
    match op {
        Operand::Col(c) => tuple[c],
        Operand::Const(v) => v,
    }
}

fn check_operand(op: Operand, arity: usize) -> Result<(), AlgebraError> {
    if let Operand::Col(c) = op {
        if c >= arity {
            return Err(AlgebraError::ColumnOutOfRange { column: c, arity });
        }
    }
    Ok(())
}

/// Evaluates `expr` against `instance`, producing a materialized
/// relation.
pub fn eval(expr: &Expr, instance: &Instance) -> Result<Relation, AlgebraError> {
    match expr {
        Expr::Rel(name) => instance
            .relation(*name)
            .cloned()
            .ok_or(AlgebraError::UnknownRelation(*name)),
        Expr::Lit(rel) => Ok(rel.clone()),
        Expr::Project(inner, cols) => {
            let input = eval(inner, instance)?;
            for &c in cols {
                if c >= input.arity() {
                    return Err(AlgebraError::ColumnOutOfRange {
                        column: c,
                        arity: input.arity(),
                    });
                }
            }
            let mut out = Relation::new(cols.len());
            for t in input.iter() {
                out.insert(t.project(cols));
            }
            Ok(out)
        }
        Expr::Select(inner, conds) => {
            let input = eval(inner, instance)?;
            for cond in conds {
                check_operand(cond.left, input.arity())?;
                check_operand(cond.right, input.arity())?;
            }
            let mut out = Relation::new(input.arity());
            for t in input.iter() {
                let ok = conds
                    .iter()
                    .all(|c| (operand_value(c.left, t) == operand_value(c.right, t)) == c.equal);
                if ok {
                    out.insert(t.clone());
                }
            }
            Ok(out)
        }
        Expr::Join(left, right, pairs) => {
            let l = eval(left, instance)?;
            let r = eval(right, instance)?;
            for &(i, j) in pairs {
                if i >= l.arity() {
                    return Err(AlgebraError::ColumnOutOfRange {
                        column: i,
                        arity: l.arity(),
                    });
                }
                if j >= r.arity() {
                    return Err(AlgebraError::ColumnOutOfRange {
                        column: j,
                        arity: r.arity(),
                    });
                }
            }
            let mut out = Relation::new(l.arity() + r.arity());
            if pairs.is_empty() {
                // Cartesian product.
                for lt in l.iter() {
                    for rt in r.iter() {
                        let vals: Vec<Value> =
                            lt.values().iter().chain(rt.values()).copied().collect();
                        out.insert(Tuple::from(vals));
                    }
                }
            } else {
                // Hash join: index the right side on its join columns.
                let rcols: Vec<usize> = pairs.iter().map(|&(_, j)| j).collect();
                let index = Index::build(&r, &rcols);
                let mut key = Vec::with_capacity(pairs.len());
                for lt in l.iter() {
                    key.clear();
                    key.extend(pairs.iter().map(|&(i, _)| lt[i]));
                    for rt in index.probe(&key) {
                        let vals: Vec<Value> =
                            lt.values().iter().chain(rt.iter()).copied().collect();
                        out.insert(Tuple::from(vals));
                    }
                }
            }
            Ok(out)
        }
        Expr::Union(left, right) => {
            let mut l = eval(left, instance)?;
            let r = eval(right, instance)?;
            if l.arity() != r.arity() {
                return Err(AlgebraError::ArityMismatch {
                    left: l.arity(),
                    right: r.arity(),
                });
            }
            l.union_with(&r);
            Ok(l)
        }
        Expr::Diff(left, right) => {
            let mut l = eval(left, instance)?;
            let r = eval(right, instance)?;
            if l.arity() != r.arity() {
                return Err(AlgebraError::ArityMismatch {
                    left: l.arity(),
                    right: r.arity(),
                });
            }
            l.difference_with(&r);
            Ok(l)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unchained_common::Interner;

    fn setup() -> (Interner, Symbol, Instance) {
        let mut i = Interner::new();
        let g = i.intern("G");
        let mut inst = Instance::new();
        for (a, b) in [(1, 2), (2, 3), (3, 1), (2, 2)] {
            inst.insert_fact(g, Tuple::from([Value::Int(a), Value::Int(b)]));
        }
        (i, g, inst)
    }

    #[test]
    fn project() {
        let (_, g, inst) = setup();
        let sources = eval(&Expr::rel(g).project([0]), &inst).unwrap();
        assert_eq!(sources.len(), 3); // {1, 2, 3}
        let swapped = eval(&Expr::rel(g).project([1, 0]), &inst).unwrap();
        assert!(swapped.contains(&Tuple::from([Value::Int(2), Value::Int(1)])));
    }

    #[test]
    fn select_eq_and_neq() {
        let (_, g, inst) = setup();
        let diag = eval(
            &Expr::rel(g).select(Condition {
                left: Operand::Col(0),
                right: Operand::Col(1),
                equal: true,
            }),
            &inst,
        )
        .unwrap();
        assert_eq!(diag.len(), 1);
        let off_diag = eval(
            &Expr::rel(g).select(Condition {
                left: Operand::Col(0),
                right: Operand::Col(1),
                equal: false,
            }),
            &inst,
        )
        .unwrap();
        assert_eq!(off_diag.len(), 3);
        let from_two = eval(
            &Expr::rel(g).select(Condition {
                left: Operand::Col(0),
                right: Operand::Const(Value::Int(2)),
                equal: true,
            }),
            &inst,
        )
        .unwrap();
        assert_eq!(from_two.len(), 2);
    }

    #[test]
    fn join_computes_two_step_paths() {
        let (_, g, inst) = setup();
        // G ⋈_{1=0} G, projected to endpoints: pairs at distance two.
        let expr = Expr::rel(g).join_on(Expr::rel(g), [(1, 0)]).project([0, 3]);
        let two_step = eval(&expr, &inst).unwrap();
        // 1->2->3, 1->2->2, 2->3->1, 3->1->2, 2->2->3, 2->2->2
        assert_eq!(two_step.len(), 6);
        assert!(two_step.contains(&Tuple::from([Value::Int(1), Value::Int(3)])));
    }

    #[test]
    fn product_sizes_multiply() {
        let (_, g, inst) = setup();
        let p = eval(&Expr::rel(g).product(Expr::rel(g)), &inst).unwrap();
        assert_eq!(p.len(), 16);
        assert_eq!(p.arity(), 4);
    }

    #[test]
    fn union_and_difference() {
        let (_, g, inst) = setup();
        let u = eval(&Expr::rel(g).union(Expr::rel(g).project([1, 0])), &inst).unwrap();
        assert_eq!(u.len(), 7); // 4 + 4 − 1 shared (2,2)
        let d = eval(&Expr::rel(g).diff(Expr::rel(g).project([1, 0])), &inst).unwrap();
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn errors() {
        let (mut i, g, inst) = setup();
        let missing = i.intern("missing");
        assert!(matches!(
            eval(&Expr::rel(missing), &inst),
            Err(AlgebraError::UnknownRelation(_))
        ));
        assert!(matches!(
            eval(&Expr::rel(g).project([5]), &inst),
            Err(AlgebraError::ColumnOutOfRange { .. })
        ));
        assert!(matches!(
            eval(&Expr::rel(g).union(Expr::rel(g).project([0])), &inst),
            Err(AlgebraError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn literal_relations() {
        let (_, _, inst) = setup();
        let lit = Relation::from_tuples(1, vec![Tuple::from([Value::Int(9)])]);
        let out = eval(&Expr::Lit(lit.clone()), &inst).unwrap();
        assert!(out.same_tuples(&lit));
    }
}

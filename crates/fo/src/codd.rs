//! Codd's theorem, empirically: compiling FO formulas to relational
//! algebra.
//!
//! Section 2 of the paper recalls that "FO has an algebraization called
//! relational algebra" \[51\]. This module implements the constructive
//! direction used in practice: given a formula `φ` with free variables
//! `x̄` and an *active domain* `D`, produce an algebra expression whose
//! value equals `{x̄ | D ⊨ φ}` under the active-domain semantics.
//!
//! The translation is the textbook one:
//!
//! * an atom `R(t̄)` becomes selections (for constants and repeated
//!   variables) over `R`, projected and padded to the target column
//!   layout via products with the domain relation `D`;
//! * `∧` becomes join on shared free variables (here: product +
//!   selection, since columns are positional), `∨` becomes union of
//!   same-layout expressions, `¬φ` becomes `D^k − ⟦φ⟧`;
//! * `∃y φ` projects `y` away; `∀y φ` is `¬∃y ¬φ`.
//!
//! Every subexpression is materialized over the **full layout** (all
//! free variables of the enclosing comprehension plus the quantified
//! ones in scope), which keeps the translation simple and obviously
//! correct at the cost of larger intermediates — this is the semantics
//! reference, not the fast path. The equivalence with the direct
//! evaluator in [`crate::formula`] is checked by unit and property
//! tests; both sides realize the same queries, which is the content of
//! Codd's theorem at this scale.

use crate::algebra::{self, Condition, Expr, Operand};
use crate::formula::{FoError, FoTerm, FoVar, Formula};
use unchained_common::{Instance, Relation, Tuple, Value};

/// Compiles `phi` (with free variables `layout`, in order) to an
/// algebra expression over `instance`'s relations, with quantifiers and
/// negation ranging over the given `domain`.
///
/// The resulting expression — evaluated with
/// [`crate::algebra::eval`] against the same instance — produces
/// exactly `eval_formula(phi, layout, instance, domain)`.
pub fn compile_formula(phi: &Formula, layout: &[FoVar], domain: &[Value]) -> Result<Expr, FoError> {
    for v in phi.free_vars() {
        if !layout.contains(&v) {
            return Err(FoError::UnboundVariable(v));
        }
    }
    let dom_rel = Relation::from_tuples(1, domain.iter().map(|&v| Tuple::from([v])));
    let max_var = max_var_index(phi)
        .into_iter()
        .chain(layout.iter().map(|v| v.index() as u32))
        .max()
        .map_or(0, |m| m + 1);
    let ctx = Ctx {
        domain: dom_rel,
        next_fresh: std::cell::Cell::new(max_var),
    };
    ctx.compile(phi, layout)
}

fn max_var_index(phi: &Formula) -> Option<u32> {
    let term = |t: &FoTerm| match t {
        FoTerm::Var(v) => Some(v.0),
        FoTerm::Const(_) => None,
    };
    match phi {
        Formula::True | Formula::False => None,
        Formula::Atom(_, terms) => terms.iter().filter_map(term).max(),
        Formula::Eq(l, r) => term(l).max(term(r)),
        Formula::Not(inner) => max_var_index(inner),
        Formula::And(fs) | Formula::Or(fs) => fs.iter().filter_map(max_var_index).max(),
        Formula::Exists(vars, inner) | Formula::Forall(vars, inner) => {
            vars.iter().map(|v| v.0).max().max(max_var_index(inner))
        }
    }
}

/// Capture-avoiding renaming of the free occurrences of `from` to `to`.
fn rename(phi: &Formula, from: FoVar, to: FoVar) -> Formula {
    let term = |t: &FoTerm| match t {
        FoTerm::Var(v) if *v == from => FoTerm::Var(to),
        other => *other,
    };
    match phi {
        Formula::True => Formula::True,
        Formula::False => Formula::False,
        Formula::Atom(p, terms) => Formula::Atom(*p, terms.iter().map(term).collect()),
        Formula::Eq(l, r) => Formula::Eq(term(l), term(r)),
        Formula::Not(inner) => rename(inner, from, to).not(),
        Formula::And(fs) => Formula::And(fs.iter().map(|f| rename(f, from, to)).collect()),
        Formula::Or(fs) => Formula::Or(fs.iter().map(|f| rename(f, from, to)).collect()),
        Formula::Exists(vars, inner) => {
            if vars.contains(&from) {
                // `from` is re-bound here: nothing free below.
                Formula::Exists(vars.clone(), inner.clone())
            } else {
                Formula::Exists(vars.clone(), Box::new(rename(inner, from, to)))
            }
        }
        Formula::Forall(vars, inner) => {
            if vars.contains(&from) {
                Formula::Forall(vars.clone(), inner.clone())
            } else {
                Formula::Forall(vars.clone(), Box::new(rename(inner, from, to)))
            }
        }
    }
}

struct Ctx {
    domain: Relation,
    next_fresh: std::cell::Cell<u32>,
}

impl Ctx {
    /// `D^k` — the k-fold product of the domain (k = layout length).
    fn domain_power(&self, k: usize) -> Expr {
        if k == 0 {
            // The zero-ary "true" relation: one empty tuple.
            return Expr::Lit(Relation::from_tuples(0, [Tuple::from([])]));
        }
        let mut e = Expr::Lit(self.domain.clone());
        for _ in 1..k {
            e = e.product(Expr::Lit(self.domain.clone()));
        }
        e
    }

    fn compile(&self, phi: &Formula, layout: &[FoVar]) -> Result<Expr, FoError> {
        let k = layout.len();
        match phi {
            Formula::True => Ok(self.domain_power(k)),
            Formula::False => Ok(Expr::Lit(Relation::new(k))),
            Formula::Atom(pred, terms) => {
                // Start from R × D^k, select agreement between R's
                // columns and the layout columns (or constants), then
                // project the layout columns away from R's prefix.
                let arity = terms.len();
                let base = Expr::Rel(*pred).product(self.domain_power(k));
                let mut conds = Vec::new();
                for (pos, term) in terms.iter().enumerate() {
                    match term {
                        FoTerm::Const(c) => conds.push(Condition {
                            left: Operand::Col(pos),
                            right: Operand::Const(*c),
                            equal: true,
                        }),
                        FoTerm::Var(v) => {
                            let slot = layout
                                .iter()
                                .position(|lv| lv == v)
                                .ok_or(FoError::UnboundVariable(*v))?;
                            conds.push(Condition {
                                left: Operand::Col(pos),
                                right: Operand::Col(arity + slot),
                                equal: true,
                            });
                        }
                    }
                }
                let selected = if conds.is_empty() {
                    base
                } else {
                    Expr::Select(Box::new(base), conds)
                };
                let layout_cols: Vec<usize> = (arity..arity + k).collect();
                Ok(selected.project(layout_cols))
            }
            Formula::Eq(l, r) => {
                let base = self.domain_power(k);
                let operand = |t: &FoTerm| -> Result<Operand, FoError> {
                    match t {
                        FoTerm::Const(c) => Ok(Operand::Const(*c)),
                        FoTerm::Var(v) => layout
                            .iter()
                            .position(|lv| lv == v)
                            .map(Operand::Col)
                            .ok_or(FoError::UnboundVariable(*v)),
                    }
                };
                Ok(Expr::Select(
                    Box::new(base),
                    vec![Condition {
                        left: operand(l)?,
                        right: operand(r)?,
                        equal: true,
                    }],
                ))
            }
            Formula::Not(inner) => {
                let pos = self.compile(inner, layout)?;
                Ok(self.domain_power(k).diff(pos))
            }
            Formula::And(parts) => {
                let mut expr: Option<Expr> = None;
                for part in parts {
                    let e = self.compile(part, layout)?;
                    expr = Some(match expr {
                        // Same-layout conjuncts intersect:
                        // a ∩ b = a − (a − b).
                        Some(acc) => acc.clone().diff(acc.diff(e)),
                        None => e,
                    });
                }
                Ok(expr.unwrap_or_else(|| self.domain_power(k)))
            }
            Formula::Or(parts) => {
                let mut expr: Option<Expr> = None;
                for part in parts {
                    let e = self.compile(part, layout)?;
                    expr = Some(match expr {
                        Some(acc) => acc.union(e),
                        None => e,
                    });
                }
                Ok(expr.unwrap_or_else(|| Expr::Lit(Relation::new(k))))
            }
            Formula::Exists(vars, inner) => {
                // Extend the layout with the quantified variables,
                // alpha-renaming any that collide with a variable
                // already in scope (a bound `v` must shadow a free `v`,
                // as the direct evaluator's save/restore does), then
                // compile and project the extension away.
                let mut extended: Vec<FoVar> = layout.to_vec();
                let mut body = (**inner).clone();
                for v in vars {
                    let v = if extended.contains(v) {
                        let fresh = FoVar(self.next_fresh.get());
                        self.next_fresh.set(fresh.0 + 1);
                        body = rename(&body, *v, fresh);
                        fresh
                    } else {
                        *v
                    };
                    extended.push(v);
                }
                let inner_expr = self.compile(&body, &extended)?;
                Ok(inner_expr.project((0..k).collect::<Vec<_>>()))
            }
            Formula::Forall(vars, inner) => {
                // ∀ȳ φ ≡ ¬∃ȳ ¬φ.
                let rewritten = Formula::exists(vars.clone(), inner.clone().not()).not();
                self.compile(&rewritten, layout)
            }
        }
    }
}

/// Convenience: compile and evaluate in one step (the algebra
/// counterpart of [`crate::formula::eval_formula`]).
pub fn eval_via_algebra(
    phi: &Formula,
    layout: &[FoVar],
    instance: &Instance,
    domain: &[Value],
) -> Result<Relation, FoError> {
    let expr = compile_formula(phi, layout, domain)?;
    algebra::eval(&expr, instance).map_err(|e| match e {
        algebra::AlgebraError::UnknownRelation(s) => FoError::UnknownRelation(s),
        algebra::AlgebraError::ColumnOutOfRange { .. }
        | algebra::AlgebraError::ArityMismatch { .. } => {
            unreachable!("translation produces well-typed algebra: {e}")
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::{eval_formula, VarSet};
    use unchained_common::Interner;

    fn setup() -> (Interner, Instance, Vec<Value>) {
        let mut i = Interner::new();
        let g = i.intern("G");
        let p = i.intern("P");
        let mut inst = Instance::new();
        for (a, b) in [(1i64, 2), (2, 3), (3, 1), (2, 2)] {
            inst.insert_fact(g, Tuple::from([Value::Int(a), Value::Int(b)]));
        }
        inst.insert_fact(p, Tuple::from([Value::Int(2)]));
        let dom = inst.adom_sorted();
        (i, inst, dom)
    }

    fn assert_agree(phi: &Formula, layout: &[FoVar], inst: &Instance, dom: &[Value]) {
        let direct = eval_formula(phi, layout, inst, dom).unwrap();
        let via_algebra = eval_via_algebra(phi, layout, inst, dom).unwrap();
        assert!(
            direct.same_tuples(&via_algebra),
            "direct {} vs algebra {} tuples",
            direct.len(),
            via_algebra.len()
        );
    }

    #[test]
    fn atoms() {
        let (mut i, inst, dom) = setup();
        let g = i.intern("G");
        let mut vs = VarSet::new();
        let (x, y) = (vs.var("x"), vs.var("y"));
        assert_agree(
            &Formula::Atom(g, vec![FoTerm::Var(x), FoTerm::Var(y)]),
            &[x, y],
            &inst,
            &dom,
        );
        // Repeated variable: G(x,x).
        assert_agree(
            &Formula::Atom(g, vec![FoTerm::Var(x), FoTerm::Var(x)]),
            &[x],
            &inst,
            &dom,
        );
        // Constant: G(2, y).
        assert_agree(
            &Formula::Atom(g, vec![FoTerm::Const(Value::Int(2)), FoTerm::Var(y)]),
            &[y],
            &inst,
            &dom,
        );
        // Swapped layout: {(y,x) | G(x,y)}.
        assert_agree(
            &Formula::Atom(g, vec![FoTerm::Var(x), FoTerm::Var(y)]),
            &[y, x],
            &inst,
            &dom,
        );
    }

    #[test]
    fn connectives_and_negation() {
        let (mut i, inst, dom) = setup();
        let g = i.intern("G");
        let p = i.intern("P");
        let mut vs = VarSet::new();
        let (x, y) = (vs.var("x"), vs.var("y"));
        let gxy = Formula::Atom(g, vec![FoTerm::Var(x), FoTerm::Var(y)]);
        let px = Formula::Atom(p, vec![FoTerm::Var(x)]);
        assert_agree(&gxy.clone().and(px.clone()), &[x, y], &inst, &dom);
        assert_agree(&gxy.clone().or(px.clone()), &[x, y], &inst, &dom);
        assert_agree(&gxy.clone().not(), &[x, y], &inst, &dom);
        assert_agree(&px.clone().implies(gxy.clone()), &[x, y], &inst, &dom);
        assert_agree(
            &Formula::Eq(FoTerm::Var(x), FoTerm::Var(y)).and(gxy),
            &[x, y],
            &inst,
            &dom,
        );
    }

    #[test]
    fn quantifiers() {
        let (mut i, inst, dom) = setup();
        let g = i.intern("G");
        let mut vs = VarSet::new();
        let (x, y, z) = (vs.var("x"), vs.var("y"), vs.var("z"));
        // Nodes with an out-neighbour.
        assert_agree(
            &Formula::exists([y], Formula::Atom(g, vec![FoTerm::Var(x), FoTerm::Var(y)])),
            &[x],
            &inst,
            &dom,
        );
        // Two-step reachability.
        assert_agree(
            &Formula::exists(
                [z],
                Formula::Atom(g, vec![FoTerm::Var(x), FoTerm::Var(z)])
                    .and(Formula::Atom(g, vec![FoTerm::Var(z), FoTerm::Var(y)])),
            ),
            &[x, y],
            &inst,
            &dom,
        );
        // Sinks: ∀y ¬G(x,y).
        assert_agree(
            &Formula::forall(
                [y],
                Formula::Atom(g, vec![FoTerm::Var(x), FoTerm::Var(y)]).not(),
            ),
            &[x],
            &inst,
            &dom,
        );
        // Sentence (k = 0): ∃x∃y G(x,y).
        assert_agree(
            &Formula::exists(
                [x, y],
                Formula::Atom(g, vec![FoTerm::Var(x), FoTerm::Var(y)]),
            ),
            &[],
            &inst,
            &dom,
        );
    }

    #[test]
    fn booleans_and_edge_cases() {
        let (_, inst, dom) = setup();
        let vs = &mut VarSet::new();
        let x = vs.var("x");
        assert_agree(&Formula::True, &[x], &inst, &dom);
        assert_agree(&Formula::False, &[x], &inst, &dom);
        assert_agree(&Formula::True, &[], &inst, &dom);
        assert_agree(&Formula::And(vec![]), &[x], &inst, &dom);
        assert_agree(&Formula::Or(vec![]), &[x], &inst, &dom);
    }

    #[test]
    fn unlisted_free_variable_rejected() {
        let mut i = Interner::new();
        let p = i.intern("P");
        let mut vs = VarSet::new();
        let x = vs.var("x");
        let phi = Formula::Atom(p, vec![FoTerm::Var(x)]);
        assert!(matches!(
            compile_formula(&phi, &[], &[Value::Int(1)]),
            Err(FoError::UnboundVariable(_))
        ));
    }

    #[test]
    fn parsed_formulas_agree() {
        // End-to-end: text → formula → (direct | algebra).
        let (mut i, inst, dom) = setup();
        for src in [
            "G(x,y) & !G(y,x)",
            "exists z (G(x,z) & G(z,y)) or x = y",
            "forall y (G(x,y) -> P(y))",
            "P(x) & x != 2",
        ] {
            let mut vs = VarSet::new();
            let phi = crate::text::parse_formula(src, &mut i, &mut vs).unwrap();
            let layout = phi.free_vars();
            assert_agree(&phi, &layout, &inst, &dom);
        }
    }
}

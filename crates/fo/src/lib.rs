//! # unchained-fo
//!
//! First-order logic over relations (relational calculus) and relational
//! algebra, as recalled in Section 2 of *Datalog Unchained*. These are
//! the assignment right-hand sides of the *while* / *fixpoint*
//! comparator languages and the oracle queries used by the test harness.
//!
//! * [`formula`] — FO formulas with active-domain quantifier semantics,
//!   sentence evaluation and `{x̄ | φ}` set comprehension.
//! * [`algebra`] — positional relational algebra (π, σ, ⋈, ×, ∪, −).
//! * [`codd`] — the constructive FO → algebra translation (Codd's
//!   theorem), cross-checked against the direct evaluator.
//! * [`text`] — a parseable text syntax for formulas.

pub mod algebra;
pub mod codd;
pub mod formula;
pub mod join;
pub mod text;

pub use algebra::{eval as eval_algebra, AlgebraError, Condition, Expr, Operand};
pub use codd::{compile_formula, eval_via_algebra};
pub use formula::{
    display_formula, eval_formula, eval_sentence, FoError, FoTerm, FoVar, Formula, VarSet,
};
pub use join::eval_formula_joined;
pub use text::{parse_formula, TextError};

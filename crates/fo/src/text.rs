//! Text syntax for FO formulas (and the token layer shared with the
//! while-language statement parser in `unchained-while`).
//!
//! Formula grammar:
//!
//! ```text
//! phi  ::= imp
//! imp  ::= disj [ "->" imp ]                      (right associative)
//! disj ::= conj { ("or" | "|") conj }
//! conj ::= neg  { ("and" | "&") neg }
//! neg  ::= ("!" | "not") neg | prim
//! prim ::= "(" phi ")"
//!        | ("forall" | "exists") var+ "(" phi ")"
//!        | "true" | "false"
//!        | ident "(" terms ")"                    (relational atom)
//!        | term ("=" | "!=") term
//! term ::= ident | integer | 'symbol'
//! ```
//!
//! Identifiers in argument position are variables; in predicate
//! position, relation names — the same convention as the Datalog
//! syntax. Unicode `¬ ∧ ∨ → ∀ ∃ ≠` are accepted.

use crate::formula::{FoTerm, FoVar, Formula, VarSet};
use std::fmt;
use unchained_common::{Interner, Value};

/// Token kinds (a superset of what formulas need: the while-language
/// statement parser reuses this lexer).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// Identifier.
    Ident(String),
    /// Integer constant.
    Int(i64),
    /// Quoted symbolic constant.
    Sym(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `|` (used both as disjunction and as the set-builder bar; the
    /// parsers disambiguate by context)
    Bar,
    /// `&` or `and` or `∧`
    And,
    /// `or` or `∨`
    Or,
    /// `!` or `not` or `¬`
    Not,
    /// `->` or `→`
    Implies,
    /// `=`
    Eq,
    /// `!=` or `≠`
    Neq,
    /// `forall` or `∀`
    Forall,
    /// `exists` or `∃`
    Exists,
    /// `true`
    True,
    /// `false`
    False,
    /// `:=`
    Assign,
    /// `+=`
    CumAssign,
    /// `while`
    While,
    /// `do`
    Do,
    /// `end`
    End,
    /// `change`
    Change,
    /// `W` (the witness operator)
    Witness,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(n) => write!(f, "integer {n}"),
            Tok::Sym(s) => write!(f, "constant '{s}'"),
            other => {
                let s = match other {
                    Tok::LParen => "`(`",
                    Tok::RParen => "`)`",
                    Tok::LBrace => "`{`",
                    Tok::RBrace => "`}`",
                    Tok::Comma => "`,`",
                    Tok::Semi => "`;`",
                    Tok::Bar => "`|`",
                    Tok::And => "`&`",
                    Tok::Or => "`or`",
                    Tok::Not => "`!`",
                    Tok::Implies => "`->`",
                    Tok::Eq => "`=`",
                    Tok::Neq => "`!=`",
                    Tok::Forall => "`forall`",
                    Tok::Exists => "`exists`",
                    Tok::True => "`true`",
                    Tok::False => "`false`",
                    Tok::Assign => "`:=`",
                    Tok::CumAssign => "`+=`",
                    Tok::While => "`while`",
                    Tok::Do => "`do`",
                    Tok::End => "`end`",
                    Tok::Change => "`change`",
                    Tok::Witness => "`W`",
                    Tok::Eof => "end of input",
                    _ => unreachable!(),
                };
                f.write_str(s)
            }
        }
    }
}

/// A parse error for the text syntax.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TextError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the source (best effort).
    pub offset: usize,
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for TextError {}

/// Tokenizes the formula / while-language text syntax. Comments run
/// from `%`, `#` or `//` to end of line.
pub fn lex(src: &str) -> Result<Vec<(Tok, usize)>, TextError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let n = bytes.len();
    while i < n {
        let c = bytes[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '%' || c == '#' || (c == '/' && bytes.get(i + 1) == Some(&'/')) {
            while i < n && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        let tok = match c {
            '(' => {
                i += 1;
                Tok::LParen
            }
            ')' => {
                i += 1;
                Tok::RParen
            }
            '{' => {
                i += 1;
                Tok::LBrace
            }
            '}' => {
                i += 1;
                Tok::RBrace
            }
            ',' => {
                i += 1;
                Tok::Comma
            }
            ';' => {
                i += 1;
                Tok::Semi
            }
            '|' => {
                i += 1;
                Tok::Bar
            }
            '&' | '∧' => {
                i += 1;
                Tok::And
            }
            '∨' => {
                i += 1;
                Tok::Or
            }
            '¬' => {
                i += 1;
                Tok::Not
            }
            '→' => {
                i += 1;
                Tok::Implies
            }
            '∀' => {
                i += 1;
                Tok::Forall
            }
            '∃' => {
                i += 1;
                Tok::Exists
            }
            '≠' => {
                i += 1;
                Tok::Neq
            }
            '=' => {
                i += 1;
                Tok::Eq
            }
            '!' => {
                i += 1;
                if bytes.get(i) == Some(&'=') {
                    i += 1;
                    Tok::Neq
                } else {
                    Tok::Not
                }
            }
            '-' => {
                i += 1;
                if bytes.get(i) == Some(&'>') {
                    i += 1;
                    Tok::Implies
                } else if bytes.get(i).is_some_and(|d| d.is_ascii_digit()) {
                    let mut s = String::from("-");
                    while i < n && bytes[i].is_ascii_digit() {
                        s.push(bytes[i]);
                        i += 1;
                    }
                    Tok::Int(s.parse().map_err(|_| TextError {
                        message: format!("integer out of range: {s}"),
                        offset: start,
                    })?)
                } else {
                    return Err(TextError {
                        message: "expected `->` or a number after `-`".into(),
                        offset: start,
                    });
                }
            }
            ':' => {
                i += 1;
                if bytes.get(i) == Some(&'=') {
                    i += 1;
                    Tok::Assign
                } else {
                    return Err(TextError {
                        message: "expected `:=`".into(),
                        offset: start,
                    });
                }
            }
            '+' => {
                i += 1;
                if bytes.get(i) == Some(&'=') {
                    i += 1;
                    Tok::CumAssign
                } else {
                    return Err(TextError {
                        message: "expected `+=`".into(),
                        offset: start,
                    });
                }
            }
            '\'' | '"' => {
                let quote = c;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        Some(&ch) if ch == quote => {
                            i += 1;
                            break;
                        }
                        Some(&'\n') | None => {
                            return Err(TextError {
                                message: "unterminated quoted constant".into(),
                                offset: start,
                            })
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                    }
                }
                Tok::Sym(s)
            }
            d if d.is_ascii_digit() => {
                let mut s = String::new();
                while i < n && bytes[i].is_ascii_digit() {
                    s.push(bytes[i]);
                    i += 1;
                }
                Tok::Int(s.parse().map_err(|_| TextError {
                    message: format!("integer out of range: {s}"),
                    offset: start,
                })?)
            }
            a if a.is_alphabetic() || a == '_' => {
                let mut s = String::new();
                while i < n && (bytes[i].is_alphanumeric() || bytes[i] == '_' || bytes[i] == '-') {
                    // Stop before `->`.
                    if bytes[i] == '-' && bytes.get(i + 1) == Some(&'>') {
                        break;
                    }
                    s.push(bytes[i]);
                    i += 1;
                }
                match s.as_str() {
                    "and" => Tok::And,
                    "or" => Tok::Or,
                    "not" => Tok::Not,
                    "forall" => Tok::Forall,
                    "exists" => Tok::Exists,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "while" => Tok::While,
                    "do" => Tok::Do,
                    "end" => Tok::End,
                    "change" => Tok::Change,
                    "W" => Tok::Witness,
                    _ => Tok::Ident(s),
                }
            }
            other => {
                return Err(TextError {
                    message: format!("unexpected character `{other}`"),
                    offset: start,
                })
            }
        };
        out.push((tok, start));
    }
    out.push((Tok::Eof, n));
    Ok(out)
}

/// Cursor over lexed tokens, shared with the while-language parser.
pub struct Cursor<'a> {
    toks: Vec<(Tok, usize)>,
    at: usize,
    /// The interner for relation names and symbolic constants.
    pub interner: &'a mut Interner,
    /// The variable namespace (scoped by the caller).
    pub vars: &'a mut VarSet,
}

impl<'a> Cursor<'a> {
    /// Creates a cursor over `src`.
    pub fn new(
        src: &str,
        interner: &'a mut Interner,
        vars: &'a mut VarSet,
    ) -> Result<Self, TextError> {
        Ok(Cursor {
            toks: lex(src)?,
            at: 0,
            interner,
            vars,
        })
    }

    /// The current token.
    pub fn peek(&self) -> &Tok {
        &self.toks[self.at].0
    }

    /// Current byte offset (for errors).
    pub fn offset(&self) -> usize {
        self.toks[self.at].1
    }

    /// Consumes and returns the current token.
    pub fn bump(&mut self) -> Tok {
        let t = self.toks[self.at].0.clone();
        if self.at + 1 < self.toks.len() {
            self.at += 1;
        }
        t
    }

    /// Consumes `tok` or errors.
    pub fn expect(&mut self, tok: &Tok) -> Result<(), TextError> {
        if self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {tok}, found {}", self.peek())))
        }
    }

    /// Builds an error at the current position.
    pub fn error(&self, message: String) -> TextError {
        TextError {
            message,
            offset: self.offset(),
        }
    }

    /// True at end of input.
    pub fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn parse_term(&mut self) -> Result<FoTerm, TextError> {
        match self.bump() {
            Tok::Ident(name) => Ok(FoTerm::Var(self.vars.var(&name))),
            Tok::Int(n) => Ok(FoTerm::Const(Value::Int(n))),
            Tok::Sym(s) => Ok(FoTerm::Const(Value::Sym(self.interner.intern(&s)))),
            other => Err(self.error(format!("expected term, found {other}"))),
        }
    }

    /// Parses a full formula (entry point used by both `parse_formula`
    /// and the while-language parser inside `{ … | φ }`).
    pub fn parse_formula(&mut self) -> Result<Formula, TextError> {
        self.parse_implies()
    }

    fn parse_implies(&mut self) -> Result<Formula, TextError> {
        let lhs = self.parse_or()?;
        if self.peek() == &Tok::Implies {
            self.bump();
            let rhs = self.parse_implies()?;
            Ok(lhs.implies(rhs))
        } else {
            Ok(lhs)
        }
    }

    fn parse_or(&mut self) -> Result<Formula, TextError> {
        let mut parts = vec![self.parse_and()?];
        while self.peek() == &Tok::Or {
            self.bump();
            parts.push(self.parse_and()?);
        }
        if parts.len() == 1 {
            Ok(parts.pop().unwrap())
        } else {
            Ok(Formula::Or(parts))
        }
    }

    fn parse_and(&mut self) -> Result<Formula, TextError> {
        let mut parts = vec![self.parse_neg()?];
        while self.peek() == &Tok::And {
            self.bump();
            parts.push(self.parse_neg()?);
        }
        if parts.len() == 1 {
            Ok(parts.pop().unwrap())
        } else {
            Ok(Formula::And(parts))
        }
    }

    fn parse_neg(&mut self) -> Result<Formula, TextError> {
        if self.peek() == &Tok::Not {
            self.bump();
            Ok(self.parse_neg()?.not())
        } else {
            self.parse_prim()
        }
    }

    fn parse_var_list(&mut self) -> Result<Vec<FoVar>, TextError> {
        let mut vars = Vec::new();
        while let Tok::Ident(name) = self.peek().clone() {
            self.bump();
            vars.push(self.vars.var(&name));
            if self.peek() == &Tok::Comma {
                self.bump();
            }
        }
        if vars.is_empty() {
            return Err(self.error("expected at least one quantified variable".into()));
        }
        Ok(vars)
    }

    fn parse_prim(&mut self) -> Result<Formula, TextError> {
        match self.peek().clone() {
            Tok::LParen => {
                self.bump();
                let phi = self.parse_formula()?;
                self.expect(&Tok::RParen)?;
                Ok(phi)
            }
            Tok::Forall => {
                self.bump();
                let vars = self.parse_var_list()?;
                self.expect(&Tok::LParen)?;
                let phi = self.parse_formula()?;
                self.expect(&Tok::RParen)?;
                Ok(Formula::forall(vars, phi))
            }
            Tok::Exists => {
                self.bump();
                let vars = self.parse_var_list()?;
                self.expect(&Tok::LParen)?;
                let phi = self.parse_formula()?;
                self.expect(&Tok::RParen)?;
                Ok(Formula::exists(vars, phi))
            }
            Tok::True => {
                self.bump();
                Ok(Formula::True)
            }
            Tok::False => {
                self.bump();
                Ok(Formula::False)
            }
            Tok::Ident(name) => {
                self.bump();
                if self.peek() == &Tok::LParen {
                    // Relational atom.
                    self.bump();
                    let pred = self.interner.intern(&name);
                    let mut terms = Vec::new();
                    if self.peek() != &Tok::RParen {
                        loop {
                            terms.push(self.parse_term()?);
                            if self.peek() == &Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    Ok(Formula::Atom(pred, terms))
                } else {
                    // Equality / inequality with a variable LHS, or a
                    // zero-ary atom.
                    match self.peek() {
                        Tok::Eq => {
                            self.bump();
                            let lhs = FoTerm::Var(self.vars.var(&name));
                            let rhs = self.parse_term()?;
                            Ok(Formula::Eq(lhs, rhs))
                        }
                        Tok::Neq => {
                            self.bump();
                            let lhs = FoTerm::Var(self.vars.var(&name));
                            let rhs = self.parse_term()?;
                            Ok(Formula::Eq(lhs, rhs).not())
                        }
                        _ => Ok(Formula::Atom(self.interner.intern(&name), vec![])),
                    }
                }
            }
            Tok::Int(_) | Tok::Sym(_) => {
                let lhs = self.parse_term()?;
                match self.bump() {
                    Tok::Eq => Ok(Formula::Eq(lhs, self.parse_term()?)),
                    Tok::Neq => Ok(Formula::Eq(lhs, self.parse_term()?).not()),
                    other => Err(self.error(format!("expected `=` or `!=`, found {other}"))),
                }
            }
            other => Err(self.error(format!("expected formula, found {other}"))),
        }
    }
}

/// Parses a formula from text. Variables are resolved/created in
/// `vars`; relation names and symbolic constants are interned.
pub fn parse_formula(
    src: &str,
    interner: &mut Interner,
    vars: &mut VarSet,
) -> Result<Formula, TextError> {
    let mut cursor = Cursor::new(src, interner, vars)?;
    let phi = cursor.parse_formula()?;
    if !cursor.at_eof() {
        return Err(cursor.error(format!("unexpected {} after formula", cursor.peek())));
    }
    Ok(phi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::{eval_formula, eval_sentence};
    use unchained_common::{Instance, Tuple};

    fn setup() -> (Interner, Instance, Vec<Value>) {
        let mut i = Interner::new();
        let g = i.intern("G");
        let mut inst = Instance::new();
        for (a, b) in [(1i64, 2), (2, 3)] {
            inst.insert_fact(g, Tuple::from([Value::Int(a), Value::Int(b)]));
        }
        let dom = inst.adom_sorted();
        (i, inst, dom)
    }

    #[test]
    fn atoms_and_connectives() {
        let (mut i, inst, dom) = setup();
        let mut vs = VarSet::new();
        let phi = parse_formula("G(x,y) & x != y", &mut i, &mut vs).unwrap();
        let x = vs.var("x");
        let y = vs.var("y");
        let rel = eval_formula(&phi, &[x, y], &inst, &dom).unwrap();
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn quantifiers_and_implication() {
        let (mut i, inst, dom) = setup();
        let mut vs = VarSet::new();
        // Sinks: no outgoing edge.
        let phi = parse_formula("forall y ( !G(x,y) )", &mut i, &mut vs).unwrap();
        let x = vs.var("x");
        let rel = eval_formula(&phi, &[x], &inst, &dom).unwrap();
        assert_eq!(rel.len(), 1);
        assert!(rel.contains(&Tuple::from([Value::Int(3)])));
        // ∀x∀y (G(x,y) -> exists z (G(y,z) or y = 3))
        let mut vs = VarSet::new();
        let phi = parse_formula(
            "forall x, y (G(x,y) -> exists z (G(y,z) or y = 3))",
            &mut i,
            &mut vs,
        )
        .unwrap();
        assert!(eval_sentence(&phi, &inst, &dom).unwrap());
    }

    #[test]
    fn unicode_notation() {
        let (mut i, inst, dom) = setup();
        let mut vs1 = VarSet::new();
        let a = parse_formula("∀y (¬G(x,y))", &mut i, &mut vs1).unwrap();
        let mut vs2 = VarSet::new();
        let b = parse_formula("forall y (!G(x,y))", &mut i, &mut vs2).unwrap();
        let x1 = vs1.var("x");
        let x2 = vs2.var("x");
        let ra = eval_formula(&a, &[x1], &inst, &dom).unwrap();
        let rb = eval_formula(&b, &[x2], &inst, &dom).unwrap();
        assert!(ra.same_tuples(&rb));
    }

    #[test]
    fn precedence() {
        let mut i = Interner::new();
        let mut vs = VarSet::new();
        // a & b or c parses as (a ∧ b) ∨ c.
        let phi = parse_formula("A() & B() or C()", &mut i, &mut vs).unwrap();
        assert!(matches!(phi, Formula::Or(_)));
        // a -> b -> c is right-associative.
        let phi = parse_formula("A() -> B() -> C()", &mut i, &mut vs).unwrap();
        // (¬A ∨ (B → C)) — outermost is an Or.
        assert!(matches!(phi, Formula::Or(_)));
    }

    #[test]
    fn zero_ary_atoms_and_booleans() {
        let mut i = Interner::new();
        let mut vs = VarSet::new();
        let phi = parse_formula("flag & true & !false", &mut i, &mut vs).unwrap();
        let flag = i.get("flag").unwrap();
        let mut inst = Instance::new();
        inst.insert_fact(flag, Tuple::from([]));
        assert!(eval_sentence(&phi, &inst, &[]).unwrap());
    }

    #[test]
    fn constants_and_comparisons() {
        let mut i = Interner::new();
        let mut vs = VarSet::new();
        let phi = parse_formula("x = 'a' or x = 5", &mut i, &mut vs).unwrap();
        let x = vs.var("x");
        let a = Value::sym(&mut i, "a");
        let dom = vec![a, Value::Int(5), Value::Int(6)];
        let inst = Instance::new();
        let rel = eval_formula(&phi, &[x], &inst, &dom).unwrap();
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn errors() {
        let mut i = Interner::new();
        let mut vs = VarSet::new();
        assert!(parse_formula("G(x,", &mut i, &mut vs).is_err());
        assert!(parse_formula("forall (G(x))", &mut i, &mut vs).is_err());
        assert!(parse_formula("G(x)) extra", &mut i, &mut vs).is_err());
        assert!(parse_formula("", &mut i, &mut vs).is_err());
        assert!(parse_formula("x ->", &mut i, &mut vs).is_err());
    }

    #[test]
    fn comments_skipped() {
        let mut i = Interner::new();
        let mut vs = VarSet::new();
        let phi = parse_formula("% comment\ntrue // tail\n & true", &mut i, &mut vs).unwrap();
        assert!(matches!(phi, Formula::And(_)));
    }
}

//! Join-based evaluation of `{x̄ | φ}` comprehensions.
//!
//! [`crate::formula::eval_formula`] realizes the textbook semantics by
//! enumerating all `|domain|^k` assignments of the target variables and
//! checking satisfaction of each — obviously correct, and hopeless as
//! an execution strategy: on chain transitive closure the *while*
//! engine spent essentially all its time re-enumerating `D²×D`
//! valuations per loop iteration. This module evaluates the same
//! comprehensions bottom-up instead:
//!
//! * the formula is split into its top-level union parts (`∨`);
//! * each part sheds its existential prefix and is flattened into a
//!   conjunction;
//! * the positive atoms are joined index-nested-loop style over the
//!   instance relations, ordered greedily most-bound-first (smallest
//!   relation first among unconnected atoms — the same Cartesian-guard
//!   discipline as the Datalog planner's syntactic mode);
//! * every other conjunct (negation, equality, nested disjunction or
//!   quantifier) runs as a filter at the first point its free
//!   variables are bound, via the naive satisfaction check under the
//!   then-current binding;
//! * target or existential variables bound by no atom are enumerated
//!   over the domain, exactly as the naive evaluator would.
//!
//! Values bound from relation tuples are checked for domain membership,
//! so the result is tuple-identical to the naive evaluator even on
//! instances whose active domain exceeds the evaluation domain. The
//! equivalence is checked differentially by the tests below on a
//! seeded battery of formulas and random instances. The one visible
//! difference is error eagerness: this evaluator validates every atom
//! of a part up front, where the naive evaluator can short-circuit
//! past an unknown relation or an arity mismatch.

use crate::formula::{satisfies, term_value, Env, FoError, FoTerm, FoVar, Formula};
use unchained_common::{FxHashSet, Index, Instance, Relation, Tuple, Value};

/// Evaluates an open formula as [`crate::formula::eval_formula`] does —
/// same signature, same result set — using joins over the instance
/// relations instead of assignment enumeration.
///
/// This is the evaluator behind *while*-language relation assignments;
/// the naive one remains the semantics reference.
pub fn eval_formula_joined(
    formula: &Formula,
    free_vars: &[FoVar],
    instance: &Instance,
    domain: &[Value],
) -> Result<Relation, FoError> {
    for v in formula.free_vars() {
        if !free_vars.contains(&v) {
            return Err(FoError::UnboundVariable(v));
        }
    }
    let mut out = Relation::new(free_vars.len());
    let domain_set: FxHashSet<Value> = domain.iter().copied().collect();
    for part in union_parts(formula) {
        eval_part(part, free_vars, instance, domain, &domain_set, &mut out)?;
    }
    Ok(out)
}

/// Flattens nested top-level disjunctions into union parts.
fn union_parts(formula: &Formula) -> Vec<&Formula> {
    fn walk<'a>(f: &'a Formula, out: &mut Vec<&'a Formula>) {
        match f {
            Formula::Or(fs) => fs.iter().for_each(|f| walk(f, out)),
            other => out.push(other),
        }
    }
    let mut out = Vec::new();
    walk(formula, &mut out);
    out
}

/// Flattens nested conjunctions into conjuncts.
fn flatten_and<'a>(f: &'a Formula, out: &mut Vec<&'a Formula>) {
    match f {
        Formula::And(fs) => fs.iter().for_each(|f| flatten_and(f, out)),
        other => out.push(other),
    }
}

/// How one scan step reaches its rows.
enum Access<'a> {
    /// No position is bound when the scan runs: full relation scan.
    Full(&'a Relation),
    /// At least one position is bound: a hash index on those columns,
    /// probed with the values of `key_terms` under the current binding.
    Probe {
        index: Box<Index>,
        key_terms: Vec<FoTerm>,
    },
}

/// One step of a part's execution plan.
enum Step<'a> {
    /// Join one positive atom: enumerate candidate rows, bind fresh
    /// variables (domain membership checked), reject mismatches.
    Scan {
        terms: &'a [FoTerm],
        access: Access<'a>,
    },
    /// Enumerate a variable no atom binds over the domain.
    Domain(FoVar),
    /// Check a non-atom conjunct under the current (total on its free
    /// variables) binding.
    Filter(&'a Formula),
}

fn eval_part(
    part: &Formula,
    free_vars: &[FoVar],
    instance: &Instance,
    domain: &[Value],
    domain_set: &FxHashSet<Value>,
    out: &mut Relation,
) -> Result<(), FoError> {
    // Shed the existential prefix. A quantified variable that shadows a
    // target variable (or a repeat of one already shed) stays inside
    // the residual, where the naive evaluator's save/restore semantics
    // handle the shadowing.
    let mut scope: Vec<FoVar> = free_vars.to_vec();
    let mut body = part;
    while let Formula::Exists(vars, inner) = body {
        if vars.iter().any(|v| scope.contains(v)) {
            break;
        }
        for &v in vars {
            if !scope.contains(&v) {
                scope.push(v);
            }
        }
        body = inner;
    }

    // Classify the conjuncts.
    let mut conjuncts = Vec::new();
    flatten_and(body, &mut conjuncts);
    let mut atoms: Vec<(&[FoTerm], &Relation)> = Vec::new();
    let mut filters: Vec<(&Formula, Vec<FoVar>)> = Vec::new();
    for c in conjuncts {
        match c {
            Formula::True => {}
            Formula::False => return Ok(()),
            Formula::Atom(pred, terms) => {
                let rel = instance
                    .relation(*pred)
                    .ok_or(FoError::UnknownRelation(*pred))?;
                if rel.arity() != terms.len() {
                    return Err(FoError::ArityMismatch {
                        relation: *pred,
                        expected: rel.arity(),
                        found: terms.len(),
                    });
                }
                atoms.push((terms.as_slice(), rel));
            }
            other => filters.push((other, other.free_vars())),
        }
    }

    // Plan: greedy most-bound-first atom order (ties to the smaller
    // relation), filters as early as their variables allow, domain
    // enumeration for whatever no atom binds.
    fn flush_filters<'a>(
        filters: &mut Vec<(&'a Formula, Vec<FoVar>)>,
        bound: &FxHashSet<FoVar>,
        steps: &mut Vec<Step<'a>>,
    ) {
        filters.retain(|(f, fv)| {
            if fv.iter().all(|v| bound.contains(v)) {
                steps.push(Step::Filter(f));
                false
            } else {
                true
            }
        });
    }
    let mut steps: Vec<Step<'_>> = Vec::new();
    let mut bound: FxHashSet<FoVar> = FxHashSet::default();
    let mut remaining: Vec<usize> = (0..atoms.len()).collect();
    flush_filters(&mut filters, &bound, &mut steps);
    while !remaining.is_empty() {
        let is_bound = |t: &FoTerm, bound: &FxHashSet<FoVar>| match t {
            FoTerm::Const(_) => true,
            FoTerm::Var(v) => bound.contains(v),
        };
        let (pick, &ai) = remaining
            .iter()
            .enumerate()
            .min_by_key(|&(slot, &ai)| {
                let (terms, rel) = atoms[ai];
                let known = terms.iter().filter(|t| is_bound(t, &bound)).count();
                (usize::MAX - known, rel.len(), slot)
            })
            .expect("remaining is non-empty");
        remaining.swap_remove(pick);
        let (terms, rel) = atoms[ai];
        let key_cols: Vec<usize> = terms
            .iter()
            .enumerate()
            .filter(|(_, t)| is_bound(t, &bound))
            .map(|(i, _)| i)
            .collect();
        let access = if key_cols.is_empty() {
            Access::Full(rel)
        } else {
            Access::Probe {
                index: Box::new(Index::build(rel, &key_cols)),
                key_terms: key_cols.iter().map(|&i| terms[i]).collect(),
            }
        };
        steps.push(Step::Scan { terms, access });
        for t in terms {
            if let FoTerm::Var(v) = t {
                bound.insert(*v);
            }
        }
        flush_filters(&mut filters, &bound, &mut steps);
    }
    for &v in &scope {
        if bound.insert(v) {
            steps.push(Step::Domain(v));
            flush_filters(&mut filters, &bound, &mut steps);
        }
    }
    debug_assert!(filters.is_empty(), "filter variables escape the scope");

    let env_len = scope.iter().map(|v| v.index() + 1).max().unwrap_or(0);
    let mut env: Env = vec![None; env_len];
    exec(
        &steps, free_vars, instance, domain, domain_set, &mut env, out,
    )
}

/// Binds `row` against `terms` under `env`, pushing newly bound
/// variables onto `fresh`. Returns false on any mismatch or when a
/// fresh value lies outside the evaluation domain; the caller unbinds
/// `fresh` either way.
fn match_row(
    terms: &[FoTerm],
    row: &[Value],
    env: &mut Env,
    domain_set: &FxHashSet<Value>,
    fresh: &mut Vec<FoVar>,
) -> bool {
    for (t, &val) in terms.iter().zip(row) {
        match t {
            FoTerm::Const(c) => {
                if *c != val {
                    return false;
                }
            }
            FoTerm::Var(v) => match env[v.index()] {
                Some(b) => {
                    if b != val {
                        return false;
                    }
                }
                None => {
                    if !domain_set.contains(&val) {
                        return false;
                    }
                    env[v.index()] = Some(val);
                    fresh.push(*v);
                }
            },
        }
    }
    true
}

fn exec(
    steps: &[Step<'_>],
    free_vars: &[FoVar],
    instance: &Instance,
    domain: &[Value],
    domain_set: &FxHashSet<Value>,
    env: &mut Env,
    out: &mut Relation,
) -> Result<(), FoError> {
    let Some((step, rest)) = steps.split_first() else {
        let tuple: Tuple = free_vars
            .iter()
            .map(|v| env[v.index()].expect("target variable bound"))
            .collect();
        out.insert(tuple);
        return Ok(());
    };
    match step {
        Step::Domain(v) => {
            for &value in domain {
                env[v.index()] = Some(value);
                exec(rest, free_vars, instance, domain, domain_set, env, out)?;
            }
            env[v.index()] = None;
        }
        Step::Filter(f) => {
            if satisfies(f, instance, domain, env)? {
                exec(rest, free_vars, instance, domain, domain_set, env, out)?;
            }
        }
        Step::Scan { terms, access } => {
            let mut fresh: Vec<FoVar> = Vec::new();
            match access {
                Access::Full(rel) => {
                    for row in rel.iter_stored() {
                        if match_row(terms, row, env, domain_set, &mut fresh) {
                            exec(rest, free_vars, instance, domain, domain_set, env, out)?;
                        }
                        for v in fresh.drain(..) {
                            env[v.index()] = None;
                        }
                    }
                }
                Access::Probe { index, key_terms } => {
                    let key: Vec<Value> = key_terms
                        .iter()
                        .map(|t| term_value(t, env))
                        .collect::<Result<_, _>>()?;
                    for row in index.probe(&key) {
                        if match_row(terms, row, env, domain_set, &mut fresh) {
                            exec(rest, free_vars, instance, domain, domain_set, env, out)?;
                        }
                        for v in fresh.drain(..) {
                            env[v.index()] = None;
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::{eval_formula, VarSet};
    use unchained_common::{Interner, Rng, Symbol};

    fn assert_agree(phi: &Formula, layout: &[FoVar], inst: &Instance, dom: &[Value]) {
        let naive = eval_formula(phi, layout, inst, dom).unwrap();
        let joined = eval_formula_joined(phi, layout, inst, dom).unwrap();
        assert!(
            naive.same_tuples(&joined),
            "naive {} vs joined {} tuples",
            naive.len(),
            joined.len()
        );
    }

    fn setup() -> (Interner, Instance, Vec<Value>) {
        let mut i = Interner::new();
        let g = i.intern("G");
        let p = i.intern("P");
        let mut inst = Instance::new();
        for (a, b) in [(1i64, 2), (2, 3), (3, 1), (2, 2), (4, 1)] {
            inst.insert_fact(g, Tuple::from([Value::Int(a), Value::Int(b)]));
        }
        for v in [2i64, 4] {
            inst.insert_fact(p, Tuple::from([Value::Int(v)]));
        }
        let dom = inst.adom_sorted();
        (i, inst, dom)
    }

    #[test]
    fn agrees_on_the_codd_battery(// the same shapes codd.rs checks against the naive evaluator
    ) {
        let (mut i, inst, dom) = setup();
        let g = i.intern("G");
        let p = i.intern("P");
        let mut vs = VarSet::new();
        let (x, y, z) = (vs.var("x"), vs.var("y"), vs.var("z"));
        let gxy = Formula::Atom(g, vec![FoTerm::Var(x), FoTerm::Var(y)]);
        let px = Formula::Atom(p, vec![FoTerm::Var(x)]);
        for (phi, layout) in [
            (gxy.clone(), vec![x, y]),
            // Repeated variable and constant selections.
            (
                Formula::Atom(g, vec![FoTerm::Var(x), FoTerm::Var(x)]),
                vec![x],
            ),
            (
                Formula::Atom(g, vec![FoTerm::Const(Value::Int(2)), FoTerm::Var(y)]),
                vec![y],
            ),
            // Swapped layout.
            (gxy.clone(), vec![y, x]),
            // Connectives, negation, equality.
            (gxy.clone().and(px.clone()), vec![x, y]),
            (gxy.clone().or(px.clone()), vec![x, y]),
            (gxy.clone().not(), vec![x, y]),
            (px.clone().implies(gxy.clone()), vec![x, y]),
            (
                Formula::Eq(FoTerm::Var(x), FoTerm::Var(y)).and(gxy.clone()),
                vec![x, y],
            ),
            (Formula::Eq(FoTerm::Var(x), FoTerm::Var(y)), vec![x, y]),
            // Quantifiers: two-step reach, sinks, sentence layouts.
            (
                Formula::exists(
                    [z],
                    Formula::Atom(g, vec![FoTerm::Var(x), FoTerm::Var(z)])
                        .and(Formula::Atom(g, vec![FoTerm::Var(z), FoTerm::Var(y)])),
                ),
                vec![x, y],
            ),
            (
                Formula::forall(
                    [y],
                    Formula::Atom(g, vec![FoTerm::Var(x), FoTerm::Var(y)]).not(),
                ),
                vec![x],
            ),
            (Formula::exists([x, y], gxy.clone()), vec![]),
            // Booleans and empty connectives.
            (Formula::True, vec![x]),
            (Formula::False, vec![x]),
            (Formula::And(vec![]), vec![x]),
            (Formula::Or(vec![]), vec![x]),
            (Formula::True, vec![]),
        ] {
            assert_agree(&phi, &layout, &inst, &dom);
        }
    }

    #[test]
    fn shadowed_quantifier_stays_naive() {
        // {x | ∃x P(x)}: the bound x shadows the target x, so the
        // comprehension is the whole domain (P is non-empty). The
        // prefix must not be shed into the join scope.
        let (mut i, inst, dom) = setup();
        let p = i.intern("P");
        let mut vs = VarSet::new();
        let x = vs.var("x");
        let phi = Formula::exists([x], Formula::Atom(p, vec![FoTerm::Var(x)]));
        assert_agree(&phi, &[x], &inst, &dom);
        assert_eq!(
            eval_formula_joined(&phi, &[x], &inst, &dom).unwrap().len(),
            dom.len()
        );
    }

    #[test]
    fn values_outside_the_domain_are_not_produced() {
        // The naive evaluator only enumerates domain values; the join
        // path binds from tuples and must filter to match when the
        // caller passes a domain smaller than the active domain.
        let mut i = Interner::new();
        let g = i.intern("G");
        let mut inst = Instance::new();
        inst.insert_fact(g, Tuple::from([Value::Int(1), Value::Int(2)]));
        inst.insert_fact(g, Tuple::from([Value::Int(1), Value::Int(9)]));
        let dom = vec![Value::Int(1), Value::Int(2)];
        let mut vs = VarSet::new();
        let (x, y) = (vs.var("x"), vs.var("y"));
        let phi = Formula::Atom(g, vec![FoTerm::Var(x), FoTerm::Var(y)]);
        assert_agree(&phi, &[x, y], &inst, &dom);
        let joined = eval_formula_joined(&phi, &[x, y], &inst, &dom).unwrap();
        assert_eq!(joined.len(), 1, "the (1,9) edge lies outside the domain");
    }

    #[test]
    fn tc_step_formula_matches_naive_on_a_chain() {
        // The while-engine workhorse: T ∪ {(x,y) | ∃z T(x,z) ∧ G(z,y)}.
        let mut i = Interner::new();
        let g = i.intern("G");
        let t = i.intern("T");
        let mut inst = Instance::new();
        for k in 0..12i64 {
            inst.insert_fact(g, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
            inst.insert_fact(t, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
        }
        let dom = inst.adom_sorted();
        let mut vs = VarSet::new();
        let (x, y, z) = (vs.var("x"), vs.var("y"), vs.var("z"));
        let phi = Formula::Atom(g, vec![FoTerm::Var(x), FoTerm::Var(y)]).or(Formula::exists(
            [z],
            Formula::Atom(t, vec![FoTerm::Var(x), FoTerm::Var(z)])
                .and(Formula::Atom(g, vec![FoTerm::Var(z), FoTerm::Var(y)])),
        ));
        assert_agree(&phi, &[x, y], &inst, &dom);
    }

    #[test]
    fn errors_match_on_straight_line_parts() {
        let (mut i, inst, dom) = setup();
        let g = i.intern("G");
        let missing = i.intern("missing");
        let mut vs = VarSet::new();
        let x = vs.var("x");
        assert!(matches!(
            eval_formula_joined(
                &Formula::Atom(missing, vec![FoTerm::Var(x)]),
                &[x],
                &inst,
                &dom
            ),
            Err(FoError::UnknownRelation(_))
        ));
        assert!(matches!(
            eval_formula_joined(&Formula::Atom(g, vec![FoTerm::Var(x)]), &[x], &inst, &dom),
            Err(FoError::ArityMismatch { .. })
        ));
        let open = Formula::Atom(g, vec![FoTerm::Var(x), FoTerm::Var(x)]);
        assert!(eval_formula_joined(&open, &[], &inst, &dom).is_err());
    }

    /// Seeded random instances × a pool of formula shapes: the joined
    /// evaluator must agree with the naive one tuple-for-tuple.
    #[test]
    fn random_instances_agree_with_naive() {
        let mut i = Interner::new();
        let g = i.intern("G");
        let h = i.intern("H");
        let p = i.intern("P");
        let mut vs = VarSet::new();
        let (x, y, z) = (vs.var("x"), vs.var("y"), vs.var("z"));
        let pool: Vec<(Formula, Vec<FoVar>)> = formula_pool(g, h, p, x, y, z);
        let mut rng = Rng::seeded(0xF0F0);
        for round in 0..40 {
            let n = 2 + (round % 7) as i64;
            let inst = random_instance(&mut rng, g, h, p, n);
            let dom = inst.adom_sorted();
            for (phi, layout) in &pool {
                assert_agree(phi, layout, &inst, &dom);
            }
        }
    }

    fn random_instance(rng: &mut Rng, g: Symbol, h: Symbol, p: Symbol, n: i64) -> Instance {
        let mut inst = Instance::new();
        inst.ensure(g, 2);
        inst.ensure(h, 2);
        inst.ensure(p, 1);
        let value = |rng: &mut Rng| Value::Int(rng.gen_range_i64(0, n));
        for _ in 0..rng.gen_index(2 * n as usize) {
            let t = Tuple::from([value(rng), value(rng)]);
            inst.insert_fact(g, t);
        }
        for _ in 0..rng.gen_index(n as usize + 1) {
            let t = Tuple::from([value(rng), value(rng)]);
            inst.insert_fact(h, t);
        }
        for _ in 0..rng.gen_index(n as usize) {
            inst.insert_fact(p, Tuple::from([value(rng)]));
        }
        inst
    }

    fn formula_pool(
        g: Symbol,
        h: Symbol,
        p: Symbol,
        x: FoVar,
        y: FoVar,
        z: FoVar,
    ) -> Vec<(Formula, Vec<FoVar>)> {
        let gxy = Formula::Atom(g, vec![FoTerm::Var(x), FoTerm::Var(y)]);
        let hyz = Formula::Atom(h, vec![FoTerm::Var(y), FoTerm::Var(z)]);
        let px = Formula::Atom(p, vec![FoTerm::Var(x)]);
        let py = Formula::Atom(p, vec![FoTerm::Var(y)]);
        vec![
            // Join with projection: {(x,z) | ∃y G(x,y) ∧ H(y,z)}.
            (
                Formula::exists([y], gxy.clone().and(hyz.clone())),
                vec![x, z],
            ),
            // Join plus negation filter.
            (gxy.clone().and(py.clone().not()), vec![x, y]),
            // Disjunction of unconnected parts.
            (gxy.clone().or(px.clone().and(py.clone())), vec![x, y]),
            // Universal filter over a join variable.
            (
                px.clone()
                    .and(Formula::forall([y], gxy.clone().implies(py.clone()))),
                vec![x],
            ),
            // Equality binding a free variable with no atom.
            (
                px.clone().and(Formula::Eq(FoTerm::Var(x), FoTerm::Var(y))),
                vec![x, y],
            ),
            // Triangle-ish three-way join.
            (
                Formula::exists(
                    [z],
                    gxy.clone()
                        .and(hyz.clone())
                        .and(Formula::Atom(g, vec![FoTerm::Var(z), FoTerm::Var(x)])),
                ),
                vec![x, y],
            ),
            // Pure negation (co-relation): {(x,y) | ¬G(x,y)}.
            (gxy.clone().not(), vec![x, y]),
            // Constant probe.
            (
                Formula::Atom(g, vec![FoTerm::Var(x), FoTerm::Const(Value::Int(0))]),
                vec![x],
            ),
        ]
    }
}

//! The empirical-equivalence harness behind the Figure 1 reproduction:
//! run two queries (any engine, any language) over a family of
//! instances and compare their answers.

use std::fmt;
use unchained_common::{EvalTrace, Instance, Relation, Symbol, Telemetry};

/// A query under test: anything that maps an instance to a relation.
pub type QueryFn<'a> = dyn Fn(&Instance) -> Result<Relation, String> + 'a;

/// A query under test that also reports telemetry: the harness hands
/// it an enabled [`Telemetry`] to thread into the engine's options.
pub type TracedQueryFn<'a> = dyn Fn(&Instance, Telemetry) -> Result<Relation, String> + 'a;

/// The outcome of comparing two queries over an instance family.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Answers agreed on every instance.
    Equivalent {
        /// Number of instances checked.
        instances: usize,
    },
    /// Answers differed on some instance.
    Differs {
        /// Index of the first differing instance.
        instance_index: usize,
        /// Number of tuples only in the left answer.
        only_left: usize,
        /// Number of tuples only in the right answer.
        only_right: usize,
    },
    /// A query failed to evaluate.
    Error {
        /// Index of the offending instance.
        instance_index: usize,
        /// The error message.
        message: String,
    },
}

impl Verdict {
    /// True for [`Verdict::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        matches!(self, Verdict::Equivalent { .. })
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Equivalent { instances } => {
                write!(f, "equivalent on {instances} instances")
            }
            Verdict::Differs { instance_index, only_left, only_right } => write!(
                f,
                "differs on instance #{instance_index} (+{only_left} left-only, +{only_right} right-only)"
            ),
            Verdict::Error { instance_index, message } => {
                write!(f, "error on instance #{instance_index}: {message}")
            }
        }
    }
}

/// Runs both queries on every instance and compares the answers.
pub fn compare(left: &QueryFn<'_>, right: &QueryFn<'_>, family: &[Instance]) -> Verdict {
    for (idx, instance) in family.iter().enumerate() {
        let a = match left(instance) {
            Ok(r) => r,
            Err(message) => {
                return Verdict::Error {
                    instance_index: idx,
                    message,
                }
            }
        };
        let b = match right(instance) {
            Ok(r) => r,
            Err(message) => {
                return Verdict::Error {
                    instance_index: idx,
                    message,
                }
            }
        };
        if !a.same_tuples(&b) {
            let only_left = a.iter().filter(|t| !b.contains(t)).count();
            let only_right = b.iter().filter(|t| !a.contains(t)).count();
            return Verdict::Differs {
                instance_index: idx,
                only_left,
                only_right,
            };
        }
    }
    Verdict::Equivalent {
        instances: family.len(),
    }
}

/// A [`Verdict`] plus, when the comparison failed, the evaluation
/// traces both engines produced on the offending instance — so a
/// Figure 1 disagreement report shows not just *that* the answers
/// differ, but how each engine got there (stage counts, deltas, join
/// work).
#[derive(Clone, Debug)]
pub struct TracedVerdict {
    /// The comparison outcome.
    pub verdict: Verdict,
    /// The left engine's trace on the offending instance
    /// (`None` when equivalent).
    pub left_trace: Option<EvalTrace>,
    /// The right engine's trace on the offending instance
    /// (`None` when equivalent, or when the left query already failed).
    pub right_trace: Option<EvalTrace>,
}

impl TracedVerdict {
    /// True for [`Verdict::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        self.verdict.is_equivalent()
    }
}

/// Like [`compare`], but hands each query an enabled [`Telemetry`] and
/// attaches both engines' traces to any failure.
pub fn compare_traced(
    left: &TracedQueryFn<'_>,
    right: &TracedQueryFn<'_>,
    family: &[Instance],
) -> TracedVerdict {
    for (idx, instance) in family.iter().enumerate() {
        let ltel = Telemetry::enabled();
        let rtel = Telemetry::enabled();
        let a = match left(instance, ltel.clone()) {
            Ok(r) => r,
            Err(message) => {
                return TracedVerdict {
                    verdict: Verdict::Error {
                        instance_index: idx,
                        message,
                    },
                    left_trace: ltel.snapshot(),
                    right_trace: None,
                }
            }
        };
        let b = match right(instance, rtel.clone()) {
            Ok(r) => r,
            Err(message) => {
                return TracedVerdict {
                    verdict: Verdict::Error {
                        instance_index: idx,
                        message,
                    },
                    left_trace: ltel.snapshot(),
                    right_trace: rtel.snapshot(),
                }
            }
        };
        if !a.same_tuples(&b) {
            let only_left = a.iter().filter(|t| !b.contains(t)).count();
            let only_right = b.iter().filter(|t| !a.contains(t)).count();
            return TracedVerdict {
                verdict: Verdict::Differs {
                    instance_index: idx,
                    only_left,
                    only_right,
                },
                left_trace: ltel.snapshot(),
                right_trace: rtel.snapshot(),
            };
        }
    }
    TracedVerdict {
        verdict: Verdict::Equivalent {
            instances: family.len(),
        },
        left_trace: None,
        right_trace: None,
    }
}

/// Helper: extracts `pred` from an instance-valued result (missing
/// relation = empty of the given arity).
pub fn relation_of(instance: &Instance, pred: Symbol, arity: usize) -> Relation {
    instance
        .relation(pred)
        .cloned()
        .unwrap_or_else(|| Relation::new(arity))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{cycle_graph, line_graph, random_digraph};
    use crate::oracles::transitive_closure;
    use crate::programs::TC;
    use unchained_common::Interner;
    use unchained_core::{seminaive, EvalOptions};
    use unchained_parser::parse_program;

    #[test]
    fn datalog_tc_matches_oracle_across_family() {
        let mut i = Interner::new();
        let program = parse_program(TC, &mut i).unwrap();
        let g = i.get("G").unwrap();
        let t = i.get("T").unwrap();
        let mut family: Vec<Instance> = Vec::new();
        for n in 3..7 {
            family.push(line_graph(&mut i, "G", n));
        }
        for n in 3..6 {
            family.push(cycle_graph(&mut i, "G", n));
        }
        for seed in 0..3 {
            family.push(random_digraph(&mut i, "G", 8, 0.2, seed));
        }
        let left: Box<QueryFn> = Box::new(|inst: &Instance| {
            seminaive::minimum_model(&program, inst, EvalOptions::default())
                .map(|run| relation_of(&run.instance, t, 2))
                .map_err(|e| e.to_string())
        });
        let right: Box<QueryFn> = Box::new(|inst: &Instance| Ok(transitive_closure(inst, g)));
        let verdict = compare(&left, &right, &family);
        assert!(verdict.is_equivalent(), "{verdict}");
    }

    #[test]
    fn differing_queries_reported() {
        let mut i = Interner::new();
        let g = i.intern("G");
        let family = vec![line_graph(&mut i, "G", 3)];
        let left: Box<QueryFn> = Box::new(|inst: &Instance| Ok(relation_of(inst, g, 2)));
        let right: Box<QueryFn> = Box::new(|_inst: &Instance| Ok(Relation::new(2)));
        let verdict = compare(&left, &right, &family);
        assert!(matches!(
            verdict,
            Verdict::Differs {
                instance_index: 0,
                only_left: 2,
                only_right: 0
            }
        ));
    }

    #[test]
    fn traced_comparison_attaches_both_traces_on_difference() {
        let mut i = Interner::new();
        let program = parse_program(TC, &mut i).unwrap();
        let t = i.get("T").unwrap();
        let family = vec![line_graph(&mut i, "G", 5)];
        // Left: the real semi-naive TC. Right: deliberately drops one
        // tuple, so the harness must report Differs with both traces.
        let left: Box<TracedQueryFn> = Box::new(|inst: &Instance, tel| {
            seminaive::minimum_model(&program, inst, EvalOptions::default().with_telemetry(tel))
                .map(|run| relation_of(&run.instance, t, 2))
                .map_err(|e| e.to_string())
        });
        let right: Box<TracedQueryFn> = Box::new(|inst: &Instance, tel| {
            seminaive::minimum_model(&program, inst, EvalOptions::default().with_telemetry(tel))
                .map(|run| {
                    let full = relation_of(&run.instance, t, 2);
                    let mut out = Relation::new(2);
                    for tuple in full.iter().skip(1) {
                        out.insert(tuple.clone());
                    }
                    out
                })
                .map_err(|e| e.to_string())
        });
        let traced = compare_traced(&left, &right, &family);
        assert!(matches!(
            traced.verdict,
            Verdict::Differs {
                instance_index: 0,
                ..
            }
        ));
        let lt = traced.left_trace.expect("left trace");
        let rt = traced.right_trace.expect("right trace");
        assert_eq!(lt.engine, "seminaive");
        assert_eq!(rt.engine, "seminaive");
        assert!(!lt.stages.is_empty());
        // Both engines did identical evaluation work; only the
        // projection differed.
        assert_eq!(lt.stages.len(), rt.stages.len());
        assert_eq!(lt.total_facts_added(), rt.total_facts_added());
    }

    #[test]
    fn traced_comparison_equivalent_has_no_traces() {
        let mut i = Interner::new();
        let g = i.intern("G");
        let family = vec![line_graph(&mut i, "G", 3)];
        let left: Box<TracedQueryFn> =
            Box::new(|inst: &Instance, _tel| Ok(relation_of(inst, g, 2)));
        let right: Box<TracedQueryFn> =
            Box::new(|inst: &Instance, _tel| Ok(relation_of(inst, g, 2)));
        let traced = compare_traced(&left, &right, &family);
        assert!(traced.is_equivalent());
        assert!(traced.left_trace.is_none() && traced.right_trace.is_none());
    }

    #[test]
    fn errors_reported() {
        let left: Box<QueryFn> = Box::new(|_| Err("boom".into()));
        let right: Box<QueryFn> = Box::new(|_| Ok(Relation::new(1)));
        let verdict = compare(&left, &right, &[Instance::new()]);
        assert!(matches!(verdict, Verdict::Error { message, .. } if message == "boom"));
    }
}

//! Instance generators for the experiment harness: graph families,
//! random relations, and game boards.
//!
//! Every generator is deterministic given its arguments (random ones
//! take an explicit seed), so tests, benches and the Figure 1 harness
//! are reproducible.

use unchained_common::{Instance, Interner, Rng, Symbol, Tuple, Value};

/// Inserts the edge `(a, b)` into `rel`.
fn edge(instance: &mut Instance, rel: Symbol, a: i64, b: i64) {
    instance.insert_fact(rel, Tuple::from([Value::Int(a), Value::Int(b)]));
}

/// A directed line `0 → 1 → … → n−1` in relation `name`.
pub fn line_graph(interner: &mut Interner, name: &str, n: i64) -> Instance {
    let rel = interner.intern(name);
    let mut instance = Instance::new();
    instance.ensure(rel, 2);
    for k in 0..n - 1 {
        edge(&mut instance, rel, k, k + 1);
    }
    instance
}

/// A directed cycle on `n` nodes.
pub fn cycle_graph(interner: &mut Interner, name: &str, n: i64) -> Instance {
    let rel = interner.intern(name);
    let mut instance = Instance::new();
    instance.ensure(rel, 2);
    for k in 0..n {
        edge(&mut instance, rel, k, (k + 1) % n);
    }
    instance
}

/// The complete directed graph (no self-loops) on `n` nodes.
pub fn complete_graph(interner: &mut Interner, name: &str, n: i64) -> Instance {
    let rel = interner.intern(name);
    let mut instance = Instance::new();
    instance.ensure(rel, 2);
    for a in 0..n {
        for b in 0..n {
            if a != b {
                edge(&mut instance, rel, a, b);
            }
        }
    }
    instance
}

/// A `w × h` grid digraph in relation `name`: node `(x, y)` is the
/// integer `y·w + x`, with edges rightward and downward. Transitive
/// closure over a grid exercises joins with high fan-in (many distinct
/// paths reach each node) without the quadratic blowup of a clique.
pub fn grid_graph(interner: &mut Interner, name: &str, w: i64, h: i64) -> Instance {
    let rel = interner.intern(name);
    let mut instance = Instance::new();
    instance.ensure(rel, 2);
    for y in 0..h {
        for x in 0..w {
            let node = y * w + x;
            if x + 1 < w {
                edge(&mut instance, rel, node, node + 1);
            }
            if y + 1 < h {
                edge(&mut instance, rel, node, node + w);
            }
        }
    }
    instance
}

/// A random digraph on `n` nodes where each ordered pair (including
/// self-loops) is an edge independently with probability `p`.
pub fn random_digraph(interner: &mut Interner, name: &str, n: i64, p: f64, seed: u64) -> Instance {
    let rel = interner.intern(name);
    let mut rng = Rng::seeded(seed);
    let mut instance = Instance::new();
    instance.ensure(rel, 2);
    for a in 0..n {
        for b in 0..n {
            if rng.gen_bool(p) {
                edge(&mut instance, rel, a, b);
            }
        }
    }
    instance
}

/// A random digraph given by out-degree: each of `n` nodes gets
/// exactly `out_deg` *distinct* random successors (re-rolling
/// collisions), so the relation holds exactly `n·out_deg` edges. This
/// is the way to reach 10^6-fact EDBs — [`random_digraph`] flips a
/// coin per ordered pair and is quadratic in `n`.
pub fn random_out_digraph(
    interner: &mut Interner,
    name: &str,
    n: i64,
    out_deg: i64,
    seed: u64,
) -> Instance {
    let rel = interner.intern(name);
    let mut rng = Rng::seeded(seed);
    let mut instance = Instance::new();
    instance.ensure(rel, 2);
    let out_deg = out_deg.min(n); // at most n distinct successors exist
    for a in 0..n {
        let mut added = 0;
        while added < out_deg {
            let b = rng.gen_range_i64(0, n);
            if instance.insert_fact(rel, Tuple::from([Value::Int(a), Value::Int(b)])) {
                added += 1;
            }
        }
    }
    instance
}

/// A random Andersen points-to input for `programs::POINTSTO`:
/// `vars` program variables (values `0..vars`) and as many allocation
/// sites (values `vars..2·vars`), one `AddrOf` fact per site aimed at
/// a random variable, plus exactly `assigns`/`loads`/`stores` distinct
/// statements over random variable pairs. Keep `assigns` below `vars`
/// (subcritical assign graph) and the fixpoint's output stays linear
/// in the input — the EDB size, not the closure, is the scale knob.
/// Total EDB size is exactly `vars + assigns + loads + stores`.
pub fn random_pointsto(
    interner: &mut Interner,
    vars: i64,
    assigns: i64,
    loads: i64,
    stores: i64,
    seed: u64,
) -> Instance {
    let addr_of = interner.intern("AddrOf");
    let assign = interner.intern("Assign");
    let load = interner.intern("Load");
    let store = interner.intern("Store");
    let mut rng = Rng::seeded(seed);
    let mut instance = Instance::new();
    for rel in [addr_of, assign, load, store] {
        instance.ensure(rel, 2);
    }
    for o in 0..vars {
        let v = rng.gen_range_i64(0, vars);
        instance.insert_fact(addr_of, Tuple::from([Value::Int(v), Value::Int(vars + o)]));
    }
    for (rel, count) in [(assign, assigns), (load, loads), (store, stores)] {
        let mut added = 0;
        while added < count {
            let a = rng.gen_range_i64(0, vars);
            let b = rng.gen_range_i64(0, vars);
            if instance.insert_fact(rel, Tuple::from([Value::Int(a), Value::Int(b)])) {
                added += 1;
            }
        }
    }
    instance
}

/// A random symmetric-pair graph: `pairs` disjoint 2-cycles plus
/// `extra` random one-way edges among `2·pairs` nodes. The workload of
/// the orientation program (Section 5.1).
pub fn symmetric_pairs(
    interner: &mut Interner,
    name: &str,
    pairs: i64,
    extra: i64,
    seed: u64,
) -> Instance {
    let rel = interner.intern(name);
    let mut rng = Rng::seeded(seed);
    let mut instance = Instance::new();
    instance.ensure(rel, 2);
    let n = 2 * pairs;
    for k in 0..pairs {
        edge(&mut instance, rel, 2 * k, 2 * k + 1);
        edge(&mut instance, rel, 2 * k + 1, 2 * k);
    }
    let mut added = 0;
    while added < extra {
        let a = rng.gen_range_i64(0, n);
        let b = rng.gen_range_i64(0, n);
        if a != b && !instance.contains_fact(rel, &Tuple::from([Value::Int(b), Value::Int(a)])) {
            if instance.insert_fact(rel, Tuple::from([Value::Int(a), Value::Int(b)])) {
                added += 1;
            } else {
                added += 1; // duplicate pick still consumes budget
            }
        } else {
            added += 1;
        }
    }
    instance
}

/// A random game board for the win-move query: `n` states, each with
/// 0–`max_moves` outgoing moves, in relation `name`.
pub fn random_game(
    interner: &mut Interner,
    name: &str,
    n: i64,
    max_moves: i64,
    seed: u64,
) -> Instance {
    let rel = interner.intern(name);
    let mut rng = Rng::seeded(seed);
    let mut instance = Instance::new();
    instance.ensure(rel, 2);
    for a in 0..n {
        let moves = rng.gen_range_i64(0, max_moves + 1);
        for _ in 0..moves {
            let b = rng.gen_range_i64(0, n);
            edge(&mut instance, rel, a, b);
        }
    }
    instance
}

/// The paper's Example 3.2 game instance `K`:
/// `moves = {⟨b,c⟩, ⟨c,a⟩, ⟨a,b⟩, ⟨a,d⟩, ⟨d,e⟩, ⟨d,f⟩, ⟨f,g⟩}`.
pub fn paper_game(interner: &mut Interner, name: &str) -> Instance {
    let rel = interner.intern(name);
    let mut instance = Instance::new();
    instance.ensure(rel, 2);
    for (x, y) in [
        ("b", "c"),
        ("c", "a"),
        ("a", "b"),
        ("a", "d"),
        ("d", "e"),
        ("d", "f"),
        ("f", "g"),
    ] {
        let vx = Value::sym(interner, x);
        let vy = Value::sym(interner, y);
        instance.insert_fact(rel, Tuple::from([vx, vy]));
    }
    instance
}

/// A random unary relation over `0..universe` with `k` distinct
/// members, in relation `name`.
pub fn random_unary(
    interner: &mut Interner,
    name: &str,
    universe: i64,
    k: usize,
    seed: u64,
) -> Instance {
    let rel = interner.intern(name);
    let mut rng = Rng::seeded(seed);
    let mut instance = Instance::new();
    instance.ensure(rel, 1);
    let mut values: Vec<i64> = (0..universe).collect();
    // Fisher–Yates prefix shuffle.
    for i in 0..k.min(values.len()) {
        let j = i + rng.gen_index(values.len() - i);
        values.swap(i, j);
        instance.insert_fact(rel, Tuple::from([Value::Int(values[i])]));
    }
    instance
}

/// Merges `b` into `a` (union of relations; arities must agree).
pub fn merge(mut a: Instance, b: &Instance) -> Instance {
    for (pred, rel) in b.iter() {
        if rel.is_empty() {
            a.ensure(pred, rel.arity());
            continue;
        }
        a.ensure(pred, rel.arity()).union_with(rel);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_cycle_sizes() {
        let mut i = Interner::new();
        let g = line_graph(&mut i, "G", 5);
        assert_eq!(g.fact_count(), 4);
        let c = cycle_graph(&mut i, "G", 5);
        assert_eq!(c.fact_count(), 5);
        let k = complete_graph(&mut i, "G", 4);
        assert_eq!(k.fact_count(), 12);
    }

    #[test]
    fn grid_graph_edge_count() {
        let mut i = Interner::new();
        // w·(h−1) downward + h·(w−1) rightward edges.
        let g = grid_graph(&mut i, "G", 4, 3);
        assert_eq!(g.fact_count(), (4 * 2 + 3 * 3) as usize);
        let line = grid_graph(&mut i, "G", 5, 1);
        assert_eq!(line.fact_count(), 4);
    }

    #[test]
    fn random_digraph_is_seed_deterministic() {
        let mut i = Interner::new();
        let a = random_digraph(&mut i, "G", 10, 0.3, 7);
        let b = random_digraph(&mut i, "G", 10, 0.3, 7);
        assert!(a.same_facts(&b));
        let c = random_digraph(&mut i, "G", 10, 0.3, 8);
        assert!(!a.same_facts(&c) || a.fact_count() == c.fact_count());
    }

    #[test]
    fn out_digraph_has_exact_edge_count() {
        let mut i = Interner::new();
        let g = random_out_digraph(&mut i, "G", 100, 4, 9);
        assert_eq!(g.fact_count(), 400);
        // Deterministic in the seed; a clamp to n when out_deg > n.
        let h = random_out_digraph(&mut i, "G", 100, 4, 9);
        assert!(g.same_facts(&h));
        let tiny = random_out_digraph(&mut i, "G", 3, 10, 9);
        assert_eq!(tiny.fact_count(), 9);
    }

    #[test]
    fn pointsto_input_has_exact_fact_count() {
        let mut i = Interner::new();
        let inst = random_pointsto(&mut i, 50, 25, 10, 10, 3);
        assert_eq!(inst.fact_count(), 50 + 25 + 10 + 10);
        let again = random_pointsto(&mut i, 50, 25, 10, 10, 3);
        assert!(inst.same_facts(&again));
        // Allocation sites live in their own value band above the vars.
        let addr = i.get("AddrOf").unwrap();
        for t in inst.relation(addr).unwrap().iter() {
            match (t[0], t[1]) {
                (Value::Int(v), Value::Int(o)) => {
                    assert!((0..50).contains(&v));
                    assert!((50..100).contains(&o));
                }
                other => panic!("non-int point-to fact {other:?}"),
            }
        }
    }

    #[test]
    fn symmetric_pairs_have_two_cycles() {
        let mut i = Interner::new();
        let inst = symmetric_pairs(&mut i, "G", 3, 0, 1);
        assert_eq!(inst.fact_count(), 6);
        let g = i.get("G").unwrap();
        let rel = inst.relation(g).unwrap();
        for t in rel.iter() {
            let rev = Tuple::from([t[1], t[0]]);
            assert!(rel.contains(&rev));
        }
    }

    #[test]
    fn paper_game_has_seven_moves() {
        let mut i = Interner::new();
        let inst = paper_game(&mut i, "moves");
        assert_eq!(inst.fact_count(), 7);
    }

    #[test]
    fn random_unary_has_k_members() {
        let mut i = Interner::new();
        let inst = random_unary(&mut i, "R", 20, 7, 3);
        assert_eq!(inst.fact_count(), 7);
    }

    #[test]
    fn merge_unions() {
        let mut i = Interner::new();
        let a = line_graph(&mut i, "G", 3);
        let b = random_unary(&mut i, "R", 5, 2, 1);
        let m = merge(a, &b);
        assert_eq!(m.fact_count(), 4);
    }
}

//! Ordered-database support (Section 4.5).
//!
//! "In ordered databases, the schema is assumed to contain a binary
//! relation providing a total order on the active domain of each
//! instance." For the semipositive programs of Theorem 4.7 the order
//! must come with explicit `min` and `max` constants — surprisingly,
//! these cannot be computed by semipositive programs themselves.
//!
//! This module equips an instance with `succ` (the successor relation
//! of the order), `lt` (the full order), and unary `min` / `max`.

use unchained_common::{Instance, Interner, Tuple, Value};

/// Names of the order relations added by [`attach_order`].
#[derive(Clone, Copy, Debug)]
pub struct OrderSchema<'a> {
    /// Successor relation name (binary).
    pub succ: &'a str,
    /// Full order relation name (binary, strict `<`).
    pub lt: &'a str,
    /// Minimum constant (unary).
    pub min: &'a str,
    /// Maximum constant (unary).
    pub max: &'a str,
}

impl Default for OrderSchema<'_> {
    fn default() -> Self {
        OrderSchema {
            succ: "succ",
            lt: "lt",
            min: "min",
            max: "max",
        }
    }
}

/// Attaches a total order over the instance's active domain (sorted by
/// the natural `Value` order): `succ`, `lt`, `min`, `max`.
///
/// Returns the input unchanged (except for empty order relations) if
/// the active domain is empty.
pub fn attach_order(
    mut instance: Instance,
    interner: &mut Interner,
    schema: OrderSchema<'_>,
) -> Instance {
    let domain = instance.adom_sorted();
    let succ = interner.intern(schema.succ);
    let lt = interner.intern(schema.lt);
    let min = interner.intern(schema.min);
    let max = interner.intern(schema.max);
    instance.ensure(succ, 2);
    instance.ensure(lt, 2);
    instance.ensure(min, 1);
    instance.ensure(max, 1);
    for pair in domain.windows(2) {
        instance.insert_fact(succ, Tuple::from([pair[0], pair[1]]));
    }
    for (i, &a) in domain.iter().enumerate() {
        for &b in &domain[i + 1..] {
            instance.insert_fact(lt, Tuple::from([a, b]));
        }
    }
    if let (Some(&first), Some(&last)) = (domain.first(), domain.last()) {
        instance.insert_fact(min, Tuple::from([first]));
        instance.insert_fact(max, Tuple::from([last]));
    }
    instance
}

/// Builds an ordered instance whose unary relation `rel_name` holds `k`
/// chosen members of the universe `0..universe` — the standard workload
/// for the evenness experiment (Theorem 4.7). The whole universe
/// participates in the order via a unary `U` relation.
pub fn evenness_input(
    interner: &mut Interner,
    rel_name: &str,
    universe: i64,
    members: &[i64],
) -> Instance {
    let r = interner.intern(rel_name);
    let u = interner.intern("U");
    let mut instance = Instance::new();
    instance.ensure(r, 1);
    for v in 0..universe {
        instance.insert_fact(u, Tuple::from([Value::Int(v)]));
    }
    for &m in members {
        assert!(m < universe, "member {m} outside universe {universe}");
        instance.insert_fact(r, Tuple::from([Value::Int(m)]));
    }
    attach_order(instance, interner, OrderSchema::default())
}

/// The domain values of `Value::Int` from an inclusive range, for
/// assertions in tests.
pub fn int_range(lo: i64, hi: i64) -> Vec<Value> {
    (lo..=hi).map(Value::Int).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_relations_built() {
        let mut i = Interner::new();
        let g = i.intern("G");
        let mut inst = Instance::new();
        inst.insert_fact(g, Tuple::from([Value::Int(3), Value::Int(1)]));
        inst.insert_fact(g, Tuple::from([Value::Int(1), Value::Int(2)]));
        let ordered = attach_order(inst, &mut i, OrderSchema::default());
        let succ = i.get("succ").unwrap();
        let lt = i.get("lt").unwrap();
        let min = i.get("min").unwrap();
        let max = i.get("max").unwrap();
        // Domain {1,2,3}: succ = {(1,2),(2,3)}; lt = 3 pairs.
        assert_eq!(ordered.relation(succ).unwrap().len(), 2);
        assert_eq!(ordered.relation(lt).unwrap().len(), 3);
        assert!(ordered.contains_fact(min, &Tuple::from([Value::Int(1)])));
        assert!(ordered.contains_fact(max, &Tuple::from([Value::Int(3)])));
    }

    #[test]
    fn empty_instance_gets_empty_order() {
        let mut i = Interner::new();
        let ordered = attach_order(Instance::new(), &mut i, OrderSchema::default());
        let min = i.get("min").unwrap();
        assert!(ordered.relation(min).unwrap().is_empty());
    }

    #[test]
    fn evenness_input_shape() {
        let mut i = Interner::new();
        let inst = evenness_input(&mut i, "R", 5, &[0, 2, 4]);
        let r = i.get("R").unwrap();
        let succ = i.get("succ").unwrap();
        assert_eq!(inst.relation(r).unwrap().len(), 3);
        // Universe 0..5 → 4 successor pairs.
        assert_eq!(inst.relation(succ).unwrap().len(), 4);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn evenness_input_validates_members() {
        let mut i = Interner::new();
        evenness_input(&mut i, "R", 3, &[5]);
    }
}

//! Direct (non-Datalog) reference implementations of the queries the
//! paper's examples compute. The experiment harness validates every
//! engine against these.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use unchained_common::{Instance, Relation, Symbol, Tuple, Value};

/// Extracts a binary relation as an adjacency map (plus the node set).
fn adjacency(instance: &Instance, rel: Symbol) -> (BTreeSet<Value>, BTreeMap<Value, Vec<Value>>) {
    let mut nodes = BTreeSet::new();
    let mut adj: BTreeMap<Value, Vec<Value>> = BTreeMap::new();
    if let Some(r) = instance.relation(rel) {
        for t in r.iter() {
            nodes.insert(t[0]);
            nodes.insert(t[1]);
            adj.entry(t[0]).or_default().push(t[1]);
        }
    }
    (nodes, adj)
}

/// The transitive closure of the binary relation `rel` (pairs `(a, b)`
/// with a nonempty path from `a` to `b`).
pub fn transitive_closure(instance: &Instance, rel: Symbol) -> Relation {
    let (nodes, adj) = adjacency(instance, rel);
    let mut out = Relation::new(2);
    for &start in &nodes {
        let mut queue: VecDeque<Value> = adj.get(&start).into_iter().flatten().copied().collect();
        let mut seen: BTreeSet<Value> = queue.iter().copied().collect();
        while let Some(v) = queue.pop_front() {
            out.insert(Tuple::from([start, v]));
            for &w in adj.get(&v).into_iter().flatten() {
                if seen.insert(w) {
                    queue.push_back(w);
                }
            }
        }
    }
    out
}

/// The complement of the transitive closure over `universe²`.
pub fn complement_tc(instance: &Instance, rel: Symbol, universe: &[Value]) -> Relation {
    let tc = transitive_closure(instance, rel);
    let mut out = Relation::new(2);
    for &a in universe {
        for &b in universe {
            let t = Tuple::from([a, b]);
            if !tc.contains(&t) {
                out.insert(t);
            }
        }
    }
    out
}

/// BFS shortest-path distances: `dist[(a, b)] = d(a, b)` for reachable
/// pairs (path length ≥ 1; absent = infinite).
pub fn distances(instance: &Instance, rel: Symbol) -> BTreeMap<(Value, Value), u64> {
    let (nodes, adj) = adjacency(instance, rel);
    let mut out = BTreeMap::new();
    for &start in &nodes {
        let mut queue: VecDeque<(Value, u64)> = VecDeque::new();
        let mut seen: BTreeSet<Value> = BTreeSet::new();
        for &n in adj.get(&start).into_iter().flatten() {
            if seen.insert(n) {
                queue.push_back((n, 1));
            }
        }
        while let Some((v, d)) = queue.pop_front() {
            out.insert((start, v), d);
            for &w in adj.get(&v).into_iter().flatten() {
                if seen.insert(w) {
                    queue.push_back((w, d + 1));
                }
            }
        }
    }
    out
}

/// The nodes *not* reachable from a cycle (Example 4.4's `good` query:
/// nodes for which the lengths of incoming paths are bounded).
pub fn good_nodes(instance: &Instance, rel: Symbol) -> Relation {
    let (nodes, adj) = adjacency(instance, rel);
    // A node is "bad" iff it is reachable from some node on a cycle.
    // Nodes on cycles: those reachable from themselves.
    let tc = transitive_closure(instance, rel);
    let on_cycle: Vec<Value> = nodes
        .iter()
        .copied()
        .filter(|&v| tc.contains(&Tuple::from([v, v])))
        .collect();
    let mut bad: BTreeSet<Value> = on_cycle.iter().copied().collect();
    let mut queue: VecDeque<Value> = on_cycle.into();
    while let Some(v) = queue.pop_front() {
        for &w in adj.get(&v).into_iter().flatten() {
            if bad.insert(w) {
                queue.push_back(w);
            }
        }
    }
    let mut out = Relation::new(1);
    for &v in &nodes {
        if !bad.contains(&v) {
            out.insert(Tuple::from([v]));
        }
    }
    out
}

/// Game-theoretic value of a win-move game state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GameValue {
    /// The player to move wins with optimal play.
    Win,
    /// The player to move loses.
    Lose,
    /// Neither: optimal play draws (forces an infinite game).
    Draw,
}

/// Solves the win-move game (Example 3.2) by backward induction:
/// a state with no moves is lost; a state with a move to a lost state
/// is won; states never labelled are draws. The draws are exactly the
/// *unknown* facts of the well-founded semantics.
pub fn solve_game(instance: &Instance, moves: Symbol) -> BTreeMap<Value, GameValue> {
    let (nodes, adj) = adjacency(instance, moves);
    let mut value: BTreeMap<Value, GameValue> = BTreeMap::new();
    loop {
        let mut changed = false;
        for &v in &nodes {
            if value.contains_key(&v) {
                continue;
            }
            let succs = adj.get(&v).map(Vec::as_slice).unwrap_or(&[]);
            if succs.is_empty() {
                value.insert(v, GameValue::Lose);
                changed = true;
            } else if succs.iter().any(|s| value.get(s) == Some(&GameValue::Lose)) {
                value.insert(v, GameValue::Win);
                changed = true;
            } else if succs.iter().all(|s| value.get(s) == Some(&GameValue::Win)) {
                value.insert(v, GameValue::Lose);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for &v in &nodes {
        value.entry(v).or_insert(GameValue::Draw);
    }
    value
}

/// Whether the unary relation `rel` has an even number of elements
/// (the evenness query of Section 4.4).
pub fn evenness(instance: &Instance, rel: Symbol) -> bool {
    instance
        .relation(rel)
        .map_or(0, Relation::len)
        .is_multiple_of(2)
}

/// Checks that `oriented` is a valid orientation of `original`: every
/// 2-cycle of `original` lost exactly one direction, one-way edges are
/// untouched, and nothing else changed.
pub fn is_valid_orientation(original: &Relation, oriented: &Relation) -> bool {
    if oriented.arity() != 2 || original.arity() != 2 {
        return false;
    }
    // Every oriented edge must come from the original.
    for t in oriented.iter() {
        if !original.contains(t) {
            return false;
        }
    }
    for t in original.iter() {
        let rev = Tuple::from([t[1], t[0]]);
        let symmetric = original.contains(&rev) && t[0] != t[1];
        if symmetric {
            // Exactly one direction survives.
            if oriented.contains(t) == oriented.contains(&rev) {
                return false;
            }
        } else if !oriented.contains(t) {
            // One-way edges must survive.
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{cycle_graph, line_graph, paper_game};
    use unchained_common::Interner;

    #[test]
    fn tc_of_line_and_cycle() {
        let mut i = Interner::new();
        let line = line_graph(&mut i, "G", 4);
        let g = i.get("G").unwrap();
        assert_eq!(transitive_closure(&line, g).len(), 6);
        let cyc = cycle_graph(&mut i, "G", 4);
        assert_eq!(transitive_closure(&cyc, g).len(), 16);
    }

    #[test]
    fn complement_is_complement() {
        let mut i = Interner::new();
        let line = line_graph(&mut i, "G", 4);
        let g = i.get("G").unwrap();
        let universe = line.adom_sorted();
        let tc = transitive_closure(&line, g);
        let ct = complement_tc(&line, g, &universe);
        assert_eq!(tc.len() + ct.len(), 16);
    }

    #[test]
    fn distances_on_line() {
        let mut i = Interner::new();
        let line = line_graph(&mut i, "G", 4);
        let g = i.get("G").unwrap();
        let d = distances(&line, g);
        assert_eq!(d.get(&(Value::Int(0), Value::Int(3))), Some(&3));
        assert_eq!(d.get(&(Value::Int(3), Value::Int(0))), None);
    }

    #[test]
    fn good_nodes_of_mixed_graph() {
        let mut i = Interner::new();
        let g = i.intern("G");
        let mut inst = Instance::new();
        for (a, b) in [(1, 2), (2, 3), (3, 1), (3, 4), (6, 4)] {
            inst.insert_fact(g, Tuple::from([Value::Int(a), Value::Int(b)]));
        }
        let good = good_nodes(&inst, g);
        // Cycle {1,2,3} and its reachable node 4 are bad; 6 is good.
        assert_eq!(good.len(), 1);
        assert!(good.contains(&Tuple::from([Value::Int(6)])));
    }

    #[test]
    fn paper_game_solution() {
        let mut i = Interner::new();
        let inst = paper_game(&mut i, "moves");
        let moves = i.get("moves").unwrap();
        let v = solve_game(&inst, moves);
        let val = |name: &str, i: &mut Interner| v[&Value::sym(i, name)];
        assert_eq!(val("d", &mut i), GameValue::Win);
        assert_eq!(val("f", &mut i), GameValue::Win);
        assert_eq!(val("e", &mut i), GameValue::Lose);
        assert_eq!(val("g", &mut i), GameValue::Lose);
        assert_eq!(val("a", &mut i), GameValue::Draw);
        assert_eq!(val("b", &mut i), GameValue::Draw);
        assert_eq!(val("c", &mut i), GameValue::Draw);
    }

    #[test]
    fn orientation_validity() {
        let mut original = Relation::new(2);
        let v = Value::Int;
        for (a, b) in [(1, 2), (2, 1), (3, 4)] {
            original.insert(Tuple::from([v(a), v(b)]));
        }
        let mut good = Relation::new(2);
        good.insert(Tuple::from([v(1), v(2)]));
        good.insert(Tuple::from([v(3), v(4)]));
        assert!(is_valid_orientation(&original, &good));
        // Keeping both directions is invalid.
        assert!(!is_valid_orientation(&original, &original));
        // Dropping the one-way edge is invalid.
        let mut missing = Relation::new(2);
        missing.insert(Tuple::from([v(1), v(2)]));
        assert!(!is_valid_orientation(&original, &missing));
    }

    #[test]
    fn evenness_counts() {
        let mut i = Interner::new();
        let r = i.intern("R");
        let mut inst = Instance::new();
        inst.ensure(r, 1);
        assert!(evenness(&inst, r));
        inst.insert_fact(r, Tuple::from([Value::Int(1)]));
        assert!(!evenness(&inst, r));
    }
}

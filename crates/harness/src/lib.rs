//! # unchained-harness
//!
//! The experiment harness for reproducing *Datalog Unchained*:
//!
//! * [`generators`] — deterministic instance families (lines, cycles,
//!   random digraphs, game boards, symmetric-pair graphs, unary
//!   relations);
//! * [`oracles`] — direct reference implementations of the queries the
//!   paper's examples compute (transitive closure and its complement,
//!   BFS distances, cycle reachability, the win-move game solution,
//!   evenness, orientation validity);
//! * [`programs`] — the paper's programs, verbatim, as parseable text;
//! * [`ordered`] — ordered-database support (`succ`/`lt`/`min`/`max`,
//!   Section 4.5);
//! * [`equivalence`] — run two queries over an instance family and
//!   compare answers (the engine behind the Figure 1 table);
//! * [`randprog`] — random range-restricted program generation for
//!   differential engine testing.

pub mod equivalence;
pub mod generators;
pub mod oracles;
pub mod ordered;
pub mod programs;
pub mod randprog;

pub use equivalence::{
    compare, compare_traced, relation_of, QueryFn, TracedQueryFn, TracedVerdict, Verdict,
};
pub use oracles::GameValue;

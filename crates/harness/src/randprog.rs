//! Random rule-program generation for differential testing.
//!
//! The expressiveness theorems reproduced in this workspace assert
//! *engine equivalences on every program* of a fragment; the worked
//! examples only sample a few interesting points. This module generates
//! arbitrary range-restricted programs of a chosen fragment so the
//! differential tests (`tests/differential.rs`) can compare engines on
//! programs nobody hand-picked.
//!
//! All generation is deterministic in the seed.

use unchained_common::{Instance, Interner, Rng, Tuple, Value};
use unchained_parser::{Atom, HeadLiteral, Literal, Program, Rule, Term, Var};

/// Which fragment to generate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fragment {
    /// Pure positive Datalog.
    Positive,
    /// Datalog¬ with negation only on edb predicates (always
    /// stratifiable).
    Semipositive,
    /// Full Datalog¬ (negation anywhere; usually not stratifiable).
    DatalogNeg,
}

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct RandProgConfig {
    /// Fragment to stay inside.
    pub fragment: Fragment,
    /// Number of rules.
    pub rules: usize,
    /// Number of idb predicates (named `I0`, `I1`, …; arities 1–2).
    pub idb_preds: usize,
    /// Number of edb predicates (named `E0`, `E1`, …; arities 1–2).
    pub edb_preds: usize,
    /// Maximum body literals per rule (≥ 1).
    pub max_body: usize,
}

impl Default for RandProgConfig {
    fn default() -> Self {
        RandProgConfig {
            fragment: Fragment::DatalogNeg,
            rules: 4,
            idb_preds: 2,
            edb_preds: 2,
            max_body: 3,
        }
    }
}

fn arity_of(index: usize) -> usize {
    1 + index % 2
}

/// Generates a range-restricted program per `cfg`, deterministically in
/// `seed`.
pub fn random_program(interner: &mut Interner, cfg: RandProgConfig, seed: u64) -> Program {
    let mut rng = Rng::seeded(seed);
    let idb: Vec<_> = (0..cfg.idb_preds)
        .map(|k| (interner.intern(&format!("I{k}")), arity_of(k)))
        .collect();
    let edb: Vec<_> = (0..cfg.edb_preds)
        .map(|k| (interner.intern(&format!("E{k}")), arity_of(k)))
        .collect();
    let var_names = ["x", "y", "z", "w"];

    let mut rules = Vec::new();
    for _ in 0..cfg.rules {
        let n_vars = 1 + rng.gen_index(var_names.len());
        let pick_var = |rng: &mut Rng| Var(rng.gen_index(n_vars) as u32);

        // Head over a random idb predicate.
        let (head_pred, head_arity) = idb[rng.gen_index(idb.len())];
        let head_args: Vec<Term> = (0..head_arity)
            .map(|_| Term::Var(pick_var(&mut rng)))
            .collect();

        // Body literals.
        let n_body = 1 + rng.gen_index(cfg.max_body);
        let mut body = Vec::new();
        for _ in 0..n_body {
            let negate = match cfg.fragment {
                Fragment::Positive => false,
                Fragment::Semipositive | Fragment::DatalogNeg => rng.gen_bool(0.35),
            };
            let from_edb = match cfg.fragment {
                // Semipositive: negation only on edb.
                Fragment::Semipositive if negate => true,
                _ => rng.gen_bool(0.5),
            };
            let (pred, arity) = if from_edb {
                edb[rng.gen_index(edb.len())]
            } else {
                idb[rng.gen_index(idb.len())]
            };
            let args: Vec<Term> = (0..arity).map(|_| Term::Var(pick_var(&mut rng))).collect();
            let atom = Atom::new(pred, args);
            body.push(if negate {
                Literal::Neg(atom)
            } else {
                Literal::Pos(atom)
            });
        }

        // Range restriction: every head variable must occur in the body
        // (any literal counts under the procedural semantics). Patch
        // missing variables with a positive edb atom.
        let body_vars: std::collections::BTreeSet<Var> =
            body.iter().flat_map(|l| l.vars()).collect();
        for arg in &head_args {
            if let Term::Var(v) = arg {
                if !body_vars.contains(v) {
                    let (pred, arity) = edb[0];
                    let args: Vec<Term> = (0..arity).map(|_| Term::Var(*v)).collect();
                    body.push(Literal::Pos(Atom::new(pred, args)));
                }
            }
        }

        rules.push(Rule {
            head: vec![HeadLiteral::Pos(Atom::new(head_pred, head_args))],
            body,
            forall: vec![],
            var_names: var_names[..n_vars].iter().map(|s| s.to_string()).collect(),
        });
    }
    Program { rules }
}

/// Generates a random edb instance matching the generator's edb schema
/// (`E0`, `E1`, … with arities 1–2) over the node universe
/// `0..universe`.
pub fn random_edb(
    interner: &mut Interner,
    cfg: RandProgConfig,
    universe: i64,
    facts_per_pred: usize,
    seed: u64,
) -> Instance {
    let mut rng = Rng::seeded(seed);
    let mut instance = Instance::new();
    for k in 0..cfg.edb_preds {
        let pred = interner.intern(&format!("E{k}"));
        let arity = arity_of(k);
        instance.ensure(pred, arity);
        for _ in 0..facts_per_pred {
            let tuple: Tuple = (0..arity)
                .map(|_| Value::Int(rng.gen_range_i64(0, universe)))
                .collect();
            instance.insert_fact(pred, tuple);
        }
    }
    instance
}

#[cfg(test)]
mod tests {
    use super::*;
    use unchained_parser::{check_range_restricted, classify, Language};

    #[test]
    fn generated_programs_are_range_restricted_and_in_fragment() {
        let mut i = Interner::new();
        for seed in 0..50u64 {
            for fragment in [
                Fragment::Positive,
                Fragment::Semipositive,
                Fragment::DatalogNeg,
            ] {
                let cfg = RandProgConfig {
                    fragment,
                    ..Default::default()
                };
                let p = random_program(&mut i, cfg, seed);
                assert_eq!(p.rules.len(), cfg.rules);
                check_range_restricted(&p, false)
                    .unwrap_or_else(|e| panic!("seed {seed} {fragment:?}: {e}"));
                let lang = classify(&p);
                match fragment {
                    Fragment::Positive => assert_eq!(lang, Language::Datalog),
                    Fragment::Semipositive => assert!(
                        lang <= Language::StratifiedDatalogNeg,
                        "seed {seed}: {lang}"
                    ),
                    Fragment::DatalogNeg => {
                        assert!(lang <= Language::DatalogNeg, "seed {seed}: {lang}")
                    }
                }
            }
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let mut i = Interner::new();
        let cfg = RandProgConfig::default();
        let a = random_program(&mut i, cfg, 9);
        let b = random_program(&mut i, cfg, 9);
        assert_eq!(a, b);
        let c = random_program(&mut i, cfg, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn random_edb_matches_schema() {
        let mut i = Interner::new();
        let cfg = RandProgConfig::default();
        let inst = random_edb(&mut i, cfg, 5, 6, 3);
        let e0 = i.get("E0").unwrap();
        let e1 = i.get("E1").unwrap();
        assert_eq!(inst.relation(e0).unwrap().arity(), 1);
        assert_eq!(inst.relation(e1).unwrap().arity(), 2);
        assert!(inst.relation(e1).unwrap().len() <= 6);
    }
}

//! The paper's programs, verbatim (in the parser's concrete syntax),
//! plus a few canonical companions. Centralizing them here keeps the
//! examples, integration tests, and benches in exact agreement about
//! what each experiment runs.

/// §3.1 — transitive closure (pure Datalog).
pub const TC: &str = "\
T(x,y) :- G(x,y).
T(x,y) :- G(x,z), T(z,y).
";

/// Single-source reachability — the unary cousin of §3.1's transitive
/// closure. Output is bounded by the node count rather than the node
/// count squared, so it scales linearly with the edge relation: the
/// `scale_reach` benchmark workload runs it over 10^6-fact EDBs.
pub const REACH: &str = "\
R(x) :- S(x).
R(y) :- R(x), G(x,y).
";

/// Field-insensitive Andersen-style points-to analysis: four rules
/// over `AddrOf`/`Assign`/`Load`/`Store` statement relations, with
/// the classic three-way joins through the `PT` IDB. The canonical
/// "real program analysis in Datalog" shape (cf. Doop), used by the
/// `scale_pointsto` benchmark workload.
pub const POINTSTO: &str = "\
PT(v,o) :- AddrOf(v,o).
PT(v,o) :- Assign(v,w), PT(w,o).
PT(v,o) :- Load(v,p), PT(p,q), PT(q,o).
PT(q,o) :- Store(p,w), PT(p,q), PT(w,o).
";

/// §3.2 — complement of transitive closure (stratified Datalog¬).
pub const CTC_STRATIFIED: &str = "\
T(x,y) :- G(x,y).
T(x,y) :- G(x,z), T(z,y).
CT(x,y) :- !T(x,y).
";

/// Example 3.2 — the win-move game (Datalog¬, not stratifiable).
pub const WIN: &str = "win(x) :- moves(x,y), !win(y).\n";

/// Example 4.1 — the `closer` program (inflationary Datalog¬). Note
/// the right-linear `T` rule, matching the paper.
pub const CLOSER: &str = "\
T(x,y) :- G(x,y).
T(x,y) :- T(x,z), G(z,y).
closer(x,y,xp,yp) :- T(x,y), !T(xp,yp).
";

/// Example 4.3 — complement of transitive closure in inflationary
/// Datalog¬ via the delayed-firing technique (assumes `G` nonempty).
pub const CTC_INFLATIONARY: &str = "\
T(x,y) :- G(x,y).
T(x,y) :- G(x,z), T(z,y).
old-T(x,y) :- T(x,y).
old-T-except-final(x,y) :- T(x,y), T(xp,zp), T(zp,yp), !T(xp,yp).
CT(x,y) :- !T(x,y), old-T(xp,yp), !old-T-except-final(xp,yp).
";

/// Example 4.4 — `good` (nodes not reachable from a cycle) in
/// inflationary Datalog¬ via the timestamp technique. The first three
/// rules perform the first iteration of the corresponding fixpoint
/// loop; the timestamped rules perform iteration `i` using the values
/// newly introduced in `good` at iteration `i−1` as timestamps.
pub const GOOD_TIMESTAMP: &str = "\
bad(x) :- G(y,x), !good(y).
delay :- .
good(x) :- delay, !bad(x).
bad-stamped(x,t) :- G(y,x), !good(y), good(t).
delay-stamped(t) :- good(t).
good(x) :- delay-stamped(t), !bad-stamped(x,t).
";

/// §4.2 — the flip-flop Datalog¬¬ program that never terminates on
/// input `T(0)`.
pub const FLIP_FLOP: &str = "\
T(0) :- T(1).
!T(1) :- T(1).
T(1) :- T(0).
!T(0) :- T(0).
";

/// §5.1 — the orientation program (N-Datalog¬¬): for every 2-cycle,
/// remove one of the two edges.
pub const ORIENTATION: &str = "!G(x,y) :- G(x,y), G(y,x).\n";

/// Example 5.5 — `P − π_A(Q)` in N-Datalog¬∀.
pub const DIFF_FORALL: &str = "answer(x) :- forall y : P(x), !Q(x,y).\n";

/// Example 5.5 — `P − π_A(Q)` in N-Datalog¬⊥ (verbatim from the
/// paper).
pub const DIFF_BOTTOM: &str = "\
PROJ(x) :- !done-with-proj, Q(x,y).
done-with-proj :- .
bottom :- done-with-proj, Q(x,y), !PROJ(x).
answer(x) :- done-with-proj, P(x), !PROJ(x).
";

/// §5.2 — `P − π_A(Q)` in N-Datalog¬¬ (deletions provide the control).
pub const DIFF_NNEGNEG: &str = "\
answer(x) :- P(x).
!answer(x), !P(x) :- Q(x,y).
";

/// §5.2 — the two composition rules that N-Datalog¬ *cannot* chain
/// (Example 5.4's inexpressibility): running them nondeterministically
/// may compute `answer` before `T` is complete.
pub const DIFF_NAIVE_COMPOSITION: &str = "\
T(x) :- Q(x,y).
answer(x) :- P(x), !T(x).
";

/// Theorem 4.7 — evenness of unary `R` on an ordered database
/// (semipositive Datalog¬: negation only on the edb relations `R` and
/// the order relations `succ`/`min`/`max`). `even-pref(x)` /
/// `odd-pref(x)` track the parity of `|R ∩ [min..x]|`; `even` holds
/// iff `|R|` is even.
pub const EVEN_SEMIPOSITIVE: &str = "\
even-pref(x) :- min(x), !R(x).
odd-pref(x) :- min(x), R(x).
even-pref(y) :- succ(x,y), even-pref(x), !R(y).
even-pref(y) :- succ(x,y), odd-pref(x), R(y).
odd-pref(y) :- succ(x,y), odd-pref(x), !R(y).
odd-pref(y) :- succ(x,y), even-pref(x), R(y).
even :- max(x), even-pref(x).
";

#[cfg(test)]
mod tests {
    use super::*;
    use unchained_common::Interner;
    use unchained_parser::{classify, parse_program, Language};

    fn lang(src: &str) -> Language {
        let mut i = Interner::new();
        classify(&parse_program(src, &mut i).unwrap())
    }

    #[test]
    fn programs_parse_and_classify_as_documented() {
        assert_eq!(lang(TC), Language::Datalog);
        assert_eq!(lang(CTC_STRATIFIED), Language::StratifiedDatalogNeg);
        assert_eq!(lang(WIN), Language::DatalogNeg);
        // CLOSER and the delayed-CTC program are syntactically
        // stratifiable (their negations are not on recursive cycles) —
        // but the paper evaluates them under *inflationary* semantics,
        // where the stage at which facts appear carries the meaning.
        assert_eq!(lang(CLOSER), Language::StratifiedDatalogNeg);
        assert_eq!(lang(CTC_INFLATIONARY), Language::StratifiedDatalogNeg);
        assert_eq!(lang(GOOD_TIMESTAMP), Language::DatalogNeg);
        assert_eq!(lang(FLIP_FLOP), Language::DatalogNegNeg);
        assert_eq!(lang(ORIENTATION), Language::DatalogNegNeg);
        assert_eq!(lang(DIFF_FORALL), Language::Nondeterministic);
        assert_eq!(lang(DIFF_BOTTOM), Language::Nondeterministic);
        assert_eq!(lang(DIFF_NNEGNEG), Language::Nondeterministic);
        assert_eq!(lang(EVEN_SEMIPOSITIVE), Language::SemipositiveDatalogNeg);
    }

    #[test]
    fn closer_is_not_stratifiable_but_win_like_programs_parse() {
        // CLOSER negates T which is recursive with itself — fine for
        // inflationary; the classifier reports full Datalog¬ only for
        // genuinely unstratifiable programs.
        assert_eq!(lang(WIN), Language::DatalogNeg);
    }
}

//! # unchained-bench
//!
//! Shared helpers for the Criterion benchmarks and the `fig1` binary
//! that regenerates the paper's Figure 1 (the relative-expressive-power
//! hierarchy) as an empirically validated table.
//!
//! One Criterion bench exists per experiment row of DESIGN.md:
//!
//! | bench target | experiment |
//! |---|---|
//! | `datalog_tc` | EX-TC (+ naive-vs-semi-naive ablation) |
//! | `stratified_ctc` | EX-STRAT |
//! | `wellfounded_win` | EX-WIN |
//! | `inflationary` | EX-CLOSER, EX-DELAY, EX-TSTAMP |
//! | `nondet` | EX-ORIENT, EX-DIFF, TH-5.11 |
//! | `ordered_parity` | TH-4.7 |
//! | `while_vs_datalog` | TH-4.2, TH-4.8 |
//! | `parser_throughput` | (infrastructure) |

use unchained_common::{Instance, Interner};
use unchained_parser::{parse_program, Program};

/// Parses a program, panicking on error (bench setup).
pub fn must_parse(src: &str, interner: &mut Interner) -> Program {
    parse_program(src, interner).expect("bench program parses")
}

/// A labelled workload: name + input instance.
pub struct Workload {
    /// Display label, e.g. `line/64`.
    pub label: String,
    /// The input.
    pub input: Instance,
}

/// Builds the standard graph workloads used by several benches: lines
/// and seeded random digraphs of the given sizes.
pub fn graph_workloads(interner: &mut Interner, sizes: &[i64]) -> Vec<Workload> {
    let mut out = Vec::new();
    for &n in sizes {
        out.push(Workload {
            label: format!("line/{n}"),
            input: unchained_harness::generators::line_graph(interner, "G", n),
        });
        out.push(Workload {
            label: format!("random/{n}"),
            input: unchained_harness::generators::random_digraph(
                interner,
                "G",
                n,
                2.0 / n as f64,
                0xDA7A + n as u64,
            ),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_built() {
        let mut i = Interner::new();
        let w = graph_workloads(&mut i, &[8, 16]);
        assert_eq!(w.len(), 4);
        assert!(w[0].label.starts_with("line/"));
        assert!(w[0].input.fact_count() > 0);
    }
}

//! # unchained-bench
//!
//! The in-repo benchmark harness: a registry of seeded workload
//! generators run across every applicable engine, measured by the
//! zero-dependency kernel in [`unchained_common::bench`] and emitted as
//! a versioned, machine-readable `BENCH.json` plus a human table.
//!
//! Following the self-profiling discipline of production Datalog
//! engines (Soufflé's profiler, DDlog's `--self-profile`), the harness
//! has **no external dependencies** — it builds and runs fully offline
//! and is reachable two ways:
//!
//! ```sh
//! cargo run --release -p unchained-bench -- --quick --json BENCH.json
//! cargo run --release -p unchained-cli -- bench --quick --json BENCH.json
//! ```
//!
//! `--baseline PRIOR.json` compares against an earlier report and exits
//! nonzero on regression (median wall time beyond a configurable
//! threshold, or drift in the deterministic work gauges), so CI can
//! gate performance PRs.
//!
//! | workload | shape | engines |
//! |---|---|---|
//! | `chain`  | line-graph TC (§3.1) | naive, seminaive, inflationary, noninflationary, while |
//! | `cycle`  | cycle-graph TC | naive, seminaive |
//! | `grid`   | grid-graph TC (high fan-in joins) | naive, seminaive |
//! | `random` | seeded random-digraph TC | seminaive, inflationary |
//! | `win`    | win-move game, alternating fixpoint (Ex. 3.2) | wellfounded |
//! | `ctc`    | complement of TC (§3.2) | stratified, wellfounded |
//! | `magic`  | single-source TC over disjoint chains (§3.1) | seminaive, magic |
//! | `invent` | Datalog¬new invention chain (§4.3) | invention |
//! | `scale_reach` | single-source reach, 10^6-fact EDB, threads 1/2/4/8 | seminaive |
//! | `scale_pointsto` | Andersen points-to, 4.4·10^5-fact EDB, threads 1/2/4/8 | seminaive |
//!
//! Every generator is deterministic in its seed (`common::rng`), so
//! the work gauges — stages, facts derived, join probes — are exactly
//! reproducible across runs and machines; only wall times vary.
//! Telemetry stays enabled while timing (that is how the gauges are
//! harvested), so timings include the collection overhead uniformly —
//! comparisons across runs remain apples-to-apples.

use unchained_common::bench::{
    compare_reports, compare_with_history, measure, BenchEntry, BenchHistory, BenchReport, Gauges,
    HistoryRun, Repetitions, WallStats, DEFAULT_REGRESSION_THRESHOLD,
};
use unchained_common::fmt_bytes;
use unchained_common::{hottest_rules, Instance, Interner, Telemetry, Tracer, Tuple, Value};
use unchained_core::{
    inflationary, invention, magic, naive, noninflationary, seminaive, stratified, wellfounded,
    EvalError, EvalOptions, IncrementalSession,
};
use unchained_harness::generators;
use unchained_harness::programs;
use unchained_parser::{parse_program, Program};
use unchained_while::parse_while_program;

/// The while-language rendering of transitive closure (Theorem 4.2's
/// other side of the fixpoint coin).
const WHILE_TC: &str = "\
while change do
  T += { x, y | G(x,y) or exists z (T(x,z) & G(z,y)) };
end
";

/// One benchmark case: a workload × engine × size triple plus the
/// closure that performs a single evaluation and harvests its gauges.
///
/// The runner takes the [`Tracer`] to evaluate under: the timing loop
/// passes a disabled one (zero overhead), the `--profile` pass an
/// enabled one — in which case the runner also returns its
/// hottest-rules table, rendered against the case's own interner.
pub struct Case {
    /// Workload name (`chain`, `win`, …).
    pub workload: &'static str,
    /// Engine name (`naive`, `magic`, `while`, …).
    pub engine: &'static str,
    /// Worker threads requested for this case (1 = sequential).
    pub threads: usize,
    /// Size parameter (nodes, states, or stages — per workload).
    pub n: u64,
    /// Input EDB size in facts (recorded in v7 `BENCH.json` entries so
    /// throughput rates can be read against the input scale).
    pub edb_facts: u64,
    runner: CaseRunner,
}

/// A boxed single-case runner (see [`Case`]).
type CaseRunner = Box<dyn FnMut(&Tracer) -> Result<(Gauges, u64, Option<String>), String>>;

/// How many rules the per-case `--profile` table shows.
const PROFILE_TOP_N: usize = 5;

impl Case {
    /// The label `--filter` matches against (`workload/engine`, with an
    /// `@threads` suffix on parallel cases).
    pub fn label(&self) -> String {
        if self.threads > 1 {
            format!("{}/{}@{}", self.workload, self.engine, self.threads)
        } else {
            format!("{}/{}", self.workload, self.engine)
        }
    }
}

/// Workload sizes for the two fidelity levels.
struct Sizes {
    chain: i64,
    cycle: i64,
    grid: (i64, i64),
    random: i64,
    win: i64,
    ctc: i64,
    magic_chains: i64,
    magic_len: i64,
    invent_stages: usize,
}

impl Sizes {
    fn full() -> Sizes {
        Sizes {
            chain: 64,
            cycle: 48,
            grid: (8, 8),
            random: 48,
            win: 64,
            ctc: 24,
            magic_chains: 8,
            magic_len: 12,
            invent_stages: 256,
        }
    }

    fn quick() -> Sizes {
        Sizes {
            chain: 16,
            cycle: 12,
            grid: (4, 4),
            random: 16,
            win: 16,
            ctc: 10,
            magic_chains: 4,
            magic_len: 6,
            invent_stages: 32,
        }
    }
}

/// Wraps one deterministic-engine evaluation: enables telemetry, times
/// nothing itself (the kernel's [`measure`] loop does), and converts
/// the finished trace into [`Gauges`] plus the worker-thread count the
/// engine actually ran with (`1` when the engine has no parallel path,
/// so such entries stay keyed as sequential rows).
fn harvest(
    tel: &Telemetry,
    interner_symbols: usize,
    input_facts: usize,
) -> Result<(Gauges, u64), String> {
    let mut trace = tel.snapshot().ok_or("telemetry produced no trace")?;
    trace.interner_symbols = interner_symbols;
    let threads = (trace.threads as u64).max(1);
    Ok((Gauges::from_trace(&trace, input_facts), threads))
}

/// A boxed workload-input generator.
type GraphGen = Box<dyn Fn(&mut Interner) -> Instance>;

/// A boxed single-evaluation closure driven through [`EvalOptions`].
type EngineRun = Box<dyn FnMut(&Instance, EvalOptions) -> Result<(), String>>;

/// Builds a runner for an engine driven through [`EvalOptions`].
/// `eval` runs the engine once; it may treat an expected budget error
/// as success (the invention chain runs against a stage budget). The
/// case's interner is captured whole so a profiling pass can render
/// rule names and head predicates.
fn options_runner(
    input: Instance,
    interner: Interner,
    threads: usize,
    mut eval: impl FnMut(&Instance, EvalOptions) -> Result<(), String> + 'static,
) -> CaseRunner {
    Box::new(move |tracer| {
        let tel = Telemetry::enabled().with_tracer(tracer.clone());
        let options = EvalOptions::default()
            .with_telemetry(tel.clone())
            .with_threads(threads);
        eval(&input, options)?;
        let profile = tracer
            .is_enabled()
            .then(|| hottest_rules(&tracer.finish(), &interner, PROFILE_TOP_N));
        let (gauges, threads) = harvest(&tel, interner.len(), input.fact_count())?;
        Ok((gauges, threads, profile))
    })
}

/// Like [`options_runner`], but the workload input is built on the
/// runner's first call instead of when the registry is assembled. The
/// scale workloads use this: their full-fidelity EDBs run to 10^6
/// facts, and generating them eagerly would make `cases()` — and every
/// `--filter` run that skips them — pay seconds of setup. The first
/// (warmup) call absorbs the generation; timed repetitions reuse it.
fn lazy_runner(
    threads: usize,
    build: impl Fn(&mut Interner) -> (Instance, Program) + 'static,
) -> CaseRunner {
    let mut state: Option<(Instance, Interner, Program)> = None;
    Box::new(move |tracer| {
        let (input, interner, program) = state.get_or_insert_with(|| {
            let mut interner = Interner::new();
            let (input, program) = build(&mut interner);
            (input, interner, program)
        });
        let tel = Telemetry::enabled().with_tracer(tracer.clone());
        let options = EvalOptions::default()
            .with_telemetry(tel.clone())
            .with_threads(threads);
        seminaive::minimum_model(program, input, options)
            .map(drop)
            .map_err(|e| e.to_string())?;
        let profile = tracer
            .is_enabled()
            .then(|| hottest_rules(&tracer.finish(), interner, PROFILE_TOP_N));
        let (gauges, threads) = harvest(&tel, interner.len(), input.fact_count())?;
        Ok((gauges, threads, profile))
    })
}

/// The full case registry at the given fidelity. `threads` is the
/// worker count every options-driven case is asked to run with; when it
/// is 1 (the default), a dedicated `chain/seminaive@4` thread-scaling
/// row is appended so the committed baseline always tracks the parallel
/// path.
pub fn cases(quick: bool, threads: usize) -> Vec<Case> {
    let sizes = if quick { Sizes::quick() } else { Sizes::full() };
    let mut out: Vec<Case> = Vec::new();

    let parse = |src: &str, i: &mut Interner| -> Program {
        parse_program(src, i).expect("registry program parses")
    };

    // chain / cycle / grid / random — transitive closure under the
    // positive and fixpoint engines.
    let tc_graphs: Vec<(&'static str, u64, GraphGen)> = vec![
        ("chain", sizes.chain as u64, {
            let n = sizes.chain;
            Box::new(move |i| generators::line_graph(i, "G", n))
        }),
        ("cycle", sizes.cycle as u64, {
            let n = sizes.cycle;
            Box::new(move |i| generators::cycle_graph(i, "G", n))
        }),
        ("grid", (sizes.grid.0 * sizes.grid.1) as u64, {
            let (w, h) = sizes.grid;
            Box::new(move |i| generators::grid_graph(i, "G", w, h))
        }),
        ("random", sizes.random as u64, {
            let n = sizes.random;
            Box::new(move |i| generators::random_digraph(i, "G", n, 2.0 / n as f64, 0xDA7A))
        }),
    ];
    for (workload, n, gen) in tc_graphs {
        let engines: &[&str] = match workload {
            "chain" => &[
                "naive",
                "seminaive",
                "inflationary",
                "noninflationary",
                "while",
            ],
            "cycle" | "grid" => &["naive", "seminaive"],
            _ => &["seminaive", "inflationary"],
        };
        for &engine in engines {
            let mut interner = Interner::new();
            let input = gen(&mut interner);
            let case = match engine {
                "while" => {
                    let (program, _) =
                        parse_while_program(WHILE_TC, &mut interner).expect("WHILE_TC parses");
                    let facts = input.fact_count();
                    let input = input.clone();
                    Case {
                        workload,
                        engine,
                        threads: 1,
                        n,
                        edb_facts: facts as u64,
                        runner: Box::new(move |tracer| {
                            let tel = Telemetry::enabled().with_tracer(tracer.clone());
                            unchained_while::run_traced(
                                &program,
                                &input,
                                1_000_000,
                                None,
                                tel.clone(),
                            )
                            .map_err(|e| e.to_string())?;
                            let profile = tracer
                                .is_enabled()
                                .then(|| hottest_rules(&tracer.finish(), &interner, PROFILE_TOP_N));
                            let (gauges, threads) = harvest(&tel, interner.len(), facts)?;
                            Ok((gauges, threads, profile))
                        }),
                    }
                }
                _ => {
                    let program = parse(programs::TC, &mut interner);
                    let run: EngineRun = match engine {
                        "naive" => Box::new(move |inp, o| {
                            naive::minimum_model(&program, inp, o)
                                .map(drop)
                                .map_err(|e| e.to_string())
                        }),
                        "seminaive" => Box::new(move |inp, o| {
                            seminaive::minimum_model(&program, inp, o)
                                .map(drop)
                                .map_err(|e| e.to_string())
                        }),
                        "inflationary" => Box::new(move |inp, o| {
                            inflationary::eval(&program, inp, o)
                                .map(drop)
                                .map_err(|e| e.to_string())
                        }),
                        "noninflationary" => Box::new(move |inp, o| {
                            noninflationary::eval(
                                &program,
                                inp,
                                noninflationary::ConflictPolicy::PreferPositive,
                                o,
                            )
                            .map(drop)
                            .map_err(|e| e.to_string())
                        }),
                        other => unreachable!("unknown TC engine {other}"),
                    };
                    let mut run = run;
                    Case {
                        workload,
                        engine,
                        threads,
                        n,
                        edb_facts: input.fact_count() as u64,
                        runner: options_runner(input, interner, threads, move |inp, o| run(inp, o)),
                    }
                }
            };
            out.push(case);
        }
    }

    // chain/seminaive thread-scaling row: the same workload with 4
    // workers. The work gauges (stages, facts, fired) must equal the
    // sequential row's; the entry is keyed apart as `chain/seminaive@4`.
    if threads == 1 {
        let mut interner = Interner::new();
        let n = sizes.chain;
        let input = generators::line_graph(&mut interner, "G", n);
        let program = parse(programs::TC, &mut interner);
        out.push(Case {
            workload: "chain",
            engine: "seminaive",
            threads: 4,
            n: n as u64,
            edb_facts: input.fact_count() as u64,
            runner: options_runner(input, interner, 4, move |inp, o| {
                seminaive::minimum_model(&program, inp, o)
                    .map(drop)
                    .map_err(|e| e.to_string())
            }),
        });
    }

    // win — the unstratifiable game program under the alternating
    // fixpoint (well-founded) engine, on a seeded random board.
    {
        let mut interner = Interner::new();
        let input = generators::random_game(&mut interner, "moves", sizes.win, 3, 0xBEEF);
        let program = parse(programs::WIN, &mut interner);
        out.push(Case {
            workload: "win",
            engine: "wellfounded",
            threads,
            n: sizes.win as u64,
            edb_facts: input.fact_count() as u64,
            runner: options_runner(input, interner, threads, move |inp, o| {
                wellfounded::eval(&program, inp, o)
                    .map(drop)
                    .map_err(|e| e.to_string())
            }),
        });
    }

    // ctc — stratified complement-of-TC, under the stratified engine
    // and (as a stratified program) the well-founded one.
    for engine in ["stratified", "wellfounded"] {
        let mut interner = Interner::new();
        let input = generators::line_graph(&mut interner, "G", sizes.ctc);
        let program = parse(programs::CTC_STRATIFIED, &mut interner);
        let run: EngineRun = match engine {
            "stratified" => Box::new(move |inp, o| {
                stratified::eval(&program, inp, o)
                    .map(drop)
                    .map_err(|e| e.to_string())
            }),
            _ => Box::new(move |inp, o| {
                wellfounded::eval(&program, inp, o)
                    .map(drop)
                    .map_err(|e| e.to_string())
            }),
        };
        let mut run = run;
        out.push(Case {
            workload: "ctc",
            engine,
            threads,
            n: sizes.ctc as u64,
            edb_facts: input.fact_count() as u64,
            runner: options_runner(input, interner, threads, move |inp, o| run(inp, o)),
        });
    }

    // magic — single-source reachability over disjoint chains: full
    // semi-naive evaluation vs. the magic-sets rewrite of the same
    // query (the goal-direction ablation of §3.1).
    {
        let chains = sizes.magic_chains;
        let len = sizes.magic_len;
        let n = (chains * len) as u64;
        let build = |i: &mut Interner| {
            let g = i.intern("G");
            let mut input = Instance::new();
            input.ensure(g, 2);
            for c in 0..chains {
                let base = c * 1000;
                for k in 0..len {
                    input.insert_fact(
                        g,
                        Tuple::from([Value::Int(base + k), Value::Int(base + k + 1)]),
                    );
                }
            }
            input
        };
        {
            let mut interner = Interner::new();
            let input = build(&mut interner);
            let program = parse(programs::TC, &mut interner);
            out.push(Case {
                workload: "magic",
                engine: "seminaive",
                threads,
                n,
                edb_facts: input.fact_count() as u64,
                runner: options_runner(input, interner, threads, move |inp, o| {
                    seminaive::minimum_model(&program, inp, o)
                        .map(drop)
                        .map_err(|e| e.to_string())
                }),
            });
        }
        {
            let mut interner = Interner::new();
            let input = build(&mut interner);
            let program = parse(programs::TC, &mut interner);
            let t = interner.get("T").expect("TC defines T");
            let query = magic::QueryPattern::new(t, vec![Some(Value::Int(0)), None]);
            let facts = input.fact_count();
            out.push(Case {
                workload: "magic",
                engine: "magic",
                threads,
                n,
                edb_facts: facts as u64,
                runner: Box::new(move |tracer| {
                    let tel = Telemetry::enabled().with_tracer(tracer.clone());
                    let options = EvalOptions::default()
                        .with_telemetry(tel.clone())
                        .with_threads(threads);
                    magic::answer(&program, &query, &input, &mut interner, options)
                        .map_err(|e| e.to_string())?;
                    let profile = tracer
                        .is_enabled()
                        .then(|| hottest_rules(&tracer.finish(), &interner, PROFILE_TOP_N));
                    let (gauges, threads) = harvest(&tel, interner.len(), facts)?;
                    Ok((gauges, threads, profile))
                }),
            });
        }
    }

    // invent — the Datalog¬new chain that invents a value per stage,
    // run against a stage budget (it would otherwise run forever; the
    // budget makes the measured work exactly `invent_stages` stages).
    {
        let mut interner = Interner::new();
        let program = parse(
            "Chain(n, x) :- Start(x).\nChain(n2, n) :- Chain(n, x).",
            &mut interner,
        );
        let start = interner.get("Start").expect("Start interned");
        let mut input = Instance::new();
        input.insert_fact(start, Tuple::from([Value::Int(0)]));
        let budget = sizes.invent_stages;
        out.push(Case {
            workload: "invent",
            engine: "invention",
            threads,
            n: budget as u64,
            edb_facts: 1,
            runner: options_runner(
                input,
                interner,
                threads,
                move |inp, o| match invention::eval(&program, inp, o.with_max_stages(budget)) {
                    Ok(_) | Err(EvalError::StageLimitExceeded(_)) => Ok(()),
                    Err(e) => Err(e.to_string()),
                },
            ),
        });
    }

    // ivm — incremental maintenance on chain TC: build the session
    // (initial fixpoint), retract the last edge, poll, and check the
    // maintained instance against a from-scratch evaluation of the
    // edited edb. The runner doubles as the CI smoke for the poll-vs-
    // recompute invariant: a divergence (the poll keeping facts the
    // from-scratch run no longer derives, or losing ones it still does)
    // fails the case outright. Gauges carry the poll's overdelete and
    // rederive counters alongside its join work.
    {
        let n = sizes.chain;
        out.push(Case {
            workload: "ivm",
            engine: "incremental",
            threads,
            n: n as u64,
            // The runner builds its line-graph EDB itself: n−1 edges.
            edb_facts: (n - 1) as u64,
            runner: Box::new(move |tracer| {
                let mut interner = Interner::new();
                let input = generators::line_graph(&mut interner, "G", n);
                let program =
                    parse_program(programs::TC, &mut interner).expect("registry program parses");
                let g = interner.get("G").expect("line graph interns G");
                let facts = input.fact_count();
                let tel = Telemetry::enabled().with_tracer(tracer.clone());
                let sw = tel.stopwatch();
                let options = EvalOptions::default()
                    .with_telemetry(tel.clone())
                    .with_threads(threads);
                let mut session =
                    IncrementalSession::new(program, &input, options).map_err(|e| e.to_string())?;
                session
                    .retract(g, Tuple::from([Value::Int(n - 2), Value::Int(n - 1)]))
                    .map_err(|e| e.to_string())?;
                let stats = session.poll().map_err(|e| e.to_string())?;
                if stats.overdeleted == 0 {
                    return Err("ivm case retracted a chain edge but overdeleted nothing".into());
                }
                let scratch =
                    stratified::eval(session.program(), session.edb(), EvalOptions::default())
                        .map_err(|e| e.to_string())?;
                if !session.instance().same_facts(&scratch.instance) {
                    return Err("ivm poll diverged from a from-scratch evaluation".into());
                }
                tel.finish(&sw, session.instance().fact_count());
                let profile = tracer
                    .is_enabled()
                    .then(|| hottest_rules(&tracer.finish(), &interner, PROFILE_TOP_N));
                let (gauges, threads) = harvest(&tel, interner.len(), facts)?;
                Ok((gauges, threads, profile))
            }),
        });
    }

    // scale — the columnar-layout / morsel-scheduler workloads: EDBs
    // of 10^4 (quick) to 10^6 (full) facts, one to two orders past
    // the graph cases above. `scale_reach` is single-source
    // reachability over a random out-degree-4 digraph (output and
    // work both linear in the edge count); `scale_pointsto` is a
    // field-insensitive Andersen points-to analysis (four rules, five
    // relations, three-way joins through the `PT` IDB). The default
    // registry carries thread-scaling rows at 1/2/4/8 over identical
    // inputs, so BENCH.json always records `speedup_vs_seq` against a
    // sequential twin; an explicit `--threads N` run keeps one row.
    // Inputs are built lazily on first run (see [`lazy_runner`]), so
    // listing or filtering the registry never generates them.
    {
        let thread_rows: Vec<usize> = if threads == 1 {
            vec![1, 2, 4, 8]
        } else {
            vec![threads]
        };
        let reach_n: i64 = if quick { 2_500 } else { 260_000 };
        const REACH_DEG: i64 = 4;
        const REACH_SOURCES: usize = 16;
        for &t in &thread_rows {
            out.push(Case {
                workload: "scale_reach",
                engine: "seminaive",
                threads: t,
                n: reach_n as u64,
                // Both generators produce exact counts by construction.
                edb_facts: (reach_n * REACH_DEG) as u64 + REACH_SOURCES as u64,
                runner: lazy_runner(t, move |i| {
                    let input = generators::merge(
                        generators::random_out_digraph(i, "G", reach_n, REACH_DEG, 0x5CA1E),
                        &generators::random_unary(i, "S", reach_n, REACH_SOURCES, 0x0DD5),
                    );
                    let program = parse_program(programs::REACH, i).expect("REACH parses");
                    (input, program)
                }),
            });
        }
        // Subcritical statement mix (assigns = vars/4, loads = stores
        // = vars/16), so the points-to closure stays within a small
        // constant of the EDB — see the generator's doc; denser mixes
        // cross the percolation threshold and the closure goes
        // superlinear. EDB = vars·(1 + 1/4 + 1/16 + 1/16) = 11·vars/8.
        let pt_vars: i64 = if quick { 8_000 } else { 320_000 };
        for &t in &thread_rows {
            out.push(Case {
                workload: "scale_pointsto",
                engine: "seminaive",
                threads: t,
                n: pt_vars as u64,
                edb_facts: (11 * pt_vars / 8) as u64,
                runner: lazy_runner(t, move |i| {
                    let input = generators::random_pointsto(
                        i,
                        pt_vars,
                        pt_vars / 4,
                        pt_vars / 16,
                        pt_vars / 16,
                        0xA11C,
                    );
                    let program = parse_program(programs::POINTSTO, i).expect("POINTSTO parses");
                    (input, program)
                }),
            });
        }
    }

    out
}

/// Which bench subcommand to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BenchMode {
    /// Measure the registry (the default).
    Run,
    /// Print the committed `BENCH_HISTORY.json` trajectory.
    History,
    /// Gate an existing report against the history (no measurement).
    Compare,
}

/// Parsed `bench` arguments, shared by `unchained bench …` and the
/// `unchained-bench` binary.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchArgs {
    /// Subcommand (`bench`, `bench history`, `bench compare`).
    pub mode: BenchMode,
    /// Substring filter on `workload/engine` labels.
    pub filter: Option<String>,
    /// Write the report as `BENCH.json` to this path.
    pub json: Option<String>,
    /// Compare against a prior `BENCH.json` at this path.
    pub baseline: Option<String>,
    /// Small sizes + fewer repetitions (CI smoke fidelity).
    pub quick: bool,
    /// Override the timed repetition count.
    pub reps: Option<usize>,
    /// Override the warmup count.
    pub warmup: Option<usize>,
    /// Regression threshold for `--baseline` (ratio of medians).
    pub threshold: f64,
    /// Worker threads for every options-driven case (default 1; the
    /// default registry also carries a fixed `chain/seminaive@4` row).
    pub threads: usize,
    /// After timing, re-run each case once under the hierarchical
    /// tracer and print its hottest-rules table.
    pub profile: bool,
    /// Print the per-entry space table (peak/final bytes, tuples/s).
    pub memstats: bool,
    /// The append-only `BENCH_HISTORY.json` path: run mode appends one
    /// line per run, history mode prints it, compare mode gates
    /// against its last run.
    pub history: Option<String>,
    /// Revision label stamped on a new history line (pass the git rev).
    pub rev: String,
    /// Date label stamped on a new history line (passed in, never read
    /// from the clock, so history files stay reproducible).
    pub date: String,
    /// Compare mode: the `BENCH.json` report to check (positional;
    /// default `BENCH.json`).
    pub report: Option<String>,
    /// List the registry without running anything.
    pub list: bool,
    /// Print usage and exit 0.
    pub help: bool,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            mode: BenchMode::Run,
            filter: None,
            json: None,
            baseline: None,
            quick: false,
            reps: None,
            warmup: None,
            threshold: DEFAULT_REGRESSION_THRESHOLD,
            threads: 1,
            profile: false,
            memstats: false,
            history: None,
            rev: "local".to_string(),
            date: "undated".to_string(),
            report: None,
            list: false,
            help: false,
        }
    }
}

/// Usage text for the bench harness.
pub const BENCH_USAGE: &str = "\
unchained bench — in-repo benchmark harness (BENCH.json)

USAGE:
  unchained bench [options]             measure the registry
  unchained bench history [options]     print the BENCH_HISTORY.json trajectory
  unchained bench compare [REPORT.json] --history BENCH_HISTORY.json
                                        gate a report against the last
                                        history run (bytes growth, work
                                        drift — never wall time)
  cargo run --release -p unchained-bench -- [options]

OPTIONS:
  --filter <PAT>      run only cases whose workload/engine label
                      contains PAT (e.g. `chain`, `magic/magic`)
  --json <PATH>       write the machine-readable BENCH.json report
  --baseline <PATH>   compare against a prior BENCH.json; exit nonzero
                      on regression (see --threshold)
  --quick             small sizes + fewer repetitions (CI smoke)
  --reps <N>          timed repetitions per case (default 5, quick 3)
  --warmup <N>        untimed warmup runs per case (default 1)
  --threshold <X>     regression = median > X × baseline median
                      (default 2.0; absolute floor 25µs)
  --threads <N>       worker threads for every engine case (default 1;
                      entries record the count the engine actually used,
                      and parallel rows are keyed `workload/engine@N/n`)
  --profile           after timing, re-run each case once under the
                      hierarchical tracer and print its hottest-rules
                      table (wall time, firings, rounds per rule)
  --memstats          print the per-entry space table (peak/final
                      logical bytes, derived tuples per second)
  --history <PATH>    run mode: append this run (medians, bytes, facts)
                      as one line to the append-only history file;
                      history/compare modes: the file to read
  --rev <REV>         revision label for the appended history line
                      (pass `git rev-parse --short HEAD`; default `local`)
  --date <DATE>       date label for the appended history line (passed
                      in, never read from the clock; default `undated`)
  --list              list the case registry and exit
  --help              this text
";

/// Parses bench arguments (everything after the `bench` word).
pub fn parse_bench_args(argv: &[String]) -> Result<BenchArgs, String> {
    let mut args = BenchArgs::default();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "history" if args.mode == BenchMode::Run => args.mode = BenchMode::History,
            "compare" if args.mode == BenchMode::Run => args.mode = BenchMode::Compare,
            "--filter" => {
                args.filter = Some(it.next().ok_or("--filter needs a value")?.clone());
            }
            "--json" => {
                args.json = Some(it.next().ok_or("--json needs a path")?.clone());
            }
            "--baseline" => {
                args.baseline = Some(it.next().ok_or("--baseline needs a path")?.clone());
            }
            "--quick" => args.quick = true,
            "--reps" => {
                let v = it.next().ok_or("--reps needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad --reps `{v}`"))?;
                if n == 0 {
                    return Err("--reps must be >= 1".into());
                }
                args.reps = Some(n);
            }
            "--warmup" => {
                let v = it.next().ok_or("--warmup needs a value")?;
                args.warmup = Some(v.parse().map_err(|_| format!("bad --warmup `{v}`"))?);
            }
            "--threshold" => {
                let v = it.next().ok_or("--threshold needs a value")?;
                let x: f64 = v.parse().map_err(|_| format!("bad --threshold `{v}`"))?;
                if x.is_nan() || x < 1.0 {
                    return Err("--threshold must be >= 1.0".into());
                }
                args.threshold = x;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad --threads `{v}`"))?;
                if n == 0 {
                    return Err("--threads must be >= 1".into());
                }
                args.threads = n;
            }
            "--profile" => args.profile = true,
            "--memstats" => args.memstats = true,
            "--history" => {
                args.history = Some(it.next().ok_or("--history needs a path")?.clone());
            }
            "--rev" => {
                args.rev = it.next().ok_or("--rev needs a value")?.clone();
            }
            "--date" => {
                args.date = it.next().ok_or("--date needs a value")?.clone();
            }
            "--list" => args.list = true,
            "--help" | "-h" => args.help = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown bench option `{other}`"));
            }
            path if args.mode == BenchMode::Compare && args.report.is_none() => {
                args.report = Some(path.to_string());
            }
            other => return Err(format!("unknown bench option `{other}`")),
        }
    }
    if args.mode != BenchMode::Run && args.history.is_none() {
        return Err(format!(
            "bench {}: --history <PATH> is required",
            if args.mode == BenchMode::History {
                "history"
            } else {
                "compare"
            }
        ));
    }
    Ok(args)
}

/// Renders the per-entry space table (`--memstats`): the v4 byte gauges
/// and the derived throughput rate, one row per entry.
pub fn render_space_table(report: &BenchReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>12} {:>12} {:>12}",
        "bench space", "bytes_peak", "bytes_final", "tuples/s"
    );
    for e in &report.entries {
        let _ = writeln!(
            out,
            "{:<28} {:>12} {:>12} {:>12}",
            e.key(),
            fmt_bytes(e.gauges.bytes_peak),
            fmt_bytes(e.gauges.bytes_final),
            e.tuples_per_sec()
        );
    }
    out
}

/// Runs the (filtered) registry and collects the report. Pure except
/// for the measurements themselves — no file I/O.
pub fn run_benchmarks(args: &BenchArgs) -> Result<BenchReport, String> {
    let mut rep = if args.quick {
        Repetitions::quick()
    } else {
        Repetitions::full()
    };
    if let Some(n) = args.reps {
        rep.reps = n;
    }
    if let Some(n) = args.warmup {
        rep.warmup = n;
    }
    let mut report = BenchReport::default();
    for mut case in cases(args.quick, args.threads) {
        if let Some(pat) = &args.filter {
            if !case.label().contains(pat.as_str()) {
                continue;
            }
        }
        let off = Tracer::off();
        let (samples, last) = measure(rep, || (case.runner)(&off));
        let (gauges, threads, _) = last.map_err(|e| format!("{}: {e}", case.label()))?;
        report.entries.push(BenchEntry {
            workload: case.workload.to_string(),
            engine: case.engine.to_string(),
            threads,
            n: case.n,
            edb_facts: case.edb_facts,
            reps: rep.reps as u64,
            wall: WallStats::from_samples(&samples),
            gauges,
        });
    }
    if report.entries.is_empty() {
        return Err(match &args.filter {
            Some(pat) => format!("no benchmark case matches filter `{pat}`"),
            None => "benchmark registry is empty".to_string(),
        });
    }
    Ok(report)
}

/// Runs each (filtered) case once under an enabled [`Tracer`] and
/// renders a per-case hottest-rules table (the `--profile` pass). Pure
/// except for the evaluations — no file I/O.
pub fn profile_benchmarks(args: &BenchArgs) -> Result<String, String> {
    use std::fmt::Write as _;
    let mut out = String::new();
    for mut case in cases(args.quick, args.threads) {
        if let Some(pat) = &args.filter {
            if !case.label().contains(pat.as_str()) {
                continue;
            }
        }
        let tracer = Tracer::enabled();
        let (_, _, profile) =
            (case.runner)(&tracer).map_err(|e| format!("{}: {e}", case.label()))?;
        let _ = writeln!(out, "profile {} (n={})", case.label(), case.n);
        out.push_str(profile.as_deref().unwrap_or("no rule spans recorded\n"));
        out.push('\n');
    }
    if out.is_empty() {
        return Err(match &args.filter {
            Some(pat) => format!("no benchmark case matches filter `{pat}`"),
            None => "benchmark registry is empty".to_string(),
        });
    }
    Ok(out)
}

/// The complete bench command: parse, run, print, write `--json`,
/// compare `--baseline`. Returns the process exit code (0 ok, 1 on
/// error or regression, 2 on bad usage). Shared by the `unchained`
/// CLI's `bench` subcommand and the `unchained-bench` binary.
pub fn main_with_args(argv: &[String]) -> u8 {
    let args = match parse_bench_args(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{BENCH_USAGE}");
            return 2;
        }
    };
    if args.help {
        print!("{BENCH_USAGE}");
        return 0;
    }
    let read_history = |path: &str| -> Result<BenchHistory, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        BenchHistory::parse(&text)
    };
    match args.mode {
        BenchMode::Run => {}
        BenchMode::History => {
            let path = args.history.as_deref().expect("checked by the parser");
            match read_history(path) {
                Ok(history) => {
                    print!("{}", history.render_trajectory());
                    return 0;
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    return 1;
                }
            }
        }
        BenchMode::Compare => {
            let report_path = args.report.as_deref().unwrap_or("BENCH.json");
            let history_path = args.history.as_deref().expect("checked by the parser");
            let gate = || -> Result<bool, String> {
                let text = std::fs::read_to_string(report_path)
                    .map_err(|e| format!("cannot read {report_path}: {e}"))?;
                let report = BenchReport::from_json(&text)?;
                let history = read_history(history_path)?;
                let cmp = compare_with_history(&report, &history)?;
                print!("{}", cmp.render());
                Ok(cmp.passed())
            };
            return match gate() {
                Ok(true) => 0,
                Ok(false) => 1,
                Err(e) => {
                    eprintln!("error: {e}");
                    1
                }
            };
        }
    }
    if args.list {
        for case in cases(args.quick, args.threads) {
            println!("{}/{}", case.label(), case.n);
        }
        return 0;
    }
    let report = match run_benchmarks(&args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    print!("{}", report.render_table());
    if args.memstats {
        print!("{}", render_space_table(&report));
    }
    if args.profile {
        match profile_benchmarks(&args) {
            Ok(tables) => print!("{tables}"),
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        }
    }
    if let Some(path) = &args.json {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("error: cannot write {path}: {e}");
            return 1;
        }
        println!("wrote {path}");
    }
    if let Some(path) = &args.baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return 1;
            }
        };
        let base = match unchained_common::BenchReport::from_json(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        };
        let cmp = compare_reports(&report, &base, args.threshold);
        print!("{}", cmp.render());
        if cmp.has_regression() {
            return 1;
        }
    }
    if let Some(path) = &args.history {
        let line = HistoryRun::from_report(&report, &args.rev, &args.date).to_json_line();
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| {
                use std::io::Write as _;
                writeln!(f, "{}", line.trim_end())
            });
        if let Err(e) = appended {
            eprintln!("error: cannot append to {path}: {e}");
            return 1;
        }
        println!("appended history line to {path}");
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn registry_covers_the_required_matrix() {
        let cases = cases(true, 1);
        let workloads: BTreeSet<_> = cases.iter().map(|c| c.workload).collect();
        let engines: BTreeSet<_> = cases.iter().map(|c| c.engine).collect();
        assert!(workloads.len() >= 6, "{workloads:?}");
        assert!(engines.len() >= 5, "{engines:?}");
        for w in [
            "chain",
            "cycle",
            "grid",
            "random",
            "win",
            "ctc",
            "magic",
            "invent",
            "ivm",
            "scale_reach",
            "scale_pointsto",
        ] {
            assert!(workloads.contains(w), "missing workload {w}");
        }
        for e in [
            "naive",
            "seminaive",
            "stratified",
            "wellfounded",
            "inflationary",
            "noninflationary",
            "magic",
            "while",
            "invention",
            "incremental",
        ] {
            assert!(engines.contains(e), "missing engine {e}");
        }
        // Full and quick fidelities share the same matrix, larger n.
        let full = super::cases(false, 1);
        assert_eq!(full.len(), cases.len());
        // The default registry carries the thread-scaling row…
        assert!(
            cases.iter().any(|c| c.label() == "chain/seminaive@4"),
            "missing thread-scaling row"
        );
        // …as are the scale workloads' 1/2/4/8 thread-scaling rows.
        for w in ["scale_reach", "scale_pointsto"] {
            let rows: Vec<usize> = cases
                .iter()
                .filter(|c| c.workload == w)
                .map(|c| c.threads)
                .collect();
            assert_eq!(rows, vec![1, 2, 4, 8], "{w}");
        }
        // …all of which are dropped when the whole run is already
        // parallel (the chain@4 row, plus three extra rows per scale
        // workload).
        let par = super::cases(true, 4);
        assert_eq!(par.len(), cases.len() - 7);
        assert!(par.iter().all(|c| c.threads == 4 || c.engine == "while"));
    }

    #[test]
    fn arg_parsing_round_trips() {
        let a = parse_bench_args(&argv(
            "--filter chain --json out.json --baseline base.json --quick --reps 2 \
             --warmup 0 --threshold 3.5",
        ))
        .unwrap();
        assert_eq!(a.filter.as_deref(), Some("chain"));
        assert_eq!(a.json.as_deref(), Some("out.json"));
        assert_eq!(a.baseline.as_deref(), Some("base.json"));
        assert!(a.quick);
        assert_eq!(a.reps, Some(2));
        assert_eq!(a.warmup, Some(0));
        assert_eq!(a.threshold, 3.5);
        assert!(parse_bench_args(&argv("--reps 0")).is_err());
        assert!(parse_bench_args(&argv("--threshold 0.5")).is_err());
        assert!(parse_bench_args(&argv("--bogus")).is_err());
        assert!(parse_bench_args(&argv("--help")).unwrap().help);
        assert!(parse_bench_args(&argv("--profile")).unwrap().profile);
        assert!(!parse_bench_args(&argv("")).unwrap().profile);
        assert_eq!(parse_bench_args(&argv("--threads 4")).unwrap().threads, 4);
        assert_eq!(parse_bench_args(&argv("")).unwrap().threads, 1);
        assert!(parse_bench_args(&argv("--threads 0")).is_err());
    }

    #[test]
    fn history_and_compare_modes_parse() {
        let a = parse_bench_args(&argv("history --history BENCH_HISTORY.json")).unwrap();
        assert_eq!(a.mode, BenchMode::History);
        assert_eq!(a.history.as_deref(), Some("BENCH_HISTORY.json"));
        let a = parse_bench_args(&argv("compare BENCH.json --history BENCH_HISTORY.json")).unwrap();
        assert_eq!(a.mode, BenchMode::Compare);
        assert_eq!(a.report.as_deref(), Some("BENCH.json"));
        // Both modes refuse to guess a history path.
        assert!(parse_bench_args(&argv("history")).is_err());
        assert!(parse_bench_args(&argv("compare BENCH.json")).is_err());
        // Run mode accepts the stamping options.
        let a = parse_bench_args(&argv(
            "--quick --history h.json --rev abc1234 --date 2026-08-07",
        ))
        .unwrap();
        assert_eq!(a.mode, BenchMode::Run);
        assert_eq!(a.rev, "abc1234");
        assert_eq!(a.date, "2026-08-07");
        assert!(parse_bench_args(&argv("--memstats")).unwrap().memstats);
        // A stray positional outside compare mode is still an error.
        assert!(parse_bench_args(&argv("BENCH.json")).is_err());
    }

    #[test]
    fn memstats_table_shows_byte_gauges_per_entry() {
        let report = run_benchmarks(&BenchArgs {
            filter: Some("chain/seminaive".into()),
            quick: true,
            reps: Some(1),
            warmup: Some(0),
            ..Default::default()
        })
        .unwrap();
        let table = render_space_table(&report);
        assert!(table.contains("bench space"), "{table}");
        assert!(table.contains("chain/seminaive/16"), "{table}");
        assert!(table.contains("chain/seminaive@4/16"), "{table}");
        for e in &report.entries {
            assert!(e.gauges.bytes_peak > 0, "{}", e.key());
            assert!(e.gauges.bytes_final > 0, "{}", e.key());
            assert!(e.gauges.bytes_peak >= e.gauges.bytes_final, "{}", e.key());
        }
        // Byte gauges are thread-invariant: the @4 row matches row 1.
        assert_eq!(
            report.entries[0].gauges.bytes_peak,
            report.entries[1].gauges.bytes_peak
        );
        assert_eq!(
            report.entries[0].gauges.bytes_final,
            report.entries[1].gauges.bytes_final
        );
    }

    #[test]
    fn measured_report_survives_the_history_gate() {
        let report = run_benchmarks(&BenchArgs {
            filter: Some("chain/".into()),
            quick: true,
            reps: Some(1),
            warmup: Some(0),
            ..Default::default()
        })
        .unwrap();
        let line = HistoryRun::from_report(&report, "abc1234", "2026-08-07").to_json_line();
        let history = BenchHistory::parse(&line).unwrap();
        assert!(history.render_trajectory().contains("abc1234 2026-08-07"));
        // A report gates cleanly against its own history line.
        let cmp = compare_with_history(&report, &history).unwrap();
        assert!(cmp.passed(), "{}", cmp.render());
        assert_eq!(cmp.checked, report.entries.len());
    }

    #[test]
    fn parallel_chain_case_reports_identical_work() {
        let run = |filter: &str| {
            run_benchmarks(&BenchArgs {
                filter: Some(filter.into()),
                quick: true,
                reps: Some(1),
                warmup: Some(0),
                ..Default::default()
            })
            .unwrap()
        };
        let report = run("chain/seminaive");
        // The filter matches both the sequential row and the @4 row.
        assert_eq!(report.entries.len(), 2);
        let seq = &report.entries[0];
        let par = &report.entries[1];
        assert_eq!((seq.threads, par.threads), (1, 4));
        assert_eq!(seq.gauges.stages, par.gauges.stages);
        assert_eq!(seq.gauges.facts_derived, par.gauges.facts_derived);
        assert_eq!(seq.gauges.rules_fired, par.gauges.rules_fired);
        // A --threads 4 run records what the engine actually used: 4 for
        // the seminaive fixpoint, 1 for engines without a parallel path.
        let report = run_benchmarks(&BenchArgs {
            filter: Some("chain/".into()),
            quick: true,
            reps: Some(1),
            warmup: Some(0),
            threads: 4,
            ..Default::default()
        })
        .unwrap();
        let by_engine = |name: &str| {
            report
                .entries
                .iter()
                .find(|e| e.engine == name)
                .unwrap_or_else(|| panic!("{name} entry"))
        };
        assert_eq!(by_engine("seminaive").threads, 4);
        assert_eq!(by_engine("while").threads, 1);
    }

    #[test]
    fn filtered_quick_run_produces_valid_entries() {
        let args = BenchArgs {
            filter: Some("magic".into()),
            quick: true,
            reps: Some(1),
            warmup: Some(0),
            ..Default::default()
        };
        let report = run_benchmarks(&args).unwrap();
        assert_eq!(report.entries.len(), 2);
        let magic = report
            .entries
            .iter()
            .find(|e| e.engine == "magic")
            .expect("magic entry");
        let full = report
            .entries
            .iter()
            .find(|e| e.engine == "seminaive")
            .expect("seminaive entry");
        // Goal direction derives strictly fewer facts than full TC.
        assert!(magic.gauges.facts_derived < full.gauges.facts_derived);
        assert!(full.gauges.probes > 0);
        assert!(full.wall.median > 0);
        // The emitted JSON parses back to the same report.
        let round = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(round, report);
    }

    #[test]
    fn invention_case_survives_its_stage_budget() {
        let args = BenchArgs {
            filter: Some("invent".into()),
            quick: true,
            reps: Some(1),
            warmup: Some(0),
            ..Default::default()
        };
        let report = run_benchmarks(&args).unwrap();
        assert_eq!(report.entries.len(), 1);
        let e = &report.entries[0];
        // The budget bounds the run: one invented fact per stage.
        assert_eq!(e.gauges.stages, e.n);
        assert!(e.gauges.facts_derived >= e.n);
    }

    #[test]
    fn ivm_case_reports_maintenance_gauges() {
        let args = BenchArgs {
            filter: Some("ivm".into()),
            quick: true,
            reps: Some(1),
            warmup: Some(0),
            ..Default::default()
        };
        let report = run_benchmarks(&args).unwrap();
        assert_eq!(report.entries.len(), 1);
        let e = &report.entries[0];
        assert_eq!(e.workload, "ivm");
        assert_eq!(e.engine, "incremental");
        // Retracting the last chain edge deletes the n-1 closure facts
        // that route through it, and none of them rederives.
        assert!(e.gauges.ivm_overdeleted > 0, "{:?}", e.gauges);
        assert!(
            e.gauges.ivm_rederived <= e.gauges.ivm_overdeleted,
            "{:?}",
            e.gauges
        );
        // The gauges cover both the initial fixpoint and the poll.
        assert!(e.gauges.rules_fired > 0);
        assert!(e.gauges.probes > 0);
        // The emitted JSON (v6: carries the ivm object) round-trips.
        let round = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(round, report);
    }

    #[test]
    fn profile_pass_prints_hottest_rules_per_case() {
        let args = BenchArgs {
            filter: Some("chain/seminaive".into()),
            quick: true,
            ..Default::default()
        };
        let tables = profile_benchmarks(&args).unwrap();
        // Both the sequential and the @4 thread-scaling row profile.
        assert!(
            tables.contains("profile chain/seminaive (n=16)"),
            "{tables}"
        );
        assert!(
            tables.contains("profile chain/seminaive@4 (n=16)"),
            "{tables}"
        );
        assert!(tables.contains("hottest rules"), "{tables}");
        assert!(tables.contains("[T]"), "{tables}");
        // An unmatched filter is an error here too.
        let args = BenchArgs {
            filter: Some("no-such-case".into()),
            quick: true,
            ..Default::default()
        };
        assert!(profile_benchmarks(&args).is_err());
    }

    #[test]
    fn scale_rows_share_work_and_record_edb_facts() {
        let report = run_benchmarks(&BenchArgs {
            filter: Some("scale_reach".into()),
            quick: true,
            reps: Some(1),
            warmup: Some(0),
            ..Default::default()
        })
        .unwrap();
        // The default registry carries the full thread-scaling ladder.
        let threads: Vec<u64> = report.entries.iter().map(|e| e.threads).collect();
        assert_eq!(threads, vec![1, 2, 4, 8]);
        let seq = &report.entries[0];
        // Quick fidelity: 2 500 nodes × out-degree 4, plus 16 sources.
        assert_eq!(seq.edb_facts, 10_016);
        for e in &report.entries {
            // Work gauges are schedule-invariant: every thread row
            // derives the same facts through the same stages.
            assert_eq!(e.edb_facts, seq.edb_facts);
            assert_eq!(e.gauges.stages, seq.gauges.stages);
            assert_eq!(e.gauges.facts_derived, seq.gauges.facts_derived);
            assert_eq!(e.gauges.rules_fired, seq.gauges.rules_fired);
        }
        // Reachability never exceeds the node count — the workload is
        // EDB-bound, not closure-bound.
        assert!(seq.gauges.facts_derived <= 2 * seq.n);
        // v7 JSON carries the EDB size and the speedup rate, and the
        // sequential twin is the speedup denominator.
        let json = report.to_json();
        assert!(json.contains("\"edb_facts\":10016"), "{json}");
        assert!(json.contains("\"speedup_vs_seq\":1.00"), "{json}");
        assert_eq!(report.speedup_vs_seq(seq), 1.0);
        let round = BenchReport::from_json(&json).unwrap();
        assert_eq!(round, report);
    }

    #[test]
    fn scale_pointsto_closure_stays_linear() {
        let report = run_benchmarks(&BenchArgs {
            filter: Some("scale_pointsto".into()),
            quick: true,
            reps: Some(1),
            warmup: Some(0),
            threads: 2,
            ..Default::default()
        })
        .unwrap();
        // An explicit --threads run keeps a single row per workload.
        assert_eq!(report.entries.len(), 1);
        let e = &report.entries[0];
        // Quick fidelity: 8 000 vars × 11/8.
        assert_eq!(e.edb_facts, 11_000);
        assert_eq!(e.threads, 2);
        assert!(e.gauges.facts_derived > 0);
        // The subcritical assign graph keeps the points-to closure
        // within a small constant of the EDB (the scale knob is input
        // size, not output blowup).
        assert!(
            e.gauges.facts_derived < 8 * e.edb_facts,
            "{} facts from {} EDB",
            e.gauges.facts_derived,
            e.edb_facts
        );
    }

    #[test]
    fn unknown_filter_is_an_error() {
        let args = BenchArgs {
            filter: Some("no-such-case".into()),
            quick: true,
            ..Default::default()
        };
        assert!(run_benchmarks(&args).unwrap_err().contains("no-such-case"));
    }

    #[test]
    fn while_engine_runs_chain_tc() {
        let args = BenchArgs {
            filter: Some("chain/while".into()),
            quick: true,
            reps: Some(1),
            warmup: Some(0),
            ..Default::default()
        };
        let report = run_benchmarks(&args).unwrap();
        assert_eq!(report.entries.len(), 1);
        // A 16-chain closes in 15 cumulate rounds plus the no-change one.
        assert!(report.entries[0].gauges.facts_derived > 0);
    }
}

//! Regenerates **Figure 1** of *Datalog Unchained* — the relative
//! expressive power of the Datalog variants — as an empirically
//! validated table, together with the per-example experiment rows of
//! DESIGN.md.
//!
//! The paper's figure is a claims diagram, not a measurement; what can
//! be reproduced on a laptop is, for each edge of the diagram, a
//! machine-checked witness:
//!
//! * equivalences (`≡`) are validated by running both sides over
//!   generated instance families and comparing answers;
//! * strict inclusions (`⇑`) are validated by running the inclusion
//!   direction, plus a witness of the separation that is actually
//!   checkable (e.g. non-monotonicity of complement-TC separates it
//!   from monotone Datalog; the unstratifiable win-move program is
//!   rejected by the stratified engine but evaluated by the fixpoint
//!   ones; value invention exceeds any polynomial fact bound).
//!
//! Run with `cargo run --release -p unchained-bench --bin fig1`.

use std::process::ExitCode;
use unchained_common::{Instance, Interner, Relation, Tuple, Value};
use unchained_core::{
    inflationary, invention, magic, noninflationary, stable, stratified, wellfounded,
    DivergenceDetection, EvalError, EvalOptions,
};
use unchained_fo::{FoTerm, Formula, VarSet};
use unchained_harness::generators::{cycle_graph, line_graph, random_digraph, random_game};
use unchained_harness::oracles;
use unchained_harness::ordered::evenness_input;
use unchained_harness::programs;
use unchained_nondet::{effect, poss_cert, EffOptions, NondetProgram};
use unchained_parser::parse_program;
use unchained_while::{run as run_while, Assignment, LoopCondition, Stmt, WhileProgram};

struct Report {
    rows: Vec<(String, bool, String)>,
}

impl Report {
    fn check(&mut self, id: &str, ok: bool, detail: impl Into<String>) {
        self.rows.push((id.to_string(), ok, detail.into()));
    }
}

fn graph_family(interner: &mut Interner) -> Vec<Instance> {
    let mut family = Vec::new();
    for n in [2i64, 3, 4, 6, 8] {
        family.push(line_graph(interner, "G", n));
        family.push(cycle_graph(interner, "G", n));
    }
    for seed in 0..4u64 {
        family.push(random_digraph(interner, "G", 7, 0.25, seed));
    }
    family
}

/// Datalog ⇑ stratified Datalog¬: correctness of stratified CTC plus a
/// non-monotonicity witness (Datalog is monotone; CT is not).
fn level_datalog_vs_stratified(report: &mut Report) {
    let mut i = Interner::new();
    let program = parse_program(programs::CTC_STRATIFIED, &mut i).unwrap();
    let g = i.get("G").unwrap();
    let ct = i.get("CT").unwrap();
    let family = graph_family(&mut i);
    let mut all_ok = true;
    for inst in &family {
        let run = stratified::eval(&program, inst, EvalOptions::default()).unwrap();
        let expected = oracles::complement_tc(inst, g, &inst.adom_sorted());
        let got = run
            .instance
            .relation(ct)
            .cloned()
            .unwrap_or_else(|| Relation::new(2));
        all_ok &= got.same_tuples(&expected);
    }
    report.check(
        "FIG1/strat⊇datalog: stratified CTC = oracle",
        all_ok,
        format!("{} instances", family.len()),
    );

    // Non-monotonicity: CT over the 2-line loses a tuple when the
    // closing edge is added. Every pure-Datalog query is monotone, so
    // CT separates the levels.
    let base = line_graph(&mut i, "G", 2);
    let mut bigger = base.clone();
    bigger.insert_fact(g, Tuple::from([Value::Int(1), Value::Int(0)]));
    let ct_small = stratified::eval(&program, &base, EvalOptions::default())
        .unwrap()
        .instance
        .relation(ct)
        .cloned()
        .unwrap();
    let ct_big = stratified::eval(&program, &bigger, EvalOptions::default())
        .unwrap()
        .instance
        .relation(ct)
        .cloned()
        .unwrap();
    let lost = ct_small.iter().any(|t| !ct_big.contains(t));
    report.check(
        "FIG1/strat⊋datalog: CT is non-monotone (Datalog is monotone)",
        lost,
        format!(
            "|CT| {} → {} after adding an edge",
            ct_small.len(),
            ct_big.len()
        ),
    );
}

/// stratified ⇑ fixpoint: the unstratifiable win-move program is
/// rejected by the stratified engine and solved by well-founded
/// semantics, whose 3-valued answer matches the game-theoretic oracle.
fn level_stratified_vs_fixpoint(report: &mut Report) {
    let mut i = Interner::new();
    let program = parse_program(programs::WIN, &mut i).unwrap();
    let moves = i.get("moves").unwrap();
    let win = i.get("win").unwrap();

    let game = unchained_harness::generators::paper_game(&mut i, "moves");
    let rejected = matches!(
        stratified::eval(&program, &game, EvalOptions::default()),
        Err(EvalError::Analysis(_))
    );
    report.check(
        "FIG1/fixpoint⊋strat: win-move rejected by stratified engine",
        rejected,
        "recursion through negation",
    );

    let mut all_ok = true;
    let mut games = vec![game];
    for seed in 0..6u64 {
        games.push(random_game(&mut i, "moves", 9, 3, seed));
    }
    for inst in &games {
        let model = wellfounded::eval(&program, inst, EvalOptions::default()).unwrap();
        let solution = oracles::solve_game(inst, moves);
        for (&state, &value) in &solution {
            let truth = model.truth(win, &Tuple::from([state]));
            let expected = match value {
                oracles::GameValue::Win => wellfounded::Truth::True,
                oracles::GameValue::Lose => wellfounded::Truth::False,
                oracles::GameValue::Draw => wellfounded::Truth::Unknown,
            };
            all_ok &= truth == expected;
        }
    }
    report.check(
        "FIG1/wf: 3-valued win = game oracle (win/lose/draw)",
        all_ok,
        format!("{} games (incl. the paper's Example 3.2)", games.len()),
    );
}

/// well-founded ≡ inflationary ≡ fixpoint: cross-checks between the
/// three formalisms on the paper's own example programs.
fn level_fixpoint_equivalences(report: &mut Report) {
    let mut i = Interner::new();

    // (a) Inflationary delayed-CTC (Example 4.3) = stratified CTC.
    let delayed = parse_program(programs::CTC_INFLATIONARY, &mut i).unwrap();
    let strat = parse_program(programs::CTC_STRATIFIED, &mut i).unwrap();
    let ct = i.get("CT").unwrap();
    let family = graph_family(&mut i);
    let mut ok = true;
    let mut checked = 0;
    for inst in &family {
        if inst.is_empty() {
            continue; // Example 4.3 assumes G nonempty
        }
        let a = inflationary::eval(&delayed, inst, EvalOptions::default()).unwrap();
        let b = stratified::eval(&strat, inst, EvalOptions::default()).unwrap();
        ok &= a
            .instance
            .relation(ct)
            .unwrap()
            .same_tuples(b.instance.relation(ct).unwrap());
        checked += 1;
    }
    report.check(
        "FIG1/infl≡fixpoint: Example 4.3 delayed CTC = stratified CTC",
        ok,
        format!("{checked} instances"),
    );

    // (b) Inflationary timestamped `good` (Example 4.4) = while-language
    // fixpoint program = oracle.
    let good_dl = parse_program(programs::GOOD_TIMESTAMP, &mut i).unwrap();
    let g = i.get("G").unwrap();
    let good = i.get("good").unwrap();
    let good_w = i.intern("goodW");
    let mut vs = VarSet::new();
    let (x, y) = (vs.var("x"), vs.var("y"));
    let while_prog = WhileProgram::new(vec![Stmt::While {
        condition: LoopCondition::Change,
        body: vec![Stmt::Assign {
            target: good_w,
            vars: vec![x],
            formula: Formula::forall(
                [y],
                Formula::Atom(g, vec![FoTerm::Var(y), FoTerm::Var(x)])
                    .implies(Formula::Atom(good_w, vec![FoTerm::Var(y)])),
            ),
            mode: Assignment::Cumulate,
        }],
    }]);
    let mut ok = true;
    for inst in &family {
        let a = inflationary::eval(&good_dl, inst, EvalOptions::default()).unwrap();
        let b = run_while(&while_prog, inst, 100_000, None).unwrap();
        let expected = oracles::good_nodes(inst, g);
        let got_dl = a
            .instance
            .relation(good)
            .cloned()
            .unwrap_or_else(|| Relation::new(1));
        let got_w = b
            .instance
            .relation(good_w)
            .cloned()
            .unwrap_or_else(|| Relation::new(1));
        ok &= got_dl.same_tuples(&expected) && got_w.same_tuples(&expected);
    }
    report.check(
        "FIG1/infl≡fixpoint: Example 4.4 timestamped good = while-fixpoint = oracle",
        ok,
        format!("{} instances", family.len()),
    );

    // (c) The closer program (Example 4.1) = strict-distance oracle.
    let closer_p = parse_program(programs::CLOSER, &mut i).unwrap();
    let closer = i.get("closer").unwrap();
    let mut ok = true;
    for inst in &family {
        let run = inflationary::eval(&closer_p, inst, EvalOptions::default()).unwrap();
        let got = run
            .instance
            .relation(closer)
            .cloned()
            .unwrap_or_else(|| Relation::new(4));
        let dist = oracles::distances(inst, g);
        let dom = inst.adom_sorted();
        let d = |a: Value, b: Value| dist.get(&(a, b)).copied().unwrap_or(u64::MAX);
        let mut expected = Relation::new(4);
        for &a in &dom {
            for &b in &dom {
                for &c in &dom {
                    for &e in &dom {
                        if d(a, b) < d(c, e) {
                            expected.insert(Tuple::from([a, b, c, e]));
                        }
                    }
                }
            }
        }
        ok &= got.same_tuples(&expected);
    }
    report.check(
        "FIG1/infl: Example 4.1 closer = strict-distance oracle",
        ok,
        format!("{} instances", family.len()),
    );

    // (d) Well-founded two-valued reading = stratified result on
    // stratified programs.
    let mut ok = true;
    for inst in &family {
        let a = wellfounded::eval(&strat, inst, EvalOptions::default()).unwrap();
        let b = stratified::eval(&strat, inst, EvalOptions::default()).unwrap();
        ok &= a.is_total() && a.true_facts.same_facts(&b.instance);
    }
    report.check(
        "FIG1/wf≡infl: WF total & equal to stratified on stratified programs",
        ok,
        format!("{} instances", family.len()),
    );
}

/// fixpoint ↑ while: Datalog¬¬ subsumes Datalog¬, adds genuinely
/// noninflationary behaviour (deletion-based composition; possible
/// divergence).
fn level_while(report: &mut Report) {
    let mut i = Interner::new();

    // (a) Datalog¬ ⊆ Datalog¬¬: identical results on TC.
    let tc = parse_program(programs::TC, &mut i).unwrap();
    let family = graph_family(&mut i);
    let mut ok = true;
    for inst in &family {
        let a = inflationary::eval(&tc, inst, EvalOptions::default()).unwrap();
        let b = noninflationary::eval(
            &tc,
            inst,
            noninflationary::ConflictPolicy::PreferPositive,
            EvalOptions::default(),
        )
        .unwrap();
        ok &= a.instance.same_facts(&b.instance);
    }
    report.check(
        "FIG1/while⊇fixpoint: Datalog¬ runs unchanged under Datalog¬¬",
        ok,
        format!("{} instances", family.len()),
    );

    // (b) Deletions express composition: P − π_A(Q).
    let diff = parse_program(programs::DIFF_NNEGNEG, &mut i).unwrap();
    // Strip the multi-head rule down to the deterministic variant used
    // in Section 5.2's deterministic discussion:
    let det_diff = parse_program("answer(x) :- P(x). !answer(x) :- Q(x,y).", &mut i).unwrap();
    let _ = diff;
    let p = i.get("P").unwrap();
    let q = i.get("Q").unwrap();
    let answer = i.get("answer").unwrap();
    let mut input = Instance::new();
    let v = Value::Int;
    for k in 0..6 {
        input.insert_fact(p, Tuple::from([v(k)]));
    }
    for k in [1i64, 4] {
        input.insert_fact(q, Tuple::from([v(k), v(100 + k)]));
    }
    let run = noninflationary::eval(
        &det_diff,
        &input,
        noninflationary::ConflictPolicy::PreferNegative,
        EvalOptions::default(),
    )
    .unwrap();
    let got = run.instance.relation(answer).unwrap();
    let ok = got.len() == 4
        && !got.contains(&Tuple::from([v(1)]))
        && !got.contains(&Tuple::from([v(4)]));
    report.check(
        "FIG1/while: deletion-based P − π_A(Q) = relational-algebra oracle",
        ok,
        format!("|answer| = {}", got.len()),
    );

    // (c) The flip-flop program diverges: Datalog¬¬ computations need
    // not terminate (the while-ness of the language).
    let flip = parse_program(programs::FLIP_FLOP, &mut i).unwrap();
    let t = i.get("T").unwrap();
    let mut input = Instance::new();
    input.insert_fact(t, Tuple::from([Value::Int(0)]));
    let diverged = matches!(
        noninflationary::eval(
            &flip,
            &input,
            noninflationary::ConflictPolicy::PreferPositive,
            EvalOptions::default().with_divergence(DivergenceDetection::Exact),
        ),
        Err(EvalError::Diverged { period: 2, .. })
    );
    report.check(
        "FIG1/while: §4.2 flip-flop diverges with period 2",
        diverged,
        "cycle detected exactly",
    );
}

/// while ⇑ Datalog¬new: value invention escapes every polynomial fact
/// bound; safe programs remain deterministic.
fn level_invention(report: &mut Report) {
    let mut i = Interner::new();
    let chain = parse_program(
        "Chain(n, x) :- Start(x).\nChain(n2, n) :- Chain(n, x).",
        &mut i,
    )
    .unwrap();
    let start = i.get("Start").unwrap();
    let mut input = Instance::new();
    input.insert_fact(start, Tuple::from([Value::Int(0)]));
    // The input has 1 value; any Datalog¬(¬) instance over it holds at
    // most |adom(P,I)|^arity facts per relation. The inventing chain
    // exceeds any such bound.
    let budget = 64;
    let escaped = matches!(
        invention::eval(
            &chain,
            &input,
            EvalOptions::default().with_max_facts(budget)
        ),
        Err(EvalError::FactLimitExceeded(_))
    );
    report.check(
        "FIG1/new⊋while: invented-value chain exceeds any polynomial fact bound",
        escaped,
        format!("budget {budget} facts on a 1-value input"),
    );

    // Safety: a non-inventing answer relation is invented-value-free.
    let tagged = parse_program("Obj(o, x, y) :- G(x,y). Src(x) :- Obj(o, x, y).", &mut i).unwrap();
    let g = line_graph(&mut i, "G", 4);
    let run = invention::eval(&tagged, &g, EvalOptions::default()).unwrap();
    let ok = run.is_safe_answer(i.get("Src").unwrap())
        && !run.is_safe_answer(i.get("Obj").unwrap())
        && run.invented == 3;
    report.check(
        "FIG1/new: safety restriction separates safe from unsafe answers",
        ok,
        format!("{} invented values", run.invented),
    );
}

/// Section 5: the nondeterministic family (N-Datalog¬¬ effects,
/// control constructs, poss/cert).
fn level_nondet(report: &mut Report) {
    let mut i = Interner::new();

    // (a) Orientation effects = all valid orientations.
    let orientation = parse_program(programs::ORIENTATION, &mut i).unwrap();
    let g = i.get("G").unwrap();
    let input = unchained_harness::generators::symmetric_pairs(&mut i, "G", 3, 2, 11);
    let original = input.relation(g).unwrap().clone();
    let compiled = NondetProgram::compile(&orientation, false).unwrap();
    let effects = effect(&compiled, &input, EffOptions::default()).unwrap();
    let all_valid = effects
        .iter()
        .all(|e| oracles::is_valid_orientation(&original, e.relation(g).unwrap()));
    let ok = effects.len() == 8 && all_valid;
    report.check(
        "FIG1/nondet: §5.1 orientation eff = the 2^k valid orientations",
        ok,
        format!("{} effects, all valid: {all_valid}", effects.len()),
    );

    // (b) P − π_A(Q) in the three control-extended languages.
    let v = Value::Int;
    let p = i.intern("P");
    let q = i.intern("Q");
    let mut input = Instance::new();
    for k in 0..5 {
        input.insert_fact(p, Tuple::from([v(k)]));
    }
    for k in [0i64, 3] {
        input.insert_fact(q, Tuple::from([v(k), v(10 + k)]));
    }
    let mut expected = Relation::new(1);
    for k in [1i64, 2, 4] {
        expected.insert(Tuple::from([v(k)]));
    }
    let mut results = Vec::new();
    for (name, src) in [
        ("∀", programs::DIFF_FORALL),
        ("⊥", programs::DIFF_BOTTOM),
        ("¬¬", programs::DIFF_NNEGNEG),
    ] {
        let prog = parse_program(src, &mut i).unwrap();
        let answer = i.get("answer").unwrap();
        let compiled = NondetProgram::compile(&prog, false).unwrap();
        let effects = effect(&compiled, &input, EffOptions::default()).unwrap();
        let all_match = !effects.is_empty()
            && effects.iter().all(|e| {
                e.relation(answer)
                    .cloned()
                    .unwrap_or_else(|| Relation::new(1))
                    .same_tuples(&expected)
            });
        results.push(format!("{name}:{}", if all_match { "✓" } else { "✗" }));
        report.check(
            &format!("FIG1/nondet: P−π_A(Q) via N-Datalog¬{name} = oracle on every effect"),
            all_match,
            format!("{} effect(s)", effects.len()),
        );
    }

    // (c) Example 5.4: plain N-Datalog¬ *cannot* chain the two rules —
    // some effect of the naive composition is wrong.
    let naive_prog = parse_program(programs::DIFF_NAIVE_COMPOSITION, &mut i).unwrap();
    let answer = i.get("answer").unwrap();
    let compiled = NondetProgram::compile(&naive_prog, false).unwrap();
    let effects = effect(&compiled, &input, EffOptions::default()).unwrap();
    let some_wrong = effects.iter().any(|e| {
        !e.relation(answer)
            .cloned()
            .unwrap_or_else(|| Relation::new(1))
            .same_tuples(&expected)
    });
    report.check(
        "FIG1/nondet: Example 5.4 naive composition has wrong effects in N-Datalog¬",
        some_wrong,
        format!("{} effects, some ≠ oracle: {some_wrong}", effects.len()),
    );

    // (d) poss/cert of the orientation program (Def. 5.10).
    let mut two_cycle = Instance::new();
    let g2 = i.get("G").unwrap();
    two_cycle.insert_fact(g2, Tuple::from([v(1), v(2)]));
    two_cycle.insert_fact(g2, Tuple::from([v(2), v(1)]));
    let compiled = NondetProgram::compile(&orientation, false).unwrap();
    let pc = poss_cert(&compiled, &two_cycle, EffOptions::default()).unwrap();
    let ok = pc.effect_count == 2
        && pc.poss.relation(g2).unwrap().len() == 2
        && pc.cert.relation(g2).unwrap().is_empty();
    report.check(
        "FIG1/nondet: Def 5.10 poss = input, cert = ∅ for the 2-cycle orientation",
        ok,
        format!("effects: {}", pc.effect_count),
    );
}

/// Theorem 4.7: evenness on ordered databases (with min/max) in
/// semipositive Datalog¬ — evaluated identically by the stratified,
/// well-founded and inflationary engines.
fn level_ordered(report: &mut Report) {
    let mut i = Interner::new();
    let program = parse_program(programs::EVEN_SEMIPOSITIVE, &mut i).unwrap();
    let even = i.get("even").unwrap();
    let r = i.get("R").unwrap();
    let mut ok = true;
    for k in 0..=8usize {
        let members: Vec<i64> = (0..k as i64).map(|x| x * 2).collect();
        let input = evenness_input(&mut i, "R", 20, &members);
        let expected = oracles::evenness(&input, r);
        for engine in ["stratified", "wellfounded", "inflationary"] {
            let derived = match engine {
                "stratified" => stratified::eval(&program, &input, EvalOptions::default())
                    .unwrap()
                    .instance
                    .contains_fact(even, &Tuple::from([])),
                "wellfounded" => {
                    let m = wellfounded::eval(&program, &input, EvalOptions::default()).unwrap();
                    m.truth(even, &Tuple::from([])) == wellfounded::Truth::True
                }
                _ => inflationary::eval(&program, &input, EvalOptions::default())
                    .unwrap()
                    .instance
                    .contains_fact(even, &Tuple::from([])),
            };
            ok &= derived == expected;
        }
    }
    report.check(
        "FIG1/order: Thm 4.7 evenness (semipositive, ordered+min/max) = parity oracle",
        ok,
        "|R| ∈ 0..=8 × 3 engines",
    );
}

/// §3.3 context — stable models: the paper's game instance has none
/// (why well-founded semantics was needed), stratified programs have
/// exactly one, and all stable models live in the WF interval.
fn level_stable(report: &mut Report) {
    let mut i = Interner::new();
    let win = parse_program(programs::WIN, &mut i).unwrap();
    let game = unchained_harness::generators::paper_game(&mut i, "moves");
    let models = stable::stable_models(&win, &game, stable::StableOptions::default()).unwrap();
    report.check(
        "FIG1/stable: paper's win-move instance has NO stable model",
        models.is_empty(),
        format!("{} models (drawn odd cycle is incoherent)", models.len()),
    );
    let strat_p = parse_program(programs::CTC_STRATIFIED, &mut i).unwrap();
    let input = line_graph(&mut i, "G", 4);
    let models = stable::stable_models(&strat_p, &input, stable::StableOptions::default()).unwrap();
    let strat_run = stratified::eval(&strat_p, &input, EvalOptions::default()).unwrap();
    let ok = models.len() == 1 && models[0].same_facts(&strat_run.instance);
    report.check(
        "FIG1/stable: stratified programs have one stable model = stratified answer",
        ok,
        format!("{} model(s)", models.len()),
    );
}

/// §3.1 context — magic sets: goal-directed rewriting agrees with full
/// evaluation and derives strictly fewer facts on selective queries.
fn level_magic(report: &mut Report) {
    let mut i = Interner::new();
    let program = parse_program(programs::TC, &mut i).unwrap();
    let t = i.get("T").unwrap();
    let g = i.get("G").unwrap();
    // Two disjoint chains; query one end point.
    let mut input = Instance::new();
    for chain in 0..4i64 {
        for k in 0..10i64 {
            let base = chain * 100;
            input.insert_fact(
                g,
                Tuple::from([Value::Int(base + k), Value::Int(base + k + 1)]),
            );
        }
    }
    let query = magic::QueryPattern::new(t, vec![Some(Value::Int(0)), None]);
    let (answer, stats) = magic::compare_with_full(&program, &query, &input, &mut i).unwrap();
    let ok = answer.len() == 10 && stats.magic_facts < stats.full_facts;
    report.check(
        "FIG1/magic: single-source TC — magic answer = full answer, fewer facts",
        ok,
        format!(
            "full {} vs magic {} derived facts",
            stats.full_facts, stats.magic_facts
        ),
    );
}

/// §5.2/§5.3 — the choice operator computes evenness (a deterministic
/// query no deterministic generic language expresses without order):
/// every terminal computation agrees, so poss = cert.
fn level_choice(report: &mut Report) {
    let mut i = Interner::new();
    let program = parse_program(unchained_nondet::CHOICE_PARITY, &mut i).unwrap();
    let r = i.get("R").unwrap();
    let even_r = i.get("evenR").unwrap();
    let mut ok = true;
    for k in 0..=4usize {
        let mut input = Instance::new();
        input.ensure(r, 1);
        for v in 0..k as i64 {
            input.insert_fact(r, Tuple::from([Value::Int(v)]));
        }
        let compiled = NondetProgram::compile(&program, false).unwrap();
        let pc = poss_cert(&compiled, &input, EffOptions::default()).unwrap();
        let expected = k % 2 == 0;
        ok &= pc.poss.contains_fact(even_r, &Tuple::from([])) == expected;
        ok &= pc.cert.contains_fact(even_r, &Tuple::from([])) == expected;
    }
    report.check(
        "FIG1/choice: evenness via choice+∀+⊥ — poss = cert = parity oracle",
        ok,
        "|R| ∈ 0..=4, all computations agree (det fragment, §5.3)",
    );
}

fn main() -> ExitCode {
    let mut report = Report { rows: Vec::new() };
    level_datalog_vs_stratified(&mut report);
    level_stratified_vs_fixpoint(&mut report);
    level_fixpoint_equivalences(&mut report);
    level_while(&mut report);
    level_invention(&mut report);
    level_nondet(&mut report);
    level_ordered(&mut report);
    level_stable(&mut report);
    level_magic(&mut report);
    level_choice(&mut report);

    println!("Figure 1 — Relative expressive power of Datalog variants (empirical reproduction)");
    println!();
    println!("    Datalog¬new  ≡  all computable queries");
    println!("        ⇑");
    println!("    Datalog¬¬  ≡  while");
    println!("        ↑   (strict iff ptime ≠ pspace)");
    println!("    well-founded Datalog¬  ≡  inflationary Datalog¬  ≡  fixpoint");
    println!("        ⇑");
    println!("    stratified Datalog¬");
    println!("        ⇑");
    println!("    Datalog");
    println!();
    println!("Empirical witnesses:");
    println!();
    let mut failures = 0;
    for (id, ok, detail) in &report.rows {
        let mark = if *ok { "PASS" } else { "FAIL" };
        if !ok {
            failures += 1;
        }
        println!("  [{mark}] {id}");
        println!("         {detail}");
    }
    println!();
    println!("{} checks, {} failures", report.rows.len(), failures);
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

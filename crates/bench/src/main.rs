//! `cargo run --release -p unchained-bench -- [options]` — the
//! standalone entry point for the benchmark harness. The same driver
//! is reachable as `unchained bench …` from the main CLI.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    ExitCode::from(unchained_bench::main_with_args(&argv))
}

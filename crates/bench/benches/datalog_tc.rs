//! EX-TC — §3.1 transitive closure, with the naive-vs-semi-naive
//! ablation DESIGN.md calls out. The paper's claim being exercised: the
//! minimum model is computed by forward chaining; semi-naive evaluation
//! avoids rederivations and should win by a growing factor on graphs
//! with long paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use unchained_bench::{graph_workloads, must_parse};
use unchained_common::Interner;
use unchained_core::{naive, seminaive, EvalOptions};
use unchained_harness::programs::TC;

fn bench_tc(c: &mut Criterion) {
    let mut interner = Interner::new();
    let program = must_parse(TC, &mut interner);
    let workloads = graph_workloads(&mut interner, &[16, 32, 64]);

    let mut group = c.benchmark_group("datalog_tc");
    group.sample_size(10);
    for w in &workloads {
        group.bench_with_input(
            BenchmarkId::new("naive", &w.label),
            &w.input,
            |b, input| {
                b.iter(|| {
                    naive::minimum_model(&program, black_box(input), EvalOptions::default())
                        .unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("seminaive", &w.label),
            &w.input,
            |b, input| {
                b.iter(|| {
                    seminaive::minimum_model(&program, black_box(input), EvalOptions::default())
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_tc);
criterion_main!(benches);

//! EX-STRAT — §3.2 complement of transitive closure under stratified
//! semantics: per-stratum semi-naive fixpoints, negation against the
//! completed stratum.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use unchained_bench::{graph_workloads, must_parse};
use unchained_common::Interner;
use unchained_core::{stratified, EvalOptions};
use unchained_harness::programs::CTC_STRATIFIED;

fn bench_ctc(c: &mut Criterion) {
    let mut interner = Interner::new();
    let program = must_parse(CTC_STRATIFIED, &mut interner);
    let workloads = graph_workloads(&mut interner, &[8, 16, 32]);

    let mut group = c.benchmark_group("stratified_ctc");
    group.sample_size(10);
    for w in &workloads {
        group.bench_with_input(BenchmarkId::from_parameter(&w.label), &w.input, |b, input| {
            b.iter(|| {
                stratified::eval(&program, black_box(input), EvalOptions::default()).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ctc);
criterion_main!(benches);

//! TH-4.7 — evenness on ordered databases with min/max, in
//! semipositive Datalog¬, across the three deterministic engines that
//! Theorem 4.7 says coincide there.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use unchained_bench::must_parse;
use unchained_common::Interner;
use unchained_core::{inflationary, stratified, wellfounded, EvalOptions};
use unchained_harness::ordered::evenness_input;
use unchained_harness::programs::EVEN_SEMIPOSITIVE;

fn bench_parity(c: &mut Criterion) {
    let mut interner = Interner::new();
    let program = must_parse(EVEN_SEMIPOSITIVE, &mut interner);

    let mut group = c.benchmark_group("ordered_parity");
    group.sample_size(10);
    for n in [16i64, 32, 64] {
        let members: Vec<i64> = (0..n / 2).collect();
        let input = evenness_input(&mut interner, "R", n, &members);
        group.bench_with_input(BenchmarkId::new("stratified", n), &input, |b, input| {
            b.iter(|| {
                stratified::eval(&program, black_box(input), EvalOptions::default()).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("inflationary", n), &input, |b, input| {
            b.iter(|| {
                inflationary::eval(&program, black_box(input), EvalOptions::default()).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("wellfounded", n), &input, |b, input| {
            b.iter(|| {
                wellfounded::eval(&program, black_box(input), EvalOptions::default()).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parity);
criterion_main!(benches);

//! EXT-EXCHANGE — distributed data exchange: rounds to convergence for
//! edge-partitioned transitive closure as the network and data grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use unchained_bench::must_parse;
use unchained_common::{Instance, Interner, Tuple, Value};
use unchained_exchange::{Network, Peer};

fn build_network(interner: &mut Interner, peers: usize, nodes: i64) -> Network {
    let program = must_parse(
        "T(x,y) :- G(x,y). T(x,y) :- T(x,z), T(z,y). T(x,y) :- Timp(x,y).",
        interner,
    );
    let g = interner.get("G").unwrap();
    let t = interner.get("T").unwrap();
    let timp = interner.get("Timp").unwrap();
    let mut network = Network::new();
    let names: Vec<String> = (0..peers).map(|k| format!("peer-{k}")).collect();
    let mut dbs: Vec<Instance> = (0..peers)
        .map(|_| {
            let mut db = Instance::new();
            db.ensure(g, 2);
            db
        })
        .collect();
    for k in 0..nodes - 1 {
        let owner = (k as usize) % peers;
        dbs[owner].insert_fact(g, Tuple::from([Value::Int(k), Value::Int(k + 1)]));
    }
    for (idx, db) in dbs.into_iter().enumerate() {
        let mut peer = Peer::new(names[idx].clone(), program.clone(), db);
        // Ring topology: each peer shares reachability with its successor.
        let next = &names[(idx + 1) % peers];
        peer = peer.exporting(t, next.clone(), timp);
        network.add_peer(peer);
    }
    network
}

fn bench_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("exchange");
    group.sample_size(10);
    let mut interner = Interner::new();
    for (peers, nodes) in [(2usize, 12i64), (3, 12), (4, 16)] {
        let network = build_network(&mut interner, peers, nodes);
        group.bench_with_input(
            BenchmarkId::new("ring_tc", format!("{peers}peers_{nodes}nodes")),
            &network,
            |b, network| {
                b.iter(|| {
                    let mut net = black_box(network).clone();
                    net.run_to_convergence(1000).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_exchange);
criterion_main!(benches);

//! TH-4.2 / TH-4.8 — the cross-formalism equivalences: inflationary
//! Datalog¬ vs the while-language *fixpoint* program for the same query
//! (Example 4.4's good-nodes), and Datalog¬¬ vs a while program with
//! destructive assignment (complement of TC).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use unchained_bench::must_parse;
use unchained_common::Interner;
use unchained_core::{inflationary, EvalOptions};
use unchained_fo::{FoTerm, Formula, VarSet};
use unchained_harness::generators::random_digraph;
use unchained_harness::programs::GOOD_TIMESTAMP;
use unchained_while::{run as run_while, Assignment, LoopCondition, Stmt, WhileProgram};

fn bench_cross(c: &mut Criterion) {
    let mut interner = Interner::new();
    let good_dl = must_parse(GOOD_TIMESTAMP, &mut interner);
    let g = interner.get("G").unwrap();
    let good_w = interner.intern("goodW");
    let mut vs = VarSet::new();
    let (x, y) = (vs.var("x"), vs.var("y"));
    let good_while = WhileProgram::new(vec![Stmt::While {
        condition: LoopCondition::Change,
        body: vec![Stmt::Assign {
            target: good_w,
            vars: vec![x],
            formula: Formula::forall(
                [y],
                Formula::Atom(g, vec![FoTerm::Var(y), FoTerm::Var(x)])
                    .implies(Formula::Atom(good_w, vec![FoTerm::Var(y)])),
            ),
            mode: Assignment::Cumulate,
        }],
    }]);

    let mut group = c.benchmark_group("while_vs_datalog");
    group.sample_size(10);
    for n in [8i64, 16, 24] {
        let input = random_digraph(&mut interner, "G", n, 1.5 / n as f64, 77 + n as u64);
        group.bench_with_input(
            BenchmarkId::new("good/inflationary_datalog", n),
            &input,
            |b, input| {
                b.iter(|| {
                    inflationary::eval(&good_dl, black_box(input), EvalOptions::default())
                        .unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("good/while_fixpoint", n),
            &input,
            |b, input| {
                b.iter(|| run_while(&good_while, black_box(input), 1_000_000, None).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cross);
criterion_main!(benches);

//! Magic-sets ablation: full semi-naive TC vs the magic-rewritten
//! single-source query, on many-chain inputs where goal direction
//! should win by a factor that grows with the number of chains.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use unchained_bench::must_parse;
use unchained_common::{Instance, Interner, Tuple, Value};
use unchained_core::magic::{answer, QueryPattern};
use unchained_core::{seminaive, EvalOptions};
use unchained_harness::programs::TC;

fn chains(interner: &mut Interner, n_chains: i64, len: i64) -> Instance {
    let g = interner.intern("G");
    let mut input = Instance::new();
    for c in 0..n_chains {
        for k in 0..len {
            let base = c * 1000;
            input.insert_fact(
                g,
                Tuple::from([Value::Int(base + k), Value::Int(base + k + 1)]),
            );
        }
    }
    input
}

fn bench_magic(c: &mut Criterion) {
    let mut interner = Interner::new();
    let program = must_parse(TC, &mut interner);
    let t = interner.get("T").unwrap();

    let mut group = c.benchmark_group("magic_tc");
    group.sample_size(10);
    for n_chains in [4i64, 8, 16] {
        let input = chains(&mut interner, n_chains, 16);
        group.bench_with_input(
            BenchmarkId::new("full", n_chains),
            &input,
            |b, input| {
                b.iter(|| {
                    seminaive::minimum_model(&program, black_box(input), EvalOptions::default())
                        .unwrap()
                })
            },
        );
        let query = QueryPattern::new(t, vec![Some(Value::Int(0)), None]);
        group.bench_with_input(
            BenchmarkId::new("magic_single_source", n_chains),
            &input,
            |b, input| {
                b.iter(|| {
                    let mut scratch = interner.clone();
                    answer(
                        &program,
                        &query,
                        black_box(input),
                        &mut scratch,
                        EvalOptions::default(),
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_magic);
criterion_main!(benches);

//! Infrastructure bench: parsing and analysis throughput on a
//! synthetic many-rule program (supports the "many small modules" cost
//! model of the front end).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use unchained_common::Interner;
use unchained_parser::{classify, parse_program, DependencyGraph};

fn synthetic_program(rules: usize) -> String {
    let mut src = String::new();
    for k in 0..rules {
        src.push_str(&format!(
            "P{k}(x,y) :- Q{k}(x,z), R{k}(z,y), !S{k}(x,y).\n",
        ));
    }
    src
}

fn bench_parser(c: &mut Criterion) {
    let mut group = c.benchmark_group("parser_throughput");
    group.sample_size(20);
    for rules in [64usize, 256, 1024] {
        let src = synthetic_program(rules);
        group.bench_with_input(BenchmarkId::new("parse", rules), &src, |b, src| {
            b.iter(|| {
                let mut interner = Interner::new();
                parse_program(black_box(src), &mut interner).unwrap()
            })
        });
        let mut interner = Interner::new();
        let program = parse_program(&src, &mut interner).unwrap();
        group.bench_with_input(BenchmarkId::new("analyze", rules), &program, |b, p| {
            b.iter(|| {
                let lang = classify(black_box(p));
                let strat = DependencyGraph::build(p).stratify().unwrap();
                (lang, strat.strata_count())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parser);
criterion_main!(benches);

//! Benchmarks of the extension subsystems: stable-model enumeration
//! (§3.3 context), choice-based parity (§5.2), value-invention chains
//! (§4.3), and distributed exchange rounds (§6 / abstract).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use unchained_bench::must_parse;
use unchained_common::{Instance, Interner, Tuple, Value};
use unchained_core::{invention, stable, EvalOptions};
use unchained_harness::programs::WIN;
use unchained_nondet::{poss_cert, EffOptions, NondetProgram, CHOICE_PARITY};

fn bench_extensions(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions");
    group.sample_size(10);

    // Stable models of win-move on even cycles: 2^(n) candidates pruned
    // to the WF-unknown set (all n facts unknown).
    let mut interner = Interner::new();
    let win = must_parse(WIN, &mut interner);
    for n in [6i64, 10, 14] {
        let moves = interner.intern("moves");
        let mut input = Instance::new();
        for k in 0..n {
            input.insert_fact(moves, Tuple::from([Value::Int(k), Value::Int((k + 1) % n)]));
        }
        group.bench_with_input(
            BenchmarkId::new("stable_models_even_cycle", n),
            &input,
            |b, input| {
                b.iter(|| {
                    stable::stable_models(
                        &win,
                        black_box(input),
                        stable::StableOptions { max_unknowns: 16, ..Default::default() },
                    )
                    .unwrap()
                })
            },
        );
    }

    // Choice parity: exhaustive poss/cert over all chains.
    let parity = must_parse(CHOICE_PARITY, &mut interner);
    for k in [2usize, 3, 4] {
        let r = interner.intern("R");
        let mut input = Instance::new();
        input.ensure(r, 1);
        for v in 0..k as i64 {
            input.insert_fact(r, Tuple::from([Value::Int(v)]));
        }
        let compiled = NondetProgram::compile(&parity, false).unwrap();
        group.bench_with_input(
            BenchmarkId::new("choice_parity_posscert", k),
            &input,
            |b, input| {
                b.iter(|| poss_cert(&compiled, black_box(input), EffOptions::default()).unwrap())
            },
        );
    }

    // Value invention: bounded chains of increasing length.
    let chain = must_parse(
        "Chain(n, x) :- Start(x).\nChain(n2, n) :- Chain(n, x).",
        &mut interner,
    );
    for stages in [16usize, 64, 256] {
        let start = interner.intern("Start");
        let mut input = Instance::new();
        input.insert_fact(start, Tuple::from([Value::Int(0)]));
        group.bench_with_input(
            BenchmarkId::new("invention_chain_stages", stages),
            &input,
            |b, input| {
                b.iter(|| {
                    // The chain grows forever; measure a fixed slice.
                    invention::eval(
                        &chain,
                        black_box(input),
                        EvalOptions::default().with_max_stages(stages),
                    )
                    .unwrap_err()
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);

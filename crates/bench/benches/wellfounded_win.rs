//! EX-WIN — Example 3.2's win-move game under the well-founded
//! semantics (alternating fixpoint). Workload: random game boards of
//! growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use unchained_bench::must_parse;
use unchained_common::Interner;
use unchained_core::{wellfounded, EvalOptions};
use unchained_harness::generators::random_game;
use unchained_harness::programs::WIN;

fn bench_win(c: &mut Criterion) {
    let mut interner = Interner::new();
    let program = must_parse(WIN, &mut interner);

    let mut group = c.benchmark_group("wellfounded_win");
    group.sample_size(10);
    for n in [8i64, 16, 32] {
        let input = random_game(&mut interner, "moves", n, 3, 0xF00D + n as u64);
        group.bench_with_input(
            BenchmarkId::new("alternating_fixpoint", n),
            &input,
            |b, input| {
                b.iter(|| {
                    wellfounded::eval(&program, black_box(input), EvalOptions::default())
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_win);
criterion_main!(benches);

//! EX-CLOSER / EX-DELAY / EX-TSTAMP — the paper's three inflationary
//! showcase programs (Examples 4.1, 4.3, 4.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use unchained_bench::must_parse;
use unchained_common::Interner;
use unchained_core::{inflationary, EvalOptions};
use unchained_harness::generators::{line_graph, random_digraph};
use unchained_harness::programs::{CLOSER, CTC_INFLATIONARY, GOOD_TIMESTAMP};

fn bench_inflationary(c: &mut Criterion) {
    let mut interner = Interner::new();
    let closer = must_parse(CLOSER, &mut interner);
    let delayed = must_parse(CTC_INFLATIONARY, &mut interner);
    let good = must_parse(GOOD_TIMESTAMP, &mut interner);

    let mut group = c.benchmark_group("inflationary");
    group.sample_size(10);
    // closer: quartic output, keep graphs small.
    for n in [4i64, 6, 8] {
        let input = line_graph(&mut interner, "G", n);
        group.bench_with_input(BenchmarkId::new("closer/line", n), &input, |b, input| {
            b.iter(|| {
                inflationary::eval(&closer, black_box(input), EvalOptions::default()).unwrap()
            })
        });
    }
    for n in [8i64, 16] {
        let input = line_graph(&mut interner, "G", n);
        group.bench_with_input(BenchmarkId::new("delayed_ctc/line", n), &input, |b, input| {
            b.iter(|| {
                inflationary::eval(&delayed, black_box(input), EvalOptions::default()).unwrap()
            })
        });
        // Ablation: the semi-naive variant of the same engine.
        group.bench_with_input(
            BenchmarkId::new("delayed_ctc_seminaive/line", n),
            &input,
            |b, input| {
                b.iter(|| {
                    inflationary::eval_seminaive(
                        &delayed,
                        black_box(input),
                        EvalOptions::default(),
                    )
                    .unwrap()
                })
            },
        );
        let input = random_digraph(&mut interner, "G", n, 2.0 / n as f64, 42 + n as u64);
        group.bench_with_input(
            BenchmarkId::new("good_timestamp/random", n),
            &input,
            |b, input| {
                b.iter(|| {
                    inflationary::eval(&good, black_box(input), EvalOptions::default()).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_inflationary);
criterion_main!(benches);

//! EX-ORIENT / EX-DIFF / TH-5.11 — the nondeterministic family:
//! single-run orientation scaling, exhaustive effect enumeration and
//! poss/cert on small inputs, and the three P − π_A(Q) encodings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use unchained_bench::must_parse;
use unchained_common::{Instance, Interner, Tuple, Value};
use unchained_core::EvalOptions;
use unchained_harness::generators::symmetric_pairs;
use unchained_harness::programs::{DIFF_BOTTOM, DIFF_FORALL, DIFF_NNEGNEG, ORIENTATION};
use unchained_nondet::{effect, poss_cert, EffOptions, NondetProgram, RandomChooser};

fn diff_input(interner: &mut Interner, n: i64) -> Instance {
    let p = interner.intern("P");
    let q = interner.intern("Q");
    let mut input = Instance::new();
    for k in 0..n {
        input.insert_fact(p, Tuple::from([Value::Int(k)]));
        if k % 3 == 0 {
            input.insert_fact(q, Tuple::from([Value::Int(k), Value::Int(100 + k)]));
        }
    }
    input
}

fn bench_nondet(c: &mut Criterion) {
    let mut interner = Interner::new();
    let orientation = must_parse(ORIENTATION, &mut interner);

    let mut group = c.benchmark_group("nondet");
    group.sample_size(10);

    // Single-run orientation: linear in the number of 2-cycles.
    for pairs in [8i64, 16, 32] {
        let input = symmetric_pairs(&mut interner, "G", pairs, pairs, 5);
        let compiled = NondetProgram::compile(&orientation, false).unwrap();
        group.bench_with_input(
            BenchmarkId::new("orientation_run/pairs", pairs),
            &input,
            |b, input| {
                b.iter(|| {
                    let mut chooser = RandomChooser::seeded(9);
                    unchained_nondet::run_once(
                        &compiled,
                        black_box(input),
                        &mut chooser,
                        EvalOptions::default(),
                    )
                    .unwrap()
                })
            },
        );
    }

    // Exhaustive effects + poss/cert: exponential, keep inputs tiny.
    for pairs in [2i64, 3, 4] {
        let input = symmetric_pairs(&mut interner, "G", pairs, 0, 5);
        let compiled = NondetProgram::compile(&orientation, false).unwrap();
        group.bench_with_input(
            BenchmarkId::new("orientation_eff/pairs", pairs),
            &input,
            |b, input| {
                b.iter(|| effect(&compiled, black_box(input), EffOptions::default()).unwrap())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("orientation_posscert/pairs", pairs),
            &input,
            |b, input| {
                b.iter(|| poss_cert(&compiled, black_box(input), EffOptions::default()).unwrap())
            },
        );
    }

    // The three difference encodings (Examples 5.4/5.5, §5.2).
    for (name, src) in [
        ("diff_forall", DIFF_FORALL),
        ("diff_bottom", DIFF_BOTTOM),
        ("diff_negneg", DIFF_NNEGNEG),
    ] {
        let program = must_parse(src, &mut interner);
        let input = diff_input(&mut interner, 6);
        let compiled = NondetProgram::compile(&program, false).unwrap();
        group.bench_with_input(BenchmarkId::new(name, 6), &input, |b, input| {
            b.iter(|| effect(&compiled, black_box(input), EffOptions::default()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nondet);
criterion_main!(benches);

//! Compilation of nondeterministic programs (Definition 5.1) and the
//! immediate-successor relation (Definition 5.2).

use crate::NondetError;
use std::ops::ControlFlow;
use unchained_common::{Instance, Symbol, Tuple, Value};
use unchained_core::exec::{for_each_match, IndexCache, Sources};
use unchained_core::ir::Plan;
use unchained_core::planner::plan_body;
use unchained_core::subst::{active_domain, instantiate, term_value};
use unchained_parser::{check_positively_bound, features, HeadLiteral, Literal, Program, Var};

/// One instantiated head operation of a rule firing.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum HeadOp {
    /// Insert the fact.
    Insert(Symbol, Tuple),
    /// Delete the fact.
    Delete(Symbol, Tuple),
    /// Derive `⊥`: the computation is abandoned (N-Datalog¬⊥).
    Bottom,
}

/// A candidate firing: one rule instantiation applicable in the current
/// state, reduced to its head operations and (for choice rules) the
/// new choice commitments it makes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Firing {
    /// Index of the fired rule in the program.
    pub rule: usize,
    /// Instantiated head operations.
    pub ops: Vec<HeadOp>,
    /// Newly committed choice pairs: `(rule, constraint, key, value)`.
    pub choices: Vec<(u32, u32, Tuple, Tuple)>,
}

/// The accumulated choice commitments of a computation: for each
/// `(rule, constraint)` pair, the chosen partial function from key
/// tuples to value tuples (the LDL choice semantics: once a pair is
/// chosen it is fixed for the rest of the computation).
pub type ChoiceMaps =
    std::collections::BTreeMap<(u32, u32), std::collections::BTreeMap<Tuple, Tuple>>;

/// A state of a nondeterministic computation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct State {
    /// The facts.
    pub instance: Instance,
    /// Whether `⊥` has been derived on the way to this state.
    pub bottom: bool,
    /// Committed choice pairs (empty for choice-free programs).
    pub choices: ChoiceMaps,
}

impl State {
    /// Initial state for an input instance.
    pub fn initial(instance: Instance) -> Self {
        State {
            instance,
            bottom: false,
            choices: ChoiceMaps::new(),
        }
    }

    /// Fingerprint for memoization (folds in the bottom flag and the
    /// choice commitments).
    pub fn fingerprint(&self) -> u64 {
        let mut fp = self.instance.fingerprint() ^ if self.bottom { 0x5bd1_e995 } else { 0 };
        for ((rule, idx), map) in &self.choices {
            for (k, v) in map {
                fp ^= unchained_common::hash::hash_one(&(rule, idx, k, v));
            }
        }
        fp
    }
}

struct CompiledRule {
    /// Plan over the literals without universally quantified variables.
    plan: Plan,
    /// Literals that mention a `forall` variable (checked universally).
    universal: Vec<Literal>,
    /// The rule's `forall` variables.
    forall: Vec<Var>,
    /// Head template.
    head: Vec<HeadLiteral>,
    /// Variables occurring in the head but not the body (N-Datalog¬new).
    invented: Vec<Var>,
    /// Choice constraints `(key terms, value terms)` of the rule.
    choices: Vec<(Vec<unchained_parser::Term>, Vec<unchained_parser::Term>)>,
}

/// A compiled nondeterministic program.
pub struct NondetProgram<'p> {
    /// The source program.
    pub program: &'p Program,
    rules: Vec<CompiledRule>,
    /// Whether any rule invents values.
    pub has_invention: bool,
}

impl<'p> NondetProgram<'p> {
    /// Compiles `program`, checking Definition 5.1's conditions: head
    /// variables positively bound (invented variables exempt iff
    /// `allow_invention`), `forall` variables confined to bodies.
    pub fn compile(program: &'p Program, allow_invention: bool) -> Result<Self, NondetError> {
        check_positively_bound(program, allow_invention)
            .map_err(unchained_core::EvalError::Analysis)?;
        let feats = features(program);
        if feats.invention && !allow_invention {
            return Err(NondetError::Eval(unchained_core::EvalError::Analysis(
                unchained_parser::AnalysisError::UnrestrictedHeadVar {
                    rule: 0,
                    var: "<invented>".into(),
                },
            )));
        }
        for (idx, rule) in program.rules.iter().enumerate() {
            for lit in &rule.body {
                if let Literal::Choice(..) = lit {
                    if lit.vars().iter().any(|v| rule.forall.contains(v)) {
                        return Err(NondetError::ChoiceInUniversalScope { rule: idx });
                    }
                }
            }
        }
        let rules = program
            .rules
            .iter()
            .map(|rule| {
                let forall: Vec<Var> = rule.forall.clone();
                let is_universal = |lit: &Literal| lit.vars().iter().any(|v| forall.contains(v));
                let planned: Vec<&Literal> = rule
                    .body
                    .iter()
                    .filter(|l| !is_universal(l) && !matches!(l, Literal::Choice(..)))
                    .collect();
                let universal: Vec<Literal> = rule
                    .body
                    .iter()
                    .filter(|l| is_universal(l) && !matches!(l, Literal::Choice(..)))
                    .cloned()
                    .collect();
                let choices: Vec<(Vec<unchained_parser::Term>, Vec<unchained_parser::Term>)> = rule
                    .body
                    .iter()
                    .filter_map(|l| match l {
                        Literal::Choice(k, v) => Some((k.clone(), v.clone())),
                        _ => None,
                    })
                    .collect();
                // The candidate enumeration must bind every non-forall
                // body variable plus every (non-invented) head variable.
                let mut vars: Vec<Var> = rule
                    .body_vars()
                    .into_iter()
                    .filter(|v| !forall.contains(v))
                    .collect();
                vars.sort_unstable();
                vars.dedup();
                let plan = plan_body(rule, &planned, &vars);
                CompiledRule {
                    plan,
                    universal,
                    forall,
                    head: rule.head.clone(),
                    invented: rule.invented_vars(),
                    choices,
                }
            })
            .collect();
        Ok(NondetProgram {
            program,
            rules,
            has_invention: feats.invention,
        })
    }

    /// Enumerates the applicable firings in `state` (Definition 5.1's
    /// conditions (i)–(iii)), deduplicated by head operations. The
    /// `fresh` counter supplies invented values for N-Datalog¬new rules.
    pub fn firings(&self, state: &State, fresh: &mut u64) -> Vec<Firing> {
        let adom = active_domain(self.program, &state.instance);
        let mut cache = IndexCache::new();
        let mut out: Vec<Firing> = Vec::new();
        #[allow(clippy::type_complexity)]
        let mut seen: unchained_common::FxHashSet<(
            Vec<HeadOp>,
            Vec<(u32, u32, Tuple, Tuple)>,
        )> = unchained_common::FxHashSet::default();
        for (ridx, rule) in self.rules.iter().enumerate() {
            let _ = for_each_match(
                &rule.plan,
                Sources::simple(&state.instance),
                &adom,
                &mut cache,
                &mut |env| {
                    // Universal part: every extension of the forall vars
                    // over adom must satisfy the universal literals.
                    if !universal_holds(
                        &rule.universal,
                        &rule.forall,
                        &state.instance,
                        &adom,
                        &mut env.clone(),
                        0,
                    ) {
                        return ControlFlow::Continue(());
                    }
                    // Choice admissibility (LDL semantics): each
                    // constraint's committed map may not be contradicted;
                    // new pairs are recorded by the firing.
                    let mut choice_records: Vec<(u32, u32, Tuple, Tuple)> = Vec::new();
                    for (cidx, (key_terms, val_terms)) in rule.choices.iter().enumerate() {
                        let key: Tuple = key_terms.iter().map(|t| term_value(t, env)).collect();
                        let val: Tuple = val_terms.iter().map(|t| term_value(t, env)).collect();
                        let slot = (ridx as u32, cidx as u32);
                        match state.choices.get(&slot).and_then(|m| m.get(&key)) {
                            Some(committed) if *committed != val => {
                                return ControlFlow::Continue(());
                            }
                            Some(_) => {}
                            None => choice_records.push((slot.0, slot.1, key, val)),
                        }
                    }
                    // Extend with invented values if needed. We key
                    // dedup on ops *before* minting fresh values so two
                    // isomorphic firings are not double-counted; the
                    // values are only allocated when the firing is new.
                    let mut env = env.clone();
                    let mut pending_fresh = *fresh;
                    for v in &rule.invented {
                        env[v.index()] = Some(Value::Invented(pending_fresh));
                        pending_fresh += 1;
                    }
                    // Instantiate head; condition (ii): consistent head.
                    let mut ops = Vec::with_capacity(rule.head.len());
                    for h in &rule.head {
                        match h {
                            HeadLiteral::Pos(a) => {
                                ops.push(HeadOp::Insert(a.pred, instantiate(&a.args, &env)))
                            }
                            HeadLiteral::Neg(a) => {
                                ops.push(HeadOp::Delete(a.pred, instantiate(&a.args, &env)))
                            }
                            HeadLiteral::Bottom => ops.push(HeadOp::Bottom),
                        }
                    }
                    ops.sort_unstable();
                    ops.dedup();
                    let consistent = !ops.iter().any(|op| match op {
                        HeadOp::Insert(p, t) => ops.contains(&HeadOp::Delete(*p, t.clone())),
                        _ => false,
                    });
                    let dedup_key = (ops.clone(), choice_records.clone());
                    if consistent && seen.insert(dedup_key) {
                        if !rule.invented.is_empty() {
                            *fresh = pending_fresh;
                        }
                        out.push(Firing {
                            rule: ridx,
                            ops,
                            choices: choice_records,
                        });
                    }
                    ControlFlow::Continue(())
                },
            );
        }
        out
    }

    /// Applies a firing to a state, producing the immediate successor.
    pub fn apply(&self, state: &State, firing: &Firing) -> State {
        let mut next = state.clone();
        for op in &firing.ops {
            match op {
                HeadOp::Delete(pred, tuple) => {
                    if let Some(rel) = next.instance.relation_mut(*pred) {
                        rel.remove(tuple);
                    }
                }
                HeadOp::Insert(..) | HeadOp::Bottom => {}
            }
        }
        for op in &firing.ops {
            match op {
                HeadOp::Insert(pred, tuple) => {
                    next.instance.insert_fact(*pred, tuple.clone());
                }
                HeadOp::Bottom => next.bottom = true,
                HeadOp::Delete(..) => {}
            }
        }
        for (rule, cidx, key, val) in &firing.choices {
            next.choices
                .entry((*rule, *cidx))
                .or_default()
                .insert(key.clone(), val.clone());
        }
        next
    }

    /// The immediate successors of `state` that differ from it
    /// (Definition 5.2's condition (ii) makes states with no such
    /// successor terminal). Deduplicated.
    pub fn successors(&self, state: &State, fresh: &mut u64) -> Vec<State> {
        let mut out: Vec<State> = Vec::new();
        for firing in self.firings(state, fresh) {
            let next = self.apply(state, &firing);
            let changed = next.bottom != state.bottom || !next.instance.same_facts(&state.instance);
            if changed && !out.iter().any(|s| states_equal(s, &next)) {
                out.push(next);
            }
        }
        out
    }
}

/// Structural state equality (facts + bottom flag + choice
/// commitments).
pub fn states_equal(a: &State, b: &State) -> bool {
    a.bottom == b.bottom && a.choices == b.choices && a.instance.same_facts(&b.instance)
}

fn universal_holds(
    literals: &[Literal],
    forall: &[Var],
    instance: &Instance,
    adom: &[Value],
    env: &mut Vec<Option<Value>>,
    depth: usize,
) -> bool {
    if depth == forall.len() {
        return literals.iter().all(|lit| literal_holds(lit, instance, env));
    }
    let var = forall[depth];
    for &value in adom {
        env[var.index()] = Some(value);
        if !universal_holds(literals, forall, instance, adom, env, depth + 1) {
            env[var.index()] = None;
            return false;
        }
    }
    env[var.index()] = None;
    true
}

fn literal_holds(lit: &Literal, instance: &Instance, env: &Vec<Option<Value>>) -> bool {
    match lit {
        Literal::Pos(a) => {
            let tuple: Tuple = a.args.iter().map(|t| term_value(t, env)).collect();
            instance
                .relation(a.pred)
                .is_some_and(|r| r.contains(&tuple))
        }
        Literal::Neg(a) => {
            let tuple: Tuple = a.args.iter().map(|t| term_value(t, env)).collect();
            !instance
                .relation(a.pred)
                .is_some_and(|r| r.contains(&tuple))
        }
        Literal::Eq(l, r) => term_value(l, env) == term_value(r, env),
        Literal::Neq(l, r) => term_value(l, env) != term_value(r, env),
        Literal::Choice(..) => {
            unreachable!("choice constraints never appear in the universal part")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unchained_common::Interner;
    use unchained_parser::parse_program;

    fn orientation_setup() -> (Interner, Program, Instance) {
        let mut i = Interner::new();
        let program = parse_program("!G(x,y) :- G(x,y), G(y,x).", &mut i).unwrap();
        let g = i.get("G").unwrap();
        let mut input = Instance::new();
        let v = Value::Int;
        for (a, b) in [(1, 2), (2, 1)] {
            input.insert_fact(g, Tuple::from([v(a), v(b)]));
        }
        (i, program, input)
    }

    #[test]
    fn firings_enumerated_and_deduped() {
        let (_, program, input) = orientation_setup();
        let compiled = NondetProgram::compile(&program, false).unwrap();
        let state = State::initial(input);
        let mut fresh = 0;
        let firings = compiled.firings(&state, &mut fresh);
        // Two instantiations: delete (1,2) or delete (2,1).
        assert_eq!(firings.len(), 2);
    }

    #[test]
    fn apply_deletes_one_edge() {
        let (i, program, input) = orientation_setup();
        let compiled = NondetProgram::compile(&program, false).unwrap();
        let state = State::initial(input);
        let mut fresh = 0;
        let firings = compiled.firings(&state, &mut fresh);
        let next = compiled.apply(&state, &firings[0]);
        let g = i.get("G").unwrap();
        assert_eq!(next.instance.relation(g).unwrap().len(), 1);
    }

    #[test]
    fn successors_exclude_no_ops() {
        // A rule that re-asserts an existing fact produces J = I only.
        let mut i = Interner::new();
        let program = parse_program("A(x) :- A(x).", &mut i).unwrap();
        let a = i.get("A").unwrap();
        let mut input = Instance::new();
        input.insert_fact(a, Tuple::from([Value::Int(1)]));
        let compiled = NondetProgram::compile(&program, false).unwrap();
        let mut fresh = 0;
        let succ = compiled.successors(&State::initial(input), &mut fresh);
        assert!(succ.is_empty(), "re-assertion must not be a successor ≠ J");
    }

    #[test]
    fn inconsistent_heads_skipped() {
        // A(x), !A(x) in one head is inconsistent for every valuation.
        let mut i = Interner::new();
        let program = parse_program("A(x), !A(x) :- B(x).", &mut i).unwrap();
        let b = i.get("B").unwrap();
        let mut input = Instance::new();
        input.insert_fact(b, Tuple::from([Value::Int(1)]));
        let compiled = NondetProgram::compile(&program, false).unwrap();
        let mut fresh = 0;
        assert!(compiled
            .firings(&State::initial(input), &mut fresh)
            .is_empty());
    }

    #[test]
    fn bottom_firing_flags_state() {
        let mut i = Interner::new();
        let program = parse_program("bottom :- B(x).", &mut i).unwrap();
        let b = i.get("B").unwrap();
        let mut input = Instance::new();
        input.insert_fact(b, Tuple::from([Value::Int(1)]));
        let compiled = NondetProgram::compile(&program, false).unwrap();
        let state = State::initial(input);
        let mut fresh = 0;
        let succ = compiled.successors(&state, &mut fresh);
        assert_eq!(succ.len(), 1);
        assert!(succ[0].bottom);
    }

    #[test]
    fn forall_rule_checks_all_extensions() {
        // Example 5.5: answer(x) :- forall y : P(x), !Q(x,y).
        let mut i = Interner::new();
        let program = parse_program("answer(x) :- forall y : P(x), !Q(x,y).", &mut i).unwrap();
        let p = i.get("P").unwrap();
        let q = i.get("Q").unwrap();
        let v = Value::Int;
        let mut input = Instance::new();
        for k in [1, 2] {
            input.insert_fact(p, Tuple::from([v(k)]));
        }
        input.insert_fact(q, Tuple::from([v(1), v(2)]));
        let compiled = NondetProgram::compile(&program, false).unwrap();
        let mut fresh = 0;
        let firings = compiled.firings(&State::initial(input), &mut fresh);
        // Only x = 2 passes (Q(1,2) falsifies x = 1 at y = 2).
        assert_eq!(firings.len(), 1);
        assert_eq!(
            firings[0].ops,
            vec![HeadOp::Insert(
                i.get("answer").unwrap(),
                Tuple::from([v(2)])
            )]
        );
    }

    #[test]
    fn compile_rejects_unbound_head_vars() {
        let mut i = Interner::new();
        let program = parse_program("A(x) :- !B(x).", &mut i).unwrap();
        assert!(NondetProgram::compile(&program, false).is_err());
    }

    #[test]
    fn invention_requires_flag() {
        let mut i = Interner::new();
        let program = parse_program("A(n, x) :- B(x).", &mut i).unwrap();
        assert!(NondetProgram::compile(&program, false).is_err());
        let compiled = NondetProgram::compile(&program, true).unwrap();
        assert!(compiled.has_invention);
    }

    #[test]
    fn invention_mints_fresh_values_per_firing() {
        let mut i = Interner::new();
        let program = parse_program("A(n, x) :- B(x).", &mut i).unwrap();
        let b = i.get("B").unwrap();
        let mut input = Instance::new();
        input.insert_fact(b, Tuple::from([Value::Int(1)]));
        input.insert_fact(b, Tuple::from([Value::Int(2)]));
        let compiled = NondetProgram::compile(&program, true).unwrap();
        let mut fresh = 0;
        let firings = compiled.firings(&State::initial(input), &mut fresh);
        assert_eq!(firings.len(), 2);
        assert_eq!(fresh, 2);
    }
}

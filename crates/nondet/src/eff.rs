//! Exhaustive computation of the effect relation `eff(P)`
//! (Definition 5.2): all terminal instances reachable from an input by
//! sequences of immediate successors, excluding computations that
//! derive `⊥`.

use crate::program::{NondetProgram, State};
use crate::NondetError;
use unchained_common::{FxHashMap, Instance};

/// Budget for exhaustive effect computation.
#[derive(Clone, Copy, Debug)]
pub struct EffOptions {
    /// Maximum number of distinct states to visit before failing with
    /// [`NondetError::StateBudgetExceeded`]. The state space of an
    /// N-Datalog¬¬ program is finite but exponential; effects are only
    /// exhaustively enumerable for small inputs.
    pub max_states: usize,
}

impl Default for EffOptions {
    fn default() -> Self {
        EffOptions {
            max_states: 100_000,
        }
    }
}

/// The effect of `compiled` on `input`: the set of instances `J` with
/// `(input, J) ∈ eff(P)`, sorted deterministically.
///
/// States that derived `⊥` are pruned (their continuations cannot
/// appear in the effect). Value-inventing programs generally have
/// infinite state spaces; expect the budget to trip for them.
///
/// # Errors
/// [`NondetError::StateBudgetExceeded`] when `options.max_states`
/// distinct states have been visited.
pub fn effect(
    compiled: &NondetProgram<'_>,
    input: &Instance,
    options: EffOptions,
) -> Result<Vec<Instance>, NondetError> {
    let initial = State::initial(input.clone());
    // Visited memo: fingerprint → states (to resolve collisions exactly).
    let mut visited: FxHashMap<u64, Vec<State>> = FxHashMap::default();
    let visit = |state: &State, visited: &mut FxHashMap<u64, Vec<State>>| -> bool {
        let bucket = visited.entry(state.fingerprint()).or_default();
        if bucket
            .iter()
            .any(|s| crate::program::states_equal(s, state))
        {
            false
        } else {
            bucket.push(state.clone());
            true
        }
    };
    let mut stack = vec![initial.clone()];
    visit(&initial, &mut visited);
    let mut visited_count = 1usize;
    let mut terminals: Vec<Instance> = Vec::new();
    let mut fresh: u64 = 0;

    while let Some(state) = stack.pop() {
        if state.bottom {
            // Abandoned computation: contributes nothing.
            continue;
        }
        let succ = compiled.successors(&state, &mut fresh);
        if succ.is_empty() {
            if !terminals.iter().any(|t| t.same_facts(&state.instance)) {
                terminals.push(state.instance);
            }
            continue;
        }
        for next in succ {
            if visit(&next, &mut visited) {
                visited_count += 1;
                if visited_count > options.max_states {
                    return Err(NondetError::StateBudgetExceeded(visited_count));
                }
                stack.push(next);
            }
        }
    }
    // Deterministic order: sort by rendered fact list.
    terminals.sort_by_cached_key(instance_sort_key);
    Ok(terminals)
}

/// A canonical sort key for instances (sorted fact tuples per relation).
pub(crate) fn instance_sort_key(instance: &Instance) -> Vec<u8> {
    let mut key = Vec::new();
    for (sym, rel) in instance.iter() {
        if rel.is_empty() {
            continue;
        }
        key.extend_from_slice(&(sym.index() as u64).to_be_bytes());
        for t in rel.sorted().iter() {
            for v in t.values() {
                key.extend_from_slice(format!("{v:?}|").as_bytes());
            }
        }
        key.push(0xff);
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::NondetProgram;
    use unchained_common::{Interner, Tuple, Value};
    use unchained_parser::parse_program;

    #[test]
    fn orientation_effect_enumerates_all_orientations() {
        let mut i = Interner::new();
        let program = parse_program("!G(x,y) :- G(x,y), G(y,x).", &mut i).unwrap();
        let g = i.get("G").unwrap();
        let v = Value::Int;
        let mut input = Instance::new();
        for (a, b) in [(1, 2), (2, 1), (3, 4), (4, 3)] {
            input.insert_fact(g, Tuple::from([v(a), v(b)]));
        }
        let compiled = NondetProgram::compile(&program, false).unwrap();
        let effects = effect(&compiled, &input, EffOptions::default()).unwrap();
        // 2 choices per 2-cycle → 4 orientations.
        assert_eq!(effects.len(), 4);
        for e in &effects {
            assert_eq!(e.relation(g).unwrap().len(), 2);
        }
    }

    #[test]
    fn deterministic_program_has_single_effect() {
        let mut i = Interner::new();
        let program = parse_program("T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).", &mut i).unwrap();
        let g = i.get("G").unwrap();
        let v = Value::Int;
        let mut input = Instance::new();
        for k in 0..3 {
            input.insert_fact(g, Tuple::from([v(k), v(k + 1)]));
        }
        let compiled = NondetProgram::compile(&program, false).unwrap();
        let effects = effect(&compiled, &input, EffOptions::default()).unwrap();
        assert_eq!(effects.len(), 1);
        let expected = unchained_core::seminaive::minimum_model(
            &program,
            &input,
            unchained_core::EvalOptions::default(),
        )
        .unwrap();
        assert!(effects[0].same_facts(&expected.instance));
    }

    #[test]
    fn bottom_paths_are_pruned() {
        // One rule orients (1,2)/(2,1); a second rule aborts whenever the
        // orientation kept (2,1). Effect = only the (1,2) orientation.
        let mut i = Interner::new();
        let program = parse_program(
            "!G(x,y), done(x) :- G(x,y), G(y,x).\n\
             bottom :- done(x), G(2,1), !G(1,2).",
            &mut i,
        )
        .unwrap();
        let g = i.get("G").unwrap();
        let v = Value::Int;
        let mut input = Instance::new();
        input.insert_fact(g, Tuple::from([v(1), v(2)]));
        input.insert_fact(g, Tuple::from([v(2), v(1)]));
        let compiled = NondetProgram::compile(&program, false).unwrap();
        let effects = effect(&compiled, &input, EffOptions::default()).unwrap();
        assert_eq!(effects.len(), 1);
        assert!(effects[0].contains_fact(g, &Tuple::from([v(1), v(2)])));
        assert!(!effects[0].contains_fact(g, &Tuple::from([v(2), v(1)])));
    }

    #[test]
    fn empty_input_no_firings() {
        let mut i = Interner::new();
        let program = parse_program("!G(x,y) :- G(x,y), G(y,x).", &mut i).unwrap();
        let compiled = NondetProgram::compile(&program, false).unwrap();
        let effects = effect(&compiled, &Instance::new(), EffOptions::default()).unwrap();
        assert_eq!(effects.len(), 1);
        assert!(effects[0].is_empty());
    }

    #[test]
    fn state_budget_enforced() {
        // 3 two-cycles → 27 states along the way; a budget of 4 trips.
        let mut i = Interner::new();
        let program = parse_program("!G(x,y) :- G(x,y), G(y,x).", &mut i).unwrap();
        let g = i.get("G").unwrap();
        let v = Value::Int;
        let mut input = Instance::new();
        for (a, b) in [(1, 2), (3, 4), (5, 6)] {
            input.insert_fact(g, Tuple::from([v(a), v(b)]));
            input.insert_fact(g, Tuple::from([v(b), v(a)]));
        }
        let compiled = NondetProgram::compile(&program, false).unwrap();
        assert!(matches!(
            effect(&compiled, &input, EffOptions { max_states: 4 }),
            Err(NondetError::StateBudgetExceeded(_))
        ));
    }
}

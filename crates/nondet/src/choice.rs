//! The choice operator (Section 5.2's pointer to \[90\] and LDL \[99\]):
//! `choice((x̄),(ȳ))` in a rule body constrains the rule's firings so
//! that, over the whole computation, the chosen `(x̄, ȳ)` pairs form a
//! *function* from key to value. Once a pair is committed it stays
//! fixed — the "static choice" semantics, whose stable-model reading
//! \[66, 109\] this dynamic formulation matches on the programs here.
//!
//! The flagship application (after Corciulo–Giannotti–Pedreschi \[52\]:
//! "Datalog with non-deterministic choice computes NDB-PTIME") is
//! breaking the symmetry that makes *evenness* inexpressible in the
//! deterministic languages (Section 4.4): choice builds an arbitrary
//! successor chain over a unary relation, and parity is read off its
//! last element. Every computation picks a different chain, but all of
//! them agree on the answer — a *deterministic query computed by a
//! nondeterministic program*, exactly Section 5.3's `det(·)` story.

/// Evenness of unary `R` via choice, universal quantification and `⊥`.
///
/// The double constraint `choice((x),(y)), choice((y),(x))` makes
/// `chain` a simple path: each element gets at most one successor and
/// at most one predecessor. The `'r'` constant roots the chain. `last`
/// detects the end of the chain with a universal check; premature
/// `last` guesses are killed by the `⊥` rule (a state where a stale
/// `last(z)` coexists with `chain(z,w)` always has the aborting firing
/// available, so it can never be terminal).
pub const CHOICE_PARITY: &str = "\
chain('r','r') :- .
chain(x,y) :- chain(w,x), R(y), y != 'r', choice((x),(y)), choice((y),(x)).
odd(y) :- chain('r',y), y != 'r'.
even(y) :- chain(x,y), odd(x).
odd(y) :- chain(x,y), even(x), x != 'r'.
last(z) :- forall w : odd(z), !chain(z,w).
last(z) :- forall w : even(z), !chain(z,w).
bottom :- last(z), chain(z,w).
evenR :- last(z), even(z).
evenR :- forall y : !R(y).
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chooser::RandomChooser;
    use crate::eff::{effect, EffOptions};
    use crate::posscert::poss_cert;
    use crate::program::NondetProgram;
    use crate::run::run_once;
    use unchained_common::{Instance, Interner, Tuple, Value};
    use unchained_core::EvalOptions;
    use unchained_parser::parse_program;

    #[test]
    fn choice_enforces_functional_dependency() {
        // Assign each student exactly one advisor.
        let mut i = Interner::new();
        let program = parse_program(
            "advises(s, a) :- student(s), prof(a), choice((s),(a)).",
            &mut i,
        )
        .unwrap();
        let student = i.get("student").unwrap();
        let prof = i.get("prof").unwrap();
        let advises = i.get("advises").unwrap();
        let mut input = Instance::new();
        for s in 0..4i64 {
            input.insert_fact(student, Tuple::from([Value::Int(s)]));
        }
        for a in [100i64, 200] {
            input.insert_fact(prof, Tuple::from([Value::Int(a)]));
        }
        let compiled = NondetProgram::compile(&program, false).unwrap();
        for seed in 0..8u64 {
            let mut chooser = RandomChooser::seeded(seed);
            let run = run_once(&compiled, &input, &mut chooser, EvalOptions::default()).unwrap();
            let rel = run.instance.relation(advises).unwrap();
            // Exactly one advisor per student.
            assert_eq!(rel.len(), 4, "seed {seed}");
            let mut seen = std::collections::BTreeSet::new();
            for t in rel.iter() {
                assert!(seen.insert(t[0]), "student assigned twice (seed {seed})");
            }
        }
    }

    #[test]
    fn choice_effect_enumerates_all_functions() {
        // 2 students × 2 professors → 4 total assignments.
        let mut i = Interner::new();
        let program = parse_program(
            "advises(s, a) :- student(s), prof(a), choice((s),(a)).",
            &mut i,
        )
        .unwrap();
        let student = i.get("student").unwrap();
        let prof = i.get("prof").unwrap();
        let mut input = Instance::new();
        for s in 0..2i64 {
            input.insert_fact(student, Tuple::from([Value::Int(s)]));
        }
        for a in [100i64, 200] {
            input.insert_fact(prof, Tuple::from([Value::Int(a)]));
        }
        let compiled = NondetProgram::compile(&program, false).unwrap();
        let effects = effect(&compiled, &input, EffOptions::default()).unwrap();
        assert_eq!(effects.len(), 4);
    }

    #[test]
    fn global_choice_with_empty_key() {
        // choice((),(x)) commits to a single global pick.
        let mut i = Interner::new();
        let program = parse_program("leader(x) :- node(x), choice((),(x)).", &mut i).unwrap();
        let node = i.get("node").unwrap();
        let leader = i.get("leader").unwrap();
        let mut input = Instance::new();
        for k in 0..5i64 {
            input.insert_fact(node, Tuple::from([Value::Int(k)]));
        }
        let compiled = NondetProgram::compile(&program, false).unwrap();
        let effects = effect(&compiled, &input, EffOptions::default()).unwrap();
        // One effect per possible leader, each with exactly one leader.
        assert_eq!(effects.len(), 5);
        for e in &effects {
            assert_eq!(e.relation(leader).unwrap().len(), 1);
        }
    }

    #[test]
    fn parity_program_is_deterministic_despite_choice() {
        let mut i = Interner::new();
        let program = parse_program(CHOICE_PARITY, &mut i).unwrap();
        let r = i.get("R").unwrap();
        let even_r = i.get("evenR").unwrap();
        for k in 0..=4usize {
            let mut input = Instance::new();
            input.ensure(r, 1);
            for v in 0..k as i64 {
                input.insert_fact(r, Tuple::from([Value::Int(v)]));
            }
            let compiled = NondetProgram::compile(&program, false).unwrap();
            let pc = poss_cert(&compiled, &input, EffOptions::default()).unwrap();
            let expected = k % 2 == 0;
            // The deterministic fragment: every terminal computation
            // agrees, so poss = cert on the answer relation.
            let poss_even = pc.poss.contains_fact(even_r, &Tuple::from([]));
            let cert_even = pc.cert.contains_fact(even_r, &Tuple::from([]));
            assert_eq!(poss_even, expected, "|R| = {k} (poss)");
            assert_eq!(cert_even, expected, "|R| = {k} (cert)");
            assert!(pc.effect_count >= 1, "|R| = {k}");
        }
    }

    #[test]
    fn parity_single_runs_agree_across_seeds() {
        let mut i = Interner::new();
        let program = parse_program(CHOICE_PARITY, &mut i).unwrap();
        let r = i.get("R").unwrap();
        let even_r = i.get("evenR").unwrap();
        for k in [3usize, 6] {
            let mut input = Instance::new();
            input.ensure(r, 1);
            for v in 0..k as i64 {
                input.insert_fact(r, Tuple::from([Value::Int(v)]));
            }
            let compiled = NondetProgram::compile(&program, false).unwrap();
            let expected = k % 2 == 0;
            for seed in 0..6u64 {
                let mut chooser = RandomChooser::seeded(seed);
                match run_once(&compiled, &input, &mut chooser, EvalOptions::default()) {
                    Ok(run) => {
                        assert_eq!(
                            run.instance.contains_fact(even_r, &Tuple::from([])),
                            expected,
                            "|R| = {k}, seed {seed}"
                        );
                    }
                    Err(crate::NondetError::Aborted { .. }) => {
                        // A premature `last` guess was aborted via ⊥ —
                        // an allowed (abandoned) computation.
                    }
                    Err(other) => panic!("unexpected error: {other}"),
                }
            }
        }
    }

    #[test]
    fn choice_under_forall_rejected() {
        let mut i = Interner::new();
        let program =
            parse_program("a(x) :- forall y : b(x), !c(y), choice((x),(y)).", &mut i).unwrap();
        assert!(matches!(
            NondetProgram::compile(&program, false),
            Err(crate::NondetError::ChoiceInUniversalScope { rule: 0 })
        ));
    }

    #[test]
    fn display_roundtrip_of_choice_literal() {
        let mut i = Interner::new();
        let src = "advises(s, a) :- student(s), prof(a), choice((s), (a)).\n";
        let program = parse_program(src, &mut i).unwrap();
        assert_eq!(program.display(&i).to_string(), src);
        assert_eq!(
            unchained_parser::classify(&program),
            unchained_parser::Language::Nondeterministic
        );
    }
}

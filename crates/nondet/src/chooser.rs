//! Choice strategies for nondeterministic evaluation.
//!
//! Section 5.1: "the nondeterministic semantics is obtained by firing
//! one instantiation of a rule at a time, based on a nondeterministic
//! choice". A [`Chooser`] supplies that choice; different choosers give
//! reproducible runs (seeded random), deterministic traces (first), or
//! scripted tests (sequence).

use unchained_common::Rng;

/// Supplies the nondeterministic choices of a run.
pub trait Chooser {
    /// Picks an index in `0..n`. Called with `n ≥ 1`.
    fn choose(&mut self, n: usize) -> usize;
}

/// Seeded pseudo-random choice — the production-system "conflict
/// resolution by random selection" regime, reproducible by seed.
pub struct RandomChooser {
    rng: Rng,
}

impl RandomChooser {
    /// Creates a chooser from a seed.
    pub fn seeded(seed: u64) -> Self {
        RandomChooser {
            rng: Rng::seeded(seed),
        }
    }
}

impl Chooser for RandomChooser {
    fn choose(&mut self, n: usize) -> usize {
        self.rng.gen_index(n)
    }
}

/// Always picks the first available instantiation (deterministic,
/// text-order trace).
#[derive(Default, Clone, Copy)]
pub struct FirstChooser;

impl Chooser for FirstChooser {
    fn choose(&mut self, _n: usize) -> usize {
        0
    }
}

/// Replays a scripted sequence of choices (for tests); falls back to 0
/// when the script runs out. Out-of-range entries are clamped.
pub struct SequenceChooser {
    script: Vec<usize>,
    at: usize,
}

impl SequenceChooser {
    /// Creates a chooser replaying `script`.
    pub fn new(script: impl Into<Vec<usize>>) -> Self {
        SequenceChooser {
            script: script.into(),
            at: 0,
        }
    }
}

impl Chooser for SequenceChooser {
    fn choose(&mut self, n: usize) -> usize {
        let pick = self.script.get(self.at).copied().unwrap_or(0);
        self.at += 1;
        pick.min(n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_reproducible() {
        let mut a = RandomChooser::seeded(42);
        let mut b = RandomChooser::seeded(42);
        for _ in 0..20 {
            assert_eq!(a.choose(7), b.choose(7));
        }
    }

    #[test]
    fn random_stays_in_range() {
        let mut c = RandomChooser::seeded(7);
        for _ in 0..100 {
            assert!(c.choose(3) < 3);
        }
    }

    #[test]
    fn first_picks_zero() {
        let mut c = FirstChooser;
        assert_eq!(c.choose(5), 0);
    }

    #[test]
    fn sequence_replays_and_clamps() {
        let mut c = SequenceChooser::new([2, 9, 1]);
        assert_eq!(c.choose(5), 2);
        assert_eq!(c.choose(3), 2); // 9 clamped to n-1
        assert_eq!(c.choose(5), 1);
        assert_eq!(c.choose(5), 0); // script exhausted
    }
}

//! Possibility and certainty semantics (Definition 5.10):
//!
//! ```text
//! poss(I, P) = ⋃ { J | (I, J) ∈ eff(P) }
//! cert(I, P) = ⋂ { J | (I, J) ∈ eff(P) }
//! ```
//!
//! These turn a nondeterministic program into two deterministic
//! queries; Theorem 5.11 shows they reach `db-np` / `db-co-np` for
//! N-Datalog¬∀ / N-Datalog¬⊥ and `db-pspace` for N-Datalog¬¬.

use crate::eff::{effect, EffOptions};
use crate::program::NondetProgram;
use crate::NondetError;
use unchained_common::{Instance, Relation};

/// Both deterministic readings of a nondeterministic program's effect.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PossCert {
    /// Union of all effects.
    pub poss: Instance,
    /// Intersection of all effects.
    pub cert: Instance,
    /// Number of distinct terminal instances.
    pub effect_count: usize,
}

/// Computes `poss` and `cert` by exhaustive effect enumeration.
///
/// If the effect is empty (every computation aborted via `⊥`), `poss`
/// is the empty instance and `cert` is the empty instance as well — the
/// natural reading of an empty union and intersection over instances.
///
/// # Errors
/// Propagates [`NondetError::StateBudgetExceeded`] from the effect
/// enumeration.
pub fn poss_cert(
    compiled: &NondetProgram<'_>,
    input: &Instance,
    options: EffOptions,
) -> Result<PossCert, NondetError> {
    let effects = effect(compiled, input, options)?;
    let effect_count = effects.len();
    let mut iter = effects.into_iter();
    let Some(first) = iter.next() else {
        return Ok(PossCert {
            poss: Instance::new(),
            cert: Instance::new(),
            effect_count: 0,
        });
    };
    let mut poss = first.clone();
    let mut cert = first;
    for j in iter {
        // poss ∪= j
        for (pred, rel) in j.iter() {
            if rel.is_empty() {
                continue;
            }
            poss.ensure(pred, rel.arity()).union_with(rel);
        }
        // cert ∩= j
        let preds: Vec<_> = cert.symbols().collect();
        for pred in preds {
            let keep: Relation = match j.relation(pred) {
                Some(other) => {
                    let current = cert.relation(pred).expect("pred listed");
                    Relation::from_tuples(
                        current.arity(),
                        current.iter().filter(|t| other.contains(t)).cloned(),
                    )
                }
                None => Relation::new(cert.relation(pred).expect("pred listed").arity()),
            };
            *cert.relation_mut(pred).expect("pred listed") = keep;
        }
    }
    Ok(PossCert {
        poss,
        cert,
        effect_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::NondetProgram;
    use unchained_common::{Interner, Tuple, Value};
    use unchained_parser::parse_program;

    #[test]
    fn orientation_poss_is_input_and_cert_is_empty() {
        let mut i = Interner::new();
        let program = parse_program("!G(x,y) :- G(x,y), G(y,x).", &mut i).unwrap();
        let g = i.get("G").unwrap();
        let v = Value::Int;
        let mut input = Instance::new();
        input.insert_fact(g, Tuple::from([v(1), v(2)]));
        input.insert_fact(g, Tuple::from([v(2), v(1)]));
        let compiled = NondetProgram::compile(&program, false).unwrap();
        let pc = poss_cert(&compiled, &input, EffOptions::default()).unwrap();
        assert_eq!(pc.effect_count, 2);
        // Possibly-kept edges: both; certainly-kept: neither.
        assert_eq!(pc.poss.relation(g).unwrap().len(), 2);
        assert!(pc.cert.relation(g).unwrap().is_empty());
    }

    #[test]
    fn deterministic_program_poss_equals_cert() {
        let mut i = Interner::new();
        let program = parse_program("T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).", &mut i).unwrap();
        let g = i.get("G").unwrap();
        let v = Value::Int;
        let mut input = Instance::new();
        input.insert_fact(g, Tuple::from([v(1), v(2)]));
        input.insert_fact(g, Tuple::from([v(2), v(3)]));
        let compiled = NondetProgram::compile(&program, false).unwrap();
        let pc = poss_cert(&compiled, &input, EffOptions::default()).unwrap();
        assert_eq!(pc.effect_count, 1);
        assert!(pc.poss.same_facts(&pc.cert));
    }

    #[test]
    fn all_aborting_program_has_empty_effect() {
        let mut i = Interner::new();
        let program = parse_program("bottom :- P(x).", &mut i).unwrap();
        let p = i.get("P").unwrap();
        let mut input = Instance::new();
        input.insert_fact(p, Tuple::from([Value::Int(1)]));
        let compiled = NondetProgram::compile(&program, false).unwrap();
        let pc = poss_cert(&compiled, &input, EffOptions::default()).unwrap();
        assert_eq!(pc.effect_count, 0);
        assert!(pc.poss.is_empty() && pc.cert.is_empty());
    }

    #[test]
    fn cert_intersects_partial_overlap() {
        // keep(x) is asserted along every path for x=1, only sometimes
        // for the oriented pair.
        let mut i = Interner::new();
        let program = parse_program(
            "!G(x,y), kept(y,x) :- G(x,y), G(y,x).\n\
             base(x) :- P(x).",
            &mut i,
        )
        .unwrap();
        let g = i.get("G").unwrap();
        let p = i.get("P").unwrap();
        let kept = i.get("kept").unwrap();
        let base = i.get("base").unwrap();
        let v = Value::Int;
        let mut input = Instance::new();
        input.insert_fact(g, Tuple::from([v(1), v(2)]));
        input.insert_fact(g, Tuple::from([v(2), v(1)]));
        input.insert_fact(p, Tuple::from([v(9)]));
        let compiled = NondetProgram::compile(&program, false).unwrap();
        let pc = poss_cert(&compiled, &input, EffOptions::default()).unwrap();
        assert_eq!(pc.effect_count, 2);
        // base(9) on every path → certain.
        assert!(pc.cert.contains_fact(base, &Tuple::from([v(9)])));
        // kept tuples differ per path → possible but not certain.
        assert_eq!(pc.poss.relation(kept).unwrap().len(), 2);
        assert!(pc.cert.relation(kept).unwrap().is_empty());
    }
}

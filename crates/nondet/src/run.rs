//! Single nondeterministic computations: pick one applicable rule
//! instantiation at a time (via a [`Chooser`]) until no change-producing
//! firing remains.

use crate::chooser::Chooser;
use crate::program::{states_equal, NondetProgram, State};
use crate::NondetError;
use unchained_common::{Instance, SpanKind};
use unchained_core::EvalOptions;

/// Statistics and result of one nondeterministic run.
#[derive(Clone, Debug)]
pub struct NondetRun {
    /// The terminal instance.
    pub instance: Instance,
    /// Number of firings performed.
    pub steps: usize,
    /// Number of values invented (N-Datalog¬new only).
    pub invented: u64,
}

/// Runs one computation of `compiled` from `input`, with `chooser`
/// resolving each choice among the applicable firings.
///
/// # Errors
/// * [`NondetError::Aborted`] if the chosen computation derives `⊥`;
/// * [`NondetError::StepLimitExceeded`] if `options.max_stages` firings
///   happen without reaching a terminal state (N-Datalog¬¬ runs need
///   not terminate);
/// * [`NondetError::FactLimitExceeded`] under the fact budget.
pub fn run_once(
    compiled: &NondetProgram<'_>,
    input: &Instance,
    chooser: &mut dyn Chooser,
    options: EvalOptions,
) -> Result<NondetRun, NondetError> {
    let tel = options.telemetry.clone();
    tel.begin("nondet");
    let run_sw = tel.stopwatch();
    let tracer = tel.tracer().clone();
    let eval_guard = tracer.span(SpanKind::Eval, "nondet");
    let mut state = State::initial(input.clone());
    let mut fresh: u64 = 0;
    let mut steps = 0usize;
    loop {
        if options.max_stages.is_some_and(|m| steps >= m) {
            tel.finish(&run_sw, state.instance.fact_count());
            return Err(NondetError::StepLimitExceeded(steps));
        }
        let round_guard = tracer.span(SpanKind::Round, format!("step {}", steps + 1));
        // Candidate firings that change the state.
        let firings = compiled.firings(&state, &mut fresh);
        let changing: Vec<_> = firings
            .iter()
            .filter(|f| {
                let next = compiled.apply(&state, f);
                !states_equal(&next, &state)
            })
            .collect();
        if changing.is_empty() {
            drop(round_guard);
            tracer.gauge("steps", steps as u64);
            tracer.gauge("invented", fresh);
            tracer.gauge("final_facts", state.instance.fact_count() as u64);
            drop(eval_guard);
            tel.with(|t| t.invented = fresh as usize);
            tel.finish(&run_sw, state.instance.fact_count());
            return Ok(NondetRun {
                instance: state.instance,
                steps,
                invented: fresh,
            });
        }
        // One choice point per firing: how many candidates were live.
        tel.with(|t| t.choice_points.push(changing.len()));
        tracer.gauge("choices", changing.len() as u64);
        let pick = chooser.choose(changing.len());
        state = compiled.apply(&state, changing[pick]);
        steps += 1;
        drop(round_guard);
        if state.bottom {
            tel.finish(&run_sw, state.instance.fact_count());
            return Err(NondetError::Aborted { steps });
        }
        if options
            .max_facts
            .is_some_and(|m| state.instance.fact_count() > m)
        {
            tel.finish(&run_sw, state.instance.fact_count());
            return Err(NondetError::FactLimitExceeded(state.instance.fact_count()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chooser::{FirstChooser, RandomChooser, SequenceChooser};
    use crate::program::NondetProgram;
    use unchained_common::{Interner, Tuple, Value};
    use unchained_parser::parse_program;

    #[test]
    fn orientation_produces_valid_result() {
        // Section 5.1: remove one edge of every 2-cycle.
        let mut i = Interner::new();
        let program = parse_program("!G(x,y) :- G(x,y), G(y,x).", &mut i).unwrap();
        let g = i.get("G").unwrap();
        let v = Value::Int;
        let mut input = Instance::new();
        for (a, b) in [(1, 2), (2, 1), (3, 4), (4, 3)] {
            input.insert_fact(g, Tuple::from([v(a), v(b)]));
        }
        let compiled = NondetProgram::compile(&program, false).unwrap();
        for seed in 0..10 {
            let mut chooser = RandomChooser::seeded(seed);
            let run = run_once(&compiled, &input, &mut chooser, EvalOptions::default()).unwrap();
            let rel = run.instance.relation(g).unwrap();
            // Exactly one edge per 2-cycle survives.
            assert_eq!(rel.len(), 2);
            let has = |a: i64, b: i64| rel.contains(&Tuple::from([v(a), v(b)]));
            assert!(has(1, 2) ^ has(2, 1));
            assert!(has(3, 4) ^ has(4, 3));
            assert_eq!(run.steps, 2);
        }
    }

    #[test]
    fn different_seeds_reach_different_outcomes() {
        let mut i = Interner::new();
        let program = parse_program("!G(x,y) :- G(x,y), G(y,x).", &mut i).unwrap();
        let g = i.get("G").unwrap();
        let v = Value::Int;
        let mut input = Instance::new();
        input.insert_fact(g, Tuple::from([v(1), v(2)]));
        input.insert_fact(g, Tuple::from([v(2), v(1)]));
        let compiled = NondetProgram::compile(&program, false).unwrap();
        let mut outcomes = std::collections::BTreeSet::new();
        for seed in 0..32 {
            let mut chooser = RandomChooser::seeded(seed);
            let run = run_once(&compiled, &input, &mut chooser, EvalOptions::default()).unwrap();
            let rel = run.instance.relation(g).unwrap();
            outcomes.insert(rel.sorted().as_ref().clone());
        }
        assert_eq!(outcomes.len(), 2, "both orientations should be reachable");
    }

    #[test]
    fn deterministic_program_single_outcome() {
        // Without conflicting rules, every chooser converges to the same
        // fixpoint (the minimum model).
        let mut i = Interner::new();
        let program = parse_program("T(x,y) :- G(x,y). T(x,y) :- G(x,z), T(z,y).", &mut i).unwrap();
        let g = i.get("G").unwrap();
        let t = i.get("T").unwrap();
        let v = Value::Int;
        let mut input = Instance::new();
        for k in 0..4 {
            input.insert_fact(g, Tuple::from([v(k), v(k + 1)]));
        }
        let compiled = NondetProgram::compile(&program, false).unwrap();
        let expected =
            unchained_core::seminaive::minimum_model(&program, &input, EvalOptions::default())
                .unwrap();
        for seed in 0..5 {
            let mut chooser = RandomChooser::seeded(seed);
            let run = run_once(&compiled, &input, &mut chooser, EvalOptions::default()).unwrap();
            assert!(
                run.instance
                    .relation(t)
                    .unwrap()
                    .same_tuples(expected.instance.relation(t).unwrap()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn bottom_aborts() {
        let mut i = Interner::new();
        let program = parse_program("bottom :- P(x).", &mut i).unwrap();
        let p = i.get("P").unwrap();
        let mut input = Instance::new();
        input.insert_fact(p, Tuple::from([Value::Int(1)]));
        let compiled = NondetProgram::compile(&program, false).unwrap();
        let mut chooser = FirstChooser;
        assert!(matches!(
            run_once(&compiled, &input, &mut chooser, EvalOptions::default()),
            Err(NondetError::Aborted { .. })
        ));
    }

    #[test]
    fn step_limit_on_oscillating_program() {
        // One-at-a-time flip-flop can oscillate forever with an
        // adversarial chooser.
        let mut i = Interner::new();
        let program = parse_program("T(1), !T(0) :- T(0). T(0), !T(1) :- T(1).", &mut i).unwrap();
        let t = i.get("T").unwrap();
        let mut input = Instance::new();
        input.insert_fact(t, Tuple::from([Value::Int(0)]));
        let compiled = NondetProgram::compile(&program, false).unwrap();
        let mut chooser = FirstChooser;
        assert!(matches!(
            run_once(
                &compiled,
                &input,
                &mut chooser,
                EvalOptions::default().with_max_stages(25)
            ),
            Err(NondetError::StepLimitExceeded(25))
        ));
    }

    #[test]
    fn scripted_choices_drive_specific_outcomes() {
        let mut i = Interner::new();
        let program = parse_program("!G(x,y) :- G(x,y), G(y,x).", &mut i).unwrap();
        let g = i.get("G").unwrap();
        let v = Value::Int;
        let mut input = Instance::new();
        input.insert_fact(g, Tuple::from([v(1), v(2)]));
        input.insert_fact(g, Tuple::from([v(2), v(1)]));
        let compiled = NondetProgram::compile(&program, false).unwrap();
        // The two scripts pick the two different firings.
        let mut results = Vec::new();
        for script in [vec![0], vec![1]] {
            let mut chooser = SequenceChooser::new(script);
            let run = run_once(&compiled, &input, &mut chooser, EvalOptions::default()).unwrap();
            results.push(run.instance.relation(g).unwrap().sorted().len());
        }
        assert_eq!(results, vec![1, 1]);
    }
}

//! # unchained-nondet
//!
//! The nondeterministic language family of Section 5 of *Datalog
//! Unchained*: N-Datalog¬ and N-Datalog¬¬ (one nondeterministically
//! chosen rule instantiation fired at a time), the control-augmented
//! variants N-Datalog¬⊥ (inconsistency symbol `⊥` abandons a
//! computation) and N-Datalog¬∀ (universal quantification in bodies),
//! and N-Datalog¬new (value invention). On top of single runs, the
//! crate computes the full **effect relation** `eff(P)` by exhaustive
//! search on small inputs, and the **poss / cert** deterministic
//! readings of Definition 5.10.
//!
//! ## Example: the orientation program of Section 5.1
//!
//! ```
//! use unchained_common::{Instance, Interner, Tuple, Value};
//! use unchained_parser::parse_program;
//! use unchained_nondet::{NondetProgram, RandomChooser, run_once};
//! use unchained_core::EvalOptions;
//!
//! let mut interner = Interner::new();
//! let program = parse_program("!G(x,y) :- G(x,y), G(y,x).", &mut interner).unwrap();
//! let g = interner.get("G").unwrap();
//! let mut input = Instance::new();
//! input.insert_fact(g, Tuple::from([Value::Int(1), Value::Int(2)]));
//! input.insert_fact(g, Tuple::from([Value::Int(2), Value::Int(1)]));
//!
//! let compiled = NondetProgram::compile(&program, false).unwrap();
//! let mut chooser = RandomChooser::seeded(7);
//! let run = run_once(&compiled, &input, &mut chooser, EvalOptions::default()).unwrap();
//! // One of the two edges survives.
//! assert_eq!(run.instance.relation(g).unwrap().len(), 1);
//! ```

pub mod choice;
pub mod chooser;
pub mod eff;
pub mod posscert;
pub mod program;
pub mod run;

pub use choice::CHOICE_PARITY;
pub use chooser::{Chooser, FirstChooser, RandomChooser, SequenceChooser};
pub use eff::{effect, EffOptions};
pub use posscert::{poss_cert, PossCert};
pub use program::{ChoiceMaps, Firing, HeadOp, NondetProgram, State};
pub use run::{run_once, NondetRun};

use std::fmt;

/// Errors from nondeterministic evaluation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NondetError {
    /// A compile-time or shared-engine error.
    Eval(unchained_core::EvalError),
    /// The chosen computation derived `⊥` and was abandoned
    /// (N-Datalog¬⊥).
    Aborted {
        /// Firings performed before the abort.
        steps: usize,
    },
    /// A single run exceeded its firing budget without terminating.
    StepLimitExceeded(usize),
    /// The instance exceeded the fact budget (value invention).
    FactLimitExceeded(usize),
    /// Exhaustive effect enumeration exceeded its state budget.
    StateBudgetExceeded(usize),
    /// A `choice` constraint mentions a universally quantified
    /// variable; the LDL semantics only chooses over instantiated
    /// (existential) bindings.
    ChoiceInUniversalScope {
        /// Index of the offending rule.
        rule: usize,
    },
}

impl fmt::Display for NondetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NondetError::Eval(e) => write!(f, "{e}"),
            NondetError::Aborted { steps } => {
                write!(
                    f,
                    "computation derived ⊥ after {steps} firings and was abandoned"
                )
            }
            NondetError::StepLimitExceeded(n) => {
                write!(f, "run exceeded {n} firings without terminating")
            }
            NondetError::FactLimitExceeded(n) => write!(f, "fact budget exceeded ({n})"),
            NondetError::StateBudgetExceeded(n) => {
                write!(f, "effect enumeration exceeded {n} states")
            }
            NondetError::ChoiceInUniversalScope { rule } => {
                write!(f, "rule {rule}: choice constraint under a forall prefix")
            }
        }
    }
}

impl std::error::Error for NondetError {}

impl From<unchained_core::EvalError> for NondetError {
    fn from(e: unchained_core::EvalError) -> Self {
        NondetError::Eval(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = NondetError::Aborted { steps: 3 };
        assert!(e.to_string().contains('3'));
        let e = NondetError::StateBudgetExceeded(10);
        assert!(e.to_string().contains("10"));
    }
}

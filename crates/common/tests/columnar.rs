//! Property suite for the columnar segment layout (`common::columnar`
//! behind `common::relation`).
//!
//! The columnar rewrite replaced the boxed `Vec<Tuple>` segments with
//! arity-strided packed buffers. These tests pin the contract that made
//! the swap safe, against a plain `Vec<Tuple>` reference model that
//! mirrors the pre-columnar storage discipline (append to a tail;
//! `commit` sorts the tail and freezes it as a segment):
//!
//! * a relation stays content-equal, and `iter_stored` stays
//!   order-equal, through seeded random insert/commit/clone schedules
//!   at arities 0–5 with heavy duplication;
//! * `HeapSize` stays deterministic in the contents (physical segment
//!   layout must not leak into the logical byte gauges) and additive
//!   across the space tree;
//! * `iter_since` deltas are exact for cursors captured at freeze
//!   boundaries — no row missing, none repeated, order preserved —
//!   and conservatively a superset for cursors orphaned mid-tail by a
//!   later commit.

use unchained_common::{
    tuple_bytes, ColumnSegment, HeapSize, Instance, Interner, Relation, Rng, SpaceReport, Tuple,
    Value,
};

/// A random tuple of the given arity over a small value domain, so
/// duplicate inserts are frequent.
fn random_tuple(rng: &mut Rng, arity: usize, domain: i64) -> Tuple {
    (0..arity)
        .map(|_| Value::Int(rng.gen_range_i64(0, domain)))
        .collect::<Vec<Value>>()
        .into()
}

/// The reference model: the storage discipline the previous boxed
/// layout implemented, kept as plain `Vec<Tuple>`s.
#[derive(Clone, Default)]
struct RefModel {
    /// Frozen prefix: concatenation of sorted segments.
    frozen: Vec<Tuple>,
    /// Live tail, in insertion order.
    tail: Vec<Tuple>,
}

impl RefModel {
    fn contains(&self, t: &Tuple) -> bool {
        self.frozen.contains(t) || self.tail.contains(t)
    }

    fn insert(&mut self, t: Tuple) -> bool {
        if self.contains(&t) {
            return false;
        }
        self.tail.push(t);
        true
    }

    fn commit(&mut self) {
        self.tail.sort_unstable();
        self.frozen.append(&mut self.tail);
    }

    /// Expected `iter_stored` order: frozen segments, then the tail.
    fn stored(&self) -> Vec<Tuple> {
        let mut out = self.frozen.clone();
        out.extend(self.tail.iter().cloned());
        out
    }

    fn len(&self) -> usize {
        self.frozen.len() + self.tail.len()
    }
}

/// Drives `rel` and the reference model through the same insert stream,
/// committing at the given cadence.
fn grow(
    rng: &mut Rng,
    rel: &mut Relation,
    model: &mut RefModel,
    arity: usize,
    steps: usize,
    commit_every: usize,
) {
    for step in 0..steps {
        let t = random_tuple(rng, arity, 6);
        let fresh = rel.insert(t.clone());
        assert_eq!(
            fresh,
            model.insert(t),
            "insert dedup disagrees with the reference model at step {step}"
        );
        if commit_every > 0 && step % commit_every == commit_every - 1 {
            rel.commit();
            model.commit();
        }
    }
}

/// Content equality (as sets, via `iter`) plus exact storage-order
/// equality (via `iter_stored`, rows borrowed from packed segments).
fn assert_matches_model(rel: &Relation, model: &RefModel, context: &str) {
    assert_eq!(rel.len(), model.len(), "{context}: length");
    let expected = model.stored();
    let packed: Vec<Tuple> = rel.iter_stored().map(Tuple::new).collect();
    assert_eq!(packed, expected, "{context}: iter_stored() order/content");
    let mut boxed: Vec<Tuple> = rel.iter().cloned().collect();
    let mut sorted = expected.clone();
    boxed.sort_unstable();
    sorted.sort_unstable();
    assert_eq!(boxed, sorted, "{context}: iter() content");
    for t in &expected {
        assert!(rel.contains(t), "{context}: membership lost");
    }
}

#[test]
fn random_relations_match_the_reference_at_every_arity() {
    let mut rng = Rng::seeded(0xC01);
    for arity in 0..=5 {
        for commit_every in [0, 1, 7] {
            let mut rel = Relation::new(arity);
            let mut model = RefModel::default();
            grow(&mut rng, &mut rel, &mut model, arity, 300, commit_every);
            let context = format!("arity {arity}, commit every {commit_every}");
            assert_matches_model(&rel, &model, &context);
            // One more commit (freezing the live tail) keeps them in
            // lockstep.
            rel.commit();
            model.commit();
            assert_matches_model(&rel, &model, &format!("{context}, after final commit"));
        }
    }
}

#[test]
fn cross_epoch_clones_snapshot_and_diverge_independently() {
    let mut rng = Rng::seeded(0xC02);
    for arity in 1..=4 {
        let mut rel = Relation::new(arity);
        let mut model = RefModel::default();
        grow(&mut rng, &mut rel, &mut model, arity, 120, 11);

        // Clone mid-life, with a live uncommitted tail.
        let snapshot = rel.clone();
        let snapshot_model = model.clone();

        // The original keeps growing across more epochs…
        grow(&mut rng, &mut rel, &mut model, arity, 120, 13);
        assert_matches_model(&rel, &model, &format!("arity {arity}: original"));
        // …while the clone still replays the exact capture state.
        assert_matches_model(
            &snapshot,
            &snapshot_model,
            &format!("arity {arity}: snapshot"),
        );

        // And a fork of the clone diverges without disturbing it.
        let mut fork = snapshot.clone();
        let mut fork_model = snapshot_model.clone();
        grow(&mut rng, &mut fork, &mut fork_model, arity, 60, 5);
        assert_matches_model(&fork, &fork_model, &format!("arity {arity}: fork"));
        assert_matches_model(
            &snapshot,
            &snapshot_model,
            &format!("arity {arity}: snapshot after fork diverged"),
        );
    }
}

#[test]
fn iter_since_is_exact_at_freeze_boundaries_and_conservative_mid_tail() {
    let mut rng = Rng::seeded(0xC03);
    for arity in 0..=3 {
        let mut rel = Relation::new(arity);
        let mut model = RefModel::default();
        // Boundary cursors: captured right after a commit (tail empty),
        // paired with the frozen length at capture time. These stay
        // exact forever: later commits only append segments.
        let mut boundary = vec![(rel.generation(), 0usize)];
        for step in 0..400 {
            let t = random_tuple(&mut rng, arity, 5);
            let fresh = rel.insert(t.clone());
            assert_eq!(fresh, model.insert(t));
            if step % 29 == 7 {
                rel.commit();
                model.commit();
                boundary.push((rel.generation(), model.frozen.len()));
            }
        }
        let stored = model.stored();
        for (i, (gen, seen)) in boundary.iter().enumerate() {
            let delta: Vec<Tuple> = rel.iter_since(*gen).map(Tuple::new).collect();
            assert_eq!(
                delta,
                &stored[*seen..],
                "arity {arity}, boundary cursor {i}: delta must be the exact stored suffix"
            );
            assert_eq!(rel.delta_len(*gen), stored.len() - seen);
        }

        // A mid-tail cursor is exact while the tail lives…
        let mid_gen = rel.generation();
        let mut late = Vec::new();
        for _ in 0..30 {
            let t = random_tuple(&mut rng, arity, 50); // wide domain: mostly fresh
            if rel.insert(t.clone()) {
                model.insert(t.clone());
                late.push(t);
            }
        }
        let exact: Vec<Tuple> = rel.iter_since(mid_gen).map(Tuple::new).collect();
        assert_eq!(exact, late, "arity {arity}: mid-tail cursor before commit");
        // …and degrades to a conservative superset once a commit folds
        // that tail into a sorted segment (semi-naive stays correct
        // under supersets; exactness is only promised at boundaries).
        rel.commit();
        model.commit();
        let superset: Vec<Tuple> = rel.iter_since(mid_gen).map(Tuple::new).collect();
        for t in &late {
            assert!(
                superset.contains(t),
                "arity {arity}: orphaned cursor dropped a delta row"
            );
        }
        assert!(superset.len() <= rel.len());
    }
}

#[test]
fn heap_bytes_are_deterministic_in_contents_and_additive() {
    // Same content, three different construction histories: the
    // logical byte gauge must agree (counts × fixed widths — physical
    // segment layout must not leak).
    let facts: Vec<Tuple> = (0..60)
        .map(|k| Tuple::from([Value::Int(k % 13), Value::Int((k * 5 + 2) % 13)]))
        .collect();
    let mut one_segment = Relation::new(2);
    let mut many_segments = Relation::new(2);
    let mut unfrozen = Relation::new(2);
    for (i, t) in facts.iter().enumerate() {
        one_segment.insert(t.clone());
        many_segments.insert(t.clone());
        unfrozen.insert(t.clone());
        if i % 3 == 0 {
            many_segments.commit();
        }
    }
    one_segment.commit();
    assert_eq!(one_segment.len(), many_segments.len());
    assert_eq!(one_segment.heap_bytes(), many_segments.heap_bytes());
    assert_eq!(one_segment.heap_bytes(), unfrozen.heap_bytes());
    // The model: every stored copy costs tuple_bytes(arity) — one in
    // the membership set, one in a segment or the tail.
    assert_eq!(
        one_segment.heap_bytes(),
        2 * one_segment.len() * tuple_bytes(2)
    );

    // Additivity holds over the whole space tree of a random instance.
    let mut rng = Rng::seeded(0xC04);
    let mut interner = Interner::new();
    let mut instance = Instance::new();
    for (name, arity) in [("A", 1usize), ("B", 2), ("C", 3)] {
        let sym = interner.intern(name);
        instance.ensure(sym, arity);
        for _ in 0..rng.gen_index(200) {
            instance.insert_fact(sym, random_tuple(&mut rng, arity, 7));
        }
    }
    let report = SpaceReport::for_instance(&instance, &interner);
    report
        .check_additive()
        .expect("space tree must be additive");
    let rel_total: usize = instance.iter().map(|(_, r)| r.heap_bytes()).sum();
    assert_eq!(report.relation_bytes(), rel_total as u64);
}

#[test]
fn column_segments_replay_tuples_verbatim() {
    // The packed layer itself, one level below Relation: packing any
    // tuple sequence (duplicates included — segments do not dedup) and
    // reading it back row by row is the identity.
    let mut rng = Rng::seeded(0xC05);
    for arity in 0..=5 {
        let tuples: Vec<Tuple> = (0..50).map(|_| random_tuple(&mut rng, arity, 4)).collect();
        let seg = ColumnSegment::from_tuples(arity, &tuples);
        assert_eq!(seg.len(), tuples.len());
        let back: Vec<Tuple> = seg.rows().map(Tuple::new).collect();
        assert_eq!(back, tuples, "arity {arity}");
        // Random subranges agree with the equivalent skip/take.
        for _ in 0..10 {
            let lo = rng.gen_index(tuples.len() + 1);
            let hi = lo + rng.gen_index(tuples.len() - lo + 1);
            let ranged: Vec<Tuple> = seg.rows_range(lo, hi).map(Tuple::new).collect();
            assert_eq!(&ranged[..], &tuples[lo..hi], "arity {arity}, {lo}..{hi}");
        }
    }
}

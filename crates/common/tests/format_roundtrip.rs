//! Round-trip tests for the two machine-readable formats: the
//! JSON-lines evaluation trace (`--trace-json`) and the versioned
//! BENCH.json benchmark report. Both are emitted by hand-rolled
//! writers, so these tests parse them back with [`Json`] and compare
//! field-by-field against the in-memory values.

use unchained_common::telemetry::{DivergenceSnapshot, EvalTrace, JoinCounters, StageRecord};
use unchained_common::{
    BenchEntry, BenchReport, Gauges, Interner, Json, WallStats, BENCH_SCHEMA_VERSION,
};

/// A representative trace touching every serialized field, including
/// characters that need JSON escaping.
fn sample_trace(interner: &mut Interner) -> EvalTrace {
    let t = interner.intern("T");
    let weird = interner.intern("edge \"quoted\"\n");
    let mut trace = EvalTrace {
        engine: "noninflationary".into(),
        ..Default::default()
    };
    trace.total_wall_nanos = 123_456;
    trace.peak_facts = 42;
    trace.final_facts = 40;
    trace.bytes_peak = 2048;
    trace.bytes_final = 1920;
    trace.rules_fired = 99;
    trace.joins = JoinCounters {
        probes: 7,
        probe_tuples: 70,
        index_builds: 3,
        indexed_tuples: 30,
        index_hits: 11,
        index_appends: 2,
        appended_tuples: 8,
        index_rebuilds: 1,
    };
    trace.divergence = Some(DivergenceSnapshot {
        detector: "fingerprint".into(),
        states_seen: 5,
        diverged_stage: Some(4),
        period: Some(2),
    });
    trace.ivm_overdeleted = 13;
    trace.ivm_rederived = 9;
    trace.invented = 6;
    trace.loop_iterations = 0;
    trace.interner_symbols = interner.len();
    trace.choice_points = vec![1, 3];
    trace.notes = vec!["magic rewrite: 4 rules".into(), "tab\there".into()];
    trace.stages.push(StageRecord {
        stage: 1,
        wall_nanos: 1000,
        facts_added: 2,
        facts_removed: 1,
        rules_fired: 10,
        bytes: 1024,
        delta: vec![(t, 2), (weird, 1)],
        joins: JoinCounters {
            probes: 4,
            probe_tuples: 40,
            index_builds: 2,
            indexed_tuples: 20,
            index_hits: 3,
            index_appends: 1,
            appended_tuples: 4,
            index_rebuilds: 0,
        },
    });
    trace.stages.push(StageRecord {
        stage: 2,
        wall_nanos: 500,
        facts_added: 0,
        facts_removed: 0,
        rules_fired: 5,
        bytes: 1920,
        delta: vec![],
        joins: JoinCounters::default(),
    });
    trace
}

fn u(v: &Json, key: &str) -> u64 {
    v.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("field {key} missing or not a number"))
}

#[test]
fn trace_json_lines_round_trip() {
    let mut interner = Interner::new();
    let trace = sample_trace(&mut interner);
    let text = trace.to_json_lines(&interner);

    let lines: Vec<Json> = text
        .lines()
        .map(|l| Json::parse(l).expect("every trace line is valid JSON"))
        .collect();
    assert_eq!(lines.len(), 1 + trace.stages.len());

    let run = &lines[0];
    assert_eq!(run.get("type").and_then(Json::as_str), Some("run"));
    assert_eq!(
        run.get("engine").and_then(Json::as_str),
        Some(trace.engine.as_str())
    );
    assert_eq!(u(run, "stages"), trace.stages.len() as u64);
    assert_eq!(u(run, "total_wall_nanos"), trace.total_wall_nanos);
    assert_eq!(u(run, "peak_facts"), trace.peak_facts as u64);
    assert_eq!(u(run, "final_facts"), trace.final_facts as u64);
    assert_eq!(u(run, "bytes_peak"), trace.bytes_peak);
    assert_eq!(u(run, "bytes_final"), trace.bytes_final);
    assert_eq!(u(run, "rules_fired"), trace.rules_fired);
    assert_eq!(u(run, "ivm_overdeleted"), trace.ivm_overdeleted);
    assert_eq!(u(run, "ivm_rederived"), trace.ivm_rederived);
    assert_eq!(u(run, "invented"), trace.invented as u64);
    assert_eq!(u(run, "loop_iterations"), trace.loop_iterations as u64);
    assert_eq!(u(run, "interner_symbols"), trace.interner_symbols as u64);

    let joins = run.get("joins").expect("run has joins");
    assert_eq!(u(joins, "probes"), trace.joins.probes);
    assert_eq!(u(joins, "probe_tuples"), trace.joins.probe_tuples);
    assert_eq!(u(joins, "index_builds"), trace.joins.index_builds);
    assert_eq!(u(joins, "indexed_tuples"), trace.joins.indexed_tuples);
    assert_eq!(u(joins, "index_hits"), trace.joins.index_hits);
    assert_eq!(u(joins, "index_appends"), trace.joins.index_appends);
    assert_eq!(u(joins, "appended_tuples"), trace.joins.appended_tuples);
    assert_eq!(u(joins, "index_rebuilds"), trace.joins.index_rebuilds);

    let div = run.get("divergence").expect("run has divergence");
    let snap = trace.divergence.as_ref().unwrap();
    assert_eq!(
        div.get("detector").and_then(Json::as_str),
        Some(snap.detector.as_str())
    );
    assert_eq!(u(div, "states_seen"), snap.states_seen as u64);
    assert_eq!(
        div.get("diverged_stage").and_then(Json::as_usize),
        snap.diverged_stage
    );
    assert_eq!(div.get("period").and_then(Json::as_usize), snap.period);

    let choice: Vec<u64> = run
        .get("choice_points")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|v| v.as_u64().unwrap())
        .collect();
    assert_eq!(choice, vec![1, 3]);
    let notes: Vec<&str> = run
        .get("notes")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|v| v.as_str().unwrap())
        .collect();
    assert_eq!(notes, vec!["magic rewrite: 4 rules", "tab\there"]);

    for (line, rec) in lines[1..].iter().zip(&trace.stages) {
        assert_eq!(line.get("type").and_then(Json::as_str), Some("stage"));
        assert_eq!(u(line, "stage"), rec.stage as u64);
        assert_eq!(u(line, "wall_nanos"), rec.wall_nanos);
        assert_eq!(u(line, "facts_added"), rec.facts_added as u64);
        assert_eq!(u(line, "facts_removed"), rec.facts_removed as u64);
        assert_eq!(u(line, "rules_fired"), rec.rules_fired);
        assert_eq!(u(line, "bytes"), rec.bytes);
        let delta = line.get("delta").expect("stage has delta");
        for (pred, n) in &rec.delta {
            // The escaped predicate name parses back to the interned one.
            assert_eq!(
                delta.get(interner.name(*pred)).and_then(Json::as_usize),
                Some(*n)
            );
        }
        let joins = line.get("joins").expect("stage has joins");
        assert_eq!(u(joins, "probes"), rec.joins.probes);
    }
}

#[test]
fn trace_parses_back_via_from_json_lines() {
    let mut interner = Interner::new();
    let trace = sample_trace(&mut interner);
    let text = trace.to_json_lines(&interner);
    // Emitter → parser: the structures compare equal…
    let parsed = EvalTrace::from_json_lines(&text, &mut interner).unwrap();
    assert_eq!(parsed, trace);
    // …and re-emission is byte-identical, so any schema drift between
    // the writer and the reader breaks this test.
    assert_eq!(parsed.to_json_lines(&interner), text);
    // Malformed inputs are rejected with messages, not panics.
    assert!(EvalTrace::from_json_lines("", &mut interner).is_err());
    assert!(EvalTrace::from_json_lines("{\"type\":\"stage\"}", &mut interner).is_err());
    assert!(EvalTrace::from_json_lines("not json", &mut interner).is_err());
}

fn sample_report() -> BenchReport {
    let mut report = BenchReport::default();
    for (workload, engine, median) in [
        ("chain", "seminaive", 1_000u64),
        ("win", "wellfounded", 2_000),
    ] {
        report.entries.push(BenchEntry {
            workload: workload.into(),
            engine: engine.into(),
            threads: 1,
            n: 16,
            edb_facts: 0,
            reps: 3,
            wall: WallStats {
                min: median / 2,
                median,
                p95: median * 2,
                total: median * 3,
            },
            gauges: Gauges {
                stages: 4,
                facts_derived: 120,
                peak_facts: 135,
                rules_fired: 17,
                probes: 8,
                probe_tuples: 80,
                index_builds: 2,
                indexed_tuples: 20,
                index_hits: 5,
                index_appends: 3,
                appended_tuples: 12,
                index_rebuilds: 1,
                plan_joins_pruned: 3,
                subplans_shared: 2,
                interner_symbols: 2,
                bytes_peak: 8192,
                bytes_final: 4096,
                ivm_overdeleted: 5,
                ivm_rederived: 2,
            },
        });
    }
    report
}

#[test]
fn bench_report_round_trips_through_json() {
    let report = sample_report();
    let text = report.to_json();
    let parsed = BenchReport::from_json(&text).expect("emitted report parses");
    assert_eq!(parsed, report);
}

#[test]
fn bench_json_carries_the_schema_version() {
    let report = sample_report();
    let doc = Json::parse(&report.to_json()).expect("BENCH.json is one JSON document");
    assert_eq!(
        doc.get("schema_version").and_then(Json::as_u64),
        Some(BENCH_SCHEMA_VERSION)
    );
    let entries = doc.get("entries").and_then(Json::as_arr).unwrap();
    assert_eq!(entries.len(), report.entries.len());
    let first = &entries[0];
    assert_eq!(first.get("workload").and_then(Json::as_str), Some("chain"));
    assert_eq!(
        first
            .get("wall")
            .and_then(|w| w.get("median"))
            .and_then(Json::as_u64),
        Some(1_000)
    );
    let planner = first
        .get("planner")
        .expect("v5 entries carry planner gauges");
    assert_eq!(u(planner, "joins_pruned"), 3);
    assert_eq!(u(planner, "subplans_shared"), 2);
}

#[test]
fn bench_report_rejects_foreign_schema_versions() {
    let report = sample_report();
    let bumped = report.to_json().replacen(
        &format!("\"schema_version\":{BENCH_SCHEMA_VERSION}"),
        &format!("\"schema_version\":{}", BENCH_SCHEMA_VERSION + 1),
        1,
    );
    let err = BenchReport::from_json(&bumped).unwrap_err();
    assert!(err.contains("schema"), "{err}");
    assert!(BenchReport::from_json("not json at all").is_err());
    assert!(BenchReport::from_json("{\"entries\":[]}").is_err());
}

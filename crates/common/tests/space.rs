//! Invariants of the logical-byte space model (`common::space`).
//!
//! Three properties keep `--memstats` trustworthy: bytes are *additive*
//! (every branch equals the sum of its children), *monotone* under
//! inserts, and *deterministic in the contents* — the same facts report
//! the same bytes no matter how (or on how many threads) they were
//! derived. The engine-level thread-count check lives in
//! `crates/core/tests/telemetry.rs`; here we exercise the model itself.

use unchained_common::{
    tuple_bytes, HeapSize, Index, Instance, Interner, Relation, Rng, SpaceReport, Tuple, Value,
};

fn t2(a: i64, b: i64) -> Tuple {
    Tuple::from([Value::Int(a), Value::Int(b)])
}

#[test]
fn relation_bytes_count_every_stored_copy() {
    let mut r = Relation::new(2);
    assert_eq!(r.heap_bytes(), 0);
    r.insert(t2(1, 2));
    r.insert(t2(3, 4));
    // Uncommitted: each tuple lives in the recent tail and in the
    // membership set.
    assert_eq!(r.heap_bytes(), 4 * tuple_bytes(2));
    r.commit();
    // Committed: same copies, now in a frozen segment and the set.
    assert_eq!(r.heap_bytes(), 4 * tuple_bytes(2));
    // A duplicate insert stores nothing.
    assert!(!r.insert(t2(1, 2)));
    assert_eq!(r.heap_bytes(), 4 * tuple_bytes(2));
}

#[test]
fn relation_bytes_are_monotone_under_inserts() {
    let mut rng = Rng::seeded(0xB0A7);
    let mut r = Relation::new(2);
    let mut last = r.heap_bytes();
    for step in 0..500 {
        // Small domain so duplicates are frequent.
        r.insert(t2(rng.gen_range_i64(0, 12), rng.gen_range_i64(0, 12)));
        if step % 37 == 0 {
            r.commit();
        }
        let now = r.heap_bytes();
        assert!(now >= last, "bytes shrank at step {step}: {last} -> {now}");
        last = now;
    }
}

#[test]
fn relation_bytes_are_deterministic_in_the_contents() {
    // Same facts, different insertion orders and commit schedules:
    // segment layout differs, bytes do not.
    let facts: Vec<(i64, i64)> = (0..40).map(|k| (k, (k * 7 + 3) % 40)).collect();
    let mut a = Relation::new(2);
    for &(x, y) in &facts {
        a.insert(t2(x, y));
    }
    a.commit();
    let mut b = Relation::new(2);
    for (i, &(x, y)) in facts.iter().rev().enumerate() {
        b.insert(t2(x, y));
        if i % 7 == 0 {
            b.commit();
        }
    }
    assert_ne!(a.segment_lens(), b.segment_lens());
    assert_eq!(a.heap_bytes(), b.heap_bytes());
    // The per-relation tree is additive in both layouts.
    a.space_node("T").check_additive().unwrap();
    b.space_node("T").check_additive().unwrap();
}

#[test]
fn space_node_branches_sum_their_children() {
    let mut r = Relation::new(2);
    for k in 0..10 {
        r.insert(t2(k, k + 1));
        if k == 4 {
            r.commit();
        }
    }
    let node = r.space_node("edge");
    node.check_additive().unwrap();
    let child_sum: u64 = node.children.iter().map(|c| c.bytes).sum();
    assert_eq!(node.bytes, child_sum);
    assert_eq!(node.bytes, r.heap_bytes() as u64);
    // items on the branch is the logical cardinality, not the child sum
    // (each tuple is stored twice).
    assert_eq!(node.items, 10);
    assert_eq!(
        node.children.iter().map(|c| c.items).sum::<u64>(),
        2 * node.items
    );
}

#[test]
fn instance_report_is_additive_and_complete() {
    let mut interner = Interner::new();
    let g = interner.intern("G");
    let t = interner.intern("T");
    let mut inst = Instance::new();
    for k in 0..20 {
        inst.insert_fact(g, t2(k, k + 1));
    }
    for k in 0..5 {
        inst.insert_fact(t, t2(k, k + 2));
    }
    let report = SpaceReport::for_instance(&inst, &interner);
    report.check_additive().unwrap();
    // Relation bytes match the instance model exactly; total adds the
    // interner on top.
    assert_eq!(report.relation_bytes(), inst.heap_bytes() as u64);
    assert_eq!(
        report.total_bytes(),
        (inst.heap_bytes() + interner.heap_bytes()) as u64
    );
    let rendered = report.render();
    assert!(rendered.contains("additive: ok"), "{rendered}");
    assert!(rendered.contains("G/2"), "{rendered}");
    // The fattest table leads with the bigger relation.
    let fat = report.fattest_relations(2);
    let g_pos = fat.find("G/2").unwrap();
    let t_pos = fat.find("T/2").unwrap();
    assert!(g_pos < t_pos, "{fat}");
}

#[test]
fn index_bytes_follow_the_bucket_model() {
    let mut r = Relation::new(2);
    // Key column 0: keys 0 and 1, with 3 and 2 postings.
    for &(x, y) in &[(0, 1), (0, 2), (0, 3), (1, 4), (1, 5)] {
        r.insert(t2(x, y));
    }
    r.commit();
    let idx = Index::build(&r, &[0]);
    assert_eq!(idx.distinct_keys(), 2);
    // Per bucket: one boxed 1-column key plus one stored copy per
    // posting.
    let expected = 2 * tuple_bytes(1) + 5 * tuple_bytes(2);
    assert_eq!(idx.heap_bytes(), expected);
}

#[test]
fn interner_bytes_grow_with_names_not_lookups() {
    let mut i = Interner::new();
    assert_eq!(i.heap_bytes(), 0);
    i.intern("edge");
    let one = i.heap_bytes();
    assert!(one > 0);
    // Re-interning an existing name allocates nothing.
    i.intern("edge");
    assert_eq!(i.heap_bytes(), one);
    i.intern("tc");
    assert!(i.heap_bytes() > one);
}

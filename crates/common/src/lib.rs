//! # unchained-common
//!
//! The relational substrate shared by every engine in the `unchained`
//! workspace: domain values and string interning, tuples, relations with
//! hash indexes, database instances, and a handful of small utilities
//! (fast hashing, deterministic fingerprints).
//!
//! The model follows Section 2 of *Datalog Unchained* (Vianu, PODS 2021):
//!
//! * a **relation schema** is a relation symbol with an arity (we use
//!   positional attributes rather than named ones, as is standard in
//!   Datalog implementations);
//! * an **instance** over a relation schema is a finite set of constant
//!   tuples of that arity;
//! * an **instance over a database schema** maps each relation symbol to a
//!   relation instance;
//! * the **active domain** `adom(I)` of an instance is the set of domain
//!   elements occurring in it.
//!
//! Only finite instances are representable, matching the paper's setting.

pub mod bench;
pub mod columnar;
pub mod error;
pub mod hash;
pub mod instance;
pub mod interner;
pub mod json;
pub mod metrics;
pub mod relation;
pub mod rng;
pub mod schema;
pub mod space;
pub mod telemetry;
pub mod trace;
pub mod tuple;
pub mod value;

pub use bench::{
    compare_reports, compare_with_history, measure, BenchEntry, BenchHistory, BenchReport,
    Comparison, Gauges, HistoryComparison, HistoryPoint, HistoryRun, Repetitions, WallStats,
    BENCH_SCHEMA_VERSION,
};
pub use columnar::{ColumnSegment, Rows};
pub use error::CommonError;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use instance::{DeltaHandle, Instance};
pub use interner::{Interner, Symbol};
pub use json::{Json, JsonError};
pub use metrics::{metrics, Registry, TIME_BUCKETS};
pub use relation::{Generation, Index, Relation};
pub use rng::Rng;
pub use schema::{RelationSchema, Schema};
pub use space::{fmt_bytes, tuple_bytes, HeapSize, SpaceNode, SpaceReport};
pub use telemetry::{
    DivergenceSnapshot, EvalTrace, JoinCounters, StageRecord, Stopwatch, Telemetry,
};
pub use trace::{
    gauge_tree, hottest_rules, sum_gauge, to_chrome_json, validate_chrome_trace, Span, SpanGuard,
    SpanKind, Tracer,
};
pub use tuple::Tuple;
pub use value::Value;

//! Relations (finite sets of constant tuples) and hash indexes over them.
//!
//! Storage is *generational*: a relation keeps an immutable list of frozen,
//! internally sorted **stable segments** plus a mutable, insertion-ordered
//! **recent tail**. [`Relation::commit`] promotes the tail into a new frozen
//! segment. A [`Generation`] is a cheap copyable cursor `(epoch, segments,
//! recent)` into that layout; [`Relation::iter_since`] enumerates exactly the
//! tuples added after a captured generation, which is what semi-naive
//! evaluation needs for its per-round deltas, and what [`Index::absorb_from`]
//! needs to maintain hash indexes incrementally instead of rebuilding them
//! from scratch on every version bump.
//!
//! Physically, frozen segments are **columnar**: each is a single
//! arity-strided `Vec<Value>` ([`ColumnSegment`]) rather than a
//! `Vec<Tuple>` of per-tuple boxes, so scans walk one contiguous
//! allocation and hand out borrowed `&[Value]` rows without pointer
//! chasing. The recent tail still holds owned [`Tuple`]s (it is built
//! incrementally, one insert at a time); [`Relation::commit`] is the
//! point where rows get packed. [`Index`] is open-addressing over the
//! same packed representation: probe and absorb never allocate a
//! per-tuple box.

use crate::columnar::ColumnSegment;
use crate::hash::{hash_one, FxHashSet, FxHasher};
use crate::space::{tuple_bytes, HeapSize, SpaceNode, TUPLE_HEADER_BYTES, VALUE_BYTES};
use crate::tuple::Tuple;
use crate::value::Value;
use std::hash::Hasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Global source of epoch identifiers. Epochs are unique across all
/// relations in the process, so a generation captured from one relation can
/// never be mistaken for a generation of an unrelated (or diverged) one.
static EPOCH_SOURCE: AtomicU64 = AtomicU64::new(1);

fn next_epoch() -> u64 {
    EPOCH_SOURCE.fetch_add(1, Ordering::Relaxed)
}

/// A cursor into a relation's generational storage.
///
/// `epoch` identifies the append-only lineage the cursor belongs to: any
/// non-append mutation (remove, clear, difference) — and the first mutation
/// after the relation was cloned while the clone is still alive — moves the
/// relation to a fresh, globally unique epoch. Within one epoch, storage
/// only grows, so `(segments, recent)` prefix counts fully describe a past
/// state and the suffix beyond them is exactly "what was added since".
///
/// The default generation (`epoch == 0`) matches no real relation; treating
/// it as a delta mark means "everything is new", which is the correct
/// behaviour for relations that did not exist when the mark was captured.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Generation {
    /// Lineage stamp; `0` only in [`Generation::default`].
    pub epoch: u64,
    /// Number of frozen segments at capture time.
    pub segments: usize,
    /// Length of the recent tail at capture time.
    pub recent: usize,
    /// Length of the tombstone log at capture time; see
    /// [`Relation::retract`].
    pub retracted: usize,
}

/// A `Sync`-safe single-slot memo keyed by `(epoch, version)`.
///
/// Replaces the former `Cell`/`RefCell` caches so `Relation` (and thus
/// `Instance`) is `Sync` and can be shared read-only across worker
/// threads. The key includes the epoch, not the version alone: two
/// diverged clones can independently mutate their way to the *same*
/// version number with different contents, and each clone deep-copies
/// the memo on `Clone`, so a version-only key could alias a stale view
/// after clone → diverge. The lock is uncontended in practice (one
/// writer thread between parallel rounds) and poison-tolerant: a
/// panicking reader cannot corrupt a cache slot, so we just take the
/// inner value.
#[derive(Debug, Default)]
struct Memo<T> {
    slot: Mutex<Option<((u64, u64), T)>>,
}

impl<T: Clone> Memo<T> {
    /// The cached value if it was stored under exactly `key`.
    fn get(&self, key: (u64, u64)) -> Option<T> {
        let slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        slot.as_ref()
            .filter(|(k, _)| *k == key)
            .map(|(_, v)| v.clone())
    }

    /// Stores `value` under `key`, displacing any previous entry.
    fn set(&self, key: (u64, u64), value: T) {
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        *slot = Some((key, value));
    }
}

impl<T: Clone> Clone for Memo<T> {
    fn clone(&self) -> Self {
        let slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        Memo {
            slot: Mutex::new(slot.clone()),
        }
    }
}

/// A finite relation instance: a set of same-arity tuples.
///
/// Alongside the generational segment storage, the relation keeps a flat
/// hash set of all tuples for O(1) membership, a `version` counter bumped on
/// every content change (used to invalidate the cached [`fingerprint`] and
/// [`sorted`] views), and the epoch stamp described on [`Generation`].
///
/// [`fingerprint`]: Relation::fingerprint
/// [`sorted`]: Relation::sorted
#[derive(Clone, Debug)]
pub struct Relation {
    arity: usize,
    /// Membership set over segments ∪ recent (each tuple stored once there).
    set: FxHashSet<Tuple>,
    /// Frozen, internally sorted columnar runs; shared by clones via `Arc`.
    segments: Vec<Arc<ColumnSegment>>,
    /// Uncommitted tail in insertion order, already deduplicated.
    recent: Vec<Tuple>,
    /// Tombstone log: tuples retracted from this lineage, in retraction
    /// order. Their physical copies stay in `segments`/`recent` (so
    /// generation cursors remain storage prefixes) but they are absent
    /// from `set`, and every iterator filters them out. Append-only
    /// within an epoch, which is what lets [`Relation::retracted_since`]
    /// enumerate exactly the tombstones added after a mark.
    retracted: Vec<Tuple>,
    /// Lineage stamp; see [`Generation`].
    epoch: u64,
    /// Shared token used to detect live clones: a mutation observed while
    /// the token is shared forks the epoch so sibling clones (and any index
    /// postings absorbed from them) can never alias this relation's storage.
    epoch_token: Arc<()>,
    version: u64,
    /// `(epoch, version)`-keyed memo for [`Relation::fingerprint`].
    fingerprint_cache: Memo<u64>,
    /// `(epoch, version)`-keyed memo for [`Relation::sorted`].
    sorted_cache: Memo<Arc<Vec<Tuple>>>,
}

impl Relation {
    /// Creates an empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            set: FxHashSet::default(),
            segments: Vec::new(),
            recent: Vec::new(),
            retracted: Vec::new(),
            epoch: next_epoch(),
            epoch_token: Arc::new(()),
            version: 0,
            fingerprint_cache: Memo::default(),
            sorted_cache: Memo::default(),
        }
    }

    /// Creates a relation from an iterator of tuples.
    ///
    /// # Panics
    /// Panics if a tuple's arity does not match.
    pub fn from_tuples(arity: usize, tuples: impl IntoIterator<Item = Tuple>) -> Self {
        let mut rel = Relation::new(arity);
        for t in tuples {
            rel.insert(t);
        }
        rel
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// The mutation counter. Two calls returning the same value guarantee
    /// the contents did not change in between. [`Relation::commit`] does not
    /// bump it: committing reshapes storage without changing contents.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The current generation cursor; capture before a batch of appends to
    /// later enumerate exactly that batch with [`Relation::iter_since`].
    pub fn generation(&self) -> Generation {
        Generation {
            epoch: self.epoch,
            segments: self.segments.len(),
            recent: self.recent.len(),
            retracted: self.retracted.len(),
        }
    }

    /// Number of live tombstones in the retraction log.
    pub fn tombstone_count(&self) -> usize {
        self.retracted.len()
    }

    /// Number of frozen stable segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Length of the uncommitted recent tail.
    pub fn recent_len(&self) -> usize {
        self.recent.len()
    }

    /// Tuple counts of the frozen stable segments, in storage order.
    pub fn segment_lens(&self) -> Vec<usize> {
        self.segments.iter().map(|s| s.len()).collect()
    }

    /// The relation's [`SpaceNode`]: one child per frozen segment, one
    /// for the recent tail, one for the membership set (which owns its
    /// own clone of every tuple). `items` on the branch is the logical
    /// cardinality, not the child sum — see the invariant note on
    /// [`SpaceNode`].
    pub fn space_node(&self, name: &str) -> SpaceNode {
        let per_tuple = tuple_bytes(self.arity) as u64;
        let mut children = Vec::with_capacity(self.segments.len() + 2);
        for (i, seg) in self.segments.iter().enumerate() {
            children.push(SpaceNode::leaf(
                format!("segment {i}"),
                seg.len() as u64,
                seg.len() as u64 * per_tuple,
            ));
        }
        children.push(SpaceNode::leaf(
            "recent tail",
            self.recent.len() as u64,
            self.recent.len() as u64 * per_tuple,
        ));
        children.push(SpaceNode::leaf(
            "membership set",
            self.set.len() as u64,
            self.set.len() as u64 * per_tuple,
        ));
        if !self.retracted.is_empty() {
            children.push(SpaceNode::leaf(
                "tombstone log",
                self.retracted.len() as u64,
                self.retracted.len() as u64 * per_tuple,
            ));
        }
        SpaceNode::branch(
            format!("{name}/{}", self.arity),
            self.set.len() as u64,
            children,
        )
    }

    /// Moves this relation to a fresh epoch if a live clone might still
    /// share the current one. Must be called before any mutation so that
    /// generations captured from sibling clones stop matching this storage.
    fn fork_epoch_if_shared(&mut self) {
        if Arc::strong_count(&self.epoch_token) > 1 {
            self.epoch_token = Arc::new(());
            self.epoch = next_epoch();
        }
    }

    /// Membership test.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.set.contains(tuple)
    }

    /// Membership test for a borrowed row (no `Tuple` allocation).
    pub fn contains_row(&self, row: &[Value]) -> bool {
        self.set.contains(row)
    }

    /// Inserts a tuple, returning `true` if it was new.
    ///
    /// # Panics
    /// Panics if the tuple's arity does not match the relation's.
    pub fn insert(&mut self, tuple: Tuple) -> bool {
        assert_eq!(
            tuple.arity(),
            self.arity,
            "arity mismatch: relation has arity {}, tuple has arity {}",
            self.arity,
            tuple.arity()
        );
        if self.set.contains(&tuple) {
            return false;
        }
        if self.retracted.contains(&tuple) {
            // Reviving a tombstoned tuple: its dead physical copy is
            // still in storage, so a plain append would make iterators
            // yield it twice. Collapse to the live set (dropping the
            // tombstone log) under a fresh epoch instead.
            self.epoch = next_epoch();
            self.epoch_token = Arc::new(());
            self.collapse_to_set();
        } else {
            self.fork_epoch_if_shared();
        }
        self.set.insert(tuple.clone());
        self.recent.push(tuple);
        self.version += 1;
        true
    }

    /// Retracts a tuple as a *tombstone*, returning `true` if it was
    /// present.
    ///
    /// Unlike [`Relation::remove`], retraction preserves the append-only
    /// lineage: the physical copy stays where it is, the tuple is dropped
    /// from the membership set, and a tombstone is appended to the
    /// retraction log. Generation cursors captured earlier in this epoch
    /// stay exact — [`Relation::iter_since`] simply filters the dead
    /// tuples out and [`Relation::retracted_since`] enumerates the
    /// tombstones added since the mark, which is what lets indexes
    /// un-append postings instead of rebuilding.
    ///
    /// The epoch still forks when a live clone shares the storage:
    /// sibling clones with diverging tombstone logs must never answer
    /// each other's cursors.
    pub fn retract(&mut self, tuple: &Tuple) -> bool {
        if !self.set.contains(tuple) {
            return false;
        }
        self.fork_epoch_if_shared();
        self.set.remove(tuple);
        self.retracted.push(tuple.clone());
        self.version += 1;
        true
    }

    /// Removes a tuple, returning `true` if it was present.
    ///
    /// A removal breaks the append-only lineage (a hole invalidates every
    /// previously captured prefix cursor), so the relation moves to a fresh
    /// epoch and generational consumers fall back to full rebuilds.
    pub fn remove(&mut self, tuple: &Tuple) -> bool {
        if !self.set.remove(tuple) {
            return false;
        }
        self.version += 1;
        self.epoch = next_epoch();
        self.epoch_token = Arc::new(());
        if let Some(pos) = self.recent.iter().position(|t| t == tuple) {
            self.recent.remove(pos);
        } else {
            self.collapse_to_set();
        }
        true
    }

    /// Rebuilds storage as a single recent tail holding exactly the members
    /// of `set`, preserving the previous storage order. Used after removals
    /// that punched holes into frozen segments.
    fn collapse_to_set(&mut self) {
        let mut all: Vec<Tuple> = Vec::with_capacity(self.set.len());
        for seg in &self.segments {
            for row in seg.rows() {
                if self.set.contains(row) {
                    all.push(Tuple::new(row));
                }
            }
        }
        for t in self.recent.drain(..) {
            if self.set.contains(&t) {
                all.push(t);
            }
        }
        self.segments.clear();
        self.recent = all;
        self.retracted.clear();
    }

    /// Removes all tuples.
    pub fn clear(&mut self) {
        if self.set.is_empty() && self.retracted.is_empty() {
            return;
        }
        self.set.clear();
        self.segments.clear();
        self.recent.clear();
        self.retracted.clear();
        self.version += 1;
        self.epoch = next_epoch();
        self.epoch_token = Arc::new(());
    }

    /// Freezes the recent tail into a new stable segment (sorted and
    /// packed columnar), returning `true` if anything was committed.
    /// Contents are unchanged, so the version does not move — only the
    /// generation shape does. This is the point where per-tuple boxes
    /// from the tail are flattened into one contiguous value buffer.
    pub fn commit(&mut self) -> bool {
        if self.recent.is_empty() {
            return false;
        }
        let mut seg = std::mem::take(&mut self.recent);
        seg.sort_unstable();
        self.segments
            .push(Arc::new(ColumnSegment::from_tuples(self.arity, &seg)));
        true
    }

    /// Iterates over the tuples in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + Clone {
        self.set.iter()
    }

    /// Iterates in storage order: frozen segments first (each internally
    /// sorted), then the recent tail in insertion order. Every live tuple
    /// appears exactly once as a borrowed row; tombstoned tuples are
    /// skipped.
    pub fn iter_stored(&self) -> impl Iterator<Item = &[Value]> + Clone {
        let all_live = self.retracted.is_empty();
        self.segments
            .iter()
            .flat_map(|s| s.rows())
            .chain(self.recent.iter().map(|t| t.values()))
            .filter(move |row| all_live || self.set.contains(*row))
    }

    /// Rows `lo..hi` of [`Relation::iter_stored`]'s enumeration.
    ///
    /// Tombstone-free relations (the hot path) navigate straight to the
    /// right segment offsets instead of skipping row by row, which is
    /// what lets morsel-driven workers jump to their assigned range in
    /// O(#segments) rather than O(lo).
    pub fn iter_stored_range(
        &self,
        lo: usize,
        hi: usize,
    ) -> Box<dyn Iterator<Item = &[Value]> + '_> {
        if self.retracted.is_empty() {
            Box::new(rows_in_range(&self.segments, &self.recent, lo, hi))
        } else {
            Box::new(self.iter_stored().skip(lo).take(hi.saturating_sub(lo)))
        }
    }

    /// The tuples added since `gen` was captured from this relation.
    ///
    /// If `gen` does not describe a prefix of this relation's storage (it
    /// came from a different epoch, from a diverged clone, or was captured
    /// mid-tail before a later [`commit`](Relation::commit) folded the tail
    /// into a segment), the iterator conservatively yields a superset of the
    /// true delta — up to the whole relation. Semi-naive evaluation stays
    /// correct under a superset delta (it can only re-derive known facts);
    /// exact-delta consumers should use [`Relation::delta_bounds`] instead.
    ///
    /// Tombstoned tuples are never yielded: a tuple appended after the
    /// mark and retracted again before the call is not part of the live
    /// delta.
    pub fn iter_since(&self, gen: Generation) -> impl Iterator<Item = &[Value]> {
        let (seg_from, rec_from) = self.delta_bounds(gen).unwrap_or((0, 0));
        let all_live = self.retracted.is_empty();
        self.segments[seg_from..]
            .iter()
            .flat_map(|s| s.rows())
            .chain(self.recent[rec_from..].iter().map(|t| t.values()))
            .filter(move |row| all_live || self.set.contains(*row))
    }

    /// Rows `lo..hi` of [`Relation::iter_since`]'s enumeration for `gen`
    /// (including its conservative whole-relation fallback). Offsets are
    /// relative to the delta, not to full storage; the ranges of a
    /// partition of `0..delta_len(gen)` enumerate the delta exactly, in
    /// order — the contract morsel-driven delta scans rely on.
    pub fn iter_since_range(
        &self,
        gen: Generation,
        lo: usize,
        hi: usize,
    ) -> Box<dyn Iterator<Item = &[Value]> + '_> {
        if self.retracted.is_empty() {
            let (seg_from, rec_from) = self.delta_bounds(gen).unwrap_or((0, 0));
            Box::new(rows_in_range(
                &self.segments[seg_from..],
                &self.recent[rec_from..],
                lo,
                hi,
            ))
        } else {
            Box::new(self.iter_since(gen).skip(lo).take(hi.saturating_sub(lo)))
        }
    }

    /// The tombstones appended since `gen` was captured from this
    /// relation, in retraction order. Falls back to the whole log when
    /// `gen` belongs to another epoch — a conservative superset, since
    /// every logged tuple is genuinely dead.
    pub fn retracted_since(&self, gen: Generation) -> impl Iterator<Item = &Tuple> {
        let from = if gen.epoch == self.epoch {
            gen.retracted.min(self.retracted.len())
        } else {
            0
        };
        self.retracted[from..].iter()
    }

    /// Exact delta bounds `(first new segment, first new recent index)` for
    /// a generation, or `None` when `gen` is not a storage prefix and the
    /// delta cannot be reconstructed exactly.
    pub fn delta_bounds(&self, gen: Generation) -> Option<(usize, usize)> {
        if gen.epoch != self.epoch {
            return None;
        }
        if gen.segments > self.segments.len()
            || (gen.segments == self.segments.len() && gen.recent > self.recent.len())
            || gen.retracted > self.retracted.len()
        {
            return None; // cursor is ahead of us: a diverged sibling's mark
        }
        if gen.segments == self.segments.len() {
            Some((gen.segments, gen.recent))
        } else if gen.recent == 0 {
            Some((gen.segments, 0))
        } else {
            None // captured mid-tail; that tail has since been committed
        }
    }

    /// Number of tuples [`Relation::iter_since`] would yield for `gen`
    /// (including the conservative whole-relation fallback). Lets parallel
    /// workers split a delta scan into equal contiguous morsels without
    /// first materializing it.
    pub fn delta_len(&self, gen: Generation) -> usize {
        if !self.retracted.is_empty() {
            // Dead tuples hide inside the suffix; count the filtered
            // enumeration instead of trusting the storage arithmetic.
            return self.iter_since(gen).count();
        }
        let (seg_from, rec_from) = self.delta_bounds(gen).unwrap_or((0, 0));
        self.segments[seg_from..]
            .iter()
            .map(|s| s.len())
            .sum::<usize>()
            + (self.recent.len() - rec_from)
    }

    /// Number of rows [`Relation::iter_stored`] yields. Equals `len()`
    /// for tombstone-free relations; with tombstones the storage walk is
    /// filtered, but every live tuple still appears exactly once.
    pub fn stored_len(&self) -> usize {
        self.set.len()
    }

    /// Returns the tuples in sorted order as shared owned storage.
    ///
    /// The view is cached per version: repeated calls between mutations
    /// return the same `Arc` without re-sorting.
    pub fn sorted(&self) -> Arc<Vec<Tuple>> {
        let key = (self.epoch, self.version);
        if let Some(cached) = self.sorted_cache.get(key) {
            return cached;
        }
        let mut acc: Vec<Tuple> = self.set.iter().cloned().collect();
        acc.sort_unstable();
        let view = Arc::new(acc);
        self.sorted_cache.set(key, Arc::clone(&view));
        view
    }

    /// Inserts every tuple of `other`; returns the number actually added.
    ///
    /// # Panics
    /// Panics if arities differ.
    pub fn union_with(&mut self, other: &Relation) -> usize {
        assert_eq!(self.arity, other.arity, "arity mismatch in union");
        // Routed through `insert` so reviving a tombstoned tuple takes
        // the collapse path there instead of appending a duplicate copy.
        let mut added = 0;
        for t in other.iter() {
            if self.insert(t.clone()) {
                added += 1;
            }
        }
        added
    }

    /// Set-difference in place; returns the number removed.
    pub fn difference_with(&mut self, other: &Relation) -> usize {
        assert_eq!(self.arity, other.arity, "arity mismatch in difference");
        let mut removed = 0;
        for t in other.iter() {
            if self.set.remove(t) {
                removed += 1;
            }
        }
        if removed > 0 {
            self.version += 1;
            self.epoch = next_epoch();
            self.epoch_token = Arc::new(());
            self.collapse_to_set();
        }
        removed
    }

    /// True iff both relations hold exactly the same tuples.
    pub fn same_tuples(&self, other: &Relation) -> bool {
        self.arity == other.arity && self.set == other.set
    }

    /// Collects the values occurring in the relation into `out`.
    pub fn collect_adom(&self, out: &mut FxHashSet<Value>) {
        for t in self.iter() {
            out.extend(t.values().iter().copied());
        }
    }

    /// An order-independent 64-bit fingerprint of the contents.
    ///
    /// Computed as the wrapping sum of per-tuple hashes, so it does not
    /// depend on hash-set iteration order. Used (together with relation
    /// names) for instance-level state fingerprints in cycle detection.
    /// Cached per version: convergence loops that fingerprint an unchanged
    /// relation every round pay for one full pass, not one per round.
    pub fn fingerprint(&self) -> u64 {
        let key = (self.epoch, self.version);
        if let Some(fp) = self.fingerprint_cache.get(key) {
            return fp;
        }
        let fp = self
            .set
            .iter()
            .fold(0u64, |acc, t| acc.wrapping_add(hash_one(t)));
        self.fingerprint_cache.set(key, fp);
        fp
    }
}

/// Enumerates rows `lo..hi` of the concatenation `segments ++ recent`
/// by jumping straight to the covering segment offsets (no per-row
/// skipping). Bounds outside the storage are clamped.
fn rows_in_range<'a>(
    segments: &'a [Arc<ColumnSegment>],
    recent: &'a [Tuple],
    lo: usize,
    hi: usize,
) -> impl Iterator<Item = &'a [Value]> {
    let mut pieces: Vec<crate::columnar::Rows<'a>> = Vec::new();
    let mut off = 0usize;
    for seg in segments {
        let n = seg.len();
        let a = lo.max(off);
        let b = hi.min(off + n);
        if a < b {
            pieces.push(seg.rows_range(a - off, b - off));
        }
        off += n;
    }
    let a = lo.clamp(off, off + recent.len());
    let b = hi.clamp(off, off + recent.len());
    let tail: &[Tuple] = if a < b {
        &recent[a - off..b - off]
    } else {
        &[]
    };
    pieces
        .into_iter()
        .flatten()
        .chain(tail.iter().map(|t| t.values()))
}

impl HeapSize for Relation {
    /// One stored-tuple copy per segment row, recent-tail posting,
    /// and membership-set entry. Computed from counts only (O(#segments)),
    /// so engines can sample it after every rule application. The
    /// *logical* byte model is layout-independent: a columnar row costs
    /// the same `tuple_bytes(arity)` a boxed tuple did.
    fn heap_bytes(&self) -> usize {
        let stored = self.segments.iter().map(|s| s.len()).sum::<usize>()
            + self.recent.len()
            + self.set.len()
            + self.retracted.len();
        stored * tuple_bytes(self.arity)
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.same_tuples(other)
    }
}

impl Eq for Relation {}

/// Sentinel for "no slot / end of chain" in the open-addressing index.
const NONE32: u32 = u32::MAX;

/// Hashes the key columns of a packed row. Must agree with
/// [`hash_key`]: both feed the same `Value` sequence to the hasher.
fn hash_row_key(key_columns: &[usize], row: &[Value]) -> u64 {
    use std::hash::Hash;
    let mut h = FxHasher::default();
    for &c in key_columns {
        row[c].hash(&mut h);
    }
    h.finish()
}

/// Hashes an already-extracted probe key.
fn hash_key(key: &[Value]) -> u64 {
    use std::hash::Hash;
    let mut h = FxHasher::default();
    for v in key {
        v.hash(&mut h);
    }
    h.finish()
}

/// A hash index over a relation: tuples grouped by their values at a
/// fixed set of key columns.
///
/// Built once per (relation generation, key columns) by evaluators and used
/// to drive index-nested-loop joins: `probe` returns exactly the tuples
/// whose key columns equal the probe key. When the underlying relation only
/// grew since the index was built, [`Index::absorb_from`] appends the new
/// postings instead of rebuilding.
///
/// The layout is open-addressing over packed columns, specialized for
/// the columnar storage:
///
/// * `slots` is a power-of-two linear-probe table mapping key hashes to
///   bucket ids;
/// * bucket keys live packed in one `Vec<Value>` (stride = #key
///   columns) with their hashes cached for cheap table growth;
/// * postings live packed in one `Vec<Value>` (stride = arity), linked
///   per bucket through a `next` chain that preserves append order.
///
/// Probing and absorbing therefore never allocate a per-tuple box: a
/// probe hashes the borrowed key slice, walks the chain, and yields
/// borrowed `&[Value]` rows.
#[derive(Debug)]
pub struct Index {
    key_columns: Vec<usize>,
    arity: usize,
    /// Linear-probe slot table; `NONE32` marks an empty slot.
    slots: Vec<u32>,
    /// Packed bucket keys, stride `key_columns.len()`.
    keys: Vec<Value>,
    /// Cached key hash per bucket.
    hashes: Vec<u64>,
    /// First posting per bucket (`NONE32` when the bucket is empty).
    heads: Vec<u32>,
    /// Last posting per bucket, for O(1) order-preserving append.
    tails: Vec<u32>,
    /// Live postings per bucket.
    lens: Vec<u32>,
    /// Packed posting rows, stride `arity`. Unappended rows stay in the
    /// buffer (unlinked from their chain) — absorb workloads retract
    /// far fewer rows than they append.
    rows: Vec<Value>,
    /// Per-posting chain links.
    next: Vec<u32>,
    /// Total postings ever appended (dead ones included).
    row_count: usize,
    /// Live postings across all buckets.
    live: usize,
    /// Buckets with at least one live posting.
    live_buckets: usize,
}

impl Index {
    fn empty(key_columns: &[usize], arity: usize) -> Self {
        Index {
            key_columns: key_columns.to_vec(),
            arity,
            slots: Vec::new(),
            keys: Vec::new(),
            hashes: Vec::new(),
            heads: Vec::new(),
            tails: Vec::new(),
            lens: Vec::new(),
            rows: Vec::new(),
            next: Vec::new(),
            row_count: 0,
            live: 0,
            live_buckets: 0,
        }
    }

    /// Builds the index. `key_columns` must be valid positions.
    pub fn build(relation: &Relation, key_columns: &[usize]) -> Self {
        let mut idx = Index::empty(key_columns, relation.arity());
        for row in relation.iter_stored() {
            idx.append_row(row);
        }
        idx
    }

    /// Builds an index over only the tuples added since `gen` — the shape
    /// semi-naive evaluation uses for its per-round delta scans.
    pub fn build_delta(relation: &Relation, key_columns: &[usize], gen: Generation) -> Self {
        let mut idx = Index::empty(key_columns, relation.arity());
        for row in relation.iter_since(gen) {
            idx.append_row(row);
        }
        idx
    }

    /// The key slice of bucket `b`.
    fn key_of(&self, b: usize) -> &[Value] {
        let k = self.key_columns.len();
        &self.keys[b * k..(b + 1) * k]
    }

    /// The packed row of posting `r`.
    fn row_of(&self, r: u32) -> &[Value] {
        let a = self.arity;
        let r = r as usize;
        &self.rows[r * a..r * a + a]
    }

    /// True iff bucket `b`'s key equals `row`'s key columns.
    fn key_matches_row(&self, b: usize, row: &[Value]) -> bool {
        let k = self.key_columns.len();
        self.key_columns
            .iter()
            .enumerate()
            .all(|(j, &c)| self.keys[b * k + j] == row[c])
    }

    /// Grows (or seeds) the slot table so the load factor stays ≤ 3/4.
    /// Buckets re-place by their cached hashes — no key re-hashing.
    fn maybe_grow(&mut self) {
        let buckets = self.heads.len();
        if self.slots.is_empty() {
            self.slots = vec![NONE32; 16];
        } else if (buckets + 1) * 4 >= self.slots.len() * 3 {
            let new_len = self.slots.len() * 2;
            let mask = new_len - 1;
            let mut slots = vec![NONE32; new_len];
            for b in 0..buckets {
                let mut i = (self.hashes[b] as usize) & mask;
                while slots[i] != NONE32 {
                    i = (i + 1) & mask;
                }
                slots[i] = b as u32;
            }
            self.slots = slots;
        }
    }

    /// Finds the bucket for an extracted probe key, if present.
    fn find_bucket_for_key(&self, h: u64, key: &[Value]) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (h as usize) & mask;
        loop {
            match self.slots[i] {
                NONE32 => return None,
                b => {
                    let b = b as usize;
                    if self.hashes[b] == h && self.key_of(b) == key {
                        return Some(b);
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Finds the bucket whose key matches `row`'s key columns, if present.
    fn find_bucket_for_row(&self, h: u64, row: &[Value]) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (h as usize) & mask;
        loop {
            match self.slots[i] {
                NONE32 => return None,
                b => {
                    let b = b as usize;
                    if self.hashes[b] == h && self.key_matches_row(b, row) {
                        return Some(b);
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Finds or creates the bucket for `row`'s key columns.
    fn bucket_for_row(&mut self, h: u64, row: &[Value]) -> usize {
        self.maybe_grow();
        let mask = self.slots.len() - 1;
        let mut i = (h as usize) & mask;
        loop {
            match self.slots[i] {
                NONE32 => break,
                b => {
                    let b = b as usize;
                    if self.hashes[b] == h && self.key_matches_row(b, row) {
                        return b;
                    }
                }
            }
            i = (i + 1) & mask;
        }
        let b = self.heads.len();
        for &c in &self.key_columns {
            self.keys.push(row[c]);
        }
        self.hashes.push(h);
        self.heads.push(NONE32);
        self.tails.push(NONE32);
        self.lens.push(0);
        self.slots[i] = b as u32;
        b
    }

    /// Appends a posting for `row`, preserving append order per bucket.
    fn append_row(&mut self, row: &[Value]) {
        debug_assert_eq!(row.len(), self.arity);
        let h = hash_row_key(&self.key_columns, row);
        let b = self.bucket_for_row(h, row);
        let r = self.row_count as u32;
        self.rows.extend_from_slice(row);
        self.next.push(NONE32);
        self.row_count += 1;
        if self.lens[b] == 0 {
            self.live_buckets += 1;
            self.heads[b] = r;
        } else {
            let t = self.tails[b] as usize;
            self.next[t] = r;
        }
        self.tails[b] = r;
        self.lens[b] += 1;
        self.live += 1;
    }

    /// Removes one posting for `row`, if present. Tolerant of absent
    /// postings: a tuple inserted *and* retracted since the index's
    /// generation was never appended in the first place.
    fn unappend(&mut self, row: &[Value]) {
        let h = hash_row_key(&self.key_columns, row);
        let Some(b) = self.find_bucket_for_row(h, row) else {
            return;
        };
        let mut prev = NONE32;
        let mut cur = self.heads[b];
        while cur != NONE32 {
            if self.row_of(cur) == row {
                let nxt = self.next[cur as usize];
                if prev == NONE32 {
                    self.heads[b] = nxt;
                } else {
                    self.next[prev as usize] = nxt;
                }
                if self.tails[b] == cur {
                    self.tails[b] = prev;
                }
                self.lens[b] -= 1;
                self.live -= 1;
                if self.lens[b] == 0 {
                    self.live_buckets -= 1;
                    self.heads[b] = NONE32;
                    self.tails[b] = NONE32;
                }
                return;
            }
            prev = cur;
            cur = self.next[cur as usize];
        }
    }

    /// Number of tuples indexed (live postings across all buckets).
    pub fn tuple_count(&self) -> usize {
        self.live
    }

    /// Absorbs the changes `relation` saw since `gen` (the generation this
    /// index is current for): postings for retracted tuples are removed,
    /// postings for new live tuples appended. Returns the number of
    /// tuples appended, or `None` when the delta cannot be reconstructed
    /// exactly and the caller must rebuild.
    pub fn absorb_from(&mut self, relation: &Relation, gen: Generation) -> Option<usize> {
        relation.delta_bounds(gen)?;
        for t in relation.retracted_since(gen) {
            self.unappend(t.values());
        }
        let mut appended = 0;
        for row in relation.iter_since(gen) {
            self.append_row(row);
            appended += 1;
        }
        Some(appended)
    }

    /// The key columns this index was built on.
    pub fn key_columns(&self) -> &[usize] {
        &self.key_columns
    }

    /// The tuples whose key columns equal `key`, in append order, as
    /// borrowed packed rows. The iterator reports its exact length.
    pub fn probe(&self, key: &[Value]) -> Postings<'_> {
        debug_assert_eq!(key.len(), self.key_columns.len());
        let h = hash_key(key);
        match self.find_bucket_for_key(h, key) {
            Some(b) => Postings {
                index: self,
                cur: self.heads[b],
                remaining: self.lens[b] as usize,
            },
            None => Postings {
                index: self,
                cur: NONE32,
                remaining: 0,
            },
        }
    }

    /// Number of distinct keys with at least one live posting.
    pub fn distinct_keys(&self) -> usize {
        self.live_buckets
    }
}

/// Iterator over the postings of one [`Index`] bucket, yielding packed
/// rows in append order.
#[derive(Clone, Debug)]
pub struct Postings<'a> {
    index: &'a Index,
    cur: u32,
    remaining: usize,
}

impl<'a> Iterator for Postings<'a> {
    type Item = &'a [Value];

    fn next(&mut self) -> Option<&'a [Value]> {
        if self.cur == NONE32 {
            return None;
        }
        let r = self.cur;
        self.cur = self.index.next[r as usize];
        self.remaining -= 1;
        Some(self.index.row_of(r))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for Postings<'_> {}

impl HeapSize for Index {
    /// One key row per live bucket plus one stored-tuple copy per live
    /// posting — the same logical bucket model as before the columnar
    /// layout, so index byte gauges stay comparable.
    fn heap_bytes(&self) -> usize {
        let key_width = TUPLE_HEADER_BYTES + self.key_columns.len() * VALUE_BYTES;
        self.live_buckets * key_width + self.live * tuple_bytes(self.arity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(a: i64, b: i64) -> Tuple {
        Tuple::from([Value::Int(a), Value::Int(b)])
    }

    #[test]
    fn insert_dedups_and_bumps_version() {
        let mut r = Relation::new(2);
        let v0 = r.version();
        assert!(r.insert(t2(1, 2)));
        assert!(r.version() > v0);
        let v1 = r.version();
        assert!(!r.insert(t2(1, 2)));
        assert_eq!(r.version(), v1, "duplicate insert must not bump version");
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut r = Relation::new(2);
        r.insert(Tuple::from([Value::Int(1)]));
    }

    #[test]
    fn union_and_difference() {
        let mut a = Relation::from_tuples(2, vec![t2(1, 2), t2(3, 4)]);
        let b = Relation::from_tuples(2, vec![t2(3, 4), t2(5, 6)]);
        assert_eq!(a.union_with(&b), 1);
        assert_eq!(a.len(), 3);
        assert_eq!(a.difference_with(&b), 2);
        assert_eq!(a.len(), 1);
        assert!(a.contains(&t2(1, 2)));
    }

    #[test]
    fn fingerprint_is_order_independent() {
        let a = Relation::from_tuples(2, vec![t2(1, 2), t2(3, 4), t2(5, 6)]);
        let b = Relation::from_tuples(2, vec![t2(5, 6), t2(1, 2), t2(3, 4)]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = Relation::from_tuples(2, vec![t2(1, 2), t2(3, 4)]);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn fingerprint_cache_invalidates_on_mutation() {
        let mut r = Relation::from_tuples(2, vec![t2(1, 2)]);
        let fp0 = r.fingerprint();
        assert_eq!(r.fingerprint(), fp0, "cached value must be stable");
        r.insert(t2(3, 4));
        let fp1 = r.fingerprint();
        assert_ne!(fp0, fp1);
        r.remove(&t2(3, 4));
        assert_eq!(r.fingerprint(), fp0);
    }

    #[test]
    fn index_probe() {
        let r = Relation::from_tuples(2, vec![t2(1, 10), t2(1, 20), t2(2, 30)]);
        let idx = Index::build(&r, &[0]);
        assert_eq!(idx.probe(&[Value::Int(1)]).len(), 2);
        assert_eq!(idx.probe(&[Value::Int(2)]).len(), 1);
        assert_eq!(idx.probe(&[Value::Int(9)]).count(), 0);
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn index_probe_preserves_append_order() {
        let mut r = Relation::new(2);
        for k in [30, 10, 20] {
            r.insert(t2(1, k));
        }
        r.commit(); // segment is sorted: (1,10), (1,20), (1,30)
        r.insert(t2(1, 5)); // tail appends after the segment
        let idx = Index::build(&r, &[0]);
        let got: Vec<Tuple> = idx.probe(&[Value::Int(1)]).map(Tuple::new).collect();
        assert_eq!(got, vec![t2(1, 10), t2(1, 20), t2(1, 30), t2(1, 5)]);
    }

    #[test]
    fn index_on_no_columns_groups_everything() {
        let r = Relation::from_tuples(2, vec![t2(1, 10), t2(2, 20)]);
        let idx = Index::build(&r, &[]);
        assert_eq!(idx.probe(&[]).len(), 2);
    }

    #[test]
    fn index_handles_many_distinct_keys_through_growth() {
        let mut r = Relation::new(2);
        for k in 0..500 {
            r.insert(t2(k, k + 1));
            r.insert(t2(k, k + 2));
        }
        let idx = Index::build(&r, &[0]);
        assert_eq!(idx.distinct_keys(), 500);
        assert_eq!(idx.tuple_count(), 1000);
        for k in 0..500 {
            let got: Vec<Tuple> = idx.probe(&[Value::Int(k)]).map(Tuple::new).collect();
            assert_eq!(got, vec![t2(k, k + 1), t2(k, k + 2)], "key {k}");
        }
        assert_eq!(idx.probe(&[Value::Int(999)]).count(), 0);
    }

    #[test]
    fn sorted_is_deterministic() {
        let r = Relation::from_tuples(2, vec![t2(3, 4), t2(1, 2)]);
        let sorted = r.sorted();
        assert_eq!(*sorted, vec![t2(1, 2), t2(3, 4)]);
    }

    #[test]
    fn sorted_is_cached_until_mutation() {
        let mut r = Relation::from_tuples(2, vec![t2(3, 4), t2(1, 2)]);
        r.commit();
        let a = r.sorted();
        let b = r.sorted();
        assert!(
            Arc::ptr_eq(&a, &b),
            "unchanged relation must reuse the view"
        );
        assert_eq!(*a, vec![t2(1, 2), t2(3, 4)]);
        r.insert(t2(0, 0));
        let c = r.sorted();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(*c, vec![t2(0, 0), t2(1, 2), t2(3, 4)]);
    }

    #[test]
    fn clear_resets() {
        let mut r = Relation::from_tuples(2, vec![t2(1, 2)]);
        r.clear();
        assert!(r.is_empty());
        // Clearing an already-empty relation should not bump the version.
        let v = r.version();
        r.clear();
        assert_eq!(r.version(), v);
    }

    #[test]
    fn commit_freezes_tail_without_changing_contents() {
        let mut r = Relation::from_tuples(2, vec![t2(3, 4), t2(1, 2)]);
        let v = r.version();
        let fp = r.fingerprint();
        assert_eq!(r.segment_count(), 0);
        assert_eq!(r.recent_len(), 2);
        assert!(r.commit());
        assert!(!r.commit(), "empty tail commits nothing");
        assert_eq!(r.segment_count(), 1);
        assert_eq!(r.recent_len(), 0);
        assert_eq!(r.version(), v, "commit must not bump the version");
        assert_eq!(r.fingerprint(), fp);
        assert_eq!(r.len(), 2);
        assert!(r.contains(&t2(1, 2)));
    }

    #[test]
    fn iter_since_sees_exactly_the_new_tuples() {
        let mut r = Relation::from_tuples(2, vec![t2(1, 2)]);
        r.commit();
        let mark = r.generation();
        // Empty delta: nothing new since the mark.
        assert_eq!(r.iter_since(mark).count(), 0);
        // Tail appends are visible…
        r.insert(t2(3, 4));
        r.insert(t2(5, 6));
        let delta: Vec<Tuple> = r.iter_since(mark).map(Tuple::new).collect();
        assert_eq!(delta, vec![t2(3, 4), t2(5, 6)]);
        // …duplicate inserts are not (they add nothing).
        r.insert(t2(1, 2));
        assert_eq!(r.iter_since(mark).count(), 2);
        // …and so is a committed segment made from them.
        r.commit();
        let delta: Vec<Tuple> = r.iter_since(mark).map(Tuple::new).collect();
        assert_eq!(delta, vec![t2(3, 4), t2(5, 6)]);
        // A fresh mark after the commit sees nothing.
        assert_eq!(r.iter_since(r.generation()).count(), 0);
    }

    #[test]
    fn iter_since_falls_back_to_superset_on_epoch_change() {
        let mut r = Relation::from_tuples(2, vec![t2(1, 2)]);
        let mark = r.generation();
        r.insert(t2(3, 4));
        r.remove(&t2(3, 4)); // non-append mutation: epoch moves
        assert!(r.delta_bounds(mark).is_none());
        // The conservative fallback yields the whole relation.
        assert_eq!(r.iter_since(mark).count(), r.len());
    }

    #[test]
    fn mutation_after_clone_forks_the_epoch() {
        let mut a = Relation::from_tuples(2, vec![t2(1, 2)]);
        let mark = a.generation();
        let b = a.clone();
        assert_eq!(b.generation(), mark, "clones share the generation");
        a.insert(t2(3, 4));
        assert_ne!(
            a.generation().epoch,
            mark.epoch,
            "mutating a shared relation must fork its epoch"
        );
        // The untouched clone still answers exact deltas for the old mark.
        assert_eq!(b.delta_bounds(mark), Some((0, 1)));
        // The mutated one conservatively reports everything.
        assert_eq!(a.iter_since(mark).count(), a.len());
    }

    #[test]
    fn index_absorbs_tail_appends_and_committed_segments() {
        let mut r = Relation::from_tuples(2, vec![t2(1, 10)]);
        r.commit();
        let mut idx = Index::build(&r, &[0]);
        let gen0 = r.generation();

        // Empty delta absorbs zero tuples.
        assert_eq!(idx.absorb_from(&r, gen0), Some(0));

        // Tail growth absorbs incrementally.
        r.insert(t2(1, 20));
        assert_eq!(idx.absorb_from(&r, gen0), Some(1));
        assert_eq!(idx.probe(&[Value::Int(1)]).len(), 2);

        // A boundary mark (taken right after a commit) still yields an
        // exact delta even when the new tuples are committed before the
        // absorb — the engines always mark on segment boundaries.
        r.commit();
        let gen1 = r.generation();
        r.insert(t2(2, 30));
        r.commit();
        assert_eq!(idx.absorb_from(&r, gen1), Some(1));
        assert_eq!(idx.probe(&[Value::Int(2)]).len(), 1);
        assert_eq!(idx.probe(&[Value::Int(1)]).len(), 2);

        // Removal breaks the lineage: absorb must refuse.
        r.remove(&t2(2, 30));
        assert_eq!(idx.absorb_from(&r, r.generation()), Some(0));
        let stale = gen1;
        assert_eq!(idx.absorb_from(&r, stale), None);
    }

    /// Compile-time guard: shared-read parallel evaluation requires the
    /// storage types to be `Send + Sync`; this fails to build if a memo
    /// regresses to `Cell`/`RefCell`.
    #[test]
    fn storage_types_are_send_and_sync() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<Relation>();
        assert_sync::<Index>();
        assert_sync::<Generation>();
        assert_sync::<Memo<u64>>();
    }

    /// Two clones can diverge and then reach the *same* version number
    /// with different contents. The memos are deep-copied per clone and
    /// keyed by `(epoch, version)`, so neither clone may serve the other's
    /// (or its own stale pre-divergence) sorted view or fingerprint.
    #[test]
    fn diverged_clones_never_alias_cached_views() {
        let mut a = Relation::from_tuples(2, vec![t2(1, 2)]);
        a.commit();
        let _ = a.sorted(); // warm the memo before cloning
        let _ = a.fingerprint();
        let mut b = a.clone();
        // Both clones mutate once: same version counter, different facts.
        a.insert(t2(3, 4));
        b.insert(t2(5, 6));
        assert_eq!(a.version(), b.version());
        assert_eq!(*a.sorted(), vec![t2(1, 2), t2(3, 4)]);
        assert_eq!(*b.sorted(), vec![t2(1, 2), t2(5, 6)]);
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Divergence through removal (epoch fork) re-sorts too.
        b.remove(&t2(5, 6));
        b.insert(t2(7, 8));
        assert_eq!(*b.sorted(), vec![t2(1, 2), t2(7, 8)]);
    }

    #[test]
    fn delta_len_matches_iter_since() {
        let mut r = Relation::from_tuples(2, vec![t2(1, 2)]);
        r.commit();
        let mark = r.generation();
        assert_eq!(r.delta_len(mark), 0);
        r.insert(t2(3, 4));
        r.insert(t2(5, 6));
        assert_eq!(r.delta_len(mark), r.iter_since(mark).count());
        r.commit();
        r.insert(t2(7, 8));
        assert_eq!(r.delta_len(mark), 3);
        // Stale mark: conservative fallback counts the whole relation.
        r.remove(&t2(7, 8));
        assert_eq!(r.delta_len(mark), r.len());
    }

    /// Contiguous ranges over the delta enumeration partition it exactly
    /// and in order, for any morsel count (including more morsels than
    /// tuples) — the contract parallel morsel scans rely on.
    #[test]
    fn iter_since_range_partitions_the_delta_exactly() {
        let mut r = Relation::from_tuples(2, vec![t2(0, 0)]);
        r.commit();
        let mark = r.generation();
        // A delta spanning a committed segment and a live tail.
        for k in 1..=7 {
            r.insert(t2(k % 3, k));
        }
        r.commit();
        for k in 8..=10 {
            r.insert(t2(k % 3, k));
        }
        let full: Vec<Tuple> = r.iter_since(mark).map(Tuple::new).collect();
        let total = r.delta_len(mark);
        assert_eq!(total, full.len());
        for parts in [1usize, 2, 3, 4, 16] {
            let mut merged: Vec<Tuple> = Vec::new();
            for p in 0..parts {
                let lo = p * total / parts;
                let hi = (p + 1) * total / parts;
                merged.extend(r.iter_since_range(mark, lo, hi).map(Tuple::new));
            }
            assert_eq!(merged, full, "parts={parts}");
        }
        // The tombstone fallback path partitions the filtered walk too.
        r.retract(&t2(1, 1));
        let full: Vec<Tuple> = r.iter_since(mark).map(Tuple::new).collect();
        let total = r.delta_len(mark);
        for parts in [1usize, 3] {
            let mut merged: Vec<Tuple> = Vec::new();
            for p in 0..parts {
                let lo = p * total / parts;
                let hi = (p + 1) * total / parts;
                merged.extend(r.iter_since_range(mark, lo, hi).map(Tuple::new));
            }
            assert_eq!(merged, full, "tombstoned parts={parts}");
        }
    }

    /// Same partition contract for full storage scans.
    #[test]
    fn iter_stored_range_partitions_storage_exactly() {
        let mut r = Relation::new(2);
        for k in 0..9 {
            r.insert(t2(k, k + 1));
            if k % 4 == 3 {
                r.commit();
            }
        }
        let full: Vec<Tuple> = r.iter_stored().map(Tuple::new).collect();
        let total = r.stored_len();
        assert_eq!(total, full.len());
        for parts in [1usize, 2, 5, 12] {
            let mut merged: Vec<Tuple> = Vec::new();
            for p in 0..parts {
                let lo = p * total / parts;
                let hi = (p + 1) * total / parts;
                merged.extend(r.iter_stored_range(lo, hi).map(Tuple::new));
            }
            assert_eq!(merged, full, "parts={parts}");
        }
    }

    #[test]
    fn retract_preserves_the_lineage_and_filters_iteration() {
        let mut r = Relation::from_tuples(2, vec![t2(1, 2), t2(3, 4)]);
        r.commit();
        let mark = r.generation();
        r.insert(t2(5, 6));
        assert!(r.retract(&t2(1, 2)));
        assert!(!r.retract(&t2(1, 2)), "already dead");
        assert_eq!(r.len(), 2);
        assert!(!r.contains(&t2(1, 2)));
        assert_eq!(r.tombstone_count(), 1);
        // The mark is still an exact storage prefix…
        assert!(r.delta_bounds(mark).is_some());
        // …the live delta is just the new tuple…
        let delta: Vec<Tuple> = r.iter_since(mark).map(Tuple::new).collect();
        assert_eq!(delta, vec![t2(5, 6)]);
        assert_eq!(r.delta_len(mark), 1);
        // …and the tombstones since the mark are enumerable.
        let dead: Vec<_> = r.retracted_since(mark).cloned().collect();
        assert_eq!(dead, vec![t2(1, 2)]);
        // Dead tuples vanish from every view.
        assert_eq!(r.iter_stored().count(), 2);
        assert_eq!(*r.sorted(), vec![t2(3, 4), t2(5, 6)]);
    }

    #[test]
    fn index_absorbs_retractions_by_unappending() {
        let mut r = Relation::from_tuples(2, vec![t2(1, 10), t2(1, 20), t2(2, 30)]);
        r.commit();
        let mut idx = Index::build(&r, &[0]);
        let mark = r.generation();
        r.retract(&t2(1, 10));
        r.insert(t2(3, 40));
        assert_eq!(idx.absorb_from(&r, mark), Some(1));
        let got: Vec<Tuple> = idx.probe(&[Value::Int(1)]).map(Tuple::new).collect();
        assert_eq!(got, vec![t2(1, 20)]);
        let got: Vec<Tuple> = idx.probe(&[Value::Int(3)]).map(Tuple::new).collect();
        assert_eq!(got, vec![t2(3, 40)]);
        assert_eq!(idx.tuple_count(), 3);
        // Retracting the last posting of a key drops the bucket.
        let mark2 = r.generation();
        r.retract(&t2(2, 30));
        assert_eq!(idx.absorb_from(&r, mark2), Some(0));
        assert_eq!(idx.distinct_keys(), 2);
        // Insert-then-retract inside one delta never reaches the index.
        let mark3 = r.generation();
        r.insert(t2(4, 50));
        r.retract(&t2(4, 50));
        assert_eq!(idx.absorb_from(&r, mark3), Some(0));
        assert_eq!(idx.tuple_count(), 2);
    }

    /// Unappending the head, middle, and tail of one bucket's chain
    /// keeps the remaining postings in append order, and a re-append
    /// after emptying the bucket revives it.
    #[test]
    fn unappend_keeps_chain_order_at_every_position() {
        let rows: Vec<Tuple> = (0..4).map(|k| t2(1, k)).collect();
        for victim in 0..4 {
            let r = Relation::from_tuples(2, rows.clone());
            let mut idx = Index::build(&r, &[0]);
            idx.unappend(rows[victim].values());
            let got: Vec<Tuple> = idx.probe(&[Value::Int(1)]).map(Tuple::new).collect();
            let expect: Vec<Tuple> = rows
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != victim)
                .map(|(_, t)| t.clone())
                .collect();
            assert_eq!(got, expect, "victim={victim}");
            assert_eq!(idx.tuple_count(), 3);
        }
        // Empty a bucket completely, then revive it.
        let r = Relation::from_tuples(2, vec![t2(7, 1)]);
        let mut idx = Index::build(&r, &[0]);
        idx.unappend(t2(7, 1).values());
        assert_eq!(idx.distinct_keys(), 0);
        assert_eq!(idx.probe(&[Value::Int(7)]).count(), 0);
        idx.append_row(t2(7, 2).values());
        let got: Vec<Tuple> = idx.probe(&[Value::Int(7)]).map(Tuple::new).collect();
        assert_eq!(got, vec![t2(7, 2)]);
        assert_eq!(idx.distinct_keys(), 1);
    }

    #[test]
    fn reviving_a_tombstoned_tuple_collapses_storage() {
        let mut r = Relation::from_tuples(2, vec![t2(1, 2), t2(3, 4)]);
        r.commit();
        let mark = r.generation();
        r.retract(&t2(1, 2));
        let epoch_before = r.generation().epoch;
        assert!(r.insert(t2(1, 2)), "revival counts as an insert");
        assert_ne!(
            r.generation().epoch,
            epoch_before,
            "revival must fork the epoch"
        );
        assert!(r.delta_bounds(mark).is_none(), "old cursors are refused");
        assert_eq!(r.tombstone_count(), 0, "collapse drops the log");
        // Exactly one physical copy per live tuple.
        assert_eq!(r.iter_stored().count(), 2);
        assert_eq!(r.len(), 2);
        // Union-based merges take the same revival path.
        let mut a = Relation::from_tuples(2, vec![t2(7, 8)]);
        a.retract(&t2(7, 8));
        let b = Relation::from_tuples(2, vec![t2(7, 8)]);
        assert_eq!(a.union_with(&b), 1);
        assert_eq!(a.iter_stored().count(), 1);
    }

    #[test]
    fn retract_on_a_shared_relation_forks_the_epoch() {
        let mut a = Relation::from_tuples(2, vec![t2(1, 2), t2(3, 4)]);
        a.commit();
        let mark = a.generation();
        let b = a.clone();
        a.retract(&t2(1, 2));
        assert_ne!(a.generation().epoch, mark.epoch);
        // The untouched clone still answers the old cursor exactly and
        // never sees the sibling's tombstone.
        assert_eq!(b.delta_bounds(mark), Some((1, 0)));
        assert!(b.contains(&t2(1, 2)));
        assert_eq!(b.retracted_since(mark).count(), 0);
    }

    #[test]
    fn absorb_refuses_mid_tail_marks_after_commit() {
        let mut r = Relation::from_tuples(2, vec![t2(1, 10)]);
        let mid_tail = r.generation(); // recent == 1, nothing committed yet
        r.insert(t2(2, 20));
        r.commit(); // the marked prefix is now inside the segment
        let mut idx = Index::build(&r, &[0]);
        assert_eq!(idx.absorb_from(&r, mid_tail), None);
        // iter_since degrades to a superset instead of losing tuples.
        assert_eq!(r.iter_since(mid_tail).count(), 2);
    }
}

//! Relations (finite sets of constant tuples) and hash indexes over them.

use crate::hash::{hash_one, FxHashMap, FxHashSet};
use crate::tuple::Tuple;
use crate::value::Value;

/// A finite relation instance: a set of same-arity tuples.
///
/// Mutations bump a `version` counter; evaluators use `(name, version)`
/// pairs to cache [`Index`]es across fixpoint iterations and invalidate
/// them precisely when the underlying relation changed.
#[derive(Clone, Debug)]
pub struct Relation {
    arity: usize,
    tuples: FxHashSet<Tuple>,
    version: u64,
}

impl Relation {
    /// Creates an empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            tuples: FxHashSet::default(),
            version: 0,
        }
    }

    /// Creates a relation from an iterator of tuples.
    ///
    /// # Panics
    /// Panics if a tuple's arity does not match.
    pub fn from_tuples(arity: usize, tuples: impl IntoIterator<Item = Tuple>) -> Self {
        let mut rel = Relation::new(arity);
        for t in tuples {
            rel.insert(t);
        }
        rel
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The mutation counter. Two calls returning the same value guarantee
    /// the contents did not change in between.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Membership test.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples.contains(tuple)
    }

    /// Inserts a tuple, returning `true` if it was new.
    ///
    /// # Panics
    /// Panics if the tuple's arity does not match the relation's.
    pub fn insert(&mut self, tuple: Tuple) -> bool {
        assert_eq!(
            tuple.arity(),
            self.arity,
            "arity mismatch: relation has arity {}, tuple has arity {}",
            self.arity,
            tuple.arity()
        );
        let added = self.tuples.insert(tuple);
        if added {
            self.version += 1;
        }
        added
    }

    /// Removes a tuple, returning `true` if it was present.
    pub fn remove(&mut self, tuple: &Tuple) -> bool {
        let removed = self.tuples.remove(tuple);
        if removed {
            self.version += 1;
        }
        removed
    }

    /// Removes all tuples.
    pub fn clear(&mut self) {
        if !self.tuples.is_empty() {
            self.tuples.clear();
            self.version += 1;
        }
    }

    /// Iterates over the tuples in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + Clone {
        self.tuples.iter()
    }

    /// Returns the tuples in sorted order (for deterministic output).
    pub fn sorted(&self) -> Vec<&Tuple> {
        let mut v: Vec<&Tuple> = self.tuples.iter().collect();
        v.sort_unstable();
        v
    }

    /// Inserts every tuple of `other`; returns the number actually added.
    ///
    /// # Panics
    /// Panics if arities differ.
    pub fn union_with(&mut self, other: &Relation) -> usize {
        assert_eq!(self.arity, other.arity, "arity mismatch in union");
        let mut added = 0;
        for t in other.iter() {
            if self.tuples.insert(t.clone()) {
                added += 1;
            }
        }
        if added > 0 {
            self.version += 1;
        }
        added
    }

    /// Set-difference in place; returns the number removed.
    pub fn difference_with(&mut self, other: &Relation) -> usize {
        assert_eq!(self.arity, other.arity, "arity mismatch in difference");
        let before = self.tuples.len();
        for t in other.iter() {
            self.tuples.remove(t);
        }
        let removed = before - self.tuples.len();
        if removed > 0 {
            self.version += 1;
        }
        removed
    }

    /// True iff both relations hold exactly the same tuples.
    pub fn same_tuples(&self, other: &Relation) -> bool {
        self.arity == other.arity && self.tuples == other.tuples
    }

    /// Collects the values occurring in the relation into `out`.
    pub fn collect_adom(&self, out: &mut FxHashSet<Value>) {
        for t in self.iter() {
            out.extend(t.values().iter().copied());
        }
    }

    /// An order-independent 64-bit fingerprint of the contents.
    ///
    /// Computed as the wrapping sum of per-tuple hashes, so it does not
    /// depend on hash-set iteration order. Used (together with relation
    /// names) for instance-level state fingerprints in cycle detection.
    pub fn fingerprint(&self) -> u64 {
        self.tuples
            .iter()
            .fold(0u64, |acc, t| acc.wrapping_add(hash_one(t)))
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.same_tuples(other)
    }
}

impl Eq for Relation {}

/// A hash index over a relation: tuples grouped by their values at a
/// fixed set of key columns.
///
/// Built once per (relation version, key columns) by evaluators and used
/// to drive index-nested-loop joins: `probe` returns exactly the tuples
/// whose key columns equal the probe key.
#[derive(Debug)]
pub struct Index {
    key_columns: Vec<usize>,
    buckets: FxHashMap<Box<[Value]>, Vec<Tuple>>,
    empty: Vec<Tuple>,
}

impl Index {
    /// Builds the index. `key_columns` must be valid positions.
    pub fn build(relation: &Relation, key_columns: &[usize]) -> Self {
        let mut buckets: FxHashMap<Box<[Value]>, Vec<Tuple>> = FxHashMap::default();
        for t in relation.iter() {
            let key: Box<[Value]> = key_columns.iter().map(|&c| t[c]).collect();
            buckets.entry(key).or_default().push(t.clone());
        }
        Index {
            key_columns: key_columns.to_vec(),
            buckets,
            empty: Vec::new(),
        }
    }

    /// The key columns this index was built on.
    pub fn key_columns(&self) -> &[usize] {
        &self.key_columns
    }

    /// The tuples whose key columns equal `key` (in index order).
    pub fn probe(&self, key: &[Value]) -> &[Tuple] {
        debug_assert_eq!(key.len(), self.key_columns.len());
        self.buckets.get(key).map_or(&self.empty[..], |v| &v[..])
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(a: i64, b: i64) -> Tuple {
        Tuple::from([Value::Int(a), Value::Int(b)])
    }

    #[test]
    fn insert_dedups_and_bumps_version() {
        let mut r = Relation::new(2);
        let v0 = r.version();
        assert!(r.insert(t2(1, 2)));
        assert!(r.version() > v0);
        let v1 = r.version();
        assert!(!r.insert(t2(1, 2)));
        assert_eq!(r.version(), v1, "duplicate insert must not bump version");
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut r = Relation::new(2);
        r.insert(Tuple::from([Value::Int(1)]));
    }

    #[test]
    fn union_and_difference() {
        let mut a = Relation::from_tuples(2, vec![t2(1, 2), t2(3, 4)]);
        let b = Relation::from_tuples(2, vec![t2(3, 4), t2(5, 6)]);
        assert_eq!(a.union_with(&b), 1);
        assert_eq!(a.len(), 3);
        assert_eq!(a.difference_with(&b), 2);
        assert_eq!(a.len(), 1);
        assert!(a.contains(&t2(1, 2)));
    }

    #[test]
    fn fingerprint_is_order_independent() {
        let a = Relation::from_tuples(2, vec![t2(1, 2), t2(3, 4), t2(5, 6)]);
        let b = Relation::from_tuples(2, vec![t2(5, 6), t2(1, 2), t2(3, 4)]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = Relation::from_tuples(2, vec![t2(1, 2), t2(3, 4)]);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn index_probe() {
        let r = Relation::from_tuples(2, vec![t2(1, 10), t2(1, 20), t2(2, 30)]);
        let idx = Index::build(&r, &[0]);
        assert_eq!(idx.probe(&[Value::Int(1)]).len(), 2);
        assert_eq!(idx.probe(&[Value::Int(2)]).len(), 1);
        assert!(idx.probe(&[Value::Int(9)]).is_empty());
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn index_on_no_columns_groups_everything() {
        let r = Relation::from_tuples(2, vec![t2(1, 10), t2(2, 20)]);
        let idx = Index::build(&r, &[]);
        assert_eq!(idx.probe(&[]).len(), 2);
    }

    #[test]
    fn sorted_is_deterministic() {
        let r = Relation::from_tuples(2, vec![t2(3, 4), t2(1, 2)]);
        let sorted = r.sorted();
        assert_eq!(sorted, vec![&t2(1, 2), &t2(3, 4)]);
    }

    #[test]
    fn clear_resets() {
        let mut r = Relation::from_tuples(2, vec![t2(1, 2)]);
        r.clear();
        assert!(r.is_empty());
        // Clearing an already-empty relation should not bump the version.
        let v = r.version();
        r.clear();
        assert_eq!(r.version(), v);
    }
}
